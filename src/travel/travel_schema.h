#ifndef YOUTOPIA_TRAVEL_TRAVEL_SCHEMA_H_
#define YOUTOPIA_TRAVEL_TRAVEL_SCHEMA_H_

#include "common/status.h"
#include "server/youtopia.h"

namespace youtopia::travel {

/// Table names used by the travel application.
inline constexpr const char* kFlightsTable = "Flights";
inline constexpr const char* kAirlinesTable = "Airlines";
inline constexpr const char* kHotelsTable = "Hotels";
inline constexpr const char* kSeatsTable = "Seats";
inline constexpr const char* kReservationTable = "Reservation";
inline constexpr const char* kHotelReservationTable = "HotelReservation";
inline constexpr const char* kSeatReservationTable = "SeatReservation";

/// Creates the full travel schema:
///   Flights(fno, origin, dest, day, price, seats)
///   Airlines(fno, airline)
///   Hotels(hid, city, day, price, rooms)
///   Seats(fno, seat)                      -- open seat inventory
///   Reservation(traveler, fno)            -- answer relation
///   HotelReservation(traveler, hid)       -- answer relation
///   SeatReservation(traveler, fno, seat)  -- answer relation
/// plus hash indexes on the columns the coordination workload probes.
Status CreateTravelSchema(Youtopia* db);

/// Creates exactly the database of Figure 1(a) of the paper:
///   Flights(fno, dest):   122/123/134 -> Paris, 136 -> Rome
///   Airlines(fno, airline): 122/123 United, 134 Lufthansa, 136 Alitalia
/// and an empty Reservation(traveler, fno) answer relation.
Status SetupFigure1(Youtopia* db);

}  // namespace youtopia::travel

#endif  // YOUTOPIA_TRAVEL_TRAVEL_SCHEMA_H_
