#ifndef YOUTOPIA_TRAVEL_MIDDLE_TIER_H_
#define YOUTOPIA_TRAVEL_MIDDLE_TIER_H_

#include <chrono>
#include <string>
#include <vector>

#include <memory>

#include "common/status.h"
#include "server/client.h"
#include "server/client_interface.h"
#include "travel/friend_graph.h"
#include "travel/notification_bus.h"

namespace youtopia::travel {

/// One coordination request as the travel site's frontend produces it.
/// The middle tier translates it into an entangled query (paper §3.1:
/// "He submits his request, and the system translates it into an
/// entangled query which is processed by Youtopia").
struct TravelRequest {
  std::string user;
  /// Friends to share the flight with (empty = solo booking).
  std::vector<std::string> flight_companions;
  /// Friends to share the hotel with (may differ from the flight set —
  /// the ad-hoc scenario).
  std::vector<std::string> hotel_companions;

  std::string dest;
  std::string origin;   ///< Empty = any.
  int day = 0;          ///< 0 = any day.
  int max_price = 0;    ///< 0 = unlimited.
  bool want_hotel = false;
  int max_hotel_price = 0;

  /// Adjacent-seat coordination; requires exactly one flight companion.
  bool adjacent_seat = false;
};

/// Per-user account view (the demo's "account view" page).
struct AccountInfo {
  QueryResult flights;
  QueryResult hotels;
  QueryResult seats;
};

/// The application (middle) tier of the travel web site. Validates
/// friendships, builds entangled SQL, submits it through the
/// `youtopia::Client` façade, and delivers notifications — everything
/// the demo's three-tier app does above the DBMS, minus the browser
/// frontend. One shared client serves every end user; submissions are
/// tagged with the requesting user's name.
class TravelService {
 public:
  TravelService(Youtopia* db, FriendGraph friends, NotificationBus* bus)
      // No history: the service is long-lived and shared, and
      // per-statement history would grow without bound under load.
      : owned_client_(std::make_unique<Client>(
            db, ClientOptions("travel", /*record=*/false))),
        client_(owned_client_.get()),
        db_(db),
        friends_(std::move(friends)),
        bus_(bus) {}

  /// Backend-agnostic form: the middle tier over any `ClientInterface`
  /// — an in-process `Client` or a `net::RemoteClient` driving a shared
  /// engine behind a `net::YoutopiaServer`. The client is borrowed, not
  /// owned, and must outlive the service. Engine-side features that the
  /// interface cannot reach (the executor-service fast path of
  /// SubmitRequestAsync, EnableInventoryEnforcement's install hook)
  /// degrade gracefully: async submission falls back to the client's
  /// Submit + OnComplete, and enforcement must be enabled on the engine
  /// that hosts the server.
  TravelService(ClientInterface* client, FriendGraph friends,
                NotificationBus* bus)
      : client_(client), friends_(std::move(friends)), bus_(bus) {}

  TravelService(const TravelService&) = delete;
  TravelService& operator=(const TravelService&) = delete;

  /// Validates and submits a request; returns the coordination handle.
  Result<EntangledHandle> SubmitRequest(const TravelRequest& request);

  /// Async form of SubmitRequest, the middle-tier model the executor
  /// service enables: validates here, then packages the entangled SQL
  /// as a `StatementTask` on `session` (a FIFO domain — one per end
  /// user or per driver shard) and submits it to the engine's executor
  /// service. `on_done` fires once the coordination reaches a terminal
  /// state (parked via EntangledHandle::OnComplete — no worker and no
  /// caller thread is held while the query waits for partners), or with
  /// an error outcome if parsing/normalization/registration failed.
  /// The returned status only reports admission (validation failures
  /// and a shut-down service surface here).
  ///
  /// Ownership of completion differs from SubmitRequest: the handle is
  /// delivered to `on_done` and is NOT tracked in the service's shared
  /// client, so `Client::WaitForAll`/`CancelAll` do not cover
  /// async-submitted coordinations — callers that need bulk
  /// wait/cancel keep their own registry of handles (the workload
  /// driver's CompletionTracker is the reference pattern).
  ///
  /// Over a borrowed ClientInterface (no embedded engine) the
  /// executor-service fast path is unavailable; the request falls back
  /// to Submit + OnComplete, which preserves the completion contract
  /// (`on_done` fires with the terminal handle) but blocks the calling
  /// thread for registration and ignores `session`.
  Status SubmitRequestAsync(const TravelRequest& request, uint64_t session,
                            ExecutorService::Completion on_done);

  /// Validates and submits a whole group's requests in one coordinator
  /// round (Client::SubmitBatch) — the friends-booking-together case.
  /// A complete group closes in that single round instead of N
  /// submissions each re-running the matcher. All-or-nothing on
  /// validation: one invalid member rejects the batch. Handles are
  /// returned in request order.
  Result<std::vector<EntangledHandle>> SubmitGroupRequest(
      const std::vector<TravelRequest>& requests);

  /// Scenario 1 convenience: same flight with one friend.
  Result<EntangledHandle> BookFlightWithFriend(const std::string& user,
                                               const std::string& friend_name,
                                               const std::string& dest,
                                               int day = 0, int max_price = 0);

  /// Scenario 2 convenience: same flight and same hotel with one friend.
  Result<EntangledHandle> BookFlightAndHotelWithFriend(
      const std::string& user, const std::string& friend_name,
      const std::string& dest, int day = 0);

  /// Browse path: available flights to `dest`.
  Result<QueryResult> BrowseFlights(const std::string& dest, int day = 0,
                                    int max_price = 0);

  /// Browse path: which of `user`'s friends already hold a reservation
  /// on flight `fno` (paper Figure 4).
  Result<std::vector<std::string>> FriendsOnFlight(const std::string& user,
                                                   int64_t fno);

  /// Direct booking on a concrete flight (no partner constraint); used
  /// after browsing. Still flows through the coordinator so inventory
  /// hooks and answer-relation semantics apply.
  Result<EntangledHandle> BookFlightDirect(const std::string& user,
                                           int64_t fno);

  /// Pending and confirmed state for `user`.
  Result<AccountInfo> AccountView(const std::string& user);

  /// Event-driven delivery: registers an OnComplete callback that
  /// publishes the outcome to the notification bus as the demo's
  /// "Facebook message" — no caller thread blocks. Fires immediately
  /// when the handle is already done.
  void NotifyOnCompletion(EntangledHandle handle, const std::string& user);

  /// Blocking form of NotifyOnCompletion: waits for the handle, then
  /// publishes. Prefer NotifyOnCompletion; this remains for callers
  /// that need the outcome synchronously.
  Status WaitAndNotify(const EntangledHandle& handle, const std::string& user,
                       std::chrono::milliseconds timeout =
                           std::chrono::milliseconds(2000));

  /// Registers the seat/room-inventory install hook on the coordinator:
  /// each Reservation consumes a Flights seat, each HotelReservation a
  /// Hotels room, each SeatReservation removes its Seats row. Exhausted
  /// inventory aborts the whole coordination round atomically (design
  /// decision #3). Engine-side only: a service over a remote client
  /// cannot install hooks — enable enforcement on the engine hosting
  /// the server (NotImplemented is returned here in that case).
  Status EnableInventoryEnforcement();

  /// Entangled SQL text for a request (exposed for tests and the admin
  /// interface).
  static Result<std::string> BuildEntangledSql(const TravelRequest& request);

  const FriendGraph& friends() const { return friends_; }

 private:
  Status ValidateFriends(const std::string& user,
                         const std::vector<std::string>& companions) const;

  /// Set by the Youtopia* constructor; empty when the client is
  /// borrowed.
  std::unique_ptr<Client> owned_client_;
  ClientInterface* client_;
  /// The embedded engine, when there is one; nullptr for a remote
  /// backend (gates the executor-service fast path and install hooks).
  Youtopia* db_ = nullptr;
  FriendGraph friends_;
  NotificationBus* bus_;
};

}  // namespace youtopia::travel

#endif  // YOUTOPIA_TRAVEL_MIDDLE_TIER_H_
