#ifndef YOUTOPIA_TRAVEL_NOTIFICATION_BUS_H_
#define YOUTOPIA_TRAVEL_NOTIFICATION_BUS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace youtopia::travel {

/// In-process stand-in for the demo's "notified via a Facebook message"
/// delivery channel (DESIGN.md §2 substitution). Messages are recorded
/// per user and optionally forwarded to registered callbacks.
/// Thread-safe: coordination completions publish from whichever session
/// thread triggered the final match.
class NotificationBus {
 public:
  using Callback = std::function<void(const std::string& user,
                                      const std::string& message)>;

  NotificationBus() = default;
  NotificationBus(const NotificationBus&) = delete;
  NotificationBus& operator=(const NotificationBus&) = delete;

  void Publish(const std::string& user, const std::string& message);

  /// All messages delivered to `user`, in publish order.
  std::vector<std::string> MessagesFor(const std::string& user) const;

  size_t total_messages() const;

  /// Registers a global observer (e.g. the demo frontend).
  void Subscribe(Callback callback);

 private:
  /// Published from completion callbacks with no engine locks held;
  /// subscriber callbacks run after this is released (so they may
  /// publish or read back).
  mutable Mutex mu_{LockRank::kNotificationBus, "notification_bus"};
  std::map<std::string, std::vector<std::string>> inbox_ GUARDED_BY(mu_);
  std::vector<Callback> callbacks_ GUARDED_BY(mu_);
  size_t total_ GUARDED_BY(mu_) = 0;
};

}  // namespace youtopia::travel

#endif  // YOUTOPIA_TRAVEL_NOTIFICATION_BUS_H_
