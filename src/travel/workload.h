#ifndef YOUTOPIA_TRAVEL_WORKLOAD_H_
#define YOUTOPIA_TRAVEL_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/status.h"
#include "travel/middle_tier.h"

namespace youtopia::travel {

/// Parameters of the closed-loop loaded-system workload (paper §3: "we
/// also demonstrate the scalability of our coordination algorithm by
/// allowing our examples to be run on a loaded system").
struct WorkloadConfig {
  uint64_t seed = 99;
  /// Concurrent session threads.
  int sessions = 8;
  /// Coordination requests per session.
  int requests_per_session = 50;
  /// Probability that a request is a group booking (else pairwise).
  double group_fraction = 0.2;
  /// Group size for group bookings.
  int group_size = 4;
  /// Probability that a pairwise request also coordinates a hotel.
  double hotel_fraction = 0.3;
  /// Per-request completion deadline.
  std::chrono::milliseconds deadline = std::chrono::milliseconds(10000);
};

/// Aggregate outcome of one workload run.
struct WorkloadReport {
  size_t submitted = 0;
  size_t satisfied = 0;
  size_t timed_out = 0;
  size_t errors = 0;
  /// Coordinator matching rounds taken during the run: shard-local
  /// (parallel) versus escalated global (all-shard) rounds. Shows how
  /// much of the workload the sharded coordinator ran concurrently.
  size_t shard_rounds = 0;
  size_t global_rounds = 0;
  /// Executor-service view of the run (pool-driven mode; zeros when the
  /// engine runs inline): pool size, tasks the pool executed for this
  /// run, lock-conflict requeues, the deepest the submission queue got,
  /// and the pool's busy fraction over the run.
  size_t workers = 0;
  size_t tasks_executed = 0;
  size_t lock_requeues = 0;
  size_t peak_queue_depth = 0;
  double worker_utilization = 0.0;
  /// Plan-cache activity during the run, as deltas over the run
  /// (embedded engine only; zeros for a remote backend or a disabled
  /// cache).
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
  size_t plan_cache_evictions = 0;
  size_t plan_cache_invalidations = 0;
  /// WAL activity during the run, as deltas over the run (embedded
  /// engine with wal.enabled only; zeros otherwise). `wal_batch_mean`
  /// is records per group-commit flush over the run — the fsync
  /// amortization group commit bought.
  size_t wal_records = 0;
  size_t wal_fsyncs = 0;
  size_t wal_batches = 0;
  double wal_batch_mean = 0.0;
  size_t wal_checkpoints = 0;
  /// Submission-to-answer latency of satisfied requests.
  Histogram latency;
  /// Wall-clock duration of the whole run.
  uint64_t wall_micros = 0;

  double SatisfiedPerSecond() const {
    if (wall_micros == 0) return 0.0;
    return static_cast<double>(satisfied) * 1e6 /
           static_cast<double>(wall_micros);
  }

  std::string ToString() const;
};

/// Drives a randomized coordination workload against `db`: sessions
/// submit pairwise/group/hotel requests through an internal
/// TravelService (with a synthetic friend clique over the workload's
/// users). Every participant of a pair or group eventually submits, in
/// a shuffled interleaving across sessions, so requests complete unless
/// they exceed the deadline. The database must have been set up with
/// CreateTravelSchema + GenerateTravelData.
///
/// Two driving modes, chosen by the engine's executor-service pool:
/// with `num_workers == 0` each session is an OS thread submitting
/// synchronously (the seed's model); with a worker pool, ONE driver
/// thread packages every request as a `StatementTask` (per-session
/// FIFO domains preserved) and the pool executes them — the paper's
/// middle-tier shape, one network thread driving many sessions end to
/// end. Completion is consumed through parked OnComplete continuations
/// in both modes.
Result<WorkloadReport> RunLoadedWorkload(Youtopia* db,
                                         const std::string& dest,
                                         const WorkloadConfig& config);

/// Backend-agnostic form: the identical planned workload (same seed →
/// same requests in the same order) driven through any `ClientInterface`
/// — an in-process `Client` or a `net::RemoteClient` against a
/// `net::YoutopiaServer`. This is what makes backend parity testable:
/// run the same config in-process and over loopback and compare
/// outcomes. Sessions are OS threads submitting synchronously (the
/// engine-side executor pool still parallelizes remote statements);
/// coordinator/executor counters in the report are zero, since a remote
/// backend does not expose engine internals.
Result<WorkloadReport> RunLoadedWorkload(ClientInterface* client,
                                         const std::string& dest,
                                         const WorkloadConfig& config);

}  // namespace youtopia::travel

#endif  // YOUTOPIA_TRAVEL_WORKLOAD_H_
