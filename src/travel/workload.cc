#include "travel/workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/string_util.h"

namespace youtopia::travel {

std::string WorkloadReport::ToString() const {
  std::string out = StringPrintf(
      "submitted=%zu satisfied=%zu timed_out=%zu errors=%zu "
      "rounds(local=%zu, global=%zu) throughput=%.1f satisfied/s "
      "latency{%s}",
      submitted, satisfied, timed_out, errors, shard_rounds, global_rounds,
      SatisfiedPerSecond(), latency.ToString().c_str());
  if (workers > 0) {
    out += StringPrintf(
        " executor{workers=%zu executed=%zu requeues=%zu peak_queue=%zu "
        "utilization=%.1f%%}",
        workers, tasks_executed, lock_requeues, peak_queue_depth,
        worker_utilization * 100.0);
  }
  if (plan_cache_hits + plan_cache_misses > 0) {
    out += StringPrintf(
        " plan_cache{hits=%zu misses=%zu hit_rate=%.1f%% evictions=%zu "
        "invalidations=%zu}",
        plan_cache_hits, plan_cache_misses,
        100.0 * static_cast<double>(plan_cache_hits) /
            static_cast<double>(plan_cache_hits + plan_cache_misses),
        plan_cache_evictions, plan_cache_invalidations);
  }
  if (wal_records > 0) {
    out += StringPrintf(
        " wal{records=%zu fsyncs=%zu batches=%zu batch_mean=%.1f "
        "checkpoints=%zu}",
        wal_records, wal_fsyncs, wal_batches, wal_batch_mean,
        wal_checkpoints);
  }
  return out;
}

namespace {

/// One request a session will submit.
struct PlannedRequest {
  TravelRequest request;
};

/// Expands the workload's coordination units (pairs and groups) into
/// per-member requests and shuffles them so that partners land on
/// different sessions at different times.
std::vector<PlannedRequest> PlanRequests(const std::string& dest,
                                         const WorkloadConfig& config,
                                         FriendGraph* graph) {
  Random rng(config.seed);
  std::vector<PlannedRequest> planned;
  const int total_requests = config.sessions * config.requests_per_session;

  int unit = 0;
  while (static_cast<int>(planned.size()) < total_requests) {
    const bool group =
        rng.NextDouble() < config.group_fraction && config.group_size > 2;
    const int members = group ? config.group_size : 2;
    std::vector<std::string> users;
    users.reserve(members);
    for (int m = 0; m < members; ++m) {
      users.push_back("wl" + std::to_string(unit) + "_" + std::to_string(m));
    }
    for (size_t i = 0; i < users.size(); ++i) {
      graph->AddUser(users[i]);
      for (size_t j = i + 1; j < users.size(); ++j) {
        graph->AddFriendship(users[i], users[j]);
      }
    }
    const bool hotel = !group && rng.NextDouble() < config.hotel_fraction;
    for (size_t i = 0; i < users.size(); ++i) {
      PlannedRequest pr;
      pr.request.user = users[i];
      for (size_t j = 0; j < users.size(); ++j) {
        if (i == j) continue;
        pr.request.flight_companions.push_back(users[j]);
        if (hotel) pr.request.hotel_companions.push_back(users[j]);
      }
      pr.request.dest = dest;
      pr.request.want_hotel = hotel;
      planned.push_back(std::move(pr));
    }
    ++unit;
  }

  // Fisher-Yates shuffle for cross-session interleaving.
  for (size_t i = planned.size(); i > 1; --i) {
    std::swap(planned[i - 1], planned[rng.NextBelow(i)]);
  }
  return planned;
}

}  // namespace

namespace {

/// Completion accounting shared between OnComplete callbacks and the
/// driver. Held via shared_ptr by every callback so a coordination that
/// completes after the workload returns (the caller keeps using the
/// database) touches valid memory and is simply ignored.
struct CompletionTracker {
  /// Rank kWorkloadDriver: accounting calls handle accessors (rank
  /// kHandleState) and the latency histogram under mu, both of which
  /// rank far above it.
  Mutex mu{LockRank::kWorkloadDriver, "workload_tracker"};
  CondVar cv;
  size_t satisfied GUARDED_BY(mu) = 0;
  /// Terminal but not OK (cancelled/expired).
  size_t failed GUARDED_BY(mu) = 0;
  Histogram latency GUARDED_BY(mu);
  /// Report taken; ignore late completions.
  bool closed GUARDED_BY(mu) = false;
};

/// The driving core shared by both public overloads: submits `planned`
/// through `service` and accounts completions. `db` is the embedded
/// engine when there is one (enables the pool-driven single-thread mode
/// and the coordinator/executor counters in the report) and nullptr for
/// a remote backend.
Result<WorkloadReport> DriveWorkload(TravelService* service, Youtopia* db,
                                     const std::vector<PlannedRequest>& planned,
                                     const WorkloadConfig& config) {
  TravelService& svc = *service;
  WorkloadReport report;
  std::atomic<size_t> errors{0};
  auto tracker = std::make_shared<CompletionTracker>();

  // Shared completion accounting for both driving modes: `done` is the
  // terminal handle of one coordination, or nullptr for a request that
  // failed before registration (parse/normalize error) — counted as a
  // failure. One function so the two modes can never drift.
  auto account = [tracker](std::chrono::steady_clock::time_point submitted_at,
                           const EntangledHandle* done) {
    MutexLock lock(tracker->mu);
    if (tracker->closed) return;
    const Status outcome =
        done != nullptr ? done->Outcome().value_or(Status::OK())
                        : Status::Aborted("failed before registration");
    if (outcome.ok()) {
      ++tracker->satisfied;
      const auto end =
          done->CompletedAt().value_or(std::chrono::steady_clock::now());
      const auto micros =
          std::chrono::duration_cast<std::chrono::microseconds>(end -
                                                                submitted_at)
              .count();
      tracker->latency.Record(micros < 0 ? 0 : static_cast<uint64_t>(micros));
    } else {
      ++tracker->failed;
    }
    tracker->cv.NotifyAll();
  };

  ExecutorService* exec = db != nullptr ? &db->executor_service() : nullptr;
  const ExecutorService::Stats exec_before =
      exec != nullptr ? exec->stats() : ExecutorService::Stats{};
  const CoordinatorStats before =
      db != nullptr ? db->coordinator().stats() : CoordinatorStats{};
  const PlanCache::Stats cache_before =
      db != nullptr ? db->plan_cache().stats() : PlanCache::Stats{};
  const wal::WalStats wal_before = db != nullptr && db->wal() != nullptr
                                       ? db->wal()->stats()
                                       : wal::WalStats{};
  const auto start = std::chrono::steady_clock::now();

  if (exec != nullptr && exec->num_workers() > 0) {
    // Pool-driven mode: this one thread plays the middle tier's network
    // thread. Each logical session is a FIFO domain in the executor
    // service; the pool provides the parallelism, and every completion
    // is a parked continuation — no thread anywhere waits per request.
    std::vector<uint64_t> session_ids(config.sessions);
    for (auto& id : session_ids) id = ExecutorService::AllocateSessionId();
    for (size_t i = 0; i < planned.size(); ++i) {
      const auto submitted_at = std::chrono::steady_clock::now();
      Status admitted = svc.SubmitRequestAsync(
          planned[i].request,
          session_ids[i % static_cast<size_t>(config.sessions)],
          [account, submitted_at](Result<RunOutcome> outcome) {
            const EntangledHandle* done =
                outcome.ok() && outcome->handle.has_value()
                    ? &*outcome->handle
                    : nullptr;
            account(submitted_at, done);
          });
      if (!admitted.ok()) ++errors;
    }
  } else {
    // Inline mode: one OS thread per session submitting synchronously —
    // the seed's model, kept as the num_workers == 0 baseline.
    std::vector<std::thread> sessions;
    sessions.reserve(config.sessions);
    for (int s = 0; s < config.sessions; ++s) {
      sessions.emplace_back([&, s] {
        // Round-robin assignment of the shuffled plan. Completion is
        // consumed through OnComplete callbacks registered at
        // submission: no session thread ever parks in Wait per
        // outstanding handle.
        for (size_t i = s; i < planned.size();
             i += static_cast<size_t>(config.sessions)) {
          const auto submitted_at = std::chrono::steady_clock::now();
          auto handle = svc.SubmitRequest(planned[i].request);
          if (!handle.ok()) {
            ++errors;
            continue;
          }
          handle->OnComplete([account, submitted_at](
                                 const EntangledHandle& done) {
            account(submitted_at, &done);
          });
        }
      });
    }
    for (auto& t : sessions) t.join();
  }

  // Event-driven tail: sleep until the callbacks have accounted for
  // every submission or the deadline passes.
  const size_t target = planned.size() - errors.load();
  {
    MutexLock lock(tracker->mu);
    tracker->cv.WaitFor(tracker->mu, config.deadline, [&] {
      return tracker->satisfied + tracker->failed >= target;
    });
    tracker->closed = true;
    report.satisfied = tracker->satisfied;
    report.timed_out = target - tracker->satisfied - tracker->failed;
    report.errors = errors.load() + tracker->failed;
    report.latency.Merge(tracker->latency);
  }

  report.wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  report.submitted = planned.size();
  if (db != nullptr) {
    const CoordinatorStats after = db->coordinator().stats();
    report.shard_rounds = after.shard_rounds - before.shard_rounds;
    report.global_rounds = after.global_rounds - before.global_rounds;
    const PlanCache::Stats cache_after = db->plan_cache().stats();
    report.plan_cache_hits = cache_after.hits - cache_before.hits;
    report.plan_cache_misses = cache_after.misses - cache_before.misses;
    report.plan_cache_evictions =
        cache_after.evictions - cache_before.evictions;
    report.plan_cache_invalidations =
        cache_after.invalidations - cache_before.invalidations;
    if (db->wal() != nullptr) {
      const wal::WalStats wal_after = db->wal()->stats();
      report.wal_records =
          wal_after.records_appended - wal_before.records_appended;
      report.wal_fsyncs = wal_after.fsyncs - wal_before.fsyncs;
      report.wal_batches =
          wal_after.group_commit_batches - wal_before.group_commit_batches;
      // Mean records per flush over this run's batches alone.
      if (report.wal_batches > 0) {
        const double sum_after = wal_after.batch_records.mean() *
                                 static_cast<double>(
                                     wal_after.batch_records.count());
        const double sum_before = wal_before.batch_records.mean() *
                                  static_cast<double>(
                                      wal_before.batch_records.count());
        report.wal_batch_mean =
            (sum_after - sum_before) / static_cast<double>(report.wal_batches);
      }
      report.wal_checkpoints = wal_after.checkpoints - wal_before.checkpoints;
    }
  }
  if (exec != nullptr) {
    if (exec->num_workers() > 0) {
      // The tracker can observe the last coordination (a parked
      // continuation fires mid-registration) a hair before the worker
      // books that task's completion; drain so the executor counters
      // cover every task of the run.
      (void)exec->Drain(config.deadline);
    }
    const ExecutorService::Stats exec_after = exec->stats();
    report.workers = exec_after.workers;
    report.tasks_executed = exec_after.executed - exec_before.executed;
    report.lock_requeues =
        exec_after.lock_requeues - exec_before.lock_requeues;
    // Peak is a service-lifetime high-water mark (a monotone max cannot
    // be delta'd); on a fresh engine it is this run's peak.
    report.peak_queue_depth = exec_after.peak_queue_depth;
    // Utilization over *this run*: busy and uptime deltas, not the
    // service's lifetime averages (setup scripts would dilute them).
    const uint64_t busy_delta =
        exec_after.busy_micros - exec_before.busy_micros;
    const uint64_t uptime_delta =
        exec_after.uptime_micros - exec_before.uptime_micros;
    if (exec_after.workers > 0 && uptime_delta > 0) {
      report.worker_utilization =
          std::min(1.0, static_cast<double>(busy_delta) /
                            (static_cast<double>(exec_after.workers) *
                             static_cast<double>(uptime_delta)));
    }
  }
  return report;
}

}  // namespace

Result<WorkloadReport> RunLoadedWorkload(Youtopia* db,
                                         const std::string& dest,
                                         const WorkloadConfig& config) {
  if (config.sessions < 1 || config.requests_per_session < 1) {
    return Status::InvalidArgument("workload needs >= 1 session and request");
  }
  FriendGraph graph;
  auto planned = PlanRequests(dest, config, &graph);
  TravelService service(db, std::move(graph), nullptr);
  return DriveWorkload(&service, db, planned, config);
}

Result<WorkloadReport> RunLoadedWorkload(ClientInterface* client,
                                         const std::string& dest,
                                         const WorkloadConfig& config) {
  if (config.sessions < 1 || config.requests_per_session < 1) {
    return Status::InvalidArgument("workload needs >= 1 session and request");
  }
  FriendGraph graph;
  auto planned = PlanRequests(dest, config, &graph);
  TravelService service(client, std::move(graph), nullptr);
  return DriveWorkload(&service, /*db=*/nullptr, planned, config);
}

}  // namespace youtopia::travel
