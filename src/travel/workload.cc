#include "travel/workload.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace youtopia::travel {

std::string WorkloadReport::ToString() const {
  return StringPrintf(
      "submitted=%zu satisfied=%zu timed_out=%zu errors=%zu "
      "rounds(local=%zu, global=%zu) throughput=%.1f satisfied/s "
      "latency{%s}",
      submitted, satisfied, timed_out, errors, shard_rounds, global_rounds,
      SatisfiedPerSecond(), latency.ToString().c_str());
}

namespace {

/// One request a session will submit.
struct PlannedRequest {
  TravelRequest request;
};

/// Expands the workload's coordination units (pairs and groups) into
/// per-member requests and shuffles them so that partners land on
/// different sessions at different times.
std::vector<PlannedRequest> PlanRequests(const std::string& dest,
                                         const WorkloadConfig& config,
                                         FriendGraph* graph) {
  Random rng(config.seed);
  std::vector<PlannedRequest> planned;
  const int total_requests = config.sessions * config.requests_per_session;

  int unit = 0;
  while (static_cast<int>(planned.size()) < total_requests) {
    const bool group =
        rng.NextDouble() < config.group_fraction && config.group_size > 2;
    const int members = group ? config.group_size : 2;
    std::vector<std::string> users;
    users.reserve(members);
    for (int m = 0; m < members; ++m) {
      users.push_back("wl" + std::to_string(unit) + "_" + std::to_string(m));
    }
    for (size_t i = 0; i < users.size(); ++i) {
      graph->AddUser(users[i]);
      for (size_t j = i + 1; j < users.size(); ++j) {
        graph->AddFriendship(users[i], users[j]);
      }
    }
    const bool hotel = !group && rng.NextDouble() < config.hotel_fraction;
    for (size_t i = 0; i < users.size(); ++i) {
      PlannedRequest pr;
      pr.request.user = users[i];
      for (size_t j = 0; j < users.size(); ++j) {
        if (i == j) continue;
        pr.request.flight_companions.push_back(users[j]);
        if (hotel) pr.request.hotel_companions.push_back(users[j]);
      }
      pr.request.dest = dest;
      pr.request.want_hotel = hotel;
      planned.push_back(std::move(pr));
    }
    ++unit;
  }

  // Fisher-Yates shuffle for cross-session interleaving.
  for (size_t i = planned.size(); i > 1; --i) {
    std::swap(planned[i - 1], planned[rng.NextBelow(i)]);
  }
  return planned;
}

}  // namespace

namespace {

/// Completion accounting shared between OnComplete callbacks and the
/// driver. Held via shared_ptr by every callback so a coordination that
/// completes after the workload returns (the caller keeps using the
/// database) touches valid memory and is simply ignored.
struct CompletionTracker {
  std::mutex mu;
  std::condition_variable cv;
  size_t satisfied = 0;
  size_t failed = 0;  ///< Terminal but not OK (cancelled/expired).
  Histogram latency;
  bool closed = false;  ///< Report taken; ignore late completions.
};

}  // namespace

Result<WorkloadReport> RunLoadedWorkload(Youtopia* db,
                                         const std::string& dest,
                                         const WorkloadConfig& config) {
  if (config.sessions < 1 || config.requests_per_session < 1) {
    return Status::InvalidArgument("workload needs >= 1 session and request");
  }

  FriendGraph graph;
  auto planned = PlanRequests(dest, config, &graph);
  TravelService service(db, std::move(graph), nullptr);

  WorkloadReport report;
  std::atomic<size_t> errors{0};
  auto tracker = std::make_shared<CompletionTracker>();

  const CoordinatorStats before = db->coordinator().stats();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> sessions;
  sessions.reserve(config.sessions);
  for (int s = 0; s < config.sessions; ++s) {
    sessions.emplace_back([&, s] {
      // Round-robin assignment of the shuffled plan. Completion is
      // consumed through OnComplete callbacks registered at submission:
      // no session thread ever parks in Wait per outstanding handle,
      // which is what lets one driver thread field arbitrarily many
      // in-flight coordinations.
      for (size_t i = s; i < planned.size();
           i += static_cast<size_t>(config.sessions)) {
        const auto submitted_at = std::chrono::steady_clock::now();
        auto handle = service.SubmitRequest(planned[i].request);
        if (!handle.ok()) {
          ++errors;
          continue;
        }
        handle->OnComplete(
            [tracker, submitted_at](const EntangledHandle& done) {
              std::lock_guard<std::mutex> lock(tracker->mu);
              if (tracker->closed) return;
              const Status outcome = done.Outcome().value_or(Status::OK());
              if (outcome.ok()) {
                ++tracker->satisfied;
                const auto end = done.CompletedAt().value_or(
                    std::chrono::steady_clock::now());
                const auto micros =
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        end - submitted_at)
                        .count();
                tracker->latency.Record(
                    micros < 0 ? 0 : static_cast<uint64_t>(micros));
              } else {
                ++tracker->failed;
              }
              tracker->cv.notify_all();
            });
      }
    });
  }
  for (auto& t : sessions) t.join();

  // Event-driven tail: sleep until the callbacks have accounted for
  // every submission or the deadline passes.
  const size_t target = planned.size() - errors.load();
  {
    std::unique_lock<std::mutex> lock(tracker->mu);
    tracker->cv.wait_for(lock, config.deadline, [&] {
      return tracker->satisfied + tracker->failed >= target;
    });
    tracker->closed = true;
    report.satisfied = tracker->satisfied;
    report.timed_out = target - tracker->satisfied - tracker->failed;
    report.errors = errors.load() + tracker->failed;
    report.latency.Merge(tracker->latency);
  }

  report.wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  report.submitted = planned.size();
  const CoordinatorStats after = db->coordinator().stats();
  report.shard_rounds = after.shard_rounds - before.shard_rounds;
  report.global_rounds = after.global_rounds - before.global_rounds;
  return report;
}

}  // namespace youtopia::travel
