#include "travel/workload.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace youtopia::travel {

std::string WorkloadReport::ToString() const {
  return StringPrintf(
      "submitted=%zu satisfied=%zu timed_out=%zu errors=%zu "
      "throughput=%.1f satisfied/s latency{%s}",
      submitted, satisfied, timed_out, errors, SatisfiedPerSecond(),
      latency.ToString().c_str());
}

namespace {

/// One request a session will submit.
struct PlannedRequest {
  TravelRequest request;
};

/// Expands the workload's coordination units (pairs and groups) into
/// per-member requests and shuffles them so that partners land on
/// different sessions at different times.
std::vector<PlannedRequest> PlanRequests(const std::string& dest,
                                         const WorkloadConfig& config,
                                         FriendGraph* graph) {
  Random rng(config.seed);
  std::vector<PlannedRequest> planned;
  const int total_requests = config.sessions * config.requests_per_session;

  int unit = 0;
  while (static_cast<int>(planned.size()) < total_requests) {
    const bool group =
        rng.NextDouble() < config.group_fraction && config.group_size > 2;
    const int members = group ? config.group_size : 2;
    std::vector<std::string> users;
    users.reserve(members);
    for (int m = 0; m < members; ++m) {
      users.push_back("wl" + std::to_string(unit) + "_" + std::to_string(m));
    }
    for (size_t i = 0; i < users.size(); ++i) {
      graph->AddUser(users[i]);
      for (size_t j = i + 1; j < users.size(); ++j) {
        graph->AddFriendship(users[i], users[j]);
      }
    }
    const bool hotel = !group && rng.NextDouble() < config.hotel_fraction;
    for (size_t i = 0; i < users.size(); ++i) {
      PlannedRequest pr;
      pr.request.user = users[i];
      for (size_t j = 0; j < users.size(); ++j) {
        if (i == j) continue;
        pr.request.flight_companions.push_back(users[j]);
        if (hotel) pr.request.hotel_companions.push_back(users[j]);
      }
      pr.request.dest = dest;
      pr.request.want_hotel = hotel;
      planned.push_back(std::move(pr));
    }
    ++unit;
  }

  // Fisher-Yates shuffle for cross-session interleaving.
  for (size_t i = planned.size(); i > 1; --i) {
    std::swap(planned[i - 1], planned[rng.NextBelow(i)]);
  }
  return planned;
}

}  // namespace

Result<WorkloadReport> RunLoadedWorkload(Youtopia* db,
                                         const std::string& dest,
                                         const WorkloadConfig& config) {
  if (config.sessions < 1 || config.requests_per_session < 1) {
    return Status::InvalidArgument("workload needs >= 1 session and request");
  }

  FriendGraph graph;
  auto planned = PlanRequests(dest, config, &graph);
  TravelService service(db, std::move(graph), nullptr);

  WorkloadReport report;
  std::atomic<size_t> satisfied{0}, timed_out{0}, errors{0};
  Histogram latency;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> sessions;
  sessions.reserve(config.sessions);
  for (int s = 0; s < config.sessions; ++s) {
    sessions.emplace_back([&, s] {
      struct InFlight {
        EntangledHandle handle;
        std::chrono::steady_clock::time_point submitted_at;
      };
      std::vector<InFlight> in_flight;
      // Round-robin assignment of the shuffled plan.
      for (size_t i = s; i < planned.size();
           i += static_cast<size_t>(config.sessions)) {
        auto handle = service.SubmitRequest(planned[i].request);
        if (!handle.ok()) {
          ++errors;
          continue;
        }
        in_flight.push_back(
            {handle.TakeValue(), std::chrono::steady_clock::now()});
      }
      // Closed loop tail: wait for everything this session submitted.
      for (InFlight& f : in_flight) {
        Status outcome = f.handle.Wait(config.deadline);
        if (outcome.ok()) {
          ++satisfied;
          auto completed = f.handle.CompletedAt();
          const auto end =
              completed.value_or(std::chrono::steady_clock::now());
          const auto micros =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  end - f.submitted_at)
                  .count();
          latency.Record(micros < 0 ? 0 : static_cast<uint64_t>(micros));
        } else if (outcome.code() == StatusCode::kTimedOut) {
          ++timed_out;
        } else {
          ++errors;
        }
      }
    });
  }
  for (auto& t : sessions) t.join();

  report.wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  report.submitted = planned.size();
  report.satisfied = satisfied.load();
  report.timed_out = timed_out.load();
  report.errors = errors.load();
  report.latency.Merge(latency);
  return report;
}

}  // namespace youtopia::travel
