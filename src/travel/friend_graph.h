#ifndef YOUTOPIA_TRAVEL_FRIEND_GRAPH_H_
#define YOUTOPIA_TRAVEL_FRIEND_GRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace youtopia::travel {

/// In-process stand-in for the demo's Facebook friend import (DESIGN.md
/// §2 substitution): an undirected social graph the middle tier consults
/// before allowing coordination requests. Deterministic random graphs
/// support the loaded-system benchmarks.
class FriendGraph {
 public:
  FriendGraph() = default;

  /// Adds both users (if new) and the undirected edge.
  void AddFriendship(const std::string& a, const std::string& b);

  void AddUser(const std::string& user);

  bool AreFriends(const std::string& a, const std::string& b) const;

  /// Sorted friend list; empty for unknown users.
  std::vector<std::string> FriendsOf(const std::string& user) const;

  std::vector<std::string> Users() const;

  size_t num_users() const { return adjacency_.size(); }
  size_t num_friendships() const { return edge_count_; }

  /// Erdos–Renyi-style random graph over users "user0".."user<n-1>"
  /// where each pair is connected with probability `p`.
  static FriendGraph Random(size_t n, double p, uint64_t seed);

  /// A clique over the given users (every pair friends) — the group
  /// booking scenarios assume the whole group is mutually connected.
  static FriendGraph Clique(const std::vector<std::string>& users);

 private:
  std::map<std::string, std::set<std::string>> adjacency_;
  size_t edge_count_ = 0;
};

}  // namespace youtopia::travel

#endif  // YOUTOPIA_TRAVEL_FRIEND_GRAPH_H_
