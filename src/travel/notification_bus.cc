#include "travel/notification_bus.h"

namespace youtopia::travel {

void NotificationBus::Publish(const std::string& user,
                              const std::string& message) {
  std::vector<Callback> callbacks;
  {
    MutexLock lock(mu_);
    inbox_[user].push_back(message);
    ++total_;
    callbacks = callbacks_;
  }
  // Callbacks run outside the lock so they may publish again.
  for (const Callback& cb : callbacks) cb(user, message);
}

std::vector<std::string> NotificationBus::MessagesFor(
    const std::string& user) const {
  MutexLock lock(mu_);
  auto it = inbox_.find(user);
  if (it == inbox_.end()) return {};
  return it->second;
}

size_t NotificationBus::total_messages() const {
  MutexLock lock(mu_);
  return total_;
}

void NotificationBus::Subscribe(Callback callback) {
  MutexLock lock(mu_);
  callbacks_.push_back(std::move(callback));
}

}  // namespace youtopia::travel
