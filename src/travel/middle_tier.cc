#include "travel/middle_tier.h"

#include "common/string_util.h"
#include "travel/travel_schema.h"

namespace youtopia::travel {

namespace {

/// Flight domain subquery for the request's filters.
std::string FlightDomain(const TravelRequest& request) {
  std::string sql = "fno IN (SELECT fno FROM Flights WHERE dest = " +
                    QuoteSqlString(request.dest);
  if (!request.origin.empty()) {
    sql += " AND origin = " + QuoteSqlString(request.origin);
  }
  if (request.day > 0) sql += " AND day = " + std::to_string(request.day);
  if (request.max_price > 0) {
    sql += " AND price <= " + std::to_string(request.max_price);
  }
  sql += ")";
  return sql;
}

std::string HotelDomain(const TravelRequest& request) {
  std::string sql = "hid IN (SELECT hid FROM Hotels WHERE city = " +
                    QuoteSqlString(request.dest);
  if (request.day > 0) sql += " AND day = " + std::to_string(request.day);
  if (request.max_hotel_price > 0) {
    sql += " AND price <= " + std::to_string(request.max_hotel_price);
  }
  sql += ")";
  return sql;
}

}  // namespace

Result<std::string> TravelService::BuildEntangledSql(
    const TravelRequest& request) {
  if (request.user.empty()) {
    return Status::InvalidArgument("request has no user");
  }
  if (request.dest.empty()) {
    return Status::InvalidArgument("request has no destination");
  }
  if (request.adjacent_seat && request.flight_companions.size() != 1) {
    return Status::InvalidArgument(
        "adjacent-seat coordination requires exactly one companion");
  }
  if (request.want_hotel && request.adjacent_seat) {
    return Status::NotImplemented(
        "combined adjacent-seat and hotel coordination is not offered by "
        "the travel frontend");
  }

  const std::string user_lit = QuoteSqlString(request.user);
  std::string heads;
  std::string where;

  if (request.adjacent_seat) {
    // Seat-level coordination into SeatReservation. The lexicographically
    // smaller traveler sits on the lower-numbered seat so that two
    // independently submitted symmetric requests agree.
    const std::string& companion = request.flight_companions[0];
    const std::string offset =
        request.user < companion ? "seat + 1" : "seat - 1";
    heads = user_lit + ", fno, seat INTO ANSWER " +
            std::string(kSeatReservationTable);
    where = FlightDomain(request);
    where += " AND seat IN (SELECT seat FROM Seats WHERE fno = fno)";
    where += " AND (" + QuoteSqlString(companion) + ", fno, " + offset +
             ") IN ANSWER " + kSeatReservationTable;
  } else {
    heads = user_lit + ", fno INTO ANSWER " + std::string(kReservationTable);
    where = FlightDomain(request);
    for (const std::string& companion : request.flight_companions) {
      where += " AND (" + QuoteSqlString(companion) + ", fno) IN ANSWER " +
               kReservationTable;
    }
  }

  if (request.want_hotel) {
    heads += ", " + user_lit + ", hid INTO ANSWER " +
             std::string(kHotelReservationTable);
    where += " AND " + HotelDomain(request);
    for (const std::string& companion : request.hotel_companions) {
      where += " AND (" + QuoteSqlString(companion) + ", hid) IN ANSWER " +
               kHotelReservationTable;
    }
  }

  return "SELECT " + heads + " WHERE " + where + " CHOOSE 1";
}

Status TravelService::ValidateFriends(
    const std::string& user,
    const std::vector<std::string>& companions) const {
  for (const std::string& companion : companions) {
    if (!friends_.AreFriends(user, companion)) {
      return Status::InvalidArgument(user + " and " + companion +
                                     " are not friends");
    }
  }
  return Status::OK();
}

Result<EntangledHandle> TravelService::SubmitRequest(
    const TravelRequest& request) {
  YOUTOPIA_RETURN_IF_ERROR(
      ValidateFriends(request.user, request.flight_companions));
  YOUTOPIA_RETURN_IF_ERROR(
      ValidateFriends(request.user, request.hotel_companions));
  auto sql = BuildEntangledSql(request);
  if (!sql.ok()) return sql.status();
  return client_->SubmitAs(request.user, sql.value());
}

Status TravelService::SubmitRequestAsync(const TravelRequest& request,
                                         uint64_t session,
                                         ExecutorService::Completion on_done) {
  YOUTOPIA_RETURN_IF_ERROR(
      ValidateFriends(request.user, request.flight_companions));
  YOUTOPIA_RETURN_IF_ERROR(
      ValidateFriends(request.user, request.hotel_companions));
  auto sql = BuildEntangledSql(request);
  if (!sql.ok()) return sql.status();
  if (db_ == nullptr) {
    // Borrowed-client backend (e.g. remote): no executor service to
    // queue on. Submit registers synchronously; the completion contract
    // is preserved by delivering the terminal handle through on_done.
    auto shared_done =
        std::make_shared<ExecutorService::Completion>(std::move(on_done));
    auto handle = client_->SubmitAs(
        request.user, sql.value(),
        [shared_done](const EntangledHandle& done) {
          RunOutcome outcome;
          outcome.entangled = true;
          outcome.handle = done;
          (*shared_done)(std::move(outcome));
        });
    return handle.status();
  }
  StatementTask task;
  task.sql = sql.TakeValue();
  task.owner = request.user;
  task.session = session;
  task.kind = StatementTask::Kind::kRun;
  task.wait_for_answer = true;
  task.on_done = std::move(on_done);
  return db_->executor_service().Submit(std::move(task));
}

Result<std::vector<EntangledHandle>> TravelService::SubmitGroupRequest(
    const std::vector<TravelRequest>& requests) {
  std::vector<std::string> owners;
  std::vector<std::string> statements;
  owners.reserve(requests.size());
  statements.reserve(requests.size());
  for (const TravelRequest& request : requests) {
    YOUTOPIA_RETURN_IF_ERROR(
        ValidateFriends(request.user, request.flight_companions));
    YOUTOPIA_RETURN_IF_ERROR(
        ValidateFriends(request.user, request.hotel_companions));
    auto sql = BuildEntangledSql(request);
    if (!sql.ok()) return sql.status();
    owners.push_back(request.user);
    statements.push_back(sql.TakeValue());
  }
  return client_->SubmitBatchAs(owners, statements);
}

Result<EntangledHandle> TravelService::BookFlightWithFriend(
    const std::string& user, const std::string& friend_name,
    const std::string& dest, int day, int max_price) {
  TravelRequest request;
  request.user = user;
  request.flight_companions = {friend_name};
  request.dest = dest;
  request.day = day;
  request.max_price = max_price;
  return SubmitRequest(request);
}

Result<EntangledHandle> TravelService::BookFlightAndHotelWithFriend(
    const std::string& user, const std::string& friend_name,
    const std::string& dest, int day) {
  TravelRequest request;
  request.user = user;
  request.flight_companions = {friend_name};
  request.hotel_companions = {friend_name};
  request.dest = dest;
  request.day = day;
  request.want_hotel = true;
  return SubmitRequest(request);
}

Result<QueryResult> TravelService::BrowseFlights(const std::string& dest,
                                                 int day, int max_price) {
  std::string sql =
      "SELECT fno, origin, dest, day, price, seats FROM Flights WHERE "
      "dest = " +
      QuoteSqlString(dest);
  if (day > 0) sql += " AND day = " + std::to_string(day);
  if (max_price > 0) sql += " AND price <= " + std::to_string(max_price);
  return client_->Execute(sql);
}

Result<std::vector<std::string>> TravelService::FriendsOnFlight(
    const std::string& user, int64_t fno) {
  auto result = client_->Execute(
      "SELECT traveler FROM Reservation WHERE fno = " + std::to_string(fno));
  if (!result.ok()) return result.status();
  std::vector<std::string> out;
  for (const Tuple& row : result->rows) {
    const std::string& traveler = row.at(0).string_value();
    if (friends_.AreFriends(user, traveler)) out.push_back(traveler);
  }
  return out;
}

Result<EntangledHandle> TravelService::BookFlightDirect(
    const std::string& user, int64_t fno) {
  const std::string sql =
      "SELECT " + QuoteSqlString(user) + ", fno INTO ANSWER " +
      kReservationTable + " WHERE fno IN (SELECT fno FROM Flights WHERE "
      "fno = " + std::to_string(fno) + ") CHOOSE 1";
  return client_->SubmitAs(user, sql);
}

Result<AccountInfo> TravelService::AccountView(const std::string& user) {
  AccountInfo info;
  auto flights = client_->Execute(
      "SELECT fno FROM Reservation WHERE traveler = " + QuoteSqlString(user));
  if (!flights.ok()) return flights.status();
  info.flights = flights.TakeValue();
  auto hotels = client_->Execute(
      "SELECT hid FROM HotelReservation WHERE traveler = " +
      QuoteSqlString(user));
  if (!hotels.ok()) return hotels.status();
  info.hotels = hotels.TakeValue();
  auto seats = client_->Execute(
      "SELECT fno, seat FROM SeatReservation WHERE traveler = " +
      QuoteSqlString(user));
  if (!seats.ok()) return seats.status();
  info.seats = seats.TakeValue();
  return info;
}

namespace {

std::string ConfirmedMessage(const EntangledHandle& handle) {
  std::string message = "Your coordinated booking is confirmed:";
  for (const Tuple& answer : handle.Answers()) {
    message += " " + answer.ToString();
  }
  return message;
}

/// The demo's "Facebook message" for a handle that reached a terminal
/// state (the OnComplete path — `outcome` is never "still waiting").
std::string TerminalMessage(const EntangledHandle& handle,
                            const Status& outcome) {
  switch (outcome.code()) {
    case StatusCode::kOk:
      return ConfirmedMessage(handle);
    case StatusCode::kAborted:
      return "Your booking request was cancelled: " + outcome.ToString();
    case StatusCode::kTimedOut:
      return "Your booking request expired before a partner arrived: " +
             outcome.ToString();
    default:
      return "Your booking request failed: " + outcome.ToString();
  }
}

}  // namespace

void TravelService::NotifyOnCompletion(EntangledHandle handle,
                                       const std::string& user) {
  if (bus_ == nullptr) return;
  NotificationBus* bus = bus_;
  handle.OnComplete([bus, user](const EntangledHandle& done) {
    bus->Publish(user, TerminalMessage(
                           done, done.Outcome().value_or(Status::OK())));
  });
}

Status TravelService::WaitAndNotify(const EntangledHandle& handle,
                                    const std::string& user,
                                    std::chrono::milliseconds timeout) {
  Status outcome = handle.Wait(timeout);
  if (bus_ != nullptr) {
    if (outcome.code() == StatusCode::kTimedOut && !handle.Done()) {
      // The *wait* timed out; the request itself is still in flight.
      bus_->Publish(user, "Your booking request is still pending: " +
                              outcome.ToString());
    } else {
      // Re-read the terminal status: the handle may have completed
      // between Wait timing out and the Done() check above, and the
      // stale wait status would misreport a satisfied booking.
      bus_->Publish(user, TerminalMessage(
                              handle, handle.Outcome().value_or(outcome)));
    }
  }
  return outcome;
}

Status TravelService::EnableInventoryEnforcement() {
  if (db_ == nullptr) {
    return Status::NotImplemented(
        "inventory enforcement installs a coordinator hook; enable it on "
        "the engine hosting the server, not through a remote client");
  }
  Youtopia* db = db_;
  db_->coordinator().SetInstallHook(
      [db](Transaction* txn, TxnManager* txn_manager,
           const MatchResult& match) -> Status {
        for (const auto& [relation, tuple] : match.installed) {
          if (EqualsIgnoreCase(relation, kReservationTable)) {
            // (traveler, fno): consume one seat on the flight.
            const Value& fno = tuple.at(1);
            auto rids = txn_manager->IndexLookup(txn, kFlightsTable, "fno",
                                                 fno);
            if (!rids.ok()) return rids.status();
            if (rids->empty()) {
              return Status::Aborted("no such flight " + fno.ToString());
            }
            auto flight = txn_manager->Get(txn, kFlightsTable, (*rids)[0]);
            if (!flight.ok()) return flight.status();
            const int64_t seats = flight->at(5).int64_value();
            if (seats <= 0) {
              return Status::Aborted("flight " + fno.ToString() +
                                     " is sold out");
            }
            Tuple updated = flight.TakeValue();
            updated.at(5) = Value::Int64(seats - 1);
            YOUTOPIA_RETURN_IF_ERROR(txn_manager->Update(
                txn, kFlightsTable, (*rids)[0], updated));
          } else if (EqualsIgnoreCase(relation, kHotelReservationTable)) {
            // (traveler, hid): consume one room (any day row works —
            // rooms are tracked per hotel on the first row found).
            const Value& hid = tuple.at(1);
            auto rows = txn_manager->Scan(txn, kHotelsTable);
            if (!rows.ok()) return rows.status();
            bool found = false;
            for (const auto& [rid, hotel] : *rows) {
              if (hotel.at(0) != hid) continue;
              found = true;
              const int64_t rooms = hotel.at(4).int64_value();
              if (rooms <= 0) {
                return Status::Aborted("hotel " + hid.ToString() +
                                       " is fully booked");
              }
              Tuple updated = hotel;
              updated.at(4) = Value::Int64(rooms - 1);
              YOUTOPIA_RETURN_IF_ERROR(
                  txn_manager->Update(txn, kHotelsTable, rid, updated));
              break;
            }
            if (!found) {
              return Status::Aborted("no such hotel " + hid.ToString());
            }
          } else if (EqualsIgnoreCase(relation, kSeatReservationTable)) {
            // (traveler, fno, seat): claim the seat by removing it from
            // the open inventory; a vanished row means another group
            // took it and this round must abort.
            const Value& fno = tuple.at(1);
            const Value& seat = tuple.at(2);
            auto rids = txn_manager->IndexLookup(txn, kSeatsTable, "fno",
                                                 fno);
            if (!rids.ok()) return rids.status();
            bool claimed = false;
            for (RowId rid : *rids) {
              auto row = txn_manager->Get(txn, kSeatsTable, rid);
              if (!row.ok()) continue;
              if (row->at(1) == seat) {
                YOUTOPIA_RETURN_IF_ERROR(
                    txn_manager->Delete(txn, kSeatsTable, rid));
                claimed = true;
                break;
              }
            }
            if (!claimed) {
              return Status::Aborted("seat " + seat.ToString() +
                                     " on flight " + fno.ToString() +
                                     " is no longer available");
            }
          }
        }
        return Status::OK();
      });
  return Status::OK();
}

}  // namespace youtopia::travel
