#include "travel/travel_schema.h"

namespace youtopia::travel {

Status CreateTravelSchema(Youtopia* db) {
  const char* kSchemaScript = R"sql(
    CREATE TABLE Flights (
      fno INT NOT NULL,
      origin TEXT NOT NULL,
      dest TEXT NOT NULL,
      day INT NOT NULL,
      price INT NOT NULL,
      seats INT NOT NULL
    );
    CREATE TABLE Airlines (
      fno INT NOT NULL,
      airline TEXT NOT NULL
    );
    CREATE TABLE Hotels (
      hid INT NOT NULL,
      city TEXT NOT NULL,
      day INT NOT NULL,
      price INT NOT NULL,
      rooms INT NOT NULL
    );
    CREATE TABLE Seats (
      fno INT NOT NULL,
      seat INT NOT NULL
    );
    CREATE TABLE Reservation (
      traveler TEXT NOT NULL,
      fno INT NOT NULL
    );
    CREATE TABLE HotelReservation (
      traveler TEXT NOT NULL,
      hid INT NOT NULL
    );
    CREATE TABLE SeatReservation (
      traveler TEXT NOT NULL,
      fno INT NOT NULL,
      seat INT NOT NULL
    );
    CREATE INDEX ON Flights (dest);
    CREATE INDEX ON Flights (fno);
    CREATE INDEX ON Hotels (city);
    CREATE INDEX ON Seats (fno);
    CREATE INDEX ON Reservation (traveler);
    CREATE INDEX ON Reservation (fno);
    CREATE INDEX ON HotelReservation (traveler);
    CREATE INDEX ON SeatReservation (traveler);
  )sql";
  return db->ExecuteScript(kSchemaScript);
}

Status SetupFigure1(Youtopia* db) {
  const char* kFigure1Script = R"sql(
    CREATE TABLE Flights (
      fno INT NOT NULL,
      dest TEXT NOT NULL
    );
    CREATE TABLE Airlines (
      fno INT NOT NULL,
      airline TEXT NOT NULL
    );
    CREATE TABLE Reservation (
      traveler TEXT NOT NULL,
      fno INT NOT NULL
    );
    INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'),
                               (134, 'Paris'), (136, 'Rome');
    INSERT INTO Airlines VALUES (122, 'United'), (123, 'United'),
                                (134, 'Lufthansa'), (136, 'Alitalia');
    CREATE INDEX ON Flights (dest);
    CREATE INDEX ON Reservation (traveler);
  )sql";
  return db->ExecuteScript(kFigure1Script);
}

}  // namespace youtopia::travel
