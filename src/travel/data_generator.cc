#include "travel/data_generator.h"

#include "common/random.h"
#include "common/string_util.h"
#include "travel/travel_schema.h"

namespace youtopia::travel {

Result<GeneratedData> GenerateTravelData(Youtopia* db,
                                         const DataGeneratorConfig& config) {
  Random rng(config.seed);
  GeneratedData generated;

  static const char* kAirlines[] = {"United", "Lufthansa", "Alitalia",
                                    "AirFrance", "Iberia", "Delta"};
  constexpr size_t kNumAirlines = sizeof(kAirlines) / sizeof(kAirlines[0]);

  StorageEngine& storage = db->storage();
  int64_t fno = 100;
  for (const std::string& origin : config.cities) {
    for (const std::string& dest : config.cities) {
      if (origin == dest) continue;
      for (int day = 1; day <= config.days; ++day) {
        for (int k = 0; k < config.flights_per_route_per_day; ++k) {
          const int64_t price =
              rng.NextInRange(config.min_price, config.max_price);
          auto rid = storage.Insert(
              kFlightsTable,
              Tuple({Value::Int64(fno), Value::String(origin),
                     Value::String(dest), Value::Int64(day),
                     Value::Int64(price),
                     Value::Int64(config.seats_per_flight)}));
          if (!rid.ok()) return rid.status();
          auto arid = storage.Insert(
              kAirlinesTable,
              Tuple({Value::Int64(fno),
                     Value::String(
                         kAirlines[rng.NextBelow(kNumAirlines)])}));
          if (!arid.ok()) return arid.status();
          for (int seat = 1; seat <= config.seats_per_flight; ++seat) {
            auto srid = storage.Insert(
                kSeatsTable,
                Tuple({Value::Int64(fno), Value::Int64(seat)}));
            if (!srid.ok()) return srid.status();
            ++generated.seats;
          }
          ++generated.flights;
          ++fno;
        }
      }
    }
  }

  int64_t hid = 500;
  for (const std::string& city : config.cities) {
    for (int h = 0; h < config.hotels_per_city; ++h) {
      for (int day = 1; day <= config.days; ++day) {
        const int64_t price =
            rng.NextInRange(config.min_hotel_price, config.max_hotel_price);
        auto rid = storage.Insert(
            kHotelsTable,
            Tuple({Value::Int64(hid), Value::String(city), Value::Int64(day),
                   Value::Int64(price),
                   Value::Int64(config.rooms_per_hotel)}));
        if (!rid.ok()) return rid.status();
      }
      ++generated.hotels;
      ++hid;
    }
  }
  return generated;
}

}  // namespace youtopia::travel
