#include "travel/data_generator.h"

#include <utility>

#include "common/random.h"
#include "common/string_util.h"
#include "travel/travel_schema.h"

namespace youtopia::travel {

namespace {

/// Accumulates rows for one table into multi-row INSERT statements and
/// runs them through the engine's statement path — not directly into
/// the StorageEngine — so seeded rows are command-logged like any user
/// DML and survive a crash before the first checkpoint. (The original
/// direct `storage.Insert` version left the WAL blind to the dataset:
/// a SIGKILL'd server replayed its log into empty Flights/Seats/Hotels
/// tables and no booking could ever match again.)
class BatchInserter {
 public:
  BatchInserter(Youtopia* db, std::string table)
      : db_(db), table_(std::move(table)) {}

  /// `row_sql` is one parenthesized tuple literal, e.g. "(1, 'Paris')".
  Status Add(std::string row_sql) {
    if (rows_ == 0) {
      sql_ = "INSERT INTO " + table_ + " VALUES ";
    } else {
      sql_ += ", ";
    }
    sql_ += row_sql;
    if (++rows_ >= kRowsPerStatement) return Flush();
    return Status::OK();
  }

  Status Flush() {
    if (rows_ == 0) return Status::OK();
    rows_ = 0;
    auto result = db_->Execute(std::exchange(sql_, std::string()));
    return result.status();
  }

 private:
  /// Bounds statement size; one log record / parse per batch keeps
  /// seeding fast without producing megabyte statements.
  static constexpr size_t kRowsPerStatement = 128;

  Youtopia* db_;
  std::string table_;
  std::string sql_;
  size_t rows_ = 0;
};

std::string Int(int64_t v) { return std::to_string(v); }

}  // namespace

Result<GeneratedData> GenerateTravelData(Youtopia* db,
                                         const DataGeneratorConfig& config) {
  Random rng(config.seed);
  GeneratedData generated;

  static const char* kAirlines[] = {"United", "Lufthansa", "Alitalia",
                                    "AirFrance", "Iberia", "Delta"};
  constexpr size_t kNumAirlines = sizeof(kAirlines) / sizeof(kAirlines[0]);

  BatchInserter flights(db, kFlightsTable);
  BatchInserter airlines(db, kAirlinesTable);
  BatchInserter seats(db, kSeatsTable);
  int64_t fno = 100;
  for (const std::string& origin : config.cities) {
    for (const std::string& dest : config.cities) {
      if (origin == dest) continue;
      for (int day = 1; day <= config.days; ++day) {
        for (int k = 0; k < config.flights_per_route_per_day; ++k) {
          const int64_t price =
              rng.NextInRange(config.min_price, config.max_price);
          YOUTOPIA_RETURN_IF_ERROR(flights.Add(
              "(" + Int(fno) + ", " + QuoteSqlString(origin) + ", " +
              QuoteSqlString(dest) + ", " + Int(day) + ", " + Int(price) +
              ", " + Int(config.seats_per_flight) + ")"));
          YOUTOPIA_RETURN_IF_ERROR(airlines.Add(
              "(" + Int(fno) + ", " +
              QuoteSqlString(kAirlines[rng.NextBelow(kNumAirlines)]) + ")"));
          for (int seat = 1; seat <= config.seats_per_flight; ++seat) {
            YOUTOPIA_RETURN_IF_ERROR(
                seats.Add("(" + Int(fno) + ", " + Int(seat) + ")"));
            ++generated.seats;
          }
          ++generated.flights;
          ++fno;
        }
      }
    }
  }
  YOUTOPIA_RETURN_IF_ERROR(flights.Flush());
  YOUTOPIA_RETURN_IF_ERROR(airlines.Flush());
  YOUTOPIA_RETURN_IF_ERROR(seats.Flush());

  BatchInserter hotels(db, kHotelsTable);
  int64_t hid = 500;
  for (const std::string& city : config.cities) {
    for (int h = 0; h < config.hotels_per_city; ++h) {
      for (int day = 1; day <= config.days; ++day) {
        const int64_t price =
            rng.NextInRange(config.min_hotel_price, config.max_hotel_price);
        YOUTOPIA_RETURN_IF_ERROR(hotels.Add(
            "(" + Int(hid) + ", " + QuoteSqlString(city) + ", " + Int(day) +
            ", " + Int(price) + ", " + Int(config.rooms_per_hotel) + ")"));
      }
      ++generated.hotels;
      ++hid;
    }
  }
  YOUTOPIA_RETURN_IF_ERROR(hotels.Flush());
  return generated;
}

}  // namespace youtopia::travel
