#include "travel/friend_graph.h"

#include "common/random.h"

namespace youtopia::travel {

void FriendGraph::AddUser(const std::string& user) { adjacency_[user]; }

void FriendGraph::AddFriendship(const std::string& a, const std::string& b) {
  if (a == b) return;
  const bool inserted = adjacency_[a].insert(b).second;
  adjacency_[b].insert(a);
  if (inserted) ++edge_count_;
}

bool FriendGraph::AreFriends(const std::string& a,
                             const std::string& b) const {
  auto it = adjacency_.find(a);
  return it != adjacency_.end() && it->second.count(b) > 0;
}

std::vector<std::string> FriendGraph::FriendsOf(
    const std::string& user) const {
  auto it = adjacency_.find(user);
  if (it == adjacency_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

std::vector<std::string> FriendGraph::Users() const {
  std::vector<std::string> out;
  out.reserve(adjacency_.size());
  for (const auto& [user, friends] : adjacency_) out.push_back(user);
  return out;
}

FriendGraph FriendGraph::Random(size_t n, double p, uint64_t seed) {
  // Qualified: the method name shadows the youtopia::Random class here.
  ::youtopia::Random rng(seed);
  FriendGraph graph;
  std::vector<std::string> users;
  users.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    users.push_back("user" + std::to_string(i));
    graph.AddUser(users.back());
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.NextBool(p)) graph.AddFriendship(users[i], users[j]);
    }
  }
  return graph;
}

FriendGraph FriendGraph::Clique(const std::vector<std::string>& users) {
  FriendGraph graph;
  for (size_t i = 0; i < users.size(); ++i) {
    graph.AddUser(users[i]);
    for (size_t j = i + 1; j < users.size(); ++j) {
      graph.AddFriendship(users[i], users[j]);
    }
  }
  return graph;
}

}  // namespace youtopia::travel
