#ifndef YOUTOPIA_TRAVEL_DATA_GENERATOR_H_
#define YOUTOPIA_TRAVEL_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/youtopia.h"

namespace youtopia::travel {

/// Parameters of the synthetic travel database. The demo ran against the
/// authors' private travel dataset; this generator is the documented
/// substitution (DESIGN.md §2) — it produces the same *shape* of data
/// the coordination workload exercises: many flights per (origin, dest,
/// day) so pairwise constraints have multiple groundings, hotels per
/// city, and per-flight seat inventories for the adjacent-seat scenario.
struct DataGeneratorConfig {
  uint64_t seed = 7;
  std::vector<std::string> cities = {"NewYork", "Paris",  "Rome",
                                     "London",  "Berlin", "Madrid"};
  /// Flights generated per ordered city pair per day.
  int flights_per_route_per_day = 3;
  int days = 5;
  int min_price = 180;
  int max_price = 1400;
  int seats_per_flight = 6;
  /// Hotels per city; each hotel has `days` rows? No — one row per
  /// hotel; `rooms` bounds concurrent bookings.
  int hotels_per_city = 4;
  int min_hotel_price = 60;
  int max_hotel_price = 420;
  int rooms_per_hotel = 8;
};

/// Summary of what was generated.
struct GeneratedData {
  size_t flights = 0;
  size_t hotels = 0;
  size_t seats = 0;
};

/// Populates Flights/Airlines/Hotels/Seats. Requires CreateTravelSchema
/// to have run. Deterministic under `config.seed`.
Result<GeneratedData> GenerateTravelData(Youtopia* db,
                                         const DataGeneratorConfig& config);

}  // namespace youtopia::travel

#endif  // YOUTOPIA_TRAVEL_DATA_GENERATOR_H_
