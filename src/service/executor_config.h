#ifndef YOUTOPIA_SERVICE_EXECUTOR_CONFIG_H_
#define YOUTOPIA_SERVICE_EXECUTOR_CONFIG_H_

#include <chrono>
#include <cstddef>

namespace youtopia {

/// Configuration of the `ExecutorService` — the submission queue and
/// worker pool that drive the statement path. Kept in its own header so
/// `YoutopiaConfig` can embed it without pulling the service (which
/// depends on the whole server layer) into every translation unit.
struct ExecutorServiceConfig {
  /// Worker threads draining the submission queue. 0 (the default)
  /// means no pool: submissions execute inline in the submitting
  /// thread with blocking lock waits — exactly the seed's synchronous
  /// statement path.
  size_t num_workers = 0;

  /// Upper bound on tasks admitted but not yet completed (queued,
  /// requeued on a lock conflict, or executing). `Submit` blocks for
  /// space — backpressure toward producers — while `TrySubmit` rejects.
  /// Ignored in inline mode (a submission is executed before `Submit`
  /// returns, so the queue never holds anything).
  size_t queue_capacity = 1024;

  /// Admission-control high-water mark (design decision #12). 0 (the
  /// default) disables shedding: `Submit` blocks for space exactly as
  /// before. With a pool and a non-zero mark, a submission arriving
  /// while `queue_depth >= admission_high_water` is rejected
  /// immediately with the retryable `kOverloaded` status instead of
  /// queueing behind work it would only time out waiting for. Shedding
  /// happens strictly before parsing, planning, locking or coordinator
  /// registration, so a shed statement has had no side effect and is
  /// always safe to retry. Ignored in inline mode.
  size_t admission_high_water = 0;

  /// Conflict-requeue budget applied to tasks that do not carry their
  /// own statement timeout: a worker whose try-lock loses keeps
  /// requeuing (with exponential backoff) until the task has been
  /// conflicting for this long, then fails it with kTimedOut. Chosen to
  /// match the lock manager's blocking-wait default, so pool execution
  /// fails no earlier than seed inline execution did.
  std::chrono::milliseconds default_statement_timeout{500};
};

}  // namespace youtopia

#endif  // YOUTOPIA_SERVICE_EXECUTOR_CONFIG_H_
