#include "service/executor_service.h"

#include <algorithm>
#include <atomic>

#include "common/backoff.h"

namespace youtopia {

namespace {

uint64_t NowMicrosSince(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

double ExecutorService::Stats::WorkerUtilization() const {
  if (workers == 0 || uptime_micros == 0) return 0.0;
  const double denom =
      static_cast<double>(workers) * static_cast<double>(uptime_micros);
  return std::min(1.0, static_cast<double>(busy_micros) / denom);
}

uint64_t ExecutorService::AllocateSessionId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

ExecutorService::ExecutorService(Youtopia* db, ExecutorServiceConfig config)
    : db_(db),
      config_(config),
      started_at_(std::chrono::steady_clock::now()) {
  stats_.workers = config_.num_workers;
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecutorService::~ExecutorService() { Shutdown(); }

void ExecutorService::Shutdown() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
    work_cv_.NotifyAll();
    space_cv_.NotifyAll();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Status ExecutorService::Submit(StatementTask task) {
  if (config_.num_workers == 0) {
    {
      MutexLock lock(mu_);
      if (stopping_) return Status::Aborted("executor service shut down");
      ++stats_.submitted;
      // Count the inline execution as in-flight so Drain's contract —
      // every admitted task finished — holds with concurrent
      // submitting threads too.
      ++stats_.queue_depth;
      stats_.peak_queue_depth =
          std::max(stats_.peak_queue_depth, stats_.queue_depth);
      ++stats_.executing;
    }
    TaskState inline_state;
    inline_state.task = std::move(task);
    RunInline(std::move(inline_state));
    return Status::OK();
  }
  MutexLock lock(mu_);
  // Admission control: shed before blocking for space. The high-water
  // check precedes every side effect (parse/plan/locks/registration),
  // which is what makes kOverloaded safe for callers to retry.
  if (config_.admission_high_water > 0 && !stopping_ &&
      stats_.queue_depth >= config_.admission_high_water) {
    ++stats_.shed;
    return Status::Overloaded("executor queue above admission high-water");
  }
  space_cv_.Wait(mu_, [this] {
    return stopping_ || stats_.queue_depth < config_.queue_capacity;
  });
  if (stopping_) return Status::Aborted("executor service shut down");
  EnqueueLocked(std::move(task));
  return Status::OK();
}

Status ExecutorService::TrySubmit(StatementTask task) {
  if (config_.num_workers == 0) return Submit(std::move(task));
  MutexLock lock(mu_);
  if (stopping_) return Status::Aborted("executor service shut down");
  if (config_.admission_high_water > 0 &&
      stats_.queue_depth >= config_.admission_high_water) {
    ++stats_.shed;
    return Status::Overloaded("executor queue above admission high-water");
  }
  if (stats_.queue_depth >= config_.queue_capacity) {
    ++stats_.rejected;
    return Status::TimedOut("submission queue full");
  }
  EnqueueLocked(std::move(task));
  return Status::OK();
}

std::future<Result<RunOutcome>> ExecutorService::SubmitWithFuture(
    StatementTask task) {
  auto promise = std::make_shared<std::promise<Result<RunOutcome>>>();
  auto future = promise->get_future();
  task.on_done = [promise](Result<RunOutcome> outcome) {
    promise->set_value(std::move(outcome));
  };
  Status admitted = Submit(std::move(task));
  if (!admitted.ok()) {
    // The task never entered the queue; deliver the rejection through
    // the same channel the caller is already watching.
    promise->set_value(Result<RunOutcome>(admitted));
  }
  return future;
}

Status ExecutorService::Drain(std::chrono::milliseconds timeout) {
  MutexLock lock(mu_);
  const bool drained = space_cv_.WaitFor(
      mu_, timeout, [this] { return stats_.queue_depth == 0; });
  return drained ? Status::OK()
                 : Status::TimedOut("executor queue not drained in time");
}

ExecutorService::Stats ExecutorService::stats() const {
  MutexLock lock(mu_);
  Stats snapshot = stats_;
  snapshot.uptime_micros = NowMicrosSince(started_at_);
  return snapshot;
}

void ExecutorService::EnqueueLocked(StatementTask task) {
  ++stats_.submitted;
  ++stats_.queue_depth;
  stats_.peak_queue_depth =
      std::max(stats_.peak_queue_depth, stats_.queue_depth);
  const uint64_t session = task.session;
  SessionState& state = sessions_[session];
  TaskState queued;
  queued.task = std::move(task);
  state.tasks.push_back(std::move(queued));
  if (!state.scheduled && !state.delayed) {
    state.scheduled = true;
    ready_.push_back(session);
    work_cv_.NotifyOne();
  }
}

void ExecutorService::PromoteDueLocked(
    std::chrono::steady_clock::time_point now) {
  while (!delayed_.empty() && delayed_.top().wake <= now) {
    const uint64_t session = delayed_.top().session;
    delayed_.pop();
    auto it = sessions_.find(session);
    if (it == sessions_.end() || !it->second.delayed) continue;
    it->second.delayed = false;
    it->second.scheduled = true;
    ready_.push_back(session);
  }
}

void ExecutorService::FinishTaskLocked(uint64_t session) {
  ++stats_.executed;
  --stats_.queue_depth;
  auto it = sessions_.find(session);
  if (it != sessions_.end()) {
    SessionState& state = it->second;
    state.scheduled = false;
    if (state.tasks.empty()) {
      sessions_.erase(it);
    } else {
      state.scheduled = true;
      ready_.push_back(session);
      work_cv_.NotifyOne();
    }
  }
  space_cv_.NotifyAll();
  if (stopping_ && stats_.queue_depth == 0) work_cv_.NotifyAll();
}

void ExecutorService::WorkerLoop() {
  MutexLock lock(mu_);
  while (true) {
    uint64_t session = 0;
    while (true) {
      PromoteDueLocked(std::chrono::steady_clock::now());
      if (!ready_.empty()) {
        session = ready_.front();
        ready_.pop_front();
        break;
      }
      if (stopping_ && stats_.queue_depth == 0) return;
      if (!delayed_.empty()) {
        work_cv_.WaitUntil(mu_, delayed_.top().wake);
      } else {
        work_cv_.Wait(mu_);
      }
    }
    // The session stays `scheduled` while its front task executes, so
    // no other worker can touch it — per-session FIFO by construction.
    SessionState& state = sessions_[session];
    TaskState ts = std::move(state.tasks.front());
    state.tasks.pop_front();
    ++stats_.executing;
    lock.Unlock();

    const auto exec_start = std::chrono::steady_clock::now();
    AttemptOutcome out = Attempt(&ts, LockWait::kTry);
    const uint64_t exec_micros = NowMicrosSince(exec_start);

    if (out.kind == AttemptOutcome::Kind::kConflict) {
      const auto now = std::chrono::steady_clock::now();
      if (!ts.deadline_armed) {
        const auto budget = ts.task.statement_timeout.count() > 0
                                ? ts.task.statement_timeout
                                : config_.default_statement_timeout;
        ts.conflict_deadline = now + budget;
        ts.deadline_armed = true;
      }
      if (now >= ts.conflict_deadline) {
        // Budget exhausted: surface the conflict as the blocking path
        // would have after its own deadline.
        out.kind = AttemptOutcome::Kind::kFinished;
        out.result = Result<RunOutcome>(ts.last_conflict);
      } else {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                ts.conflict_deadline - now);
        const auto pause = std::min(
            ExponentialBackoff(ts.task.retry_interval,
                               ts.task.retry_max_interval,
                               ts.conflict_attempts),
            std::max(remaining, std::chrono::milliseconds(1)));
        ++ts.conflict_attempts;
        lock.Lock();
        ++stats_.lock_requeues;
        --stats_.executing;
        stats_.busy_micros += exec_micros;
        SessionState& s = sessions_[session];
        // Front of the queue: the conflicted task retries before the
        // session's next task — FIFO survives the requeue.
        s.tasks.push_front(std::move(ts));
        s.scheduled = false;
        s.delayed = true;
        delayed_.push(DelayedEntry{now + pause, session});
        // The new wake time may be earlier than what sleeping workers
        // are waiting for.
        work_cv_.NotifyOne();
        continue;
      }
    }

    if (out.kind == AttemptOutcome::Kind::kFinished && ts.task.on_done) {
      ts.task.on_done(std::move(*out.result));
    }
    lock.Lock();
    if (out.kind == AttemptOutcome::Kind::kParked) ++stats_.entangled_parked;
    --stats_.executing;
    stats_.busy_micros += exec_micros;
    FinishTaskLocked(session);
  }
}

ExecutorService::AttemptOutcome ExecutorService::Attempt(TaskState* ts,
                                                         LockWait lock_wait) {
  using Kind = StatementTask::Kind;
  AttemptOutcome out;
  StatementTask& task = ts->task;

  if (task.kind == Kind::kScript) {
    if (!ts->script_parsed) {
      auto parts = Parser::ParseScriptParts(task.sql);
      if (!parts.ok()) {
        out.result = Result<RunOutcome>(parts.status());
        return out;
      }
      ts->script = std::move(*parts);
      ts->script_parsed = true;
    }
    // Partial-execution semantics: statements run in order, the first
    // failure stops the script. A conflict requeues the task with
    // `script_index` (and the step's prepared plan) kept, so completed
    // statements never re-run and the conflicted one is not re-planned.
    while (ts->script_index < ts->script.size()) {
      if (ts->script_prepared == nullptr) {
        // Lazy per-step prepare, through the plan cache — planned only
        // now, after every earlier statement (possibly DDL this one
        // depends on) has executed.
        auto& part = ts->script[ts->script_index];
        auto prepared = db_->PrepareParsedCached(std::move(part.stmt),
                                                 std::move(part.text));
        if (!prepared.ok()) {
          out.result = Result<RunOutcome>(prepared.status());
          return out;
        }
        ts->script_prepared = prepared.TakeValue();
      }
      bool lock_conflict = false;
      auto result = db_->ExecutePrepared(*ts->script_prepared, lock_wait,
                                         &lock_conflict);
      ts->last_was_lock_conflict = lock_conflict;
      if (!result.ok()) {
        if (lock_conflict && lock_wait == LockWait::kTry) {
          ts->last_conflict = result.status();
          out.kind = AttemptOutcome::Kind::kConflict;
          return out;
        }
        out.result = Result<RunOutcome>(result.status());
        return out;
      }
      ts->script_prepared = nullptr;
      ++ts->script_index;
      // Fresh statement, fresh conflict budget.
      ts->conflict_attempts = 0;
      ts->deadline_armed = false;
    }
    out.result = Result<RunOutcome>(RunOutcome{});
    return out;
  }

  if (ts->prepared == nullptr) {
    auto prepared = db_->Prepare(task.sql);
    if (!prepared.ok()) {
      out.result = Result<RunOutcome>(prepared.status());
      return out;
    }
    ts->prepared = prepared.TakeValue();
  }
  const PreparedStatement& prepared = *ts->prepared;

  if (prepared.entangled) {
    if (task.kind == Kind::kExecute) {
      out.result = Result<RunOutcome>(Status::InvalidArgument(
          "entangled query submitted to Execute(); use Submit() or Run()"));
      return out;
    }
    auto handle = db_->SubmitPrepared(prepared, task.owner);
    if (!handle.ok()) {
      out.result = Result<RunOutcome>(handle.status());
      return out;
    }
    if (task.wait_for_answer && task.on_done) {
      // Park: the continuation rides the coordinator's completion
      // callback instead of a worker. It fires from whichever thread
      // eventually closes the group (or immediately, right here, when
      // the submission itself closed one).
      Completion on_done = std::move(task.on_done);
      task.on_done = nullptr;
      handle->OnComplete([on_done](const EntangledHandle& done) {
        RunOutcome outcome;
        outcome.entangled = true;
        outcome.handle = done;
        on_done(Result<RunOutcome>(std::move(outcome)));
      });
      out.kind = AttemptOutcome::Kind::kParked;
      return out;
    }
    RunOutcome outcome;
    outcome.entangled = true;
    outcome.handle = handle.TakeValue();
    out.result = Result<RunOutcome>(std::move(outcome));
    return out;
  }

  bool lock_conflict = false;
  auto result = db_->ExecutePrepared(prepared, lock_wait, &lock_conflict);
  ts->last_was_lock_conflict = lock_conflict;
  if (!result.ok()) {
    if (lock_conflict && lock_wait == LockWait::kTry) {
      ts->last_conflict = result.status();
      out.kind = AttemptOutcome::Kind::kConflict;
      return out;
    }
    out.result = Result<RunOutcome>(result.status());
    return out;
  }
  RunOutcome outcome;
  outcome.result = result.TakeValue();
  out.result = Result<RunOutcome>(std::move(outcome));
  return out;
}

void ExecutorService::RunInline(TaskState ts) {
  while (true) {
    const auto exec_start = std::chrono::steady_clock::now();
    AttemptOutcome out = Attempt(&ts, LockWait::kBlock);
    const uint64_t exec_micros = NowMicrosSince(exec_start);
    if (out.kind == AttemptOutcome::Kind::kParked) {
      MutexLock lock(mu_);
      ++stats_.executed;
      ++stats_.entangled_parked;
      --stats_.queue_depth;
      --stats_.executing;
      stats_.busy_micros += exec_micros;
      space_cv_.NotifyAll();
      return;
    }
    Result<RunOutcome>& result = *out.result;
    // The blocking client retry loop, with one tightening: only
    // *acquire-stage* lock conflicts retry (last_was_lock_conflict —
    // the statement provably has no side effects yet). A kTimedOut
    // from after execution (the retrigger path) or from an entangled
    // submission is never re-driven — re-driving committed DML would
    // double-execute it. The retry bookkeeping lives in the TaskState
    // conflict fields, which Attempt resets per completed script
    // statement — each statement gets its own budget, exactly like the
    // worker path.
    if (!result.ok() && result.status().code() == StatusCode::kTimedOut &&
        ts.task.statement_timeout.count() > 0 && ts.last_was_lock_conflict) {
      const auto now = std::chrono::steady_clock::now();
      if (!ts.deadline_armed) {
        ts.conflict_deadline = now + ts.task.statement_timeout;
        ts.deadline_armed = true;
      }
      if (now < ts.conflict_deadline) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                ts.conflict_deadline - now);
        std::this_thread::sleep_for(std::min(
            ExponentialBackoff(ts.task.retry_interval,
                               ts.task.retry_max_interval,
                               ts.conflict_attempts),
            remaining));
        ++ts.conflict_attempts;
        {
          MutexLock lock(mu_);
          stats_.busy_micros += exec_micros;
        }
        continue;
      }
    }
    if (ts.task.on_done) ts.task.on_done(std::move(result));
    MutexLock lock(mu_);
    ++stats_.executed;
    --stats_.queue_depth;
    --stats_.executing;
    stats_.busy_micros += exec_micros;
    space_cv_.NotifyAll();
    return;
  }
}

}  // namespace youtopia
