#ifndef YOUTOPIA_SERVICE_EXECUTOR_SERVICE_H_
#define YOUTOPIA_SERVICE_EXECUTOR_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "server/youtopia.h"
#include "service/executor_config.h"

namespace youtopia {

/// One statement handed to the executor service: sql + owner tag +
/// session (the FIFO domain) + completion continuation. The middle-tier
/// model of the paper in miniature — a network thread packages an end
/// user's request as a task, submits it, and is free; completion is
/// pushed through `on_done`.
struct StatementTask {
  /// Which synchronous entry point the task mirrors.
  enum class Kind {
    /// Auto-detect: regular statements execute, entangled SELECTs
    /// register with the coordinator (Youtopia::Run).
    kRun,
    /// Regular only; entangled statements fail with InvalidArgument
    /// (Youtopia::Execute).
    kExecute,
    /// ';'-separated batch of regular statements, first failure stops
    /// the script (Youtopia::ExecuteScript). A mid-script lock conflict
    /// requeues the task with its progress kept, so already-executed
    /// statements never re-run.
    kScript,
  };

  /// Fired exactly once per task, from a pool worker (or, for parked
  /// entangled tasks, from whichever thread completes the coordination;
  /// in inline mode, from the submitting thread). For regular
  /// statements the argument carries the execution result; for
  /// entangled statements it carries the handle — pending at delivery
  /// unless `wait_for_answer` deferred delivery to coordination
  /// completion. Runs with no service locks held, so it may submit
  /// follow-up tasks; it should stay short, since its session's next
  /// task is not dispatched until it returns.
  using Completion = std::function<void(Result<RunOutcome>)>;

  std::string sql;
  /// Owner tag attached to entangled submissions.
  std::string owner;
  /// FIFO domain: tasks sharing a session id execute one at a time, in
  /// submission order, regardless of pool size; tasks of different
  /// sessions run in parallel. Use `AllocateSessionId` for a fresh
  /// domain per logical connection.
  uint64_t session = 0;
  Kind kind = Kind::kRun;

  /// Lock-conflict retry budget, mirroring ClientOptions: a statement
  /// that loses a lock conflict is requeued (workers) or retried after
  /// a sleep (inline) on the ExponentialBackoff schedule until this
  /// much time has passed since its first conflict. <= 0 means no
  /// caller-requested retries; pool workers then still get the
  /// service's `default_statement_timeout` conflict budget, so a
  /// try-lock pool is never flakier than the seed's blocking waits.
  std::chrono::milliseconds statement_timeout{0};
  std::chrono::milliseconds retry_interval{1};
  std::chrono::milliseconds retry_max_interval{64};

  /// Entangled statements only: defer `on_done` until the coordination
  /// reaches a terminal state. The task is parked in the coordinator
  /// via EntangledHandle::OnComplete — it holds no worker and does not
  /// block its session's later tasks while waiting for partners.
  bool wait_for_answer = false;

  Completion on_done;
};

/// The executor service — a bounded multi-producer submission queue of
/// `StatementTask`s drained by a worker pool, driving the whole
/// statement path (design decision #5). This is the paper's middle-tier
/// shape: a few server threads coordinate entangled work on behalf of
/// many end users, instead of one caller thread per in-flight
/// statement.
///
/// Ordering guarantee: per-session FIFO. Tasks that share a session id
/// are executed serially in submission order (a requeued conflict
/// retries before the session's next task runs); tasks of different
/// sessions execute in parallel across workers. An entangled task
/// occupies its session slot only until it is registered with the
/// coordinator — its answer may arrive much later, and making later
/// statements wait for it would deadlock symmetric coordinations.
///
/// Workers never sleep mid-statement: the acquire-locks stage uses the
/// lock manager's try-lock surface, and a conflict releases the worker
/// by requeuing the task with an exponential-backoff wake time (the
/// same `ExponentialBackoff` schedule as the blocking client retry
/// loop). Entangled waits park in the coordinator via OnComplete.
///
/// `num_workers = 0` (the default) keeps the seed's synchronous
/// semantics exactly: `Submit` executes the task inline in the
/// submitting thread with blocking lock waits and returns after the
/// continuation has fired.
class ExecutorService {
 public:
  using Completion = StatementTask::Completion;

  /// Counters exposed to the admin snapshot and the workload report.
  struct Stats {
    /// Pool size (0 = inline mode).
    size_t workers = 0;
    /// Tasks admitted and not yet finished: waiting in session queues,
    /// gated by a conflict backoff, or executing on a worker.
    size_t queue_depth = 0;
    size_t peak_queue_depth = 0;
    /// Of queue_depth, tasks currently executing on a worker.
    size_t executing = 0;
    size_t submitted = 0;
    /// Tasks that finished the pipeline (continuation fired or parked).
    size_t executed = 0;
    /// Conflict requeues: a worker's try-lock lost and the task went
    /// back to the front of its session queue with a backoff gate.
    size_t lock_requeues = 0;
    /// Entangled tasks whose continuation was deferred to coordination
    /// completion (wait_for_answer) — parked without holding a worker.
    size_t entangled_parked = 0;
    /// TrySubmit calls rejected on a full queue.
    size_t rejected = 0;
    /// Submissions shed with kOverloaded at the admission high-water
    /// mark — rejected before any side effect (design decision #12).
    size_t shed = 0;
    /// Wall time workers (or inline submitters) spent executing tasks.
    uint64_t busy_micros = 0;
    /// Wall time since the service started.
    uint64_t uptime_micros = 0;

    /// Fraction of worker wall-time spent executing, in [0, 1];
    /// 0 in inline mode.
    double WorkerUtilization() const;
  };

  ExecutorService(Youtopia* db, ExecutorServiceConfig config);
  ~ExecutorService();

  ExecutorService(const ExecutorService&) = delete;
  ExecutorService& operator=(const ExecutorService&) = delete;

  /// Enqueues `task`. With workers, blocks while the queue is at
  /// capacity (backpressure) and returns once the task is admitted;
  /// kAborted after Shutdown. When `admission_high_water` is set and
  /// the queue is above it, returns kOverloaded immediately instead of
  /// queueing — the task has had no side effect and may be retried. In
  /// inline mode, executes the task to completion in the calling
  /// thread before returning.
  Status Submit(StatementTask task);

  /// Non-blocking Submit: kTimedOut when the queue is full (the caller
  /// may retry — this is transient backpressure, not failure). Inline
  /// mode never rejects.
  Status TrySubmit(StatementTask task);

  /// Submit with the continuation bridged to a future — the one-liner
  /// async surface. Any `on_done` already set on `task` is replaced.
  std::future<Result<RunOutcome>> SubmitWithFuture(StatementTask task);

  /// Blocks until every admitted task has finished its pipeline
  /// (parked entangled tasks count as finished — their coordinations
  /// may still be pending) or `timeout` passes (kTimedOut).
  Status Drain(std::chrono::milliseconds timeout);

  /// Stops accepting tasks, drains everything already admitted
  /// (conflict deadlines still apply, so shutdown is bounded) and joins
  /// the workers. Idempotent; the destructor calls it.
  void Shutdown();

  Stats stats() const;
  const ExecutorServiceConfig& config() const { return config_; }
  size_t num_workers() const { return config_.num_workers; }

  /// Process-wide unique session id — a fresh FIFO domain.
  static uint64_t AllocateSessionId();

 private:
  /// A queued task plus its execution state, kept across conflict
  /// requeues so nothing is re-parsed or re-planned per attempt.
  struct TaskState {
    StatementTask task;
    /// Parse + plan output (single-statement kinds), resolved through
    /// the engine's plan cache on first execution and shared from
    /// there — the plan itself is immutable; all retry state lives
    /// below in this struct.
    PreparedStatementPtr prepared;
    /// kScript: the whole script is *parsed* up front (a syntax error
    /// anywhere rejects it before anything executes), but each
    /// statement is *prepared* — planned against the catalog, through
    /// the cache — only when reached: a statement may reference a table
    /// an earlier script statement creates. `script_index` is the
    /// resume point after a mid-script requeue; `script_prepared` keeps
    /// the current step's plan across requeues (its AST has been moved
    /// out of `script`).
    std::vector<Parser::ScriptPart> script;
    PreparedStatementPtr script_prepared;
    bool script_parsed = false;
    size_t script_index = 0;
    /// Conflict-retry bookkeeping for the statement currently being
    /// driven (reset when a script statement completes).
    size_t conflict_attempts = 0;
    bool deadline_armed = false;
    std::chrono::steady_clock::time_point conflict_deadline{};
    Status last_conflict;
    /// True iff the most recent ExecutePrepared failure was an
    /// acquire-stage lock conflict (the lock_conflict out-flag). Gates
    /// the inline retry loop: a kTimedOut from *after* execution (the
    /// retrigger path) must never re-drive the statement — re-driving
    /// would double-execute committed DML.
    bool last_was_lock_conflict = false;
  };

  /// Outcome of driving a task as far as it can go in one pass.
  struct AttemptOutcome {
    enum class Kind {
      kFinished,  ///< `result` is set; fire the continuation.
      kParked,    ///< Continuation handed to the coordinator.
      kConflict,  ///< kTry lock conflict; requeue (state in TaskState).
    };
    Kind kind = Kind::kFinished;
    std::optional<Result<RunOutcome>> result;
  };

  /// One statement-pipeline pass over `ts` (parse → plan → acquire
  /// locks → execute / register), resuming wherever the previous pass
  /// stopped. Called with no service lock held.
  AttemptOutcome Attempt(TaskState* ts, LockWait lock_wait);

  /// Inline-mode execution: blocking locks, sleep-based conflict
  /// retries per the task's own policy — the seed's synchronous
  /// semantics.
  void RunInline(TaskState ts);

  void WorkerLoop();

  /// Admits `task` into its session queue.
  void EnqueueLocked(StatementTask task) REQUIRES(mu_);

  /// Moves sessions whose backoff gate has passed onto the ready list.
  void PromoteDueLocked(std::chrono::steady_clock::time_point now)
      REQUIRES(mu_);

  /// Books completion of the task a worker just finished and schedules
  /// the session's next task if any.
  void FinishTaskLocked(uint64_t session) REQUIRES(mu_);

  Youtopia* db_;
  const ExecutorServiceConfig config_;
  const std::chrono::steady_clock::time_point started_at_;

  /// Rank kExecutorService: held only around queue bookkeeping — every
  /// Attempt/RunInline execution pass runs with mu_ released, so the
  /// entire engine lock order (coordinator, WAL, storage) nests inside
  /// tasks without ever seeing this mutex held.
  mutable Mutex mu_{LockRank::kExecutorService, "executor_service"};
  /// Wakes workers (new ready session, earlier backoff wake, shutdown).
  CondVar work_cv_;
  /// Wakes producers blocked on capacity and Drain waiters.
  CondVar space_cv_;

  /// Per-session FIFO queue. A session with queued tasks is in exactly
  /// one of three states: on `ready_` or executing (`scheduled`), or
  /// gated by a conflict backoff (`delayed`). Entries are erased when
  /// their queue empties, so the map tracks live sessions only.
  struct SessionState {
    std::deque<TaskState> tasks;
    bool scheduled = false;
    bool delayed = false;
  };
  std::map<uint64_t, SessionState> sessions_ GUARDED_BY(mu_);
  std::deque<uint64_t> ready_ GUARDED_BY(mu_);
  /// Min-heap of backoff wake times for delayed sessions.
  struct DelayedEntry {
    std::chrono::steady_clock::time_point wake;
    uint64_t session = 0;
    bool operator>(const DelayedEntry& other) const {
      return wake > other.wake;
    }
  };
  std::priority_queue<DelayedEntry, std::vector<DelayedEntry>,
                      std::greater<DelayedEntry>>
      delayed_ GUARDED_BY(mu_);

  bool stopping_ GUARDED_BY(mu_) = false;
  Stats stats_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_SERVICE_EXECUTOR_SERVICE_H_
