#include "common/backoff.h"

#include <algorithm>

namespace youtopia {

std::chrono::milliseconds ExponentialBackoff(std::chrono::milliseconds interval,
                                             std::chrono::milliseconds cap,
                                             size_t completed_attempts) {
  const auto pause = std::max(interval, std::chrono::milliseconds(1));
  const auto ceiling = std::max(cap, pause);
  auto backoff = pause;
  for (size_t i = 0; i < completed_attempts && backoff < ceiling; ++i) {
    backoff *= 2;
  }
  return std::min(backoff, ceiling);
}

}  // namespace youtopia
