#ifndef YOUTOPIA_COMMON_LOGGING_H_
#define YOUTOPIA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace youtopia {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to
/// kWarning so library users see nothing unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction. When `fatal` the
/// destructor aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

/// Swallows the stream when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define YOUTOPIA_LOG(level)                                              \
  if (::youtopia::LogLevel::level < ::youtopia::GetLogLevel()) {         \
  } else                                                                 \
    ::youtopia::internal_logging::LogMessage(::youtopia::LogLevel::level, \
                                             __FILE__, __LINE__)         \
        .stream()

/// Fatal invariant check: prints and aborts. Used only for internal
/// programming errors, never for user input (which returns Status).
#define YOUTOPIA_CHECK(cond)                                          \
  if (cond) {                                                         \
  } else                                                              \
    ::youtopia::internal_logging::LogMessage(                         \
        ::youtopia::LogLevel::kError, __FILE__, __LINE__,             \
        /*fatal=*/true)                                               \
        .stream()                                                     \
        << "CHECK failed: " #cond " "

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_LOGGING_H_
