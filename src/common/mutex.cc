#include "common/mutex.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

// The runtime lock-rank validator (design decision #9). Compiled in by
// default; -DYOUTOPIA_LOCK_RANK_CHECKS=0 (CMake option OFF) strips it
// for perf-measurement builds. When compiled in, the environment
// variable YOUTOPIA_LOCK_RANK_CHECKS=0 disables it at process start
// without a rebuild.
#ifndef YOUTOPIA_LOCK_RANK_CHECKS
#define YOUTOPIA_LOCK_RANK_CHECKS 1
#endif

namespace youtopia {
namespace lockrank {

#if YOUTOPIA_LOCK_RANK_CHECKS

namespace {

struct HeldLock {
  const void* mutex;
  uint16_t rank;
  uint32_t seq;
  const char* name;
  bool shared;
};

/// The calling thread's currently-held ranked locks, in acquisition
/// order. Deliberately a plain vector: depth is small (the deepest
/// stack in the system is shard mutexes + install + storage, well under
/// 70 entries even with 64 shards), so linear scans beat any map.
std::vector<HeldLock>& HeldList() {
  thread_local std::vector<HeldLock> held = [] {
    std::vector<HeldLock> v;
    v.reserve(80);
    return v;
  }();
  return held;
}

bool Enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("YOUTOPIA_LOCK_RANK_CHECKS");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

[[noreturn]] void ReportViolationAndAbort(const std::vector<HeldLock>& held,
                                          const HeldLock& attempt) {
  // stderr + abort rather than the logging layer: the process state is
  // one acquisition away from a potential deadlock, and death tests
  // match on this output.
  std::fprintf(stderr,
               "\n=== LOCK RANK VIOLATION ===\n"
               "thread attempted to acquire %s lock \"%s\" "
               "(rank %u, seq %u, %p)\n"
               "while holding, in acquisition order:\n",
               attempt.shared ? "shared" : "exclusive", attempt.name,
               attempt.rank, attempt.seq, attempt.mutex);
  for (const HeldLock& h : held) {
    std::fprintf(stderr, "  - \"%s\" (rank %u, seq %u, %p%s)\n", h.name,
                 h.rank, h.seq, h.mutex, h.shared ? ", shared" : "");
  }
  std::fprintf(stderr,
               "locks must be acquired in increasing rank order "
               "(equal rank only with increasing seq); see the LockRank "
               "table in common/mutex.h and DESIGN.md.\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void NoteAcquire(const void* mutex, uint16_t rank, uint32_t seq,
                 const char* name, bool shared) {
  if (!Enabled()) return;
  std::vector<HeldLock>& held = HeldList();
  const HeldLock attempt{mutex, rank, seq, name, shared};
  if (rank != static_cast<uint16_t>(LockRank::kUnranked)) {
    for (const HeldLock& h : held) {
      if (h.rank == static_cast<uint16_t>(LockRank::kUnranked)) continue;
      if (h.rank > rank || (h.rank == rank && h.seq >= seq)) {
        ReportViolationAndAbort(held, attempt);
      }
    }
  }
  held.push_back(attempt);
}

void NoteRelease(const void* mutex) {
  if (!Enabled()) return;
  std::vector<HeldLock>& held = HeldList();
  // Most-recent first: releases overwhelmingly run in LIFO order.
  for (size_t i = held.size(); i-- > 0;) {
    if (held[i].mutex == mutex) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

bool Held(const void* mutex) {
  if (!Enabled()) return true;
  for (const HeldLock& h : HeldList()) {
    if (h.mutex == mutex) return true;
  }
  return false;
}

bool ChecksEnabled() { return Enabled(); }

#else  // !YOUTOPIA_LOCK_RANK_CHECKS

void NoteAcquire(const void*, uint16_t, uint32_t, const char*, bool) {}
void NoteRelease(const void*) {}
bool Held(const void*) { return true; }
bool ChecksEnabled() { return false; }

#endif  // YOUTOPIA_LOCK_RANK_CHECKS

}  // namespace lockrank

void Mutex::AssertHeld() const {
  if (lockrank::ChecksEnabled() && !lockrank::Held(this)) {
    std::fprintf(stderr,
                 "=== LOCK ASSERTION FAILED ===\n"
                 "AssertHeld: \"%s\" (rank %u, %p) is not held by this "
                 "thread\n",
                 name_, rank_, static_cast<const void*>(this));
    std::fflush(stderr);
    std::abort();
  }
}

void SharedMutex::AssertHeld() const {
  if (lockrank::ChecksEnabled() && !lockrank::Held(this)) {
    std::fprintf(stderr,
                 "=== LOCK ASSERTION FAILED ===\n"
                 "AssertHeld: \"%s\" (rank %u, %p) is not held by this "
                 "thread\n",
                 name_, rank_, static_cast<const void*>(this));
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace youtopia
