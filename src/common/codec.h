#ifndef YOUTOPIA_COMMON_CODEC_H_
#define YOUTOPIA_COMMON_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "types/tuple.h"

namespace youtopia {

/// The engine's one binary serializer (design decisions #6 and #8): the
/// wire protocol frames and the WAL records share it, so there is no
/// second encoding to drift. All integers are fixed-width little-endian
/// except the explicit varints; doubles travel as their IEEE-754 bit
/// pattern in a u64; strings and repeated fields are u32-count-prefixed.

/// Appends primitive wire encodings to a byte buffer.
class WireWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// LEB128: 7 value bits per byte, high bit = continuation. Used where
  /// small counts dominate (WAL record bodies).
  void PutVarint(uint64_t v);
  void PutString(std::string_view s);
  void PutStatus(const Status& status);
  void PutValue(const Value& value);
  void PutTuple(const Tuple& tuple);
  void PutTuples(const std::vector<Tuple>& tuples);

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Cap on up-front vector reservations made from wire-supplied element
/// counts. A count is validated against the bytes remaining, but
/// in-memory elements are far larger than their one-byte wire minimum
/// (a Value is ~40 bytes), so reserve(count) would hand a hostile
/// 64 MB frame a multi-GB allocation before decoding fails. Decoders
/// reserve min(count, this) and let vector growth handle honest bulk.
inline constexpr uint32_t kMaxEagerReserve = 1024;

/// Cursor over a payload. Getters return false on underflow (and on any
/// later call — the reader is sticky-failed), so decoders can chain
/// reads and check once. `Error()` renders the failure; decoders also
/// require full consumption, so a too-long payload is rejected like a
/// too-short one.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetDouble(double* v);
  bool GetBool(bool* v);
  /// Rejects encodings past 10 bytes (more than a u64 can hold).
  bool GetVarint(uint64_t* v);
  bool GetString(std::string* s);
  bool GetStatus(Status* status);
  bool GetValue(Value* value);
  bool GetTuple(Tuple* tuple);
  bool GetTuples(std::vector<Tuple>* tuples);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  /// InvalidArgument describing a malformed payload (truncated, trailing
  /// bytes, or a bad tag).
  Status Error(std::string_view what) const;

  /// Forces the reader into its sticky-failed state; used by decoders
  /// that discover a semantic lie (e.g. a count exceeding the payload).
  void MarkFailed() { ok_ = false; }

 private:
  bool Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`. The WAL frames
/// every record with it so a torn tail is detected, not replayed.
uint32_t Crc32(std::string_view data);

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_CODEC_H_
