#ifndef YOUTOPIA_COMMON_BACKOFF_H_
#define YOUTOPIA_COMMON_BACKOFF_H_

#include <chrono>
#include <cstddef>

namespace youtopia {

/// The pause before the (completed_attempts+1)-th retry of an
/// exponential-backoff schedule: `interval` doubled once per completed
/// attempt, clamped to [max(interval, 1ms), max(cap, interval, 1ms)].
/// The 1ms floor keeps a zero interval from degenerating into a busy
/// spin on the clock; the cap never clamps below the configured initial
/// interval. This one function is the schedule for every lock-conflict
/// retry in the system — the blocking client loop and the executor
/// service's conflict requeues pace identically, so a statement behaves
/// the same whether a caller thread or a pool worker drives it.
std::chrono::milliseconds ExponentialBackoff(std::chrono::milliseconds interval,
                                             std::chrono::milliseconds cap,
                                             size_t completed_attempts);

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_BACKOFF_H_
