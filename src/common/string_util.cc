#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace youtopia {

namespace {
char LowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
char UpperChar(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = LowerChar(c);
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = UpperChar(c);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerChar(a[i]) != LowerChar(b[i])) return false;
  }
  return true;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string QuoteSqlString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace youtopia
