#ifndef YOUTOPIA_COMMON_STATUS_H_
#define YOUTOPIA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace youtopia {

/// Error categories used across the system. Mirrors the coarse error
/// taxonomy of embedded database engines (RocksDB/Arrow style).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad SQL, bad schema, bad value).
  kNotFound,          ///< Missing table/column/query/row.
  kAlreadyExists,     ///< Duplicate table/index/query id.
  kOutOfRange,        ///< Index or CHOOSE bound out of range.
  kUnsatisfiable,     ///< Entangled query can never be satisfied.
  kAborted,           ///< Transaction or coordination round aborted.
  kTimedOut,          ///< Lock wait or coordination deadline expired.
  kInternal,          ///< Invariant violation inside the engine.
  kNotImplemented,    ///< Feature intentionally out of scope.
  kOverloaded,        ///< Shed at admission before any side effect; retryable.
};

/// Returns a stable human-readable name ("Ok", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. All fallible public APIs in
/// youtopia return `Status` (or `Result<T>` below) instead of throwing.
/// `[[nodiscard]]` on the class makes silently dropping any returned
/// Status a compiler warning (an error in CI): an ignored error is a
/// latent bug, and call sites that genuinely do not care must say so
/// with an explicit cast to void plus a reason.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Holds either a value of type `T` or an error `Status`. Semantics follow
/// `arrow::Result` / `absl::StatusOr`: access to the value when holding an
/// error is a programming bug (asserted in debug builds). `[[nodiscard]]`
/// for the same reason as Status: a dropped Result drops its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit conversions from both sides keep call sites terse:
  /// `return some_value;` and `return Status::NotFound(...);` both work.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status)                          // NOLINT(google-explicit-constructor)
      : data_(std::move(status)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Error status; `Status::OK()` when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, leaving the Result in a valid but unspecified
  /// state. Caller must have checked `ok()`.
  T TakeValue() { return std::get<T>(std::move(data_)); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status to the caller.
#define YOUTOPIA_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::youtopia::Status _st = (expr);               \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// Evaluates a Result-returning expression; on error propagates the status,
/// otherwise moves the value into `lhs`.
#define YOUTOPIA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).TakeValue();

#define YOUTOPIA_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define YOUTOPIA_ASSIGN_OR_RETURN_CONCAT(a, b) \
  YOUTOPIA_ASSIGN_OR_RETURN_CONCAT_(a, b)

#define YOUTOPIA_ASSIGN_OR_RETURN(lhs, expr)   \
  YOUTOPIA_ASSIGN_OR_RETURN_IMPL(              \
      YOUTOPIA_ASSIGN_OR_RETURN_CONCAT(_result_tmp_, __LINE__), lhs, expr)

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_STATUS_H_
