#ifndef YOUTOPIA_COMMON_HISTOGRAM_H_
#define YOUTOPIA_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace youtopia {

/// Thread-safe log-bucketed latency histogram (microsecond samples).
/// Used by the loaded-system workload driver to report percentile
/// latencies without retaining every sample.
class Histogram {
 public:
  Histogram() = default;

  /// Copyable (snapshot semantics) so reports can be returned by value;
  /// the internal mutex is not copied.
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Record(uint64_t micros);

  size_t count() const;
  uint64_t min() const;
  uint64_t max() const;
  double mean() const;

  /// Approximate percentile (0 < p <= 100) from the bucket boundaries.
  uint64_t Percentile(double p) const;

  /// "count=... mean=...us p50=... p95=... p99=... max=..." summary.
  std::string ToString() const;

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

 private:
  /// Bucket i covers [2^i, 2^(i+1)) microseconds; bucket 0 covers
  /// [0, 2).
  static constexpr size_t kBuckets = 40;
  static size_t BucketFor(uint64_t micros);

  /// Terminal rank: never held across any other acquisition.
  mutable Mutex mu_{LockRank::kHistogram, "histogram"};
  std::vector<uint64_t> buckets_ GUARDED_BY(mu_) =
      std::vector<uint64_t>(kBuckets, 0);
  size_t count_ GUARDED_BY(mu_) = 0;
  uint64_t sum_ GUARDED_BY(mu_) = 0;
  uint64_t min_ GUARDED_BY(mu_) = UINT64_MAX;
  uint64_t max_ GUARDED_BY(mu_) = 0;
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_HISTOGRAM_H_
