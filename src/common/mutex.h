#ifndef YOUTOPIA_COMMON_MUTEX_H_
#define YOUTOPIA_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis annotations (design decision #9).
//
// These macros attach capability annotations to mutexes, guarded members
// and locking functions so `clang -Wthread-safety` turns the codebase's
// lock discipline into compile errors. They expand to nothing on other
// compilers (gcc builds are unaffected). The names follow the modern
// capability spelling used by Abseil and the Clang documentation.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define YOUTOPIA_TS_ATTR(x) __attribute__((x))
#else
#define YOUTOPIA_TS_ATTR(x)  // no-op outside Clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) YOUTOPIA_TS_ATTR(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY YOUTOPIA_TS_ATTR(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) YOUTOPIA_TS_ATTR(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) YOUTOPIA_TS_ATTR(pt_guarded_by(x))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) YOUTOPIA_TS_ATTR(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  YOUTOPIA_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) YOUTOPIA_TS_ATTR(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  YOUTOPIA_TS_ATTR(release_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_GENERIC
#define RELEASE_GENERIC(...) \
  YOUTOPIA_TS_ATTR(release_generic_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) YOUTOPIA_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) YOUTOPIA_TS_ATTR(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  YOUTOPIA_TS_ATTR(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) YOUTOPIA_TS_ATTR(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) YOUTOPIA_TS_ATTR(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) YOUTOPIA_TS_ATTR(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS YOUTOPIA_TS_ATTR(no_thread_safety_analysis)
#endif

namespace youtopia {

// ---------------------------------------------------------------------------
// Lock ranks.
//
// Every Mutex/SharedMutex is constructed with a rank, and the debug
// validator enforces that a thread only ever acquires locks in strictly
// increasing rank order (same-rank acquisition is allowed only with a
// strictly increasing per-mutex sequence number — the coordinator's
// shard mutexes, locked in shard-index order, are the one such family).
// The enum below IS the system's global lock order; DESIGN.md carries
// the same table with the nesting paths that pin each edge. Gaps between
// values leave room for future subsystems.
//
// Outermost (acquired first, lowest value) to innermost:
// ---------------------------------------------------------------------------
enum class LockRank : uint16_t {
  /// Exempt from rank checking entirely. For mutexes whose acquisition
  /// genuinely cannot be ordered (none in src/ today; tests and
  /// scaffolding only). Never holds another exemption from review: a
  /// new kUnranked mutex needs a DESIGN.md justification.
  kUnranked = 0,

  /// Travel workload driver / bench-harness tracker state; held while
  /// calling into the whole engine stack.
  kWorkloadDriver = 10,
  /// ExecutorService::mu_ (submission queue + sessions). Never held
  /// while a statement executes — workers drop it before Attempt().
  kExecutorService = 20,
  /// net::YoutopiaServer::mu_ (connection table, lifecycle).
  kNetServer = 30,
  /// net::MetricsExporter::mu_ (listener lifecycle only; the render
  /// callback runs with no exporter lock held, so engine stats reads
  /// nest freely). Started/stopped under kNetServer, hence above it.
  kMetricsExporter = 34,
  /// net::YoutopiaServer shared stats block (nested under kNetServer).
  kNetServerStats = 40,
  /// net::RemoteClient::mu_ (in-flight requests, pending handles).
  kRemoteClient = 50,
  /// net::RemoteClient completion-dispatch queue mutex.
  kRemoteClientCompletion = 54,
  /// net::RemoteClient / server Connection serialized-write mutexes.
  kConnectionWrite = 58,
  /// Client facade state (history, outstanding-handle set).
  kClient = 70,
  /// Coordinator shard mutexes — the multi-instance rank: global
  /// rounds lock every shard in index order, so each shard mutex
  /// carries its shard index as the intra-rank sequence number.
  kCoordinatorShard = 80,
  /// Coordinator::install_txn_mu_ (serializes hook-bearing installs;
  /// taken with shard mutexes held, before the install txn's locks).
  kCoordinatorInstall = 90,
  /// Coordinator::hook_mu_ (install-hook registration/copy-out).
  kCoordinatorHook = 94,
  /// Coordinator::router_mu_ (query-id -> shard map; "shard mutexes
  /// first, router last").
  kCoordinatorRouter = 98,
  /// wal::WalManager::mu_. Above the shard rank (the coordinator
  /// journal appends with shard mutexes held) and below the storage
  /// ranks (DDL executes inside AppendSerialized's critical section).
  kWal = 110,
  /// LockManager::mu_ (2PL table-lock state; acquired during installs
  /// with shard mutexes held).
  kLockManager = 120,
  /// MvccController::mu_ (commit clock, in-flight commit set, active
  /// snapshots). A leaf in practice: commit stamping calls it strictly
  /// before taking kStorageTables and again strictly after releasing
  /// it, and snapshot open/close hold nothing else.
  kMvccClock = 125,
  /// StorageEngine::tables_mu_ (table map + per-table index maps).
  kStorageTables = 130,
  /// Catalog::mu_ (schema metadata; taken inside DDL under kWal).
  kCatalog = 140,
  /// HeapTable::latch_ (row slots; under kStorageTables).
  kHeapTable = 150,
  /// HashIndex::latch_ (postings; under kStorageTables).
  kHashIndex = 160,
  /// PlanCache::mu_ (LRU + counters; prepare path holds nothing else).
  kPlanCache = 170,
  /// EntangledHandle::State::mu — completed with shard mutexes held;
  /// callbacks always fire after it is released.
  kHandleState = 180,
  /// travel::NotificationBus::mu_ (published from completion
  /// callbacks, no engine locks held).
  kNotificationBus = 190,
  /// Histogram::mu_ and other terminal counters: never held across any
  /// other acquisition.
  kHistogram = 200,
  /// Default for helpers with no interior calls.
  kLeaf = 250,
};

namespace lockrank {

/// Validates one acquisition against the calling thread's held set and
/// records it. Aborts (after printing the held-lock list and the
/// attempted acquisition) when `rank` is lower than a held rank, or
/// equal without a strictly larger `seq`. No-op when rank checking is
/// compiled out or disabled via YOUTOPIA_LOCK_RANK_CHECKS=0 in the
/// environment.
void NoteAcquire(const void* mutex, uint16_t rank, uint32_t seq,
                 const char* name, bool shared);

/// Removes `mutex` from the thread's held set (most recent entry).
void NoteRelease(const void* mutex);

/// True when the calling thread's held set contains `mutex`. Always
/// true when rank checking is compiled out or disabled (callers use it
/// only in assertions).
bool Held(const void* mutex);

/// True when the validator is compiled in and enabled.
bool ChecksEnabled();

}  // namespace lockrank

/// Exclusive mutex with a capability annotation and a lock rank
/// (design decision #9). Drop-in ordering-checked replacement for
/// std::mutex: Lock/Unlock validate rank order in debug/test builds and
/// the CAPABILITY annotation lets clang's thread safety analysis check
/// GUARDED_BY members at compile time.
class CAPABILITY("mutex") Mutex {
 public:
  /// `seq` orders mutexes of the same rank (the coordinator's shard
  /// mutexes pass their shard index); same-rank acquisition with a
  /// non-increasing seq is a rank violation.
  explicit Mutex(LockRank rank, const char* name = "mutex",
                 uint32_t seq = 0)
      : rank_(static_cast<uint16_t>(rank)), seq_(seq), name_(name) {}
  Mutex() : Mutex(LockRank::kLeaf) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    lockrank::NoteAcquire(this, rank_, seq_, name_, /*shared=*/false);
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
    lockrank::NoteRelease(this);
  }

  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try-lock joined the held set; record it so later
    // acquisitions are validated against it. (An out-of-rank try-lock
    // that *succeeds* is still reported: mixed try/blocking cycles
    // deadlock just as well.)
    lockrank::NoteAcquire(this, rank_, seq_, name_, /*shared=*/false);
    return true;
  }

  /// Debug assertion that the calling thread holds this mutex —
  /// documents (and, with rank checks on, verifies) a "caller locks"
  /// contract at runtime, complementing the static REQUIRES annotation.
  void AssertHeld() const ASSERT_CAPABILITY(this);

  LockRank rank() const { return static_cast<LockRank>(rank_); }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const uint16_t rank_;
  const uint32_t seq_;
  const char* const name_;
};

/// Reader/writer mutex with the same capability + rank treatment.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, const char* name = "shared_mutex",
                       uint32_t seq = 0)
      : rank_(static_cast<uint16_t>(rank)), seq_(seq), name_(name) {}
  SharedMutex() : SharedMutex(LockRank::kLeaf) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    lockrank::NoteAcquire(this, rank_, seq_, name_, /*shared=*/false);
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
    lockrank::NoteRelease(this);
  }

  void LockShared() ACQUIRE_SHARED() {
    lockrank::NoteAcquire(this, rank_, seq_, name_, /*shared=*/true);
    mu_.lock_shared();
  }

  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
    lockrank::NoteRelease(this);
  }

  void AssertHeld() const ASSERT_CAPABILITY(this);

  LockRank rank() const { return static_cast<LockRank>(rank_); }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const uint16_t rank_;
  const uint32_t seq_;
  const char* const name_;
};

/// Scoped exclusive lock (std::lock_guard replacement) that clang's
/// analysis can follow, including early Unlock()/re-Lock() — the WAL
/// group-commit leader drops the mutex around its fsync this way.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() RELEASE() {
    if (owned_) mu_.Unlock();
  }

  /// Early release; the destructor becomes a no-op until Lock().
  void Unlock() RELEASE() {
    mu_.Unlock();
    owned_ = false;
  }

  /// Re-acquire after an early Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    owned_ = true;
  }

 private:
  Mutex& mu_;
  bool owned_ = true;
};

/// Scoped exclusive lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(const SharedMutex& mu) ACQUIRE_SHARED(mu)
      : mu_(const_cast<SharedMutex&>(mu)) {
    mu_.LockShared();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }

 private:
  SharedMutex& mu_;
};

/// Movable single-lock guard (std::unique_lock replacement) for flows
/// the static analysis cannot follow: optional locks, locks chosen at
/// runtime, containers of locks. Functions that rely on one to guard
/// member access need NO_THREAD_SAFETY_ANALYSIS with a justification —
/// prefer MutexLock wherever the mutex is statically known. Rank
/// checking still applies on every Lock/Unlock.
class MovableMutexLock {
 public:
  MovableMutexLock() = default;
  explicit MovableMutexLock(Mutex& mu) : mu_(&mu), owned_(true) {
    mu_->Lock();
  }

  MovableMutexLock(MovableMutexLock&& other) noexcept
      : mu_(other.mu_), owned_(other.owned_) {
    other.mu_ = nullptr;
    other.owned_ = false;
  }

  MovableMutexLock& operator=(MovableMutexLock&& other) noexcept {
    if (this != &other) {
      Reset();
      mu_ = other.mu_;
      owned_ = other.owned_;
      other.mu_ = nullptr;
      other.owned_ = false;
    }
    return *this;
  }

  MovableMutexLock(const MovableMutexLock&) = delete;
  MovableMutexLock& operator=(const MovableMutexLock&) = delete;

  ~MovableMutexLock() { Reset(); }

  void Unlock() {
    mu_->Unlock();
    owned_ = false;
  }

  void Lock() {
    mu_->Lock();
    owned_ = true;
  }

  bool owns() const { return owned_; }

 private:
  void Reset() {
    if (owned_) mu_->Unlock();
    mu_ = nullptr;
    owned_ = false;
  }

  Mutex* mu_ = nullptr;
  bool owned_ = false;
};

/// Condition variable bound to youtopia::Mutex. Wait() takes the Mutex
/// itself (not a lock object) so call sites annotate cleanly: the
/// caller provably holds `mu` (REQUIRES), and the wait releases and
/// re-acquires the underlying std::mutex directly. The rank validator's
/// held-set deliberately keeps the mutex across the wait: the thread is
/// blocked until it holds the lock again, so the conservative view is
/// accurate whenever the thread runs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner, std::move(pred));
    inner.release();
  }

  /// Returns pred() at wake-up (false = timed out with pred false).
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(inner, timeout, std::move(pred));
    inner.release();
    return satisfied;
  }

  /// No-predicate timed wait, for waiters whose wake condition involves
  /// re-deriving a deadline (the executor's backoff heap).
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(inner, deadline);
    inner.release();
    return status;
  }

  template <typename Clock, typename Duration, typename Pred>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_until(inner, deadline, std::move(pred));
    inner.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_MUTEX_H_
