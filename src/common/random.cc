#include "common/random.h"

namespace youtopia {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t x = seed;
  state0_ = SplitMix64(x);
  state1_ = SplitMix64(x);
  if (state0_ == 0 && state1_ == 0) state1_ = 1;  // avoid the all-zero orbit
}

uint64_t Random::Next() {
  uint64_t s1 = state0_;
  const uint64_t s0 = state1_;
  const uint64_t result = s0 + s1;
  state0_ = s0;
  s1 ^= s1 << 23;
  state1_ = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
  return result;
}

uint64_t Random::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Random::NextDouble() {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::NextBool(double p) { return NextDouble() < p; }

}  // namespace youtopia
