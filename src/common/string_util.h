#ifndef YOUTOPIA_COMMON_STRING_UTIL_H_
#define YOUTOPIA_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace youtopia {

/// Lower-cases ASCII characters only (SQL keywords are ASCII).
std::string ToLowerAscii(std::string_view s);

/// Upper-cases ASCII characters only.
std::string ToUpperAscii(std::string_view s);

/// Case-insensitive ASCII equality, used for SQL keyword matching.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Quotes a string as a SQL literal: wraps in single quotes and doubles
/// embedded quotes ('Jer''ry').
std::string QuoteSqlString(std::string_view s);

/// Formats like printf into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_STRING_UTIL_H_
