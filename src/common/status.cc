#include "common/status.h"

namespace youtopia {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsatisfiable:
      return "Unsatisfiable";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace youtopia
