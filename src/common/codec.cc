#include "common/codec.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace youtopia {

// ---------------------------------------------------------------- writer

void WireWriter::PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

void WireWriter::PutU32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void WireWriter::PutU64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void WireWriter::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void WireWriter::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  bytes_.push_back(static_cast<char>(v));
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.append(s);
}

void WireWriter::PutStatus(const Status& status) {
  PutU8(static_cast<uint8_t>(status.code()));
  PutString(status.message());
}

void WireWriter::PutValue(const Value& value) {
  PutU8(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      PutBool(value.bool_value());
      break;
    case DataType::kInt64:
      PutI64(value.int64_value());
      break;
    case DataType::kDouble:
      PutDouble(value.double_value());
      break;
    case DataType::kString:
      PutString(value.string_value());
      break;
  }
}

void WireWriter::PutTuple(const Tuple& tuple) {
  PutU32(static_cast<uint32_t>(tuple.size()));
  for (const Value& v : tuple.values()) PutValue(v);
}

void WireWriter::PutTuples(const std::vector<Tuple>& tuples) {
  PutU32(static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) PutTuple(t);
}

// ---------------------------------------------------------------- reader

bool WireReader::Take(size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::GetU8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool WireReader::GetU32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::GetU64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::GetI64(int64_t* v) {
  uint64_t raw = 0;
  if (!GetU64(&raw)) return false;
  *v = static_cast<int64_t>(raw);
  return true;
}

bool WireReader::GetDouble(double* v) {
  uint64_t bits = 0;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool WireReader::GetBool(bool* v) {
  uint8_t raw = 0;
  if (!GetU8(&raw)) return false;
  if (raw > 1) {
    ok_ = false;
    return false;
  }
  *v = raw != 0;
  return true;
}

bool WireReader::GetVarint(uint64_t* v) {
  uint64_t out = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    uint8_t byte = 0;
    if (!GetU8(&byte)) return false;
    // The 10th byte may only carry the u64's final bit.
    if (shift == 63 && byte > 1) {
      ok_ = false;
      return false;
    }
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject overlong forms (a zero final byte after a continuation,
      // e.g. 0x80 0x00 for 0): every value has exactly one encoding, so
      // equal payloads compare equal as bytes. (Found by fuzz_wire.)
      if (byte == 0 && shift != 0) {
        ok_ = false;
        return false;
      }
      *v = out;
      return true;
    }
  }
  ok_ = false;
  return false;
}

bool WireReader::GetString(std::string* s) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  const char* p = nullptr;
  if (!Take(len, &p)) return false;
  s->assign(p, len);
  return true;
}

bool WireReader::GetStatus(Status* status) {
  uint8_t code = 0;
  std::string message;
  if (!GetU8(&code) || !GetString(&message)) return false;
  if (code > static_cast<uint8_t>(StatusCode::kOverloaded)) {
    ok_ = false;
    return false;
  }
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

bool WireReader::GetValue(Value* value) {
  uint8_t tag = 0;
  if (!GetU8(&tag)) return false;
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      *value = Value::Null();
      return true;
    case DataType::kBool: {
      bool v = false;
      if (!GetBool(&v)) return false;
      *value = Value::Bool(v);
      return true;
    }
    case DataType::kInt64: {
      int64_t v = 0;
      if (!GetI64(&v)) return false;
      *value = Value::Int64(v);
      return true;
    }
    case DataType::kDouble: {
      double v = 0;
      if (!GetDouble(&v)) return false;
      *value = Value::Double(v);
      return true;
    }
    case DataType::kString: {
      std::string v;
      if (!GetString(&v)) return false;
      *value = Value::String(std::move(v));
      return true;
    }
  }
  ok_ = false;
  return false;
}

bool WireReader::GetTuple(Tuple* tuple) {
  uint32_t count = 0;
  if (!GetU32(&count)) return false;
  // A value takes at least a tag byte; a count beyond the remaining
  // bytes is a lie (guards against allocation bombs).
  if (count > data_.size() - pos_) {
    ok_ = false;
    return false;
  }
  std::vector<Value> values;
  // The remaining-bytes check bounds count, but each Value is ~40 bytes
  // in memory vs 1 byte minimum on the wire, so reserve(count) still
  // amplifies a hostile count ~40x (64 MB frame -> 2.5 GB reserve)
  // before decoding fails. Cap the up-front reservation and let growth
  // handle honest large tuples. (Found by fuzz_wire.)
  values.reserve(std::min<uint32_t>(count, kMaxEagerReserve));
  for (uint32_t i = 0; i < count; ++i) {
    Value v;
    if (!GetValue(&v)) return false;
    values.push_back(std::move(v));
  }
  *tuple = Tuple(std::move(values));
  return true;
}

bool WireReader::GetTuples(std::vector<Tuple>* tuples) {
  uint32_t count = 0;
  if (!GetU32(&count)) return false;
  if (count > data_.size() - pos_) {
    ok_ = false;
    return false;
  }
  tuples->clear();
  tuples->reserve(std::min<uint32_t>(count, kMaxEagerReserve));
  for (uint32_t i = 0; i < count; ++i) {
    Tuple t;
    if (!GetTuple(&t)) return false;
    tuples->push_back(std::move(t));
  }
  return true;
}

Status WireReader::Error(std::string_view what) const {
  return Status::InvalidArgument("malformed " + std::string(what) +
                                 " payload at byte " + std::to_string(pos_));
}

// ----------------------------------------------------------------- crc32

namespace {

std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xedb88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrc32Table();
  uint32_t crc = 0xffffffffu;
  for (char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(c)) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

}  // namespace youtopia
