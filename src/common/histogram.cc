#include "common/histogram.h"

#include "common/string_util.h"

namespace youtopia {

Histogram::Histogram(const Histogram& other) {
  MutexLock lock(other.mu_);
  buckets_ = other.buckets_;
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  // Snapshot the source first to keep a single-lock discipline.
  Histogram snapshot(other);
  MutexLock lock(mu_);
  buckets_ = snapshot.buckets_;
  count_ = snapshot.count_;
  sum_ = snapshot.sum_;
  min_ = snapshot.min_;
  max_ = snapshot.max_;
  return *this;
}

size_t Histogram::BucketFor(uint64_t micros) {
  size_t bucket = 0;
  while (micros >= 2 && bucket + 1 < kBuckets) {
    micros >>= 1;
    ++bucket;
  }
  return bucket;
}

void Histogram::Record(uint64_t micros) {
  MutexLock lock(mu_);
  buckets_[BucketFor(micros)] += 1;
  ++count_;
  sum_ += micros;
  if (micros < min_) min_ = micros;
  if (micros > max_) max_ = micros;
}

size_t Histogram::count() const {
  MutexLock lock(mu_);
  return count_;
}

uint64_t Histogram::min() const {
  MutexLock lock(mu_);
  return count_ == 0 ? 0 : min_;
}

uint64_t Histogram::max() const {
  MutexLock lock(mu_);
  return max_;
}

double Histogram::mean() const {
  MutexLock lock(mu_);
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  MutexLock lock(mu_);
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  const auto target = static_cast<uint64_t>(
      static_cast<double>(count_) * p / 100.0 + 0.5);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Upper bound of the bucket, clamped to the observed extremes.
      const uint64_t upper = i + 1 >= 64 ? UINT64_MAX : (1ull << (i + 1));
      return std::min(std::max(upper, min_), max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  return StringPrintf(
      "count=%zu mean=%.1fus p50=%lluus p95=%lluus p99=%lluus max=%lluus",
      count(), mean(),
      static_cast<unsigned long long>(Percentile(50)),
      static_cast<unsigned long long>(Percentile(95)),
      static_cast<unsigned long long>(Percentile(99)),
      static_cast<unsigned long long>(max()));
}

void Histogram::Merge(const Histogram& other) {
  // Copy the other's state first to avoid lock-order issues.
  std::vector<uint64_t> other_buckets;
  size_t other_count;
  uint64_t other_sum, other_min, other_max;
  {
    MutexLock lock(other.mu_);
    other_buckets = other.buckets_;
    other_count = other.count_;
    other_sum = other.sum_;
    other_min = other.min_;
    other_max = other.max_;
  }
  MutexLock lock(mu_);
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += other_buckets[i];
  count_ += other_count;
  sum_ += other_sum;
  if (other_count > 0) {
    if (other_min < min_) min_ = other_min;
    if (other_max > max_) max_ = other_max;
  }
}

}  // namespace youtopia
