#ifndef YOUTOPIA_COMMON_RANDOM_H_
#define YOUTOPIA_COMMON_RANDOM_H_

#include <cstdint>

namespace youtopia {

/// Deterministic xorshift128+ generator. Used wherever the system makes a
/// nondeterministic choice (e.g., CHOOSE 1 among valid groundings) so that
/// tests can pin a seed and get reproducible runs.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli with probability `p` of true.
  bool NextBool(double p = 0.5);

 private:
  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_COMMON_RANDOM_H_
