#ifndef YOUTOPIA_ENTANGLE_UNIFICATION_H_
#define YOUTOPIA_ENTANGLE_UNIFICATION_H_

#include <optional>
#include <vector>

#include "entangle/answer_atom.h"
#include "types/value.h"

namespace youtopia {

/// A substitution over a dense space of *global* variables (the matcher
/// maps each participating query's local VarIds into this space).
///
/// Implementation: union-find with integer edge weights. The invariant
/// for node v with parent p is value(v) = value(p) + offset(v); a class
/// root may carry a constant binding. Offsets express the affine terms
/// `var + k` used by adjacent-seat coordination; classes containing a
/// non-integer binding must have all-zero offsets.
///
/// The object is copyable — the matcher snapshots it at each choice
/// point and restores by assignment on backtrack.
class Substitution {
 public:
  explicit Substitution(size_t num_vars);

  /// Grows the variable space (new variables are free singletons).
  void AddVars(size_t count);

  size_t num_vars() const { return parent_.size(); }

  /// Imposes value(a) + offset_a == value(b) + offset_b.
  /// Returns false on conflict (contradictory constants or offsets).
  bool UnifyVars(size_t a, int64_t offset_a, size_t b, int64_t offset_b);

  /// Imposes value(a) + offset == v.
  bool UnifyConstant(size_t a, int64_t offset, const Value& v);

  /// Unifies two terms already mapped into the global space.
  bool UnifyTerms(const Term& a, const Term& b);

  /// The constant value of `v` if its class is bound (adjusted for
  /// offsets), else nullopt.
  std::optional<Value> Lookup(size_t v) const;

  /// Representative of v's class (stable while no unions happen).
  size_t Root(size_t v) const;

  /// Offset of v relative to its root: value(v) = value(root) + offset.
  int64_t OffsetToRoot(size_t v) const;

  /// True if a and b are in the same class.
  bool SameClass(size_t a, size_t b) const;

 private:
  struct FindResult {
    size_t root;
    int64_t offset;  ///< value(v) = value(root) + offset
  };
  FindResult Find(size_t v) const;

  /// Binds the class root to a constant; false on conflict.
  bool BindRoot(size_t root, const Value& v);

  // Mutable for path compression in const Find.
  mutable std::vector<size_t> parent_;
  mutable std::vector<int64_t> offset_;
  std::vector<std::optional<Value>> binding_;  ///< Root-indexed.
};

/// Attempts to unify two answer atoms whose terms are already expressed
/// in global variable ids. Returns false (leaving `subst` possibly
/// partially updated — callers snapshot first) if relations, arities or
/// terms conflict. Relation names compare case-insensitively.
bool UnifyAtoms(const AnswerAtom& a, const AnswerAtom& b,
                Substitution* subst);

/// Unifies an atom against a ground tuple (an already-installed answer).
bool UnifyAtomWithTuple(const AnswerAtom& atom, const Tuple& tuple,
                        Substitution* subst);

/// Cheap symbolic pre-filter: can these atoms possibly unify? Checks
/// relation, arity and constant/constant positions only. Never updates
/// state; used to prune candidate providers before real unification.
bool AtomsMayUnify(const AnswerAtom& a, const AnswerAtom& b);

/// Cheap pre-filter against a ground tuple: arity matches and every
/// constant position of `atom` equals the tuple's value. (Relation is
/// the caller's concern.) Used to decide which pending queries a newly
/// installed answer could possibly unblock.
bool AtomMayMatchTuple(const AnswerAtom& atom, const Tuple& tuple);

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_UNIFICATION_H_
