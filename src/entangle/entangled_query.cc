#include "entangle/entangled_query.h"

#include <set>

namespace youtopia {

std::string DomainPredicate::ToString(
    const std::vector<std::string>* var_names) const {
  std::string out = Term::Variable(output_var).ToString(var_names);
  out += " IN pi_" + output_column + "(" + table;
  if (!conditions.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (i > 0) out += " AND ";
      out += conditions[i].column;
      out += " ";
      out += BinaryOpToString(conditions[i].op);
      out += " ";
      out += conditions[i].rhs.ToString(var_names);
    }
  }
  out += ")";
  return out;
}

std::string VarComparison::ToString(
    const std::vector<std::string>* var_names) const {
  return lhs.ToString(var_names) + " " + BinaryOpToString(op) + " " +
         rhs.ToString(var_names);
}

std::vector<VarId> EntangledQuery::UnboundVars() const {
  std::set<VarId> bound;
  for (const DomainPredicate& d : domains) bound.insert(d.output_var);
  std::set<VarId> used;
  auto collect = [&used](const AnswerAtom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_variable()) used.insert(t.var);
    }
  };
  for (const AnswerAtom& h : heads) collect(h);
  for (const AnswerAtom& c : constraints) collect(c);
  std::vector<VarId> out;
  for (VarId v : used) {
    if (bound.count(v) == 0) out.push_back(v);
  }
  return out;
}

std::string EntangledQuery::ToString() const {
  std::string out = "EntangledQuery #" + std::to_string(id);
  if (!owner.empty()) out += " (owner: " + owner + ")";
  out += "\n";
  for (const AnswerAtom& h : heads) {
    out += "  head:       " + h.ToString(&var_names) + "\n";
  }
  for (const AnswerAtom& c : constraints) {
    out += "  constraint: " + c.ToString(&var_names) + "\n";
  }
  for (const DomainPredicate& d : domains) {
    out += "  domain:     " + d.ToString(&var_names) + "\n";
  }
  for (const VarComparison& c : comparisons) {
    out += "  compare:    " + c.ToString(&var_names) + "\n";
  }
  out += "  choose:     " + std::to_string(choose) + "\n";
  return out;
}

}  // namespace youtopia
