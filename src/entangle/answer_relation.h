#ifndef YOUTOPIA_ENTANGLE_ANSWER_RELATION_H_
#define YOUTOPIA_ENTANGLE_ANSWER_RELATION_H_

#include <string>

#include "common/status.h"
#include "storage/storage_engine.h"
#include "txn/txn_manager.h"

namespace youtopia {

/// Manages the system-wide answer relations (paper §2.1: "the answer to
/// the query is returned through an answer relation that is shared among
/// multiple queries in the system").
///
/// Answer relations are materialized as ordinary tables in the storage
/// engine. That is what makes the demo's browse-then-book path work:
/// regular SELECTs over `Reservation` see coordinated answers, and
/// `IN ANSWER Reservation` constraints can be satisfied by rows
/// installed in earlier rounds.
class AnswerRelationManager {
 public:
  explicit AnswerRelationManager(StorageEngine* storage,
                                 bool auto_create = true)
      : storage_(storage), auto_create_(auto_create) {}

  /// Ensures a table exists that can hold `prototype`. When the table
  /// pre-exists (the travel schema creates typed Reservation tables),
  /// checks arity compatibility. Otherwise, when auto-create is on,
  /// creates one with columns c0..cn-1 typed from the prototype.
  Status EnsureRelation(const std::string& relation, const Tuple& prototype);

  /// Inserts an answer tuple inside `txn`. Duplicate tuples are not
  /// inserted twice (the answer relation is a set — two queries
  /// contributing the same tuple share it).
  Status Install(Transaction* txn, TxnManager* txn_manager,
                 const std::string& relation, const Tuple& tuple);

 private:
  StorageEngine* storage_;
  bool auto_create_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_ANSWER_RELATION_H_
