#include "entangle/coordinator.h"

#include <deque>

#include "common/logging.h"

namespace youtopia {

QueryId EntangledHandle::id() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->id;
}

bool EntangledHandle::Done() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

std::optional<Status> EntangledHandle::Outcome() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->outcome;
}

Status EntangledHandle::Wait(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(state_->mu);
  if (!state_->cv.wait_for(lock, timeout, [this] { return state_->done; })) {
    return Status::TimedOut("entangled query " + std::to_string(state_->id) +
                            " still pending");
  }
  return *state_->outcome;
}

void EntangledHandle::OnComplete(CompletionCallback callback) {
  if (!callback) return;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->counters) state_->counters->registered.fetch_add(1);
    if (!state_->done) {
      // Parked; whoever completes the query delivers it (outside the
      // coordinator lock).
      state_->callbacks.push_back(std::move(callback));
      return;
    }
  }
  // Already done: deliver immediately in the registering thread. A
  // throwing callback must not differ between this path and deferred
  // delivery (which would otherwise terminate), so both swallow and
  // log — completion callbacks are expected not to throw.
  try {
    callback(*this);
  } catch (const std::exception& e) {
    YOUTOPIA_LOG(kError) << "OnComplete callback threw: " << e.what();
  } catch (...) {
    YOUTOPIA_LOG(kError) << "OnComplete callback threw";
  }
  if (state_->counters) state_->counters->fired.fetch_add(1);
}

std::vector<Tuple> EntangledHandle::Answers() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->answers;
}

std::optional<std::chrono::steady_clock::time_point>
EntangledHandle::CompletedAt() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->done) return std::nullopt;
  return state_->completed_at;
}

namespace {

/// Runs a Coordinator's deferred completion callbacks on scope exit.
/// Declared BEFORE the lock_guard in every mutating entry point so the
/// flush happens after the lock is released, on success and error paths
/// alike (destruction order is the reverse of declaration).
class CallbackFlusher {
 public:
  using Flush = std::function<void()>;
  explicit CallbackFlusher(Flush flush) : flush_(std::move(flush)) {}
  ~CallbackFlusher() { flush_(); }
  CallbackFlusher(const CallbackFlusher&) = delete;
  CallbackFlusher& operator=(const CallbackFlusher&) = delete;

 private:
  Flush flush_;
};

}  // namespace

Coordinator::Coordinator(StorageEngine* storage, TxnManager* txn_manager,
                         CoordinatorConfig config)
    : storage_(storage),
      txn_manager_(txn_manager),
      config_(config),
      answers_(storage, config.auto_create_answer_tables),
      matcher_(storage, config.match),
      callback_counters_(
          std::make_shared<EntangledHandle::CallbackCounters>()) {}

std::shared_ptr<EntangledHandle::State> Coordinator::RegisterLocked(
    EntangledQuery query) {
  query.id = next_id_++;
  const QueryId id = query.id;

  auto state = std::make_shared<EntangledHandle::State>();
  state->id = id;
  state->counters = callback_counters_;
  handles_.emplace(id, state);
  arrivals_.emplace(id, std::chrono::steady_clock::now());
  pool_.Add(std::make_shared<const EntangledQuery>(std::move(query)));
  ++stats_.submitted;
  return state;
}

Result<EntangledHandle> Coordinator::Submit(EntangledQuery query) {
  if (query.heads.empty()) {
    return Status::InvalidArgument("entangled query has no heads");
  }
  CallbackFlusher flusher([this] { FireDeferredCallbacks(); });
  std::lock_guard<std::mutex> lock(mu_);
  auto state = RegisterLocked(std::move(query));
  auto satisfied = MatchAndInstallLocked({state->id});
  if (!satisfied.ok()) {
    // Don't strand the registration: the caller gets no handle back,
    // so a query left in the pool could later match with nobody able
    // to observe or cancel it. (NotFound here just means the round
    // already satisfied it before failing elsewhere.)
    (void)WithdrawLocked(state->id, satisfied.status());
    return satisfied.status();
  }
  return EntangledHandle(state);
}

Result<std::vector<EntangledHandle>> Coordinator::SubmitAll(
    std::vector<EntangledQuery> queries) {
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].heads.empty()) {
      return Status::InvalidArgument("entangled query " + std::to_string(i) +
                                     " in batch has no heads");
    }
  }
  std::vector<EntangledHandle> handles;
  handles.reserve(queries.size());
  CallbackFlusher flusher([this] { FireDeferredCallbacks(); });
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryId> roots;
  roots.reserve(queries.size());
  for (EntangledQuery& query : queries) {
    auto state = RegisterLocked(std::move(query));
    roots.push_back(state->id);
    handles.push_back(EntangledHandle(std::move(state)));
  }
  ++stats_.batches;
  stats_.batched_queries += roots.size();
  // One matching round over the whole batch: the first root already
  // sees every batch member in the pool, so a complete group closes
  // on its first TryMatch instead of after N partial attempts.
  auto satisfied = MatchAndInstallLocked(roots);
  if (!satisfied.ok()) {
    // The caller gets no handles back, so withdraw every member still
    // pending — otherwise the batch would keep matching as phantom
    // queries nobody can observe or cancel. Members whose group
    // already installed before the failure stay installed (the commit
    // is the point of no return); WithdrawLocked is a NotFound no-op
    // for them.
    for (QueryId root : roots) {
      (void)WithdrawLocked(root, satisfied.status());
    }
    return satisfied.status();
  }
  return handles;
}

void Coordinator::CompleteLocked(
    const std::shared_ptr<EntangledHandle::State>& state, Status outcome,
    std::vector<Tuple> answers) {
  DeferredNotification notification;
  notification.state = state;
  {
    std::lock_guard<std::mutex> hlock(state->mu);
    state->done = true;
    state->outcome = std::move(outcome);
    state->answers = std::move(answers);
    state->completed_at = std::chrono::steady_clock::now();
    notification.callbacks = std::move(state->callbacks);
    state->callbacks.clear();
  }
  state->cv.notify_all();
  if (!notification.callbacks.empty()) {
    deferred_.push_back(std::move(notification));
  }
}

void Coordinator::FireDeferredCallbacks() {
  std::vector<DeferredNotification> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(deferred_);
  }
  for (DeferredNotification& notification : batch) {
    EntangledHandle handle(notification.state);
    for (EntangledHandle::CompletionCallback& callback :
         notification.callbacks) {
      // Deferred delivery runs inside CallbackFlusher's destructor; an
      // escaping exception would terminate the process and drop the
      // rest of the batch. Swallow and log, matching the
      // already-done registration path.
      try {
        callback(handle);
      } catch (const std::exception& e) {
        YOUTOPIA_LOG(kError) << "OnComplete callback threw: " << e.what();
      } catch (...) {
        YOUTOPIA_LOG(kError) << "OnComplete callback threw";
      }
      callback_counters_->fired.fetch_add(1);
    }
  }
}

Status Coordinator::WithdrawLocked(QueryId id, Status outcome) {
  auto query = pool_.Remove(id);
  if (query == nullptr) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not pending");
  }
  ++stats_.cancelled;
  arrivals_.erase(id);
  auto it = handles_.find(id);
  if (it != handles_.end()) {
    CompleteLocked(it->second, std::move(outcome), {});
    handles_.erase(it);
  }
  return Status::OK();
}

Status Coordinator::Cancel(QueryId id) {
  CallbackFlusher flusher([this] { FireDeferredCallbacks(); });
  std::lock_guard<std::mutex> lock(mu_);
  return WithdrawLocked(id, Status::Aborted("query cancelled"));
}

Result<size_t> Coordinator::ExpireOlderThan(
    std::chrono::milliseconds max_age) {
  CallbackFlusher flusher([this] { FireDeferredCallbacks(); });
  std::lock_guard<std::mutex> lock(mu_);
  const auto cutoff = std::chrono::steady_clock::now() - max_age;
  std::vector<QueryId> expired;
  for (const auto& [id, arrival] : arrivals_) {
    if (arrival <= cutoff && pool_.Contains(id)) expired.push_back(id);
  }
  for (QueryId id : expired) {
    YOUTOPIA_RETURN_IF_ERROR(WithdrawLocked(
        id, Status::TimedOut("entangled query expired without a partner")));
  }
  return expired.size();
}

Result<size_t> Coordinator::RetriggerDependentsOf(const std::string& table) {
  CallbackFlusher flusher([this] { FireDeferredCallbacks(); });
  std::lock_guard<std::mutex> lock(mu_);
  size_t satisfied = 0;
  for (QueryId id : pool_.QueriesWithDomainOn(table)) {
    if (!pool_.Contains(id)) continue;
    auto n = MatchAndInstallLocked({id});
    if (!n.ok()) return n.status();
    satisfied += n.value();
  }
  return satisfied;
}

Result<size_t> Coordinator::RetriggerAll() {
  CallbackFlusher flusher([this] { FireDeferredCallbacks(); });
  std::lock_guard<std::mutex> lock(mu_);
  size_t satisfied = 0;
  // Snapshot ids up front; matches mutate the pool.
  for (QueryId id : pool_.AllIds()) {
    if (!pool_.Contains(id)) continue;  // satisfied by an earlier round
    auto n = MatchAndInstallLocked({id});
    if (!n.ok()) return n.status();
    satisfied += n.value();
  }
  return satisfied;
}

Result<size_t> Coordinator::MatchAndInstallLocked(
    const std::vector<QueryId>& roots) {
  size_t satisfied = 0;
  // Worklist of match roots: the triggering queries first, then queries
  // whose constraints touch relations that received new answers.
  std::deque<QueryId> worklist(roots.begin(), roots.end());
  while (!worklist.empty()) {
    const QueryId root = worklist.front();
    worklist.pop_front();
    if (!pool_.Contains(root)) continue;

    const auto start = std::chrono::steady_clock::now();
    auto match = matcher_.TryMatch(root, pool_);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    ++stats_.match_calls;
    stats_.match_micros_total += static_cast<uint64_t>(elapsed.count());
    if (!match.ok()) return match.status();
    if (!match->has_value()) continue;

    const MatchResult& result = match->value();
    stats_.search_steps_total += result.steps;
    auto installed = InstallLocked(result);
    if (!installed.ok()) return installed.status();
    if (!installed.value()) continue;  // install aborted; stays pending

    satisfied += result.group.size();
    ++stats_.matched_groups;
    stats_.matched_queries += result.group.size();
    stats_.constraints_from_stored += result.from_stored;

    // New answers may unblock pending queries — but only those with a
    // constraint that the newly installed tuples could satisfy. The
    // prefilter keeps retriggering O(affected) instead of O(pool),
    // which is what makes the loaded-system demo scale (paper §3).
    ++stats_.retrigger_rounds;
    for (const auto& [relation, tuple] : result.installed) {
      for (QueryId qid : pool_.QueriesUnblockedBy(relation, tuple)) {
        worklist.push_back(qid);
      }
    }
  }
  return satisfied;
}

Result<bool> Coordinator::InstallLocked(const MatchResult& match) {
  auto txn = txn_manager_->Begin();
  Status status = Status::OK();

  for (const QueryId qid : match.group) {
    auto query = pool_.Get(qid);
    if (query == nullptr) {
      status = Status::Internal("matched query " + std::to_string(qid) +
                                " vanished from the pool");
      break;
    }
    const auto& tuples = match.answers.at(qid);
    for (size_t h = 0; h < query->heads.size() && status.ok(); ++h) {
      status = answers_.Install(txn.get(), txn_manager_,
                                query->heads[h].relation, tuples[h]);
    }
    if (!status.ok()) break;
  }

  if (status.ok() && install_hook_) {
    status = install_hook_(txn.get(), txn_manager_, match);
  }

  if (!status.ok()) {
    ++stats_.failed_installs;
    YOUTOPIA_LOG(kInfo) << "coordination install aborted: "
                        << status.ToString();
    Status abort = txn_manager_->Abort(txn.get());
    if (!abort.ok()) return abort;
    return false;
  }

  YOUTOPIA_RETURN_IF_ERROR(txn_manager_->Commit(txn.get()));

  // Point of no return: complete the group.
  for (const QueryId qid : match.group) {
    pool_.Remove(qid);
    arrivals_.erase(qid);
    auto it = handles_.find(qid);
    if (it == handles_.end()) continue;
    CompleteLocked(it->second, Status::OK(), match.answers.at(qid));
    handles_.erase(it);
  }
  return true;
}

size_t Coordinator::pending_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_.size();
}

std::vector<PendingQueryInfo> Coordinator::Pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  std::vector<PendingQueryInfo> out;
  for (QueryId id : pool_.AllIds()) {
    auto query = pool_.Get(id);
    PendingQueryInfo info;
    info.id = id;
    info.owner = query->owner;
    info.sql = query->sql;
    info.ir = query->ToString();
    auto arrival = arrivals_.find(id);
    if (arrival != arrivals_.end()) {
      info.age_micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - arrival->second)
              .count());
    }
    out.push_back(std::move(info));
  }
  return out;
}

MatchGraph Coordinator::BuildGraph() const {
  std::lock_guard<std::mutex> lock(mu_);
  return BuildMatchGraph(pool_);
}

std::string Coordinator::RenderGraph() const {
  std::lock_guard<std::mutex> lock(mu_);
  return BuildMatchGraph(pool_).ToString(pool_);
}

CoordinatorStats Coordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CoordinatorStats snapshot = stats_;
  snapshot.callbacks_registered = callback_counters_->registered.load();
  snapshot.callbacks_fired = callback_counters_->fired.load();
  return snapshot;
}

void Coordinator::SetInstallHook(InstallHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  install_hook_ = std::move(hook);
}

}  // namespace youtopia
