#include "entangle/coordinator.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "common/string_util.h"

namespace youtopia {

QueryId EntangledHandle::id() const {
  // id is immutable once the state is shared; no lock needed.
  return state_->id;
}

bool EntangledHandle::Done() const {
  MutexLock lock(state_->mu);
  return state_->done;
}

std::optional<Status> EntangledHandle::Outcome() const {
  MutexLock lock(state_->mu);
  return state_->outcome;
}

Status EntangledHandle::Wait(std::chrono::milliseconds timeout) const {
  MutexLock lock(state_->mu);
  if (!state_->cv.WaitFor(state_->mu, timeout,
                          [this] { return state_->done; })) {
    return Status::TimedOut("entangled query " + std::to_string(state_->id) +
                            " still pending");
  }
  return *state_->outcome;
}

void EntangledHandle::OnComplete(CompletionCallback callback) {
  if (!callback) return;
  {
    MutexLock lock(state_->mu);
    if (state_->counters) state_->counters->registered.fetch_add(1);
    if (!state_->done) {
      // Parked; whoever completes the query delivers it (outside the
      // coordinator locks).
      state_->callbacks.push_back(std::move(callback));
      return;
    }
  }
  // Already done: deliver immediately in the registering thread. A
  // throwing callback must not differ between this path and deferred
  // delivery (which would otherwise terminate), so both swallow and
  // log — completion callbacks are expected not to throw.
  try {
    callback(*this);
  } catch (const std::exception& e) {
    YOUTOPIA_LOG(kError) << "OnComplete callback threw: " << e.what();
  } catch (...) {
    YOUTOPIA_LOG(kError) << "OnComplete callback threw";
  }
  if (state_->counters) state_->counters->fired.fetch_add(1);
}

std::vector<Tuple> EntangledHandle::Answers() const {
  MutexLock lock(state_->mu);
  return state_->answers;
}

std::optional<std::chrono::steady_clock::time_point>
EntangledHandle::CompletedAt() const {
  MutexLock lock(state_->mu);
  if (!state_->done) return std::nullopt;
  return state_->completed_at;
}

EntangledHandle DetachedHandles::Create(QueryId id) {
  auto state = std::make_shared<EntangledHandle::State>();
  state->id = id;
  return EntangledHandle(std::move(state));
}

void DetachedHandles::Complete(const EntangledHandle& handle, Status outcome,
                               std::vector<Tuple> answers) {
  const std::shared_ptr<EntangledHandle::State>& state = handle.state_;
  std::vector<EntangledHandle::CompletionCallback> callbacks;
  {
    MutexLock lock(state->mu);
    if (state->done) return;
    state->done = true;
    state->outcome = std::move(outcome);
    state->answers = std::move(answers);
    state->completed_at = std::chrono::steady_clock::now();
    callbacks = std::move(state->callbacks);
    state->callbacks.clear();
  }
  state->cv.NotifyAll();
  EntangledHandle done(state);
  for (EntangledHandle::CompletionCallback& callback : callbacks) {
    // Same exception policy as coordinator-driven delivery: swallow and
    // log, so one throwing callback cannot drop the rest.
    try {
      callback(done);
    } catch (const std::exception& e) {
      YOUTOPIA_LOG(kError) << "OnComplete callback threw: " << e.what();
    } catch (...) {
      YOUTOPIA_LOG(kError) << "OnComplete callback threw";
    }
    if (state->counters) state->counters->fired.fetch_add(1);
  }
}

namespace {

/// Runs a Coordinator's deferred completion callbacks on scope exit.
/// Declared BEFORE any lock acquisition in every mutating entry point
/// so the flush happens after the locks are released, on success and
/// error paths alike (destruction order is the reverse of declaration).
class CallbackFlusher {
 public:
  using Flush = std::function<void()>;
  explicit CallbackFlusher(Flush flush) : flush_(std::move(flush)) {}
  ~CallbackFlusher() { flush_(); }
  CallbackFlusher(const CallbackFlusher&) = delete;
  CallbackFlusher& operator=(const CallbackFlusher&) = delete;

 private:
  Flush flush_;
};

/// Field-wise sum of the per-shard-attributable counters.
void AccumulateStats(CoordinatorStats* into, const CoordinatorStats& from) {
  into->submitted += from.submitted;
  into->matched_queries += from.matched_queries;
  into->matched_groups += from.matched_groups;
  into->cancelled += from.cancelled;
  into->failed_installs += from.failed_installs;
  into->retrigger_rounds += from.retrigger_rounds;
  into->constraints_from_stored += from.constraints_from_stored;
  into->match_calls += from.match_calls;
  into->match_micros_total += from.match_micros_total;
  into->search_steps_total += from.search_steps_total;
  into->shard_rounds += from.shard_rounds;
  into->global_rounds += from.global_rounds;
  into->cross_shard_queries += from.cross_shard_queries;
}

}  // namespace

Coordinator::Coordinator(StorageEngine* storage, TxnManager* txn_manager,
                         CoordinatorConfig config)
    : storage_(storage),
      txn_manager_(txn_manager),
      config_(config),
      answers_(storage, config.auto_create_answer_tables),
      callback_counters_(
          std::make_shared<EntangledHandle::CallbackCounters>()) {
  const size_t num_shards =
      std::min<size_t>(64, std::max<size_t>(1, config.num_shards));
  config_.num_shards = num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>(i);
    // Each shard matches with its own Matcher (the CHOOSE-1 rng is
    // stateful); shard 0 keeps the configured seed so a single-shard
    // coordinator reproduces the seed's choices exactly.
    MatchConfig match = config.match;
    match.rng_seed = config.match.rng_seed + i;
    shard->matcher = std::make_unique<Matcher>(storage_, match);
    shards_.push_back(std::move(shard));
  }
}

size_t Coordinator::ShardOfRelation(const std::string& relation) const {
  if (shards_.size() == 1) return 0;
  // Same ToLowerAscii normalization as the PendingPool indexes — mixed
  // case spellings of one relation must land on one shard.
  return std::hash<std::string>{}(ToLowerAscii(relation)) % shards_.size();
}

Coordinator::Route Coordinator::RouteOf(const EntangledQuery& query) const {
  std::vector<std::string> relations;
  relations.reserve(query.heads.size() + query.constraints.size());
  for (const AnswerAtom& head : query.heads) {
    relations.push_back(ToLowerAscii(head.relation));
  }
  for (const AnswerAtom& constraint : query.constraints) {
    relations.push_back(ToLowerAscii(constraint.relation));
  }
  Route route;
  if (relations.empty()) return route;
  // Home shard = shard of the lexicographically smallest relation:
  // deterministic regardless of head/constraint order, so symmetric
  // partners (A constrains on B's head relation and vice versa) always
  // agree on where to meet.
  route.home =
      ShardOfRelation(*std::min_element(relations.begin(), relations.end()));
  for (const std::string& relation : relations) {
    if (ShardOfRelation(relation) != route.home) {
      route.spanning = true;
      break;
    }
  }
  return route;
}

size_t Coordinator::HomeShardOf(const EntangledQuery& query) const {
  return RouteOf(query).home;
}

std::vector<Coordinator::Shard*> Coordinator::AllShards() const {
  std::vector<Shard*> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard.get());
  return out;
}

std::shared_ptr<EntangledHandle::State> Coordinator::RegisterLocked(
    size_t shard_idx, EntangledQuery query, bool spanning) {
  Shard* shard = shards_[shard_idx].get();
  query.id = next_id_.fetch_add(1);
  const QueryId id = query.id;

  auto state = std::make_shared<EntangledHandle::State>();
  state->id = id;
  state->counters = callback_counters_;
  shard->handles.emplace(id, state);
  shard->arrivals.emplace(id, std::chrono::steady_clock::now());
  shard->pool.Add(std::make_shared<const EntangledQuery>(std::move(query)));
  ++shard->stats.submitted;
  if (spanning) {
    ++shard->stats.cross_shard_queries;
    cross_shard_pending_.fetch_add(1);
  }
  {
    MutexLock rlock(router_mu_);
    shard_of_[id] = Route{shard_idx, spanning};
  }
  return state;
}

std::optional<Coordinator::Route> Coordinator::TakeRouting(QueryId id) {
  MutexLock rlock(router_mu_);
  auto it = shard_of_.find(id);
  if (it == shard_of_.end()) return std::nullopt;
  Route route = it->second;
  shard_of_.erase(it);
  return route;
}

Result<std::vector<std::shared_ptr<EntangledHandle::State>>>
Coordinator::SubmitRoundRouted(std::vector<EntangledQuery> queries,
                               const std::vector<Route>& routes,
                               size_t home_idx, bool force_global,
                               Deferred* deferred) {
  Shard* home = shards_[home_idx].get();
  MovableMutexLock lock;
  std::vector<MovableMutexLock> locks;
  std::vector<Shard*> footprint;
  bool global = force_global;
  if (!global) {
    lock = MovableMutexLock(home->mu);
    // cross_shard_pending_ only increments with every shard mutex held,
    // so reading 0 under our own mutex guarantees no cross-shard query
    // can appear until this round finishes: the whole match-graph
    // neighbourhood of a shard-local query lives in this shard. When a
    // cross-shard query IS pending the round must see the merged pool,
    // and when an install hook is registered rounds must be mutually
    // exclusive (see hook_installed_) — drop the shard lock and
    // escalate in either case.
    global = cross_shard_pending_.load() > 0 || hook_installed_.load();
    if (global) lock.Unlock();
  }
  if (global) {
    locks.reserve(shards_.size());
    for (const auto& shard : shards_) locks.emplace_back(shard->mu);
    footprint = AllShards();
  } else {
    footprint = {home};
  }

  std::vector<std::shared_ptr<EntangledHandle::State>> states;
  std::vector<QueryId> roots;
  std::vector<size_t> homes;
  states.reserve(queries.size());
  roots.reserve(queries.size());
  homes.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t target = global ? routes[i].home : home_idx;
    auto state =
        RegisterLocked(target, std::move(queries[i]), routes[i].spanning);
    roots.push_back(state->id);
    homes.push_back(target);
    states.push_back(std::move(state));
  }
  // Journal the registrations before any matching: a query the log has
  // not seen must never match (its group would be unrecoverable). On
  // append failure withdraw everything this call registered, exactly as
  // for a failed matching round below.
  if (CoordinatorJournal* journal = journal_.load()) {
    Status logged = Status::OK();
    for (size_t i = 0; i < roots.size() && logged.ok(); ++i) {
      auto query = shards_[homes[i]]->pool.Get(roots[i]);
      logged = journal->Submitted(*query);
    }
    if (!logged.ok()) {
      for (size_t i = 0; i < roots.size(); ++i) {
        (void)WithdrawLocked(shards_[homes[i]].get(), roots[i], logged,
                             deferred);
      }
      return logged;
    }
  }

  ++(global ? home->stats.global_rounds : home->stats.shard_rounds);
  auto satisfied = MatchAndInstallLocked(footprint, home, roots, deferred);
  if (!satisfied.ok()) {
    // Don't strand the registrations: the caller gets no handles back,
    // so a query left in the pool could later match with nobody able
    // to observe or cancel it. (NotFound here just means the round
    // already satisfied it before failing elsewhere.)
    for (size_t i = 0; i < roots.size(); ++i) {
      (void)WithdrawLocked(shards_[homes[i]].get(), roots[i],
                           satisfied.status(), deferred);
    }
    return satisfied.status();
  }
  return states;
}

Result<EntangledHandle> Coordinator::Submit(EntangledQuery query) {
  if (query.heads.empty()) {
    return Status::InvalidArgument("entangled query has no heads");
  }
  const Route route = RouteOf(query);
  Deferred deferred;
  CallbackFlusher flusher([this, &deferred] { FireCallbacks(&deferred); });
  std::vector<EntangledQuery> one;
  one.push_back(std::move(query));
  auto states = SubmitRoundRouted(std::move(one), {route}, route.home,
                                  /*force_global=*/route.spanning, &deferred);
  if (!states.ok()) return states.status();
  return EntangledHandle(states->front());
}

Result<std::vector<EntangledHandle>> Coordinator::SubmitAll(
    std::vector<EntangledQuery> queries) {
  std::vector<Route> routes;
  routes.reserve(queries.size());
  bool any_spanning = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].heads.empty()) {
      return Status::InvalidArgument("entangled query " + std::to_string(i) +
                                     " in batch has no heads");
    }
    routes.push_back(RouteOf(queries[i]));
    any_spanning = any_spanning || routes.back().spanning;
  }
  batches_.fetch_add(1);
  batched_queries_.fetch_add(queries.size());

  std::vector<EntangledHandle> handles;
  handles.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    handles.push_back(EntangledHandle(nullptr));
  }
  Deferred deferred;
  CallbackFlusher flusher([this, &deferred] { FireCallbacks(&deferred); });
  /// Ids registered by completed sub-batches, so a later sub-batch's
  /// error can withdraw the whole batch (members whose group already
  /// installed stay installed; for them withdrawal is a NotFound
  /// no-op). The failing sub-batch withdraws its own registrations.
  std::vector<QueryId> registered;

  // One matching round per sub-batch: the first root already sees every
  // member of its sub-batch in the pool, so a complete group closes on
  // its first TryMatch instead of after N partial attempts.
  auto run_subbatch = [&](const std::vector<size_t>& indices, size_t home_idx,
                          bool force_global) -> Status {
    std::vector<EntangledQuery> subbatch;
    std::vector<Route> subroutes;
    subbatch.reserve(indices.size());
    subroutes.reserve(indices.size());
    for (size_t i : indices) {
      subbatch.push_back(std::move(queries[i]));
      subroutes.push_back(routes[i]);
    }
    auto states = SubmitRoundRouted(std::move(subbatch), subroutes, home_idx,
                                    force_global, &deferred);
    if (!states.ok()) return states.status();
    for (size_t j = 0; j < indices.size(); ++j) {
      registered.push_back((*states)[j]->id);
      handles[indices[j]] = EntangledHandle(std::move((*states)[j]));
    }
    return Status::OK();
  };

  Status status = Status::OK();
  if (any_spanning) {
    // The batch itself crosses shards: take one global round over the
    // whole batch, attributed to the first member's home shard.
    std::vector<size_t> all(queries.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    status = run_subbatch(all, routes.front().home, /*force_global=*/true);
  } else {
    // Group members by home shard, preserving submission order within
    // each shard, and run one round per touched shard.
    std::map<size_t, std::vector<size_t>> by_shard;
    for (size_t i = 0; i < queries.size(); ++i) {
      by_shard[routes[i].home].push_back(i);
    }
    for (const auto& [home_idx, indices] : by_shard) {
      status = run_subbatch(indices, home_idx, /*force_global=*/false);
      if (!status.ok()) break;
    }
  }

  if (!status.ok()) {
    // The caller gets no handles back, so withdraw every member of the
    // earlier sub-batches still pending — otherwise the batch would
    // keep matching as phantom queries nobody can observe or cancel.
    for (QueryId id : registered) {
      (void)WithdrawPending(id, status, &deferred);
    }
    return status;
  }
  return handles;
}

void Coordinator::Complete(
    const std::shared_ptr<EntangledHandle::State>& state, Status outcome,
    std::vector<Tuple> answers, Deferred* deferred) {
  DeferredNotification notification;
  notification.state = state;
  {
    MutexLock hlock(state->mu);
    state->done = true;
    state->outcome = std::move(outcome);
    state->answers = std::move(answers);
    state->completed_at = std::chrono::steady_clock::now();
    notification.callbacks = std::move(state->callbacks);
    state->callbacks.clear();
  }
  state->cv.NotifyAll();
  if (!notification.callbacks.empty()) {
    deferred->push_back(std::move(notification));
  }
}

void Coordinator::FireCallbacks(Deferred* deferred) {
  for (DeferredNotification& notification : *deferred) {
    EntangledHandle handle(notification.state);
    for (EntangledHandle::CompletionCallback& callback :
         notification.callbacks) {
      // Deferred delivery runs inside CallbackFlusher's destructor; an
      // escaping exception would terminate the process and drop the
      // rest of the batch. Swallow and log, matching the already-done
      // registration path.
      try {
        callback(handle);
      } catch (const std::exception& e) {
        YOUTOPIA_LOG(kError) << "OnComplete callback threw: " << e.what();
      } catch (...) {
        YOUTOPIA_LOG(kError) << "OnComplete callback threw";
      }
      callback_counters_->fired.fetch_add(1);
    }
  }
  deferred->clear();
}

Status Coordinator::WithdrawLocked(Shard* shard, QueryId id, Status outcome,
                                   Deferred* deferred) {
  auto query = shard->pool.Remove(id);
  if (query == nullptr) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not pending");
  }
  ++shard->stats.cancelled;
  // Journal the resolution so replay does not resurrect a query whose
  // owner already saw it terminate. Failure is tolerable here — see the
  // CoordinatorJournal::Resolved contract — so the withdrawal proceeds.
  if (CoordinatorJournal* journal = journal_.load()) {
    Status logged = journal->Resolved(id, outcome);
    if (!logged.ok()) {
      YOUTOPIA_LOG(kWarning) << "journal resolve for query " << id
                             << " failed: " << logged.ToString();
    }
  }
  shard->arrivals.erase(id);
  auto routing = TakeRouting(id);
  if (routing.has_value() && routing->spanning) {
    cross_shard_pending_.fetch_sub(1);
  }
  auto it = shard->handles.find(id);
  if (it != shard->handles.end()) {
    Complete(it->second, std::move(outcome), {}, deferred);
    shard->handles.erase(it);
  }
  return Status::OK();
}

Status Coordinator::WithdrawPending(QueryId id, Status outcome,
                                    Deferred* deferred) {
  size_t shard_idx = 0;
  {
    MutexLock rlock(router_mu_);
    auto it = shard_of_.find(id);
    if (it == shard_of_.end()) {
      return Status::NotFound("query " + std::to_string(id) +
                              " is not pending");
    }
    shard_idx = it->second.home;
  }
  // The query may complete between the lookup and the shard lock;
  // WithdrawLocked then reports NotFound.
  Shard* shard = shards_[shard_idx].get();
  MutexLock lock(shard->mu);
  return WithdrawLocked(shard, id, std::move(outcome), deferred);
}

Status Coordinator::Cancel(QueryId id) {
  Deferred deferred;
  CallbackFlusher flusher([this, &deferred] { FireCallbacks(&deferred); });
  return WithdrawPending(id, Status::Aborted("query cancelled"), &deferred);
}

Result<size_t> Coordinator::ExpireOlderThan(
    std::chrono::milliseconds max_age) {
  Deferred deferred;
  CallbackFlusher flusher([this, &deferred] { FireCallbacks(&deferred); });
  const auto cutoff = std::chrono::steady_clock::now() - max_age;
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    MutexLock lock(shard->mu);
    std::vector<QueryId> expired;
    for (const auto& [id, arrival] : shard->arrivals) {
      if (arrival <= cutoff && shard->pool.Contains(id)) {
        expired.push_back(id);
      }
    }
    for (QueryId id : expired) {
      YOUTOPIA_RETURN_IF_ERROR(WithdrawLocked(
          shard, id,
          Status::TimedOut("entangled query expired without a partner"),
          &deferred));
    }
    total += expired.size();
  }
  return total;
}

Result<size_t> Coordinator::Retrigger(
    const std::function<std::vector<QueryId>(const PendingPool&)>& ids,
    Deferred* deferred) {
  // All-shard fallback while cross-shard queries are pending (or a
  // hook is registered): every round must see the merged pool. Resumes
  // the sweep at `from_shard` — earlier shards were already processed
  // locally, and their remaining queries gained nothing since.
  // Dynamic lock sets (a vector of shard locks, an early-release home
  // lock) that the static analysis cannot follow; the rank validator
  // checks the acquisition order at runtime instead.
  auto global_retrigger = [&](size_t from_shard) NO_THREAD_SAFETY_ANALYSIS
      -> Result<size_t> {
    std::vector<MovableMutexLock> locks;
    locks.reserve(shards_.size());
    for (const auto& shard : shards_) locks.emplace_back(shard->mu);
    const std::vector<Shard*> all = AllShards();
    size_t satisfied = 0;
    for (size_t s = from_shard; s < shards_.size(); ++s) {
      Shard* shard = shards_[s].get();
      // Snapshot ids up front; matches mutate the pools.
      for (QueryId id : ids(shard->pool)) {
        if (!shard->pool.Contains(id)) continue;  // earlier round took it
        ++shard->stats.global_rounds;
        auto n = MatchAndInstallLocked(all, shard, {id}, deferred);
        if (!n.ok()) return n.status();
        satisfied += n.value();
      }
    }
    return satisfied;
  };

  size_t satisfied = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard* shard = shards_[s].get();
    MovableMutexLock lock(shard->mu);
    if (cross_shard_pending_.load() > 0 || hook_installed_.load()) {
      lock.Unlock();
      auto n = global_retrigger(s);
      if (!n.ok()) return n.status();
      return satisfied + n.value();
    }
    for (QueryId id : ids(shard->pool)) {
      if (!shard->pool.Contains(id)) continue;  // satisfied earlier
      ++shard->stats.shard_rounds;
      auto n = MatchAndInstallLocked({shard}, shard, {id}, deferred);
      if (!n.ok()) return n.status();
      satisfied += n.value();
    }
  }
  return satisfied;
}

Result<size_t> Coordinator::RetriggerDependentsOf(const std::string& table) {
  Deferred deferred;
  CallbackFlusher flusher([this, &deferred] { FireCallbacks(&deferred); });
  return Retrigger(
      [&table](const PendingPool& pool) {
        return pool.QueriesWithDomainOn(table);
      },
      &deferred);
}

Result<size_t> Coordinator::RetriggerAll() {
  Deferred deferred;
  CallbackFlusher flusher([this, &deferred] { FireCallbacks(&deferred); });
  return Retrigger([](const PendingPool& pool) { return pool.AllIds(); },
                   &deferred);
}

Result<size_t> Coordinator::MatchAndInstallLocked(
    const std::vector<Shard*>& shards, Shard* home,
    const std::vector<QueryId>& roots, Deferred* deferred) {
  std::vector<const PendingPool*> pools;
  pools.reserve(shards.size());
  for (Shard* shard : shards) pools.push_back(&shard->pool);
  const MergedPendingView merged(pools);
  // Live view over the locked footprint; installs below mutate the
  // underlying pools and the view follows.
  const PendingView& view =
      shards.size() == 1 ? static_cast<const PendingView&>(shards[0]->pool)
                         : static_cast<const PendingView&>(merged);

  size_t satisfied = 0;
  // Worklist of match roots: the triggering queries first, then queries
  // whose constraints touch relations that received new answers.
  std::deque<QueryId> worklist(roots.begin(), roots.end());
  while (!worklist.empty()) {
    const QueryId root = worklist.front();
    worklist.pop_front();
    if (!view.Contains(root)) continue;

    const auto start = std::chrono::steady_clock::now();
    auto match = home->matcher->TryMatch(root, view);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    ++home->stats.match_calls;
    home->stats.match_micros_total += static_cast<uint64_t>(elapsed.count());
    if (!match.ok()) return match.status();
    if (!match->has_value()) continue;

    const MatchResult& result = match->value();
    home->stats.search_steps_total += result.steps;
    auto installed = InstallLocked(shards, home, result, deferred);
    if (!installed.ok()) return installed.status();
    if (!installed.value()) continue;  // install aborted; stays pending

    satisfied += result.group.size();
    ++home->stats.matched_groups;
    home->stats.matched_queries += result.group.size();
    home->stats.constraints_from_stored += result.from_stored;

    // New answers may unblock pending queries — but only those with a
    // constraint that the newly installed tuples could satisfy. The
    // prefilter keeps retriggering O(affected) instead of O(pool),
    // which is what makes the loaded-system demo scale (paper §3).
    ++home->stats.retrigger_rounds;
    for (const auto& [relation, tuple] : result.installed) {
      for (QueryId qid : view.QueriesUnblockedBy(relation, tuple)) {
        worklist.push_back(qid);
      }
    }
  }
  return satisfied;
}

Result<bool> Coordinator::InstallLocked(const std::vector<Shard*>& shards,
                                        Shard* home, const MatchResult& match,
                                        Deferred* deferred) {
  InstallHook hook;
  {
    MutexLock hlock(hook_mu_);
    hook = install_hook_;
  }
  // A hook may write tables shared across shards; serialize those
  // installs so concurrent shard rounds cannot 2PL-conflict and strand
  // a matched group (see install_txn_mu_).
  MovableMutexLock serial;
  if (hook) serial = MovableMutexLock(install_txn_mu_);

  auto txn = txn_manager_->Begin();
  Status status = Status::OK();

  auto find_query = [&shards](QueryId qid) {
    std::shared_ptr<const EntangledQuery> query;
    for (Shard* shard : shards) {
      query = shard->pool.Get(qid);
      if (query != nullptr) break;
    }
    return query;
  };

  for (const QueryId qid : match.group) {
    auto query = find_query(qid);
    if (query == nullptr) {
      status = Status::Internal("matched query " + std::to_string(qid) +
                                " vanished from the pool");
      break;
    }
    const auto& tuples = match.answers.at(qid);
    for (size_t h = 0; h < query->heads.size() && status.ok(); ++h) {
      status = answers_.Install(txn.get(), txn_manager_,
                                query->heads[h].relation, tuples[h]);
    }
    if (!status.ok()) break;
  }

  if (status.ok() && hook) {
    status = hook(txn.get(), txn_manager_, match);
  }

  if (!status.ok()) {
    ++home->stats.failed_installs;
    YOUTOPIA_LOG(kInfo) << "coordination install aborted: "
                        << status.ToString();
    Status abort = txn_manager_->Abort(txn.get());
    if (!abort.ok()) return abort;
    return false;
  }

  // Journal the whole coordination — group resolution plus the
  // transaction's tuple writes — as ONE record, before the commit makes
  // the writes visible. If the append fails the transaction aborts and
  // the group stays pending: a matched group is never half-durable.
  if (CoordinatorJournal* journal = journal_.load()) {
    Status logged = journal->Installed(match.group, *txn);
    if (!logged.ok()) {
      ++home->stats.failed_installs;
      YOUTOPIA_LOG(kError) << "coordination install not journaled, aborting: "
                           << logged.ToString();
      Status abort = txn_manager_->Abort(txn.get());
      if (!abort.ok()) return abort;
      return false;
    }
  }

  YOUTOPIA_RETURN_IF_ERROR(txn_manager_->Commit(txn.get()));

  // Point of no return: complete the group, each member in its shard.
  for (const QueryId qid : match.group) {
    for (Shard* shard : shards) {
      auto query = shard->pool.Remove(qid);
      if (query == nullptr) continue;
      shard->arrivals.erase(qid);
      auto routing = TakeRouting(qid);
      if (routing.has_value() && routing->spanning) {
        cross_shard_pending_.fetch_sub(1);
      }
      auto it = shard->handles.find(qid);
      if (it != shard->handles.end()) {
        Complete(it->second, Status::OK(), match.answers.at(qid), deferred);
        shard->handles.erase(it);
      }
      break;
    }
  }
  return true;
}

size_t Coordinator::pending_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->pool.size();
  }
  return total;
}

std::vector<PendingQueryInfo> Coordinator::Pending() const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<PendingQueryInfo> out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (QueryId id : shard->pool.AllIds()) {
      auto query = shard->pool.Get(id);
      PendingQueryInfo info;
      info.id = id;
      info.owner = query->owner;
      info.sql = query->sql;
      info.ir = query->ToString();
      auto arrival = shard->arrivals.find(id);
      if (arrival != shard->arrivals.end()) {
        info.age_micros = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - arrival->second)
                .count());
      }
      out.push_back(std::move(info));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PendingQueryInfo& a, const PendingQueryInfo& b) {
              return a.id < b.id;
            });
  return out;
}

MatchGraph Coordinator::BuildGraph() const {
  std::vector<MovableMutexLock> locks;
  locks.reserve(shards_.size());
  std::vector<const PendingPool*> pools;
  pools.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
    pools.push_back(&shard->pool);
  }
  return BuildMatchGraph(MergedPendingView(std::move(pools)));
}

std::string Coordinator::RenderGraph() const {
  std::vector<MovableMutexLock> locks;
  locks.reserve(shards_.size());
  std::vector<const PendingPool*> pools;
  pools.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
    pools.push_back(&shard->pool);
  }
  const MergedPendingView view(std::move(pools));
  return BuildMatchGraph(view).ToString(view);
}

CoordinatorStats Coordinator::stats() const {
  CoordinatorStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    AccumulateStats(&total, shard->stats);
  }
  total.batches = batches_.load();
  total.batched_queries = batched_queries_.load();
  total.callbacks_registered = callback_counters_->registered.load();
  total.callbacks_fired = callback_counters_->fired.load();
  return total;
}

std::vector<Coordinator::ShardInfo> Coordinator::ShardInfos() const {
  std::vector<ShardInfo> out;
  out.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    MutexLock lock(shards_[i]->mu);
    ShardInfo info;
    info.shard = i;
    info.pending = shards_[i]->pool.size();
    info.stats = shards_[i]->stats;
    out.push_back(std::move(info));
  }
  return out;
}

void Coordinator::SetJournal(CoordinatorJournal* journal) {
  journal_.store(journal);
}

Status Coordinator::RestorePending(EntangledQuery query) {
  if (query.heads.empty()) {
    return Status::InvalidArgument("entangled query has no heads");
  }
  if (query.id == 0) {
    return Status::InvalidArgument(
        "restored query must carry its original id");
  }
  const Route route = RouteOf(query);
  const QueryId id = query.id;

  // cross_shard_pending_ may only increment with every shard mutex
  // held (shard-local rounds rely on it); restoration is normally
  // single-threaded, but keep the invariant anyway.
  std::vector<MovableMutexLock> locks;
  MovableMutexLock lock;
  if (route.spanning) {
    locks.reserve(shards_.size());
    for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  } else {
    lock = MovableMutexLock(shards_[route.home]->mu);
  }
  Shard* shard = shards_[route.home].get();
  if (shard->pool.Contains(id)) {
    return Status::AlreadyExists("query " + std::to_string(id) +
                                 " is already pending");
  }

  auto state = std::make_shared<EntangledHandle::State>();
  state->id = id;
  state->counters = callback_counters_;
  shard->handles.emplace(id, state);
  shard->arrivals.emplace(id, std::chrono::steady_clock::now());
  shard->pool.Add(std::make_shared<const EntangledQuery>(std::move(query)));
  ++shard->stats.submitted;
  if (route.spanning) {
    ++shard->stats.cross_shard_queries;
    cross_shard_pending_.fetch_add(1);
  }
  {
    MutexLock rlock(router_mu_);
    shard_of_[id] = route;
  }
  SeedNextQueryId(id + 1);
  return Status::OK();
}

void Coordinator::SeedNextQueryId(QueryId floor) {
  QueryId current = next_id_.load();
  while (current < floor &&
         !next_id_.compare_exchange_weak(current, floor)) {
  }
}

Status Coordinator::WithQuiescedPending(
    const std::function<Status(const std::vector<PendingQueryInfo>&,
                               QueryId)>& fn) const {
  std::vector<MovableMutexLock> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);

  const auto now = std::chrono::steady_clock::now();
  std::vector<PendingQueryInfo> pending;
  for (const auto& shard : shards_) {
    for (QueryId id : shard->pool.AllIds()) {
      auto query = shard->pool.Get(id);
      PendingQueryInfo info;
      info.id = id;
      info.owner = query->owner;
      info.sql = query->sql;
      info.ir = query->ToString();
      auto arrival = shard->arrivals.find(id);
      if (arrival != shard->arrivals.end()) {
        info.age_micros = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - arrival->second)
                .count());
      }
      pending.push_back(std::move(info));
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const PendingQueryInfo& a, const PendingQueryInfo& b) {
              return a.id < b.id;
            });
  return fn(pending, next_id_.load());
}

void Coordinator::SetInstallHook(InstallHook hook) {
  {
    MutexLock lock(hook_mu_);
    install_hook_ = std::move(hook);
    hook_installed_.store(static_cast<bool>(install_hook_));
  }
  // Hooks change what an installation writes (extra tables, inventory
  // decrements), which the plan cache's consumers may have planned
  // around; registering or clearing one retires every cached plan.
  // Invalidation is relation-granular, so this must restamp every
  // table, not just bump the global counter.
  storage_->catalog().BumpAllTableVersions();
}

}  // namespace youtopia
