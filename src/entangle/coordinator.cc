#include "entangle/coordinator.h"

#include <deque>

#include "common/logging.h"

namespace youtopia {

QueryId EntangledHandle::id() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->id;
}

bool EntangledHandle::Done() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

Status EntangledHandle::Wait(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(state_->mu);
  if (!state_->cv.wait_for(lock, timeout, [this] { return state_->done; })) {
    return Status::TimedOut("entangled query " + std::to_string(state_->id) +
                            " still pending");
  }
  return state_->outcome;
}

std::vector<Tuple> EntangledHandle::Answers() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->answers;
}

std::optional<std::chrono::steady_clock::time_point>
EntangledHandle::CompletedAt() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->done) return std::nullopt;
  return state_->completed_at;
}

Coordinator::Coordinator(StorageEngine* storage, TxnManager* txn_manager,
                         CoordinatorConfig config)
    : storage_(storage),
      txn_manager_(txn_manager),
      config_(config),
      answers_(storage, config.auto_create_answer_tables),
      matcher_(storage, config.match) {}

Result<EntangledHandle> Coordinator::Submit(EntangledQuery query) {
  if (query.heads.empty()) {
    return Status::InvalidArgument("entangled query has no heads");
  }
  std::lock_guard<std::mutex> lock(mu_);
  query.id = next_id_++;
  const QueryId id = query.id;

  auto state = std::make_shared<EntangledHandle::State>();
  state->id = id;
  handles_.emplace(id, state);
  arrivals_.emplace(id, std::chrono::steady_clock::now());
  pool_.Add(std::make_shared<const EntangledQuery>(std::move(query)));
  ++stats_.submitted;

  auto satisfied = MatchAndInstallLocked(id);
  if (!satisfied.ok()) return satisfied.status();
  return EntangledHandle(state);
}

Status Coordinator::WithdrawLocked(QueryId id, Status outcome) {
  auto query = pool_.Remove(id);
  if (query == nullptr) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not pending");
  }
  ++stats_.cancelled;
  arrivals_.erase(id);
  auto it = handles_.find(id);
  if (it != handles_.end()) {
    auto& state = it->second;
    {
      std::lock_guard<std::mutex> hlock(state->mu);
      state->done = true;
      state->outcome = std::move(outcome);
      state->completed_at = std::chrono::steady_clock::now();
    }
    state->cv.notify_all();
    handles_.erase(it);
  }
  return Status::OK();
}

Status Coordinator::Cancel(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return WithdrawLocked(id, Status::Aborted("query cancelled"));
}

Result<size_t> Coordinator::ExpireOlderThan(
    std::chrono::milliseconds max_age) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto cutoff = std::chrono::steady_clock::now() - max_age;
  std::vector<QueryId> expired;
  for (const auto& [id, arrival] : arrivals_) {
    if (arrival <= cutoff && pool_.Contains(id)) expired.push_back(id);
  }
  for (QueryId id : expired) {
    YOUTOPIA_RETURN_IF_ERROR(WithdrawLocked(
        id, Status::TimedOut("entangled query expired without a partner")));
  }
  return expired.size();
}

Result<size_t> Coordinator::RetriggerDependentsOf(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t satisfied = 0;
  for (QueryId id : pool_.QueriesWithDomainOn(table)) {
    if (!pool_.Contains(id)) continue;
    auto n = MatchAndInstallLocked(id);
    if (!n.ok()) return n.status();
    satisfied += n.value();
  }
  return satisfied;
}

Result<size_t> Coordinator::RetriggerAll() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t satisfied = 0;
  // Snapshot ids up front; matches mutate the pool.
  for (QueryId id : pool_.AllIds()) {
    if (!pool_.Contains(id)) continue;  // satisfied by an earlier round
    auto n = MatchAndInstallLocked(id);
    if (!n.ok()) return n.status();
    satisfied += n.value();
  }
  return satisfied;
}

Result<size_t> Coordinator::MatchAndInstallLocked(QueryId id) {
  size_t satisfied = 0;
  // Worklist of match roots: the triggering query first, then queries
  // whose constraints touch relations that received new answers.
  std::deque<QueryId> worklist = {id};
  while (!worklist.empty()) {
    const QueryId root = worklist.front();
    worklist.pop_front();
    if (!pool_.Contains(root)) continue;

    const auto start = std::chrono::steady_clock::now();
    auto match = matcher_.TryMatch(root, pool_);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    ++stats_.match_calls;
    stats_.match_micros_total += static_cast<uint64_t>(elapsed.count());
    if (!match.ok()) return match.status();
    if (!match->has_value()) continue;

    const MatchResult& result = match->value();
    stats_.search_steps_total += result.steps;
    auto installed = InstallLocked(result);
    if (!installed.ok()) return installed.status();
    if (!installed.value()) continue;  // install aborted; stays pending

    satisfied += result.group.size();
    ++stats_.matched_groups;
    stats_.matched_queries += result.group.size();
    stats_.constraints_from_stored += result.from_stored;

    // New answers may unblock pending queries — but only those with a
    // constraint that the newly installed tuples could satisfy. The
    // prefilter keeps retriggering O(affected) instead of O(pool),
    // which is what makes the loaded-system demo scale (paper §3).
    ++stats_.retrigger_rounds;
    for (const auto& [relation, tuple] : result.installed) {
      for (QueryId qid : pool_.QueriesUnblockedBy(relation, tuple)) {
        worklist.push_back(qid);
      }
    }
  }
  return satisfied;
}

Result<bool> Coordinator::InstallLocked(const MatchResult& match) {
  auto txn = txn_manager_->Begin();
  Status status = Status::OK();

  for (const QueryId qid : match.group) {
    auto query = pool_.Get(qid);
    if (query == nullptr) {
      status = Status::Internal("matched query " + std::to_string(qid) +
                                " vanished from the pool");
      break;
    }
    const auto& tuples = match.answers.at(qid);
    for (size_t h = 0; h < query->heads.size() && status.ok(); ++h) {
      status = answers_.Install(txn.get(), txn_manager_,
                                query->heads[h].relation, tuples[h]);
    }
    if (!status.ok()) break;
  }

  if (status.ok() && install_hook_) {
    status = install_hook_(txn.get(), txn_manager_, match);
  }

  if (!status.ok()) {
    ++stats_.failed_installs;
    YOUTOPIA_LOG(kInfo) << "coordination install aborted: "
                        << status.ToString();
    Status abort = txn_manager_->Abort(txn.get());
    if (!abort.ok()) return abort;
    return false;
  }

  YOUTOPIA_RETURN_IF_ERROR(txn_manager_->Commit(txn.get()));

  // Point of no return: complete the group.
  for (const QueryId qid : match.group) {
    pool_.Remove(qid);
    arrivals_.erase(qid);
    auto it = handles_.find(qid);
    if (it == handles_.end()) continue;
    auto& state = it->second;
    {
      std::lock_guard<std::mutex> hlock(state->mu);
      state->done = true;
      state->outcome = Status::OK();
      state->answers = match.answers.at(qid);
      state->completed_at = std::chrono::steady_clock::now();
    }
    state->cv.notify_all();
    handles_.erase(it);
  }
  return true;
}

size_t Coordinator::pending_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_.size();
}

std::vector<PendingQueryInfo> Coordinator::Pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  std::vector<PendingQueryInfo> out;
  for (QueryId id : pool_.AllIds()) {
    auto query = pool_.Get(id);
    PendingQueryInfo info;
    info.id = id;
    info.owner = query->owner;
    info.sql = query->sql;
    info.ir = query->ToString();
    auto arrival = arrivals_.find(id);
    if (arrival != arrivals_.end()) {
      info.age_micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - arrival->second)
              .count());
    }
    out.push_back(std::move(info));
  }
  return out;
}

MatchGraph Coordinator::BuildGraph() const {
  std::lock_guard<std::mutex> lock(mu_);
  return BuildMatchGraph(pool_);
}

std::string Coordinator::RenderGraph() const {
  std::lock_guard<std::mutex> lock(mu_);
  return BuildMatchGraph(pool_).ToString(pool_);
}

CoordinatorStats Coordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Coordinator::SetInstallHook(InstallHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  install_hook_ = std::move(hook);
}

}  // namespace youtopia
