#include "entangle/answer_relation.h"

#include "common/string_util.h"

namespace youtopia {

Status AnswerRelationManager::EnsureRelation(const std::string& relation,
                                             const Tuple& prototype) {
  auto info = storage_->catalog().GetTable(relation);
  if (info.ok()) {
    if (info->schema.num_columns() != prototype.size()) {
      return Status::InvalidArgument(StringPrintf(
          "answer relation %s has %zu columns but the coordinated answer "
          "has %zu values",
          relation.c_str(), info->schema.num_columns(), prototype.size()));
    }
    return Status::OK();
  }
  if (!auto_create_) {
    return Status::NotFound("answer relation " + relation +
                            " does not exist and auto-create is disabled");
  }
  std::vector<Column> columns;
  columns.reserve(prototype.size());
  for (size_t i = 0; i < prototype.size(); ++i) {
    DataType type = prototype.at(i).type();
    if (type == DataType::kNull) type = DataType::kString;
    columns.push_back({"c" + std::to_string(i), type, /*nullable=*/true});
  }
  auto schema = Schema::Create(std::move(columns));
  if (!schema.ok()) return schema.status();
  return storage_->CreateTable(relation, schema.TakeValue());
}

Status AnswerRelationManager::Install(Transaction* txn,
                                      TxnManager* txn_manager,
                                      const std::string& relation,
                                      const Tuple& tuple) {
  YOUTOPIA_RETURN_IF_ERROR(EnsureRelation(relation, tuple));
  // Set semantics: skip if the exact tuple is already present. The
  // check runs under the transaction's lock, so no duplicate can sneak
  // in. Probe through an index when one exists — answer relations grow
  // monotonically, and a full scan per install would make installation
  // quadratic over a long run.
  auto info = storage_->catalog().GetTable(relation);
  if (!info.ok()) return info.status();
  bool checked = false;
  for (size_t col : info->indexed_columns) {
    auto rids = txn_manager->IndexLookup(
        txn, relation, info->schema.column(col).name, tuple.at(col));
    if (!rids.ok()) return rids.status();
    for (RowId rid : *rids) {
      auto existing = txn_manager->Get(txn, relation, rid);
      if (existing.ok() && existing.value() == tuple) return Status::OK();
    }
    checked = true;
    break;
  }
  if (!checked) {
    auto rows = txn_manager->Scan(txn, relation);
    if (!rows.ok()) return rows.status();
    for (const auto& [rid, existing] : *rows) {
      if (existing == tuple) return Status::OK();
    }
  }
  auto rid = txn_manager->Insert(txn, relation, tuple);
  if (!rid.ok()) return rid.status();
  return Status::OK();
}

}  // namespace youtopia
