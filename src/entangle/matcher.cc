#include "entangle/matcher.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "exec/expression_eval.h"

namespace youtopia {

Term Matcher::Globalize(const Term& t, size_t var_base) {
  if (t.is_constant()) return t;
  return Term::Variable(static_cast<VarId>(var_base + t.var), t.offset);
}

AnswerAtom Matcher::GlobalizeAtom(const AnswerAtom& atom, size_t var_base) {
  AnswerAtom out;
  out.relation = atom.relation;
  out.terms.reserve(atom.terms.size());
  for (const Term& t : atom.terms) out.terms.push_back(Globalize(t, var_base));
  return out;
}

size_t Matcher::AddMember(GroupState* state,
                          std::shared_ptr<const EntangledQuery> query) {
  Member member;
  member.var_base = state->subst.num_vars();
  state->subst.AddVars(query->num_vars());
  member.query = std::move(query);
  state->members.push_back(std::move(member));
  const size_t index = state->members.size() - 1;
  const auto& constraints = state->members[index].query->constraints;
  for (size_t ci = 0; ci < constraints.size(); ++ci) {
    state->obligations.emplace_back(index, ci);
  }
  return index;
}

std::optional<Value> Matcher::ResolveTerm(const Term& term,
                                          const Substitution& subst) {
  if (term.is_constant()) return term.constant;
  auto bound = subst.Lookup(term.var);
  if (!bound.has_value()) return std::nullopt;
  if (term.offset == 0) return bound;
  if (bound->type() != DataType::kInt64) return std::nullopt;
  return Value::Int64(bound->int64_value() + term.offset);
}

Result<std::vector<Tuple>> Matcher::StoredCandidates(
    const AnswerAtom& constraint) const {
  auto info = storage_->catalog().GetTable(constraint.relation);
  if (!info.ok()) return std::vector<Tuple>{};  // relation not created yet
  if (info->schema.num_columns() != constraint.arity()) {
    return std::vector<Tuple>{};
  }

  // Index acceleration: probe on a constant term over an indexed column.
  for (size_t i = 0; i < constraint.arity(); ++i) {
    const Term& t = constraint.terms[i];
    if (!t.is_constant()) continue;
    const std::string& col = info->schema.column(i).name;
    if (!storage_->HasIndex(constraint.relation, col)) continue;
    auto rids = storage_->IndexLookup(constraint.relation, col, t.constant);
    if (!rids.ok()) return rids.status();
    std::vector<Tuple> out;
    for (RowId rid : *rids) {
      auto tuple = storage_->Get(constraint.relation, rid);
      if (tuple.ok()) out.push_back(tuple.TakeValue());
    }
    return out;
  }

  auto rows = storage_->Scan(constraint.relation);
  if (!rows.ok()) return rows.status();
  std::vector<Tuple> out;
  for (auto& [rid, tuple] : *rows) {
    bool compatible = true;
    for (size_t i = 0; i < constraint.arity(); ++i) {
      const Term& t = constraint.terms[i];
      if (t.is_constant() && t.constant != tuple.at(i)) {
        compatible = false;
        break;
      }
    }
    if (compatible) out.push_back(std::move(tuple));
  }
  return out;
}

Result<std::optional<MatchResult>> Matcher::TryMatch(QueryId root,
                                                     const PendingView& pool) {
  auto query = pool.Get(root);
  if (query == nullptr) {
    return Status::NotFound("query " + std::to_string(root) +
                            " is not pending");
  }
  GroupState state;
  AddMember(&state, query);

  SearchStats stats;
  MatchResult result;
  auto matched = Search(std::move(state), pool, &stats, &result);
  if (!matched.ok()) return matched.status();
  if (!matched.value()) return std::optional<MatchResult>{};
  result.steps = stats.steps;
  return std::optional<MatchResult>(std::move(result));
}

Result<bool> Matcher::Search(GroupState state, const PendingView& pool,
                             SearchStats* stats, MatchResult* result) {
  if (state.obligations.empty()) {
    return TryGround(state, stats, result);
  }
  if (stats->budget_exhausted || ++stats->steps > config_.max_steps) {
    stats->budget_exhausted = true;
    return false;
  }

  const auto [m, ci] = state.obligations.back();
  state.obligations.pop_back();
  const AnswerAtom constraint = GlobalizeAtom(
      state.members[m].query->constraints[ci], state.members[m].var_base);

  // Option A: a head of a query already in the group (including the
  // obligation's own query — a query's contribution satisfies its own
  // constraints, per the answer-relation semantics).
  for (size_t mi = 0; mi < state.members.size(); ++mi) {
    const Member& member = state.members[mi];
    for (const AnswerAtom& h : member.query->heads) {
      if (!AtomsMayUnify(constraint, h)) continue;
      GroupState next = state;
      const AnswerAtom head = GlobalizeAtom(h, member.var_base);
      if (!UnifyAtoms(constraint, head, &next.subst)) continue;
      auto r = Search(std::move(next), pool, stats, result);
      if (!r.ok() || r.value()) return r;
    }
  }

  // Option B: an answer tuple installed by an earlier coordination
  // round (the browse-then-book path of the demo, §3.1).
  if (config_.allow_stored_answers) {
    auto tuples = StoredCandidates(constraint);
    if (!tuples.ok()) return tuples.status();
    for (const Tuple& tuple : *tuples) {
      GroupState next = state;
      if (!UnifyAtomWithTuple(constraint, tuple, &next.subst)) continue;
      ++next.from_stored;
      auto r = Search(std::move(next), pool, stats, result);
      if (!r.ok() || r.value()) return r;
    }
  }

  // Option C: recruit another pending query whose head can provide the
  // required tuple; its own constraints become new obligations.
  if (state.members.size() < config_.max_group_size) {
    std::vector<QueryId> candidates =
        config_.use_signature_index
            ? pool.CandidateProviders(constraint)
            : pool.AllIds();
    for (QueryId qid : candidates) {
      bool already_member = false;
      for (const Member& member : state.members) {
        if (member.query->id == qid) {
          already_member = true;
          break;
        }
      }
      if (already_member) continue;
      auto candidate = pool.Get(qid);
      if (candidate == nullptr) continue;
      for (size_t hi = 0; hi < candidate->heads.size(); ++hi) {
        if (!AtomsMayUnify(constraint, candidate->heads[hi])) continue;
        GroupState next = state;
        const size_t mi = AddMember(&next, candidate);
        const AnswerAtom head = GlobalizeAtom(
            candidate->heads[hi], next.members[mi].var_base);
        if (!UnifyAtoms(constraint, head, &next.subst)) continue;
        auto r = Search(std::move(next), pool, stats, result);
        if (!r.ok() || r.value()) return r;
      }
    }
  }

  return false;
}

Result<bool> Matcher::TryGround(const GroupState& state, SearchStats* stats,
                                MatchResult* result) {
  std::set<size_t> roots;
  for (size_t v = 0; v < state.subst.num_vars(); ++v) {
    roots.insert(state.subst.Root(v));
  }
  std::vector<size_t> class_roots(roots.begin(), roots.end());
  return GroundClasses(state, state.subst, class_roots, stats, result);
}

Result<std::optional<std::vector<Value>>> Matcher::EvaluateDomain(
    const DomainPredicate& domain, size_t var_base,
    const Substitution& subst) const {
  // Resolve correlated condition terms; defer if any is unbound.
  struct ResolvedCondition {
    std::string column;
    BinaryOp op;
    Value rhs;
  };
  std::vector<ResolvedCondition> conditions;
  conditions.reserve(domain.conditions.size());
  for (const auto& cond : domain.conditions) {
    const Term global = Globalize(cond.rhs, var_base);
    auto value = ResolveTerm(global, subst);
    if (!value.has_value()) {
      if (global.is_constant()) {
        return Status::Internal("constant term failed to resolve");
      }
      return std::optional<std::vector<Value>>{};  // defer
    }
    conditions.push_back({cond.column, cond.op, *value});
  }

  auto info = storage_->catalog().GetTable(domain.table);
  if (!info.ok()) return info.status();
  auto out_col = info->schema.ColumnIndex(domain.output_column);
  if (!out_col.ok()) return out_col.status();

  // Pre-resolve condition columns.
  std::vector<size_t> cond_cols;
  cond_cols.reserve(conditions.size());
  for (const auto& cond : conditions) {
    auto idx = info->schema.ColumnIndex(cond.column);
    if (!idx.ok()) return idx.status();
    cond_cols.push_back(idx.value());
  }

  // Fetch rows: index probe on an equality condition when available.
  std::vector<Tuple> rows;
  bool used_index = false;
  for (const auto& cond : conditions) {
    if (cond.op != BinaryOp::kEq) continue;
    if (!storage_->HasIndex(domain.table, cond.column)) continue;
    auto rids = storage_->IndexLookup(domain.table, cond.column, cond.rhs);
    if (!rids.ok()) return rids.status();
    for (RowId rid : *rids) {
      auto tuple = storage_->Get(domain.table, rid);
      if (tuple.ok()) rows.push_back(tuple.TakeValue());
    }
    used_index = true;
    break;
  }
  if (!used_index) {
    auto scan = storage_->Scan(domain.table);
    if (!scan.ok()) return scan.status();
    rows.reserve(scan->size());
    for (auto& [rid, tuple] : *scan) rows.push_back(std::move(tuple));
  }

  std::set<Value> values;
  for (const Tuple& row : rows) {
    bool keep = true;
    for (size_t i = 0; i < conditions.size(); ++i) {
      auto ok = CompareValuesBool(conditions[i].op, row.at(cond_cols[i]),
                                  conditions[i].rhs);
      if (!ok.ok()) return ok.status();
      if (!ok.value()) {
        keep = false;
        break;
      }
    }
    if (keep) values.insert(row.at(out_col.value()));
  }
  return std::optional<std::vector<Value>>(
      std::vector<Value>(values.begin(), values.end()));
}

Result<bool> Matcher::GroundClasses(const GroupState& state,
                                    Substitution subst,
                                    const std::vector<size_t>& class_roots,
                                    SearchStats* stats, MatchResult* result) {
  // Classes still unbound under the current substitution.
  std::vector<size_t> unbound;
  for (size_t r : class_roots) {
    if (!subst.Lookup(r).has_value()) unbound.push_back(r);
  }
  if (unbound.empty()) {
    return FinalizeGrounding(state, subst, result);
  }

  // For each unbound class, intersect the candidate sets of all its
  // *currently evaluable* domain predicates; pick the most constrained
  // class (fail-first heuristic).
  bool have_best = false;
  size_t best_root = 0;
  std::vector<Value> best_candidates;

  for (size_t target : unbound) {
    std::vector<Value> candidates;
    bool have = false;
    for (const Member& member : state.members) {
      for (const DomainPredicate& domain : member.query->domains) {
        const size_t gv = member.var_base + domain.output_var;
        if (subst.Root(gv) != target) continue;
        auto eval = EvaluateDomain(domain, member.var_base, subst);
        if (!eval.ok()) return eval.status();
        if (!eval->has_value()) continue;  // correlated, deferred
        // domain binds value(gv); class root value = value(gv) - offset.
        const int64_t off = subst.OffsetToRoot(gv);
        std::vector<Value> adjusted;
        adjusted.reserve(eval->value().size());
        for (const Value& v : eval->value()) {
          if (off == 0) {
            adjusted.push_back(v);
          } else if (v.type() == DataType::kInt64) {
            adjusted.push_back(Value::Int64(v.int64_value() - off));
          }
        }
        if (!have) {
          candidates = std::move(adjusted);
          have = true;
        } else {
          std::vector<Value> merged;
          std::set<Value> lookup(adjusted.begin(), adjusted.end());
          for (const Value& v : candidates) {
            if (lookup.count(v) > 0) merged.push_back(v);
          }
          candidates = std::move(merged);
        }
      }
    }
    if (!have) continue;
    if (!have_best || candidates.size() < best_candidates.size()) {
      have_best = true;
      best_root = target;
      best_candidates = std::move(candidates);
    }
    if (have_best && best_candidates.empty()) break;  // dead end, fail fast
    // Ablation: take the first evaluable class instead of scanning for
    // the most constrained one.
    if (have_best && !config_.prefer_most_constrained) break;
  }

  if (!have_best) {
    // No class is evaluable: either an unsafe query (variable without a
    // domain) or an unresolvable correlation cycle. This grounding
    // branch fails.
    return false;
  }

  // CHOOSE-1 nondeterminism: shuffle the candidate order.
  for (size_t i = best_candidates.size(); i > 1; --i) {
    std::swap(best_candidates[i - 1],
              best_candidates[rng_.NextBelow(i)]);
  }

  for (const Value& v : best_candidates) {
    if (stats->budget_exhausted ||
        ++stats->grounding_attempts > config_.max_grounding_attempts) {
      stats->budget_exhausted = true;
      return false;
    }
    Substitution next = subst;
    if (!next.UnifyConstant(best_root, 0, v)) continue;
    auto r = GroundClasses(state, std::move(next), class_roots, stats, result);
    if (!r.ok() || r.value()) return r;
  }
  return false;
}

Result<bool> Matcher::FinalizeGrounding(const GroupState& state,
                                        const Substitution& subst,
                                        MatchResult* result) {
  // Verify every domain predicate under the full grounding. (Candidates
  // were drawn from a single predicate per class; all others must agree.)
  for (const Member& member : state.members) {
    for (const DomainPredicate& domain : member.query->domains) {
      auto eval = EvaluateDomain(domain, member.var_base, subst);
      if (!eval.ok()) return eval.status();
      if (!eval->has_value()) return false;  // should not happen; fail safe
      auto bound = subst.Lookup(member.var_base + domain.output_var);
      if (!bound.has_value()) return false;
      const auto& values = eval->value();
      if (std::find(values.begin(), values.end(), *bound) == values.end()) {
        return false;
      }
    }
    for (const VarComparison& cmp : member.query->comparisons) {
      auto lhs = ResolveTerm(Globalize(cmp.lhs, member.var_base), subst);
      auto rhs = ResolveTerm(Globalize(cmp.rhs, member.var_base), subst);
      if (!lhs.has_value() || !rhs.has_value()) return false;
      auto ok = CompareValuesBool(cmp.op, *lhs, *rhs);
      if (!ok.ok()) return ok.status();
      if (!ok.value()) return false;
    }
  }

  // Build the grounded answers.
  MatchResult out;
  out.from_stored = state.from_stored;
  std::set<std::string> relations;
  for (const Member& member : state.members) {
    out.group.push_back(member.query->id);
    std::vector<Tuple> tuples;
    tuples.reserve(member.query->heads.size());
    for (const AnswerAtom& head : member.query->heads) {
      Tuple tuple;
      for (const Term& t : head.terms) {
        auto v = ResolveTerm(Globalize(t, member.var_base), subst);
        if (!v.has_value()) return false;  // head variable never grounded
        tuple.Append(std::move(*v));
      }
      relations.insert(ToLowerAscii(head.relation));
      bool duplicate = false;
      for (const auto& [rel, existing] : out.installed) {
        if (EqualsIgnoreCase(rel, head.relation) && existing == tuple) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) out.installed.emplace_back(head.relation, tuple);
      tuples.push_back(std::move(tuple));
    }
    out.answers.emplace(member.query->id, std::move(tuples));
  }
  out.relations.assign(relations.begin(), relations.end());
  *result = std::move(out);
  return true;
}

}  // namespace youtopia
