#ifndef YOUTOPIA_ENTANGLE_ENTANGLED_QUERY_H_
#define YOUTOPIA_ENTANGLE_ENTANGLED_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "entangle/answer_atom.h"
#include "sql/ast.h"

namespace youtopia {

/// Unique id of an entangled query within one Youtopia instance.
using QueryId = uint64_t;

/// Binds a coordination variable to database content: the translated
/// form of `var IN (SELECT output_column FROM table WHERE ...)`.
/// Semantics: binding(output_var) must be one of the values of
/// `output_column` over rows of `table` satisfying all conditions.
struct DomainPredicate {
  /// One `column op rhs` condition of the subquery's WHERE; rhs is a
  /// constant or another coordination variable (correlated subquery —
  /// this is how adjacent-seat coordination references the chosen
  /// flight).
  struct Condition {
    std::string column;
    BinaryOp op = BinaryOp::kEq;
    Term rhs;
  };

  VarId output_var = 0;
  std::string table;
  std::string output_column;
  std::vector<Condition> conditions;

  /// "var IN pi_col(sigma_{...}(Table))" display form.
  std::string ToString(const std::vector<std::string>* var_names = nullptr) const;
};

/// A comparison between two terms evaluated after grounding, e.g.
/// `price <= 500` or `seat1 != seat2` where the variables are bound by
/// domain predicates.
struct VarComparison {
  Term lhs;
  BinaryOp op = BinaryOp::kEq;
  Term rhs;

  std::string ToString(const std::vector<std::string>* var_names = nullptr) const;
};

/// The intermediate representation of one entangled query (paper §2.2:
/// "the query compiler ... translates them to an intermediate
/// representation inside Youtopia for processing by the coordination
/// component").
///
/// Semantics: the query asks the system to add, for each head atom, one
/// ground instance (under a single grounding of its variables) to the
/// system-wide answer relation, such that (a) every domain predicate
/// holds, (b) every comparison holds, and (c) every constraint atom's
/// ground instance is present in the answer relation — contributed by
/// this query, by other queries answered jointly with it, or already
/// installed by earlier coordination rounds.
struct EntangledQuery {
  QueryId id = 0;
  /// Display owner (the travel app uses the traveler's name).
  std::string owner;
  /// Original SQL, kept for the administrative interface.
  std::string sql;

  std::vector<AnswerAtom> heads;
  std::vector<AnswerAtom> constraints;
  std::vector<DomainPredicate> domains;
  std::vector<VarComparison> comparisons;
  int64_t choose = 1;

  /// VarId -> source-level variable name.
  std::vector<std::string> var_names;

  size_t num_vars() const { return var_names.size(); }

  /// Variables not bound by any domain predicate. They can still be
  /// grounded through unification with partners' bound variables or
  /// constants; queries where that never happens are unsatisfiable.
  std::vector<VarId> UnboundVars() const;

  /// Multi-line human-readable dump (admin interface).
  std::string ToString() const;
};

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_ENTANGLED_QUERY_H_
