#ifndef YOUTOPIA_ENTANGLE_MATCH_GRAPH_H_
#define YOUTOPIA_ENTANGLE_MATCH_GRAPH_H_

#include <string>
#include <vector>

#include "entangle/pending_pool.h"

namespace youtopia {

/// A symbolic view of coordination opportunities among pending queries —
/// the structure the administrative interface visualizes (paper §3.2:
/// "visualize the state created by the matching algorithms").
///
/// Nodes are pending queries; a directed edge (from, constraint_index)
/// -> (to, head_index) means the constraint can symbolically unify with
/// the head (relation, arity, and per-position terms compatible under a
/// fresh substitution). Edges are a necessary but not sufficient
/// condition for matching — grounding against the database may still
/// fail.
struct MatchGraph {
  struct Edge {
    QueryId from = 0;
    size_t constraint_index = 0;
    QueryId to = 0;
    size_t head_index = 0;
  };

  std::vector<QueryId> nodes;
  std::vector<Edge> edges;

  /// Connected components over the undirected view of the edges —
  /// candidate coordination neighbourhoods.
  std::vector<std::vector<QueryId>> Components() const;

  /// Text rendering for the admin console.
  std::string ToString(const PendingView& pool) const;
};

/// Builds the graph over all queries in the pool.
MatchGraph BuildMatchGraph(const PendingView& pool);

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_MATCH_GRAPH_H_
