#include "entangle/match_graph.h"

#include <functional>
#include <map>

#include "entangle/unification.h"

namespace youtopia {

namespace {

/// Full symbolic unification check on a fresh substitution spanning both
/// queries' variables.
bool CanUnify(const EntangledQuery& from, size_t constraint_index,
              const EntangledQuery& to, size_t head_index) {
  const AnswerAtom& constraint = from.constraints[constraint_index];
  const AnswerAtom& head = to.heads[head_index];
  if (!AtomsMayUnify(constraint, head)) return false;

  // Constraint vars occupy [0, from.num_vars()); head vars are shifted
  // past them so the two queries' variables stay distinct.
  Substitution subst(from.num_vars() + to.num_vars());
  const AnswerAtom& c_global = constraint;
  AnswerAtom h_global = head;
  for (Term& t : h_global.terms) {
    if (t.is_variable()) {
      t.var = static_cast<VarId>(t.var + from.num_vars());
    }
  }
  return UnifyAtoms(c_global, h_global, &subst);
}

}  // namespace

MatchGraph BuildMatchGraph(const PendingView& pool) {
  MatchGraph graph;
  graph.nodes = pool.AllIds();
  for (QueryId from_id : graph.nodes) {
    auto from = pool.Get(from_id);
    for (size_t ci = 0; ci < from->constraints.size(); ++ci) {
      const auto providers =
          pool.QueriesWithHeadOn(from->constraints[ci].relation);
      for (QueryId to_id : providers) {
        auto to = pool.Get(to_id);
        for (size_t hi = 0; hi < to->heads.size(); ++hi) {
          if (CanUnify(*from, ci, *to, hi)) {
            graph.edges.push_back({from_id, ci, to_id, hi});
          }
        }
      }
    }
  }
  return graph;
}

std::vector<std::vector<QueryId>> MatchGraph::Components() const {
  std::map<QueryId, QueryId> parent;
  for (QueryId n : nodes) parent[n] = n;
  std::function<QueryId(QueryId)> find = [&](QueryId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    QueryId a = find(e.from);
    QueryId b = find(e.to);
    if (a != b) parent[a] = b;
  }
  std::map<QueryId, std::vector<QueryId>> groups;
  for (QueryId n : nodes) groups[find(n)].push_back(n);
  std::vector<std::vector<QueryId>> out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) out.push_back(std::move(members));
  return out;
}

std::string MatchGraph::ToString(const PendingView& pool) const {
  std::string out = "Match graph: " + std::to_string(nodes.size()) +
                    " pending queries, " + std::to_string(edges.size()) +
                    " candidate edges\n";
  for (QueryId n : nodes) {
    auto q = pool.Get(n);
    out += "  node #" + std::to_string(n);
    if (q != nullptr && !q->owner.empty()) out += " (" + q->owner + ")";
    out += "\n";
  }
  for (const Edge& e : edges) {
    auto from = pool.Get(e.from);
    auto to = pool.Get(e.to);
    out += "  #" + std::to_string(e.from) + ".constraint[" +
           std::to_string(e.constraint_index) + "] ";
    if (from != nullptr) {
      out += from->constraints[e.constraint_index].ToString(&from->var_names);
    }
    out += "  -->  #" + std::to_string(e.to) + ".head[" +
           std::to_string(e.head_index) + "] ";
    if (to != nullptr) {
      out += to->heads[e.head_index].ToString(&to->var_names);
    }
    out += "\n";
  }
  const auto components = Components();
  out += "  components:";
  for (const auto& comp : components) {
    out += " {";
    for (size_t i = 0; i < comp.size(); ++i) {
      if (i > 0) out += ",";
      out += "#" + std::to_string(comp[i]);
    }
    out += "}";
  }
  out += "\n";
  return out;
}

}  // namespace youtopia
