#ifndef YOUTOPIA_ENTANGLE_PENDING_POOL_H_
#define YOUTOPIA_ENTANGLE_PENDING_POOL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "entangle/entangled_query.h"
#include "types/value.h"

namespace youtopia {

/// Read interface over a set of pending entangled queries. The matcher
/// and the match graph are written against this view so they can run
/// either over a single PendingPool (one coordinator shard matching
/// under its own mutex) or over a MergedPendingView spanning every
/// shard (a global round, taken when a query's answer relations cross
/// shard boundaries). All id lists come back in ascending id order so
/// candidate enumeration — and therefore matching behavior — does not
/// depend on how the pending set is partitioned.
class PendingView {
 public:
  virtual ~PendingView() = default;

  /// nullptr if absent.
  virtual std::shared_ptr<const EntangledQuery> Get(QueryId id) const = 0;
  virtual bool Contains(QueryId id) const = 0;
  virtual size_t size() const = 0;

  /// Ids in arrival (id) order.
  virtual std::vector<QueryId> AllIds() const = 0;

  /// Queries with at least one head on `relation` (case-insensitive),
  /// in id order.
  virtual std::vector<QueryId> QueriesWithHeadOn(
      const std::string& relation) const = 0;

  /// Queries with at least one constraint on `relation`.
  virtual std::vector<QueryId> QueriesWithConstraintOn(
      const std::string& relation) const = 0;

  /// Queries whose heads could provide `constraint`: filtered by
  /// relation and by the constraint's first constant position (heads
  /// carrying a different constant there are skipped without
  /// unification). A superset of the truly unifiable providers.
  virtual std::vector<QueryId> CandidateProviders(
      const AnswerAtom& constraint) const = 0;

  /// Queries having a constraint on `relation` that could match the
  /// newly installed `tuple` (exact AtomMayMatchTuple check). This is
  /// the retrigger set after an installation: only these queries can
  /// have gained a match opportunity.
  virtual std::vector<QueryId> QueriesUnblockedBy(
      const std::string& relation, const Tuple& tuple) const = 0;

  /// Queries with a domain predicate over `table` — the retrigger set
  /// after regular DML changes that table ("waits for an opportunity to
  /// retry", paper §1).
  virtual std::vector<QueryId> QueriesWithDomainOn(
      const std::string& table) const = 0;
};

/// The registry of entangled queries waiting for partners — the paper's
/// "internal tables that store the list of pending queries" (§2.2).
///
/// Besides id -> query storage it maintains the *signature index*
/// (design decision #1 in DESIGN.md): heads and constraints are indexed
/// by answer relation AND by the constant values they carry per
/// position. Arrival-triggered matching therefore only inspects
/// plausible partners — a constraint about 'Jerry' never considers the
/// thousands of pending queries about other travelers, which is what
/// keeps the loaded-system demo (paper §3) interactive.
///
/// Not internally synchronized: the Coordinator serializes all access
/// under the owning shard's matching mutex.
class PendingPool : public PendingView {
 public:
  PendingPool() = default;
  PendingPool(const PendingPool&) = delete;
  PendingPool& operator=(const PendingPool&) = delete;

  void Add(std::shared_ptr<const EntangledQuery> query);

  /// Removes and returns the query; nullptr if absent.
  std::shared_ptr<const EntangledQuery> Remove(QueryId id);

  std::shared_ptr<const EntangledQuery> Get(QueryId id) const override;

  bool Contains(QueryId id) const override {
    return queries_.count(id) > 0;
  }
  size_t size() const override { return queries_.size(); }

  std::vector<QueryId> AllIds() const override;

  std::vector<QueryId> QueriesWithHeadOn(
      const std::string& relation) const override;

  std::vector<QueryId> QueriesWithConstraintOn(
      const std::string& relation) const override;

  std::vector<QueryId> CandidateProviders(
      const AnswerAtom& constraint) const override;

  std::vector<QueryId> QueriesUnblockedBy(const std::string& relation,
                                          const Tuple& tuple) const override;

  std::vector<QueryId> QueriesWithDomainOn(
      const std::string& table) const override;

 private:
  /// Per (relation, position): query ids bucketed by the constant at
  /// that position, plus the ids whose term there is a variable.
  struct PositionIndex {
    std::map<Value, std::set<QueryId>> constants;
    std::set<QueryId> variables;
  };
  /// relation (lowercase) -> position -> buckets.
  using AtomIndex = std::map<std::string, std::map<size_t, PositionIndex>>;

  static void IndexAtom(AtomIndex* index, const AnswerAtom& atom, QueryId id);
  static void UnindexAtom(AtomIndex* index, const AnswerAtom& atom,
                          QueryId id);

  std::map<QueryId, std::shared_ptr<const EntangledQuery>> queries_;
  /// Lowercased relation name -> query ids (coarse index).
  std::map<std::string, std::set<QueryId>> by_head_relation_;
  std::map<std::string, std::set<QueryId>> by_constraint_relation_;
  /// Lowercased base-table name -> queries whose domain predicates read
  /// that table.
  std::map<std::string, std::set<QueryId>> by_domain_table_;
  /// Fine-grained constant-position indexes.
  AtomIndex head_index_;
  AtomIndex constraint_index_;
};

/// A live, read-only union of several PendingPools — what a global
/// matching round sees when the sharded coordinator has to search
/// across shard boundaries. Holds raw pointers; the coordinator must
/// keep every underlying shard locked for the view's lifetime. Query
/// ids are globally unique across shards, so merged id lists are
/// deduplication-free; they are re-sorted so enumeration order matches
/// a single pool holding the same queries.
class MergedPendingView : public PendingView {
 public:
  explicit MergedPendingView(std::vector<const PendingPool*> pools)
      : pools_(std::move(pools)) {}

  std::shared_ptr<const EntangledQuery> Get(QueryId id) const override;
  bool Contains(QueryId id) const override;
  size_t size() const override;
  std::vector<QueryId> AllIds() const override;
  std::vector<QueryId> QueriesWithHeadOn(
      const std::string& relation) const override;
  std::vector<QueryId> QueriesWithConstraintOn(
      const std::string& relation) const override;
  std::vector<QueryId> CandidateProviders(
      const AnswerAtom& constraint) const override;
  std::vector<QueryId> QueriesUnblockedBy(const std::string& relation,
                                          const Tuple& tuple) const override;
  std::vector<QueryId> QueriesWithDomainOn(
      const std::string& table) const override;

 private:
  std::vector<const PendingPool*> pools_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_PENDING_POOL_H_
