#ifndef YOUTOPIA_ENTANGLE_PENDING_POOL_H_
#define YOUTOPIA_ENTANGLE_PENDING_POOL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "entangle/entangled_query.h"
#include "types/value.h"

namespace youtopia {

/// The registry of entangled queries waiting for partners — the paper's
/// "internal tables that store the list of pending queries" (§2.2).
///
/// Besides id -> query storage it maintains the *signature index*
/// (design decision #1 in DESIGN.md): heads and constraints are indexed
/// by answer relation AND by the constant values they carry per
/// position. Arrival-triggered matching therefore only inspects
/// plausible partners — a constraint about 'Jerry' never considers the
/// thousands of pending queries about other travelers, which is what
/// keeps the loaded-system demo (paper §3) interactive.
///
/// Not internally synchronized: the Coordinator serializes all access
/// under its matching mutex.
class PendingPool {
 public:
  PendingPool() = default;
  PendingPool(const PendingPool&) = delete;
  PendingPool& operator=(const PendingPool&) = delete;

  void Add(std::shared_ptr<const EntangledQuery> query);

  /// Removes and returns the query; nullptr if absent.
  std::shared_ptr<const EntangledQuery> Remove(QueryId id);

  /// nullptr if absent.
  std::shared_ptr<const EntangledQuery> Get(QueryId id) const;

  bool Contains(QueryId id) const { return queries_.count(id) > 0; }
  size_t size() const { return queries_.size(); }

  /// Ids in arrival (id) order.
  std::vector<QueryId> AllIds() const;

  /// Queries with at least one head on `relation` (case-insensitive),
  /// in id order.
  std::vector<QueryId> QueriesWithHeadOn(const std::string& relation) const;

  /// Queries with at least one constraint on `relation`.
  std::vector<QueryId> QueriesWithConstraintOn(
      const std::string& relation) const;

  /// Queries whose heads could provide `constraint`: filtered by
  /// relation and by the constraint's first constant position (heads
  /// carrying a different constant there are skipped without
  /// unification). A superset of the truly unifiable providers.
  std::vector<QueryId> CandidateProviders(const AnswerAtom& constraint) const;

  /// Queries having a constraint on `relation` that could match the
  /// newly installed `tuple` (exact AtomMayMatchTuple check). This is
  /// the retrigger set after an installation: only these queries can
  /// have gained a match opportunity.
  std::vector<QueryId> QueriesUnblockedBy(const std::string& relation,
                                          const Tuple& tuple) const;

  /// Queries with a domain predicate over `table` — the retrigger set
  /// after regular DML changes that table ("waits for an opportunity to
  /// retry", paper §1).
  std::vector<QueryId> QueriesWithDomainOn(const std::string& table) const;

 private:
  /// Per (relation, position): query ids bucketed by the constant at
  /// that position, plus the ids whose term there is a variable.
  struct PositionIndex {
    std::map<Value, std::set<QueryId>> constants;
    std::set<QueryId> variables;
  };
  /// relation (lowercase) -> position -> buckets.
  using AtomIndex = std::map<std::string, std::map<size_t, PositionIndex>>;

  static void IndexAtom(AtomIndex* index, const AnswerAtom& atom, QueryId id);
  static void UnindexAtom(AtomIndex* index, const AnswerAtom& atom,
                          QueryId id);

  std::map<QueryId, std::shared_ptr<const EntangledQuery>> queries_;
  /// Lowercased relation name -> query ids (coarse index).
  std::map<std::string, std::set<QueryId>> by_head_relation_;
  std::map<std::string, std::set<QueryId>> by_constraint_relation_;
  /// Lowercased base-table name -> queries whose domain predicates read
  /// that table.
  std::map<std::string, std::set<QueryId>> by_domain_table_;
  /// Fine-grained constant-position indexes.
  AtomIndex head_index_;
  AtomIndex constraint_index_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_PENDING_POOL_H_
