#ifndef YOUTOPIA_ENTANGLE_COORDINATOR_H_
#define YOUTOPIA_ENTANGLE_COORDINATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "entangle/answer_relation.h"
#include "entangle/match_graph.h"
#include "entangle/matcher.h"
#include "entangle/pending_pool.h"
#include "storage/storage_engine.h"
#include "txn/txn_manager.h"

namespace youtopia {

/// Aggregate counters exposed to the administrative interface and the
/// scalability benchmarks.
struct CoordinatorStats {
  size_t submitted = 0;
  size_t matched_queries = 0;
  size_t matched_groups = 0;
  size_t cancelled = 0;
  size_t failed_installs = 0;
  size_t retrigger_rounds = 0;
  size_t constraints_from_stored = 0;
  size_t match_calls = 0;
  uint64_t match_micros_total = 0;
  size_t search_steps_total = 0;
  /// SubmitAll calls and the queries they carried.
  size_t batches = 0;
  size_t batched_queries = 0;
  /// OnComplete registrations and deliveries (across all handles).
  size_t callbacks_registered = 0;
  size_t callbacks_fired = 0;
};

/// Future-like handle to a submitted entangled query. The query is
/// answered when the coordinator matches it into a group; until then it
/// waits — "a query whose postcondition is not satisfied is not
/// rejected but waits for an opportunity to retry" (paper §1).
///
/// Completion can be consumed two ways: blocking (`Wait`) or
/// event-driven (`OnComplete`). The event-driven form is what lets one
/// thread drive many outstanding coordinations.
class EntangledHandle {
 public:
  /// Invoked exactly once when the query reaches a terminal state
  /// (satisfied, cancelled or expired). The handle passed in is done;
  /// inspect `Outcome()` / `Answers()` to learn which way it went.
  using CompletionCallback = std::function<void(const EntangledHandle&)>;

  QueryId id() const;

  /// True once the query is satisfied, cancelled or expired.
  bool Done() const;

  /// Terminal status: OK when satisfied, Aborted when cancelled,
  /// TimedOut when expired. nullopt while the query is still pending —
  /// a pending query has no outcome yet, misleading or otherwise.
  std::optional<Status> Outcome() const;

  /// Blocks until done or timeout. Returns OK when satisfied, Aborted
  /// when cancelled, TimedOut when still pending at the deadline.
  Status Wait(std::chrono::milliseconds timeout) const;

  /// Registers a completion callback. Fires exactly once per
  /// registration: immediately (in the calling thread) when the handle
  /// is already done, otherwise from whichever thread completes the
  /// query. Callbacks run outside the coordinator's internal lock, so
  /// they may safely call back into the coordinator (submit a follow-up,
  /// inspect stats, ...).
  void OnComplete(CompletionCallback callback);

  /// Grounded answer tuples, one per head atom. Valid when Done() and
  /// satisfied.
  std::vector<Tuple> Answers() const;

  /// Completion timestamp (satisfaction, cancellation or expiry);
  /// nullopt while pending. Lets load drivers measure exact
  /// submission-to-answer latency.
  std::optional<std::chrono::steady_clock::time_point> CompletedAt() const;

 private:
  friend class Coordinator;
  /// Callback-delivery counters shared between a coordinator and every
  /// handle it issued; atomics because immediate-fire registrations on
  /// completed handles happen outside the coordinator lock (and may
  /// outlive the coordinator itself).
  struct CallbackCounters {
    std::atomic<size_t> registered{0};
    std::atomic<size_t> fired{0};
  };
  struct State {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    QueryId id = 0;
    bool done = false;
    /// Terminal status; empty while pending (never a placeholder
    /// "timed out" that a caller could mistake for a real outcome).
    std::optional<Status> outcome;
    std::vector<Tuple> answers;
    std::chrono::steady_clock::time_point completed_at;
    /// Callbacks awaiting completion; drained exactly once.
    std::vector<CompletionCallback> callbacks;
    std::shared_ptr<CallbackCounters> counters;
  };
  explicit EntangledHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

struct CoordinatorConfig {
  MatchConfig match;
  /// Create missing answer-relation tables on first install.
  bool auto_create_answer_tables = true;
};

/// Summary of one pending query for introspection.
struct PendingQueryInfo {
  QueryId id = 0;
  std::string owner;
  std::string sql;
  std::string ir;
  /// Time spent waiting so far.
  uint64_t age_micros = 0;
};

/// The coordination component of the paper's architecture (§2.2): "runs
/// whenever an entangled query arrives in the system", consulting both
/// regular tables and the pending-query tables, and directing the
/// execution engine to install coordinated answers.
///
/// Concurrency model: submissions may come from many threads; matching
/// rounds are serialized under one mutex (a matching round must see a
/// stable pending pool and database snapshot). Installation runs inside
/// a transaction from the TxnManager, so a concurrent regular workload
/// observes coordinated answers atomically — design decision #3.
/// Completion callbacks fire after the internal lock is released, in
/// the thread whose submission closed the group.
class Coordinator {
 public:
  /// Optional hook executed inside the installation transaction, after
  /// the answer tuples are inserted. A non-OK return aborts the whole
  /// installation (all answers roll back) and the group stays pending.
  /// The travel application uses this for seat-inventory enforcement;
  /// tests use it for failure injection.
  using InstallHook =
      std::function<Status(Transaction*, TxnManager*, const MatchResult&)>;

  Coordinator(StorageEngine* storage, TxnManager* txn_manager,
              CoordinatorConfig config = {});

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Registers the query (assigning it a fresh id) and immediately runs
  /// a matching round. Returns a handle that completes when the query
  /// is eventually answered.
  Result<EntangledHandle> Submit(EntangledQuery query);

  /// Registers a whole batch, then runs a single matching round over
  /// it. A complete group submitted together (the paper's friends
  /// booking jointly) closes in that one round instead of N lock
  /// round-trips, and intermediate partial matches are never attempted.
  /// All-or-nothing on validation: an invalid member rejects the batch
  /// before anything is registered. Handles are returned in submission
  /// order.
  Result<std::vector<EntangledHandle>> SubmitAll(
      std::vector<EntangledQuery> queries);

  /// Withdraws a pending query. Fails with NotFound when it already
  /// matched or never existed.
  Status Cancel(QueryId id);

  /// Re-runs matching for every pending query (e.g. after regular DML
  /// changed the database so previously ungroundable queries may now
  /// ground). Returns the number of queries newly satisfied.
  Result<size_t> RetriggerAll();

  /// Re-runs matching only for pending queries whose domain predicates
  /// read `table` — the targeted retry after regular DML touches that
  /// table. The server layer calls this automatically when
  /// YoutopiaConfig::retrigger_on_dml is set.
  Result<size_t> RetriggerDependentsOf(const std::string& table);

  /// Withdraws every pending query that has waited longer than
  /// `max_age`; their handles complete with kTimedOut. Returns the
  /// number expired. Gives deployments a lever against queries whose
  /// partners never arrive.
  Result<size_t> ExpireOlderThan(std::chrono::milliseconds max_age);

  size_t pending_count() const;
  std::vector<PendingQueryInfo> Pending() const;
  MatchGraph BuildGraph() const;

  /// Text rendering of the current match graph (admin interface).
  std::string RenderGraph() const;
  CoordinatorStats stats() const;
  const CoordinatorConfig& config() const { return config_; }

  void SetInstallHook(InstallHook hook);

 private:
  /// A completed handle whose callbacks still have to run; collected
  /// under mu_, fired after mu_ is released.
  struct DeferredNotification {
    std::shared_ptr<EntangledHandle::State> state;
    std::vector<EntangledHandle::CompletionCallback> callbacks;
  };

  /// Registers `query` (assigning a fresh id) without matching.
  /// Caller holds mu_.
  std::shared_ptr<EntangledHandle::State> RegisterLocked(
      EntangledQuery query);

  /// Runs matching rounds rooted at each of `roots` in order and, on
  /// success, installs groups and retriggers affected queries. Caller
  /// holds mu_. Returns number of queries satisfied (group sizes summed
  /// over the retrigger cascade).
  Result<size_t> MatchAndInstallLocked(const std::vector<QueryId>& roots);

  /// Installs a matched group atomically. On success removes members
  /// from the pool and completes their handles. Caller holds mu_.
  Result<bool> InstallLocked(const MatchResult& match);

  /// Removes `id` from pool/handles, completing the handle with
  /// `outcome` (cancellation, expiry). Caller holds mu_.
  Status WithdrawLocked(QueryId id, Status outcome);

  /// Marks `state` done with `outcome`, wakes waiters and queues its
  /// callbacks for delivery. Caller holds mu_.
  void CompleteLocked(const std::shared_ptr<EntangledHandle::State>& state,
                      Status outcome, std::vector<Tuple> answers);

  /// Delivers queued completion callbacks. Must be called WITHOUT mu_
  /// held; every public entry point that can complete handles calls
  /// this after releasing the lock.
  void FireDeferredCallbacks();

  StorageEngine* storage_;
  TxnManager* txn_manager_;
  CoordinatorConfig config_;
  AnswerRelationManager answers_;
  Matcher matcher_;
  std::shared_ptr<EntangledHandle::CallbackCounters> callback_counters_;

  mutable std::mutex mu_;
  PendingPool pool_;
  QueryId next_id_ = 1;
  std::map<QueryId, std::shared_ptr<EntangledHandle::State>> handles_;
  std::map<QueryId, std::chrono::steady_clock::time_point> arrivals_;
  CoordinatorStats stats_;
  InstallHook install_hook_;
  std::vector<DeferredNotification> deferred_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_COORDINATOR_H_
