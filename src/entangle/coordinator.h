#ifndef YOUTOPIA_ENTANGLE_COORDINATOR_H_
#define YOUTOPIA_ENTANGLE_COORDINATOR_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "entangle/answer_relation.h"
#include "entangle/coordinator_journal.h"
#include "entangle/match_graph.h"
#include "entangle/matcher.h"
#include "entangle/pending_pool.h"
#include "storage/storage_engine.h"
#include "txn/txn_manager.h"

namespace youtopia {

/// Aggregate counters exposed to the administrative interface and the
/// scalability benchmarks. With a sharded coordinator each shard keeps
/// its own copy of the per-round counters; `Coordinator::stats()` sums
/// them (plus the coordinator-wide batch/callback counters), and
/// `Coordinator::ShardInfos()` exposes the per-shard breakdown.
struct CoordinatorStats {
  size_t submitted = 0;
  size_t matched_queries = 0;
  size_t matched_groups = 0;
  size_t cancelled = 0;
  size_t failed_installs = 0;
  size_t retrigger_rounds = 0;
  size_t constraints_from_stored = 0;
  size_t match_calls = 0;
  uint64_t match_micros_total = 0;
  size_t search_steps_total = 0;
  /// Matching rounds that ran on one shard under its own mutex alone.
  size_t shard_rounds = 0;
  /// Matching rounds escalated to a global (all-shard) round: because
  /// a query's answer relations span shards, because such a query was
  /// pending, or because an install hook is registered (hooks touch
  /// tables shared across shards, so every round goes global while one
  /// is set). Attributed to the home shard of the triggering query.
  size_t global_rounds = 0;
  /// Submitted queries whose answer relations span multiple shards.
  size_t cross_shard_queries = 0;
  /// SubmitAll calls and the queries they carried (coordinator-wide;
  /// zero in per-shard breakdowns).
  size_t batches = 0;
  size_t batched_queries = 0;
  /// OnComplete registrations and deliveries (across all handles;
  /// coordinator-wide, zero in per-shard breakdowns).
  size_t callbacks_registered = 0;
  size_t callbacks_fired = 0;
};

/// Future-like handle to a submitted entangled query. The query is
/// answered when the coordinator matches it into a group; until then it
/// waits — "a query whose postcondition is not satisfied is not
/// rejected but waits for an opportunity to retry" (paper §1).
///
/// Completion can be consumed two ways: blocking (`Wait`) or
/// event-driven (`OnComplete`). The event-driven form is what lets one
/// thread drive many outstanding coordinations.
class EntangledHandle {
 public:
  /// Invoked exactly once when the query reaches a terminal state
  /// (satisfied, cancelled or expired). The handle passed in is done;
  /// inspect `Outcome()` / `Answers()` to learn which way it went.
  using CompletionCallback = std::function<void(const EntangledHandle&)>;

  QueryId id() const;

  /// True once the query is satisfied, cancelled or expired.
  bool Done() const;

  /// Terminal status: OK when satisfied, Aborted when cancelled,
  /// TimedOut when expired. nullopt while the query is still pending —
  /// a pending query has no outcome yet, misleading or otherwise.
  std::optional<Status> Outcome() const;

  /// Blocks until done or timeout. Returns OK when satisfied, Aborted
  /// when cancelled, TimedOut when still pending at the deadline.
  Status Wait(std::chrono::milliseconds timeout) const;

  /// Registers a completion callback. Fires exactly once per
  /// registration: immediately (in the calling thread) when the handle
  /// is already done, otherwise from whichever thread completes the
  /// query. Callbacks run outside the coordinator's internal locks, so
  /// they may safely call back into the coordinator (submit a follow-up,
  /// inspect stats, ...).
  void OnComplete(CompletionCallback callback);

  /// Grounded answer tuples, one per head atom. Valid when Done() and
  /// satisfied.
  std::vector<Tuple> Answers() const;

  /// Completion timestamp (satisfaction, cancellation or expiry);
  /// nullopt while pending. Lets load drivers measure exact
  /// submission-to-answer latency.
  std::optional<std::chrono::steady_clock::time_point> CompletedAt() const;

 private:
  friend class Coordinator;
  /// Callback-delivery counters shared between a coordinator and every
  /// handle it issued; atomics because immediate-fire registrations on
  /// completed handles happen outside the coordinator locks (and may
  /// outlive the coordinator itself).
  struct CallbackCounters {
    std::atomic<size_t> registered{0};
    std::atomic<size_t> fired{0};
  };
  struct State {
    /// Rank kHandleState: completion happens while shard mutexes are
    /// held, so handle state nests inside every coordinator lock.
    mutable Mutex mu{LockRank::kHandleState, "handle_state"};
    mutable CondVar cv;
    /// Immutable after construction (set before the state is shared).
    QueryId id = 0;
    bool done GUARDED_BY(mu) = false;
    /// Terminal status; empty while pending (never a placeholder
    /// "timed out" that a caller could mistake for a real outcome).
    std::optional<Status> outcome GUARDED_BY(mu);
    std::vector<Tuple> answers GUARDED_BY(mu);
    std::chrono::steady_clock::time_point completed_at GUARDED_BY(mu);
    /// Callbacks awaiting completion; drained exactly once.
    std::vector<CompletionCallback> callbacks GUARDED_BY(mu);
    /// Immutable after construction; the counters themselves are atomic.
    std::shared_ptr<CallbackCounters> counters;
  };
  friend class DetachedHandles;
  explicit EntangledHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Creates and completes *detached* handles: handles whose completion is
/// driven by a transport instead of a local coordinator. The wire
/// protocol's client side (net::RemoteClient) pairs one with each
/// registered query and completes it when the server pushes the
/// coordination's terminal state, so remote callers consume completion
/// through the exact same EntangledHandle surface (Wait / OnComplete /
/// Answers) as in-process callers. Lives next to EntangledHandle because
/// it needs the handle's private state.
class DetachedHandles {
 public:
  /// A pending handle carrying the engine-side query id.
  static EntangledHandle Create(QueryId id);

  /// Completes `handle` exactly once: records outcome/answers, wakes
  /// waiters, and fires parked callbacks in the calling thread. Calls
  /// after the first are no-ops, so a duplicated push is harmless.
  static void Complete(const EntangledHandle& handle, Status outcome,
                       std::vector<Tuple> answers);
};

struct CoordinatorConfig {
  MatchConfig match;
  /// Create missing answer-relation tables on first install.
  bool auto_create_answer_tables = true;
  /// Number of pending-pool shards, keyed by answer relation: a query
  /// whose heads and constraints all name relations of one shard
  /// registers and matches entirely under that shard's mutex, so
  /// independent coordinations (different answer relations) match in
  /// parallel. 1 (the default) reproduces the single-mutex coordinator
  /// exactly. Values are clamped to [1, 64].
  size_t num_shards = 1;
};

/// Summary of one pending query for introspection.
struct PendingQueryInfo {
  QueryId id = 0;
  std::string owner;
  std::string sql;
  std::string ir;
  /// Time spent waiting so far.
  uint64_t age_micros = 0;
};

/// The coordination component of the paper's architecture (§2.2): "runs
/// whenever an entangled query arrives in the system", consulting both
/// regular tables and the pending-query tables, and directing the
/// execution engine to install coordinated answers.
///
/// Concurrency model: the pending pool is partitioned into
/// `CoordinatorConfig::num_shards` shards keyed by (lowercased) answer
/// relation; each shard owns a mutex, a PendingPool, and a Matcher.
/// A query's *home shard* is the shard of the lexicographically
/// smallest relation among its heads and constraints — deterministic,
/// so symmetric partners always route to the same shard. Queries local
/// to one shard register and match under that shard's mutex alone;
/// matching rounds of different shards run concurrently. A query whose
/// relations span shards *escalates*: the round briefly locks every
/// shard (in index order — deadlock free) and matches over the merged
/// view. While any cross-shard query is pending, all rounds escalate,
/// which keeps sharded matching outcome-equivalent to the single-mutex
/// coordinator: shard-local rounds only ever run when every pending
/// query's match-graph neighbourhood is confined to its own shard.
/// Installation runs inside a transaction from the TxnManager, so a
/// concurrent regular workload observes coordinated answers atomically
/// — design decision #3. Completion callbacks fire after all internal
/// locks are released, in the thread whose submission closed the group.
class Coordinator {
 public:
  /// Optional hook executed inside the installation transaction, after
  /// the answer tuples are inserted. A non-OK return aborts the whole
  /// installation (all answers roll back) and the group stays pending.
  /// The travel application uses this for seat-inventory enforcement;
  /// tests use it for failure injection.
  using InstallHook =
      std::function<Status(Transaction*, TxnManager*, const MatchResult&)>;

  Coordinator(StorageEngine* storage, TxnManager* txn_manager,
              CoordinatorConfig config = {});

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Registers the query (assigning it a fresh id) and immediately runs
  /// a matching round. Returns a handle that completes when the query
  /// is eventually answered.
  Result<EntangledHandle> Submit(EntangledQuery query);

  /// Registers a whole batch, then runs one matching round per touched
  /// shard (a single global round when the batch crosses shards). A
  /// complete group submitted together (the paper's friends booking
  /// jointly) closes in one round instead of N lock round-trips, and
  /// intermediate partial matches are never attempted. All-or-nothing
  /// on validation: an invalid member rejects the batch before anything
  /// is registered. Handles are returned in submission order.
  Result<std::vector<EntangledHandle>> SubmitAll(
      std::vector<EntangledQuery> queries);

  /// Withdraws a pending query. Fails with NotFound when it already
  /// matched or never existed.
  Status Cancel(QueryId id);

  /// Re-runs matching for every pending query (e.g. after regular DML
  /// changed the database so previously ungroundable queries may now
  /// ground). Returns the number of queries newly satisfied.
  Result<size_t> RetriggerAll();

  /// Re-runs matching only for pending queries whose domain predicates
  /// read `table` — the targeted retry after regular DML touches that
  /// table. The server layer calls this automatically when
  /// YoutopiaConfig::retrigger_on_dml is set.
  Result<size_t> RetriggerDependentsOf(const std::string& table);

  /// Withdraws every pending query that has waited longer than
  /// `max_age`; their handles complete with kTimedOut and their
  /// registered OnComplete callbacks fire (outside the shard locks),
  /// exactly as for satisfaction and cancellation. Returns the number
  /// expired. Gives deployments a lever against queries whose partners
  /// never arrive.
  Result<size_t> ExpireOlderThan(std::chrono::milliseconds max_age);

  size_t pending_count() const;
  std::vector<PendingQueryInfo> Pending() const;
  MatchGraph BuildGraph() const;

  /// Text rendering of the current match graph (admin interface).
  std::string RenderGraph() const;

  /// Aggregate counters: per-shard counters summed, plus the
  /// coordinator-wide batch and callback counters.
  CoordinatorStats stats() const;

  /// Per-shard introspection entry: pending count plus that shard's
  /// counters. The per-shard-attributable counter fields sum to the
  /// aggregate reported by stats().
  struct ShardInfo {
    size_t shard = 0;
    size_t pending = 0;
    CoordinatorStats stats;
  };
  std::vector<ShardInfo> ShardInfos() const;

  size_t num_shards() const { return shards_.size(); }

  /// Deterministic shard of one (case-insensitively normalized) answer
  /// relation. Exposed so tests and benchmarks can construct workloads
  /// with known shard placement.
  size_t ShardOfRelation(const std::string& relation) const;

  /// Deterministic home shard of `query`: the shard of the
  /// lexicographically smallest lowercased relation among its heads and
  /// constraints.
  size_t HomeShardOf(const EntangledQuery& query) const;

  const CoordinatorConfig& config() const { return config_; }

  void SetInstallHook(InstallHook hook);

  /// Registers the journal that records submissions, resolutions and
  /// installations (see CoordinatorJournal for the per-call contract).
  /// Pass nullptr to detach. Set before concurrent submission starts —
  /// typically right after construction, or after recovery has
  /// re-registered the surviving pending queries.
  void SetJournal(CoordinatorJournal* journal);

  /// Re-registers a query recovered from the journal, preserving its
  /// original id. No matching round runs and nothing is journaled (the
  /// journal already knows it); the caller retriggers once every
  /// survivor is back. Advances the id counter past the restored id.
  /// Fails when the id is 0 (never assigned) or already pending.
  Status RestorePending(EntangledQuery query);

  /// Raises the id counter to at least `floor`, so post-recovery
  /// submissions never collide with ids the journal has already seen.
  void SeedNextQueryId(QueryId floor);

  /// Runs `fn(pending, next_id)` with every shard mutex held: no
  /// submission, match, install or withdrawal can interleave, so the
  /// pending list and id counter `fn` sees are a consistent cut.
  /// Checkpointing uses this to snapshot coordinator state atomically
  /// with the storage scan. `fn` must not call back into the
  /// coordinator.
  Status WithQuiescedPending(
      const std::function<Status(const std::vector<PendingQueryInfo>&,
                                 QueryId)>& fn) const;

 private:
  /// A completed handle whose callbacks still have to run; collected
  /// while shard mutexes are held, fired after they are released.
  struct DeferredNotification {
    std::shared_ptr<EntangledHandle::State> state;
    std::vector<EntangledHandle::CompletionCallback> callbacks;
  };
  using Deferred = std::vector<DeferredNotification>;

  /// One partition of the pending pool. All fields are guarded by `mu`
  /// except where noted; matching rounds of different shards hold only
  /// their own `mu`, global rounds hold every shard's `mu` (acquired in
  /// index order).
  struct Shard {
    /// Rank kCoordinatorShard with seq = shard index: global rounds
    /// lock every shard in index order, which the validator enforces
    /// through the equal-rank/increasing-seq rule.
    explicit Shard(size_t index)
        : mu(LockRank::kCoordinatorShard, "coordinator_shard",
             static_cast<uint32_t>(index)) {}
    mutable Mutex mu;
    PendingPool pool GUARDED_BY(mu);
    /// Pointer immutable after construction; the Matcher (stateful rng)
    /// is only invoked with `mu` held.
    std::unique_ptr<Matcher> matcher;
    std::map<QueryId, std::shared_ptr<EntangledHandle::State>> handles
        GUARDED_BY(mu);
    std::map<QueryId, std::chrono::steady_clock::time_point> arrivals
        GUARDED_BY(mu);
    CoordinatorStats stats GUARDED_BY(mu);
  };

  /// Where a query registers and whether its relations span shards.
  struct Route {
    size_t home = 0;
    bool spanning = false;
  };
  Route RouteOf(const EntangledQuery& query) const;

  std::vector<Shard*> AllShards() const;

  /// Registers `query` (assigning a fresh id) into shard `shard_idx`
  /// without matching. Caller holds that shard's mu (and every other
  /// shard's mu when `spanning`) — a dynamic set the static analysis
  /// cannot express, hence no REQUIRES annotation (the rank validator
  /// still checks the footprint at runtime).
  std::shared_ptr<EntangledHandle::State> RegisterLocked(
      size_t shard_idx, EntangledQuery query, bool spanning)
      NO_THREAD_SAFETY_ANALYSIS;

  /// The submission protocol shared by Submit and SubmitAll: registers
  /// `queries` (routes[i] must be RouteOf(queries[i])) and runs one
  /// matching round over them — global (all shards locked in index
  /// order) when `force_global` or when a cross-shard query is pending
  /// (re-checked under the home shard's mutex), shard-local on
  /// shards_[home_idx] otherwise. On a matching error every query this
  /// call registered is withdrawn before returning, so no phantom
  /// registrations outlive a failed submission. On success returns one
  /// handle state per query, in order.
  Result<std::vector<std::shared_ptr<EntangledHandle::State>>>
  SubmitRoundRouted(std::vector<EntangledQuery> queries,
                    const std::vector<Route>& routes, size_t home_idx,
                    bool force_global, Deferred* deferred)
      NO_THREAD_SAFETY_ANALYSIS;

  /// Withdraws a pending query by id: resolves the owning shard
  /// through the routing map, locks it, and delegates to
  /// WithdrawLocked. NotFound when the query already completed.
  Status WithdrawPending(QueryId id, Status outcome, Deferred* deferred);

  /// Runs matching rounds rooted at each of `roots` in order and, on
  /// success, installs groups and retriggers affected queries. `shards`
  /// is the locked footprint (one home shard, or every shard for a
  /// global round); `home` supplies the Matcher and receives the
  /// round's counters. Caller holds the mutex of every shard in
  /// `shards`. Returns number of queries satisfied (group sizes summed
  /// over the retrigger cascade).
  Result<size_t> MatchAndInstallLocked(const std::vector<Shard*>& shards,
                                       Shard* home,
                                       const std::vector<QueryId>& roots,
                                       Deferred* deferred)
      REQUIRES(home->mu) NO_THREAD_SAFETY_ANALYSIS;

  /// Installs a matched group atomically. On success removes members
  /// from their pools and completes their handles. Caller holds the
  /// mutex of every shard in `shards`.
  Result<bool> InstallLocked(const std::vector<Shard*>& shards, Shard* home,
                             const MatchResult& match, Deferred* deferred)
      REQUIRES(home->mu) NO_THREAD_SAFETY_ANALYSIS;

  /// Removes `id` from `shard`'s pool/handles, completing the handle
  /// with `outcome` (cancellation, expiry). Caller holds shard->mu.
  Status WithdrawLocked(Shard* shard, QueryId id, Status outcome,
                        Deferred* deferred) REQUIRES(shard->mu);

  /// Marks `state` done with `outcome`, wakes waiters and queues its
  /// callbacks for delivery after the locks drop.
  void Complete(const std::shared_ptr<EntangledHandle::State>& state,
                Status outcome, std::vector<Tuple> answers,
                Deferred* deferred);

  /// Delivers queued completion callbacks. Must be called with NO shard
  /// mutex held; every public entry point that can complete handles
  /// flushes after releasing its locks (error paths included).
  void FireCallbacks(Deferred* deferred);

  StorageEngine* storage_;
  TxnManager* txn_manager_;
  CoordinatorConfig config_;
  AnswerRelationManager answers_;
  std::shared_ptr<EntangledHandle::CallbackCounters> callback_counters_;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// Pending queries whose answer relations span shards. While > 0
  /// every matching round escalates to a global round; incremented only
  /// with every shard mutex held, so a shard-local round that reads 0
  /// under its own mutex is guaranteed no cross-shard query can
  /// register before it finishes.
  std::atomic<size_t> cross_shard_pending_{0};

  std::atomic<QueryId> next_id_{1};

  /// Coordinator-wide batch counters (not shard-attributable).
  std::atomic<size_t> batches_{0};
  std::atomic<size_t> batched_queries_{0};

  /// Pending-query routing state: owning shard (so Cancel can find it
  /// without sweeping every pool) and whether the query counted into
  /// cross_shard_pending_ at registration (read back on removal, so
  /// the decrement can never disagree with the increment). Guarded by
  /// router_mu_; lock order is always shard mutexes first, router_mu_
  /// last.
  mutable Mutex router_mu_{LockRank::kCoordinatorRouter,
                           "coordinator_router"};
  std::map<QueryId, Route> shard_of_ GUARDED_BY(router_mu_);

  /// Removes `id`'s routing entry and returns it (home = owning shard,
  /// spanning = registered as cross-shard); nullopt when absent.
  std::optional<Route> TakeRouting(QueryId id);

  /// Runs matching rounds rooted at every pending query selected by
  /// `ids` (per-shard when no cross-shard query is pending, otherwise
  /// one all-shard pass) — the shared body of RetriggerAll and
  /// RetriggerDependentsOf.
  Result<size_t> Retrigger(
      const std::function<std::vector<QueryId>(const PendingPool&)>& ids,
      Deferred* deferred) NO_THREAD_SAFETY_ANALYSIS;

  /// Durability journal; atomic so submissions on other threads see a
  /// SetJournal without a dedicated lock. Journal calls happen with the
  /// relevant shard mutexes held, keeping log order consistent with
  /// pool mutation order.
  std::atomic<CoordinatorJournal*> journal_{nullptr};

  /// A dedicated mutex so SetInstallHook never touches a shard lock;
  /// installs copy the hook out before calling.
  mutable Mutex hook_mu_{LockRank::kCoordinatorHook, "coordinator_hook"};
  InstallHook install_hook_ GUARDED_BY(hook_mu_);

  /// True while install_hook_ is set. Hooks may read and write tables
  /// shared across shards (the travel inventory hook updates Flights),
  /// which breaks shard independence two ways: concurrent installs
  /// could 2PL-conflict and strand a matched group, and another
  /// shard's matcher — which grounds against raw storage — could
  /// dirty-read the hook transaction's uncommitted writes. So while a
  /// hook is registered every round escalates to a global round
  /// (mutually exclusive by construction), trading shard parallelism
  /// for correctness on the hook path.
  std::atomic<bool> hook_installed_{false};

  /// Belt-and-suspenders for rounds already in flight when the hook is
  /// registered: serializes hook-bearing install transactions. Rank
  /// kCoordinatorInstall: acquired with shard mutexes held, before the
  /// WAL/storage locks the install transaction takes — never the other
  /// way around. (Register hooks before concurrent submission starts —
  /// the travel service does — and this never contends.)
  Mutex install_txn_mu_{LockRank::kCoordinatorInstall,
                        "coordinator_install_txn"};
};

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_COORDINATOR_H_
