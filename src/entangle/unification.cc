#include "entangle/unification.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace youtopia {

Substitution::Substitution(size_t num_vars) { AddVars(num_vars); }

void Substitution::AddVars(size_t count) {
  const size_t old = parent_.size();
  parent_.resize(old + count);
  offset_.resize(old + count, 0);
  binding_.resize(old + count);
  for (size_t i = old; i < parent_.size(); ++i) parent_[i] = i;
}

Substitution::FindResult Substitution::Find(size_t v) const {
  YOUTOPIA_CHECK(v < parent_.size()) << "variable out of range";
  if (parent_[v] == v) return {v, 0};
  FindResult up = Find(parent_[v]);
  // Path compression with offset accumulation.
  parent_[v] = up.root;
  offset_[v] += up.offset;
  return {up.root, offset_[v]};
}

bool Substitution::BindRoot(size_t root, const Value& v) {
  if (binding_[root].has_value()) return *binding_[root] == v;
  binding_[root] = v;
  return true;
}

bool Substitution::UnifyVars(size_t a, int64_t offset_a, size_t b,
                             int64_t offset_b) {
  FindResult fa = Find(a);
  FindResult fb = Find(b);
  // value(a) = value(ra) + fa.offset; constraint:
  //   value(ra) + fa.offset + offset_a == value(rb) + fb.offset + offset_b
  const int64_t delta = fb.offset + offset_b - fa.offset - offset_a;
  // => value(ra) = value(rb) + delta
  if (fa.root == fb.root) return delta == 0;

  const auto& bind_a = binding_[fa.root];
  const auto& bind_b = binding_[fb.root];
  if (bind_a.has_value() && bind_b.has_value()) {
    if (delta == 0) return *bind_a == *bind_b;
    if (bind_a->type() != DataType::kInt64 ||
        bind_b->type() != DataType::kInt64) {
      return false;  // offsets require integers
    }
    if (bind_a->int64_value() != bind_b->int64_value() + delta) return false;
  }

  // Link ra under rb: value(ra) = value(rb) + delta.
  parent_[fa.root] = fb.root;
  offset_[fa.root] = delta;
  if (bind_a.has_value() && !bind_b.has_value()) {
    if (delta != 0 && bind_a->type() != DataType::kInt64) return false;
    const Value implied = delta == 0
                              ? *bind_a
                              : Value::Int64(bind_a->int64_value() - delta);
    binding_[fb.root] = implied;
  }
  if (bind_a.has_value()) binding_[fa.root].reset();  // roots own bindings
  return true;
}

bool Substitution::UnifyConstant(size_t a, int64_t offset, const Value& v) {
  FindResult fa = Find(a);
  // value(ra) + fa.offset + offset == v
  const int64_t total = fa.offset + offset;
  if (total == 0) return BindRoot(fa.root, v);
  if (v.type() != DataType::kInt64) return false;
  return BindRoot(fa.root, Value::Int64(v.int64_value() - total));
}

bool Substitution::UnifyTerms(const Term& a, const Term& b) {
  if (a.is_constant() && b.is_constant()) return a.constant == b.constant;
  if (a.is_constant()) return UnifyConstant(b.var, b.offset, a.constant);
  if (b.is_constant()) return UnifyConstant(a.var, a.offset, b.constant);
  return UnifyVars(a.var, a.offset, b.var, b.offset);
}

std::optional<Value> Substitution::Lookup(size_t v) const {
  FindResult f = Find(v);
  if (!binding_[f.root].has_value()) return std::nullopt;
  const Value& bound = *binding_[f.root];
  if (f.offset == 0) return bound;
  if (bound.type() != DataType::kInt64) return std::nullopt;
  return Value::Int64(bound.int64_value() + f.offset);
}

size_t Substitution::Root(size_t v) const { return Find(v).root; }

int64_t Substitution::OffsetToRoot(size_t v) const { return Find(v).offset; }

bool Substitution::SameClass(size_t a, size_t b) const {
  return Find(a).root == Find(b).root;
}

bool UnifyAtoms(const AnswerAtom& a, const AnswerAtom& b,
                Substitution* subst) {
  if (!EqualsIgnoreCase(a.relation, b.relation)) return false;
  if (a.arity() != b.arity()) return false;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (!subst->UnifyTerms(a.terms[i], b.terms[i])) return false;
  }
  return true;
}

bool UnifyAtomWithTuple(const AnswerAtom& atom, const Tuple& tuple,
                        Substitution* subst) {
  if (atom.arity() != tuple.size()) return false;
  for (size_t i = 0; i < atom.arity(); ++i) {
    const Term& t = atom.terms[i];
    if (t.is_constant()) {
      if (t.constant != tuple.at(i)) return false;
    } else if (!subst->UnifyConstant(t.var, t.offset, tuple.at(i))) {
      return false;
    }
  }
  return true;
}

bool AtomMayMatchTuple(const AnswerAtom& atom, const Tuple& tuple) {
  if (atom.arity() != tuple.size()) return false;
  for (size_t i = 0; i < atom.arity(); ++i) {
    if (atom.terms[i].is_constant() &&
        atom.terms[i].constant != tuple.at(i)) {
      return false;
    }
  }
  return true;
}

bool AtomsMayUnify(const AnswerAtom& a, const AnswerAtom& b) {
  if (!EqualsIgnoreCase(a.relation, b.relation)) return false;
  if (a.arity() != b.arity()) return false;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (a.terms[i].is_constant() && b.terms[i].is_constant() &&
        a.terms[i].constant != b.terms[i].constant) {
      return false;
    }
  }
  return true;
}

}  // namespace youtopia
