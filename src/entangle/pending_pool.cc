#include "entangle/pending_pool.h"

#include <algorithm>

#include "common/string_util.h"
#include "entangle/unification.h"

namespace youtopia {

void PendingPool::IndexAtom(AtomIndex* index, const AnswerAtom& atom,
                            QueryId id) {
  auto& positions = (*index)[ToLowerAscii(atom.relation)];
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    PositionIndex& bucket = positions[i];
    if (atom.terms[i].is_constant()) {
      bucket.constants[atom.terms[i].constant].insert(id);
    } else {
      bucket.variables.insert(id);
    }
  }
}

void PendingPool::UnindexAtom(AtomIndex* index, const AnswerAtom& atom,
                              QueryId id) {
  auto rel = index->find(ToLowerAscii(atom.relation));
  if (rel == index->end()) return;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    auto pos = rel->second.find(i);
    if (pos == rel->second.end()) continue;
    if (atom.terms[i].is_constant()) {
      auto value = pos->second.constants.find(atom.terms[i].constant);
      if (value != pos->second.constants.end()) {
        value->second.erase(id);
        if (value->second.empty()) pos->second.constants.erase(value);
      }
    } else {
      pos->second.variables.erase(id);
    }
    if (pos->second.constants.empty() && pos->second.variables.empty()) {
      rel->second.erase(pos);
    }
  }
  if (rel->second.empty()) index->erase(rel);
}

void PendingPool::Add(std::shared_ptr<const EntangledQuery> query) {
  const QueryId id = query->id;
  for (const AnswerAtom& h : query->heads) {
    by_head_relation_[ToLowerAscii(h.relation)].insert(id);
    IndexAtom(&head_index_, h, id);
  }
  for (const AnswerAtom& c : query->constraints) {
    by_constraint_relation_[ToLowerAscii(c.relation)].insert(id);
    IndexAtom(&constraint_index_, c, id);
  }
  for (const DomainPredicate& d : query->domains) {
    by_domain_table_[ToLowerAscii(d.table)].insert(id);
  }
  queries_.emplace(id, std::move(query));
}

std::shared_ptr<const EntangledQuery> PendingPool::Remove(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) return nullptr;
  auto query = it->second;
  queries_.erase(it);
  for (const AnswerAtom& h : query->heads) {
    auto rel = by_head_relation_.find(ToLowerAscii(h.relation));
    if (rel != by_head_relation_.end()) {
      rel->second.erase(id);
      if (rel->second.empty()) by_head_relation_.erase(rel);
    }
    UnindexAtom(&head_index_, h, id);
  }
  for (const AnswerAtom& c : query->constraints) {
    auto rel = by_constraint_relation_.find(ToLowerAscii(c.relation));
    if (rel != by_constraint_relation_.end()) {
      rel->second.erase(id);
      if (rel->second.empty()) by_constraint_relation_.erase(rel);
    }
    UnindexAtom(&constraint_index_, c, id);
  }
  for (const DomainPredicate& d : query->domains) {
    auto table = by_domain_table_.find(ToLowerAscii(d.table));
    if (table != by_domain_table_.end()) {
      table->second.erase(id);
      if (table->second.empty()) by_domain_table_.erase(table);
    }
  }
  return query;
}

std::shared_ptr<const EntangledQuery> PendingPool::Get(QueryId id) const {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : it->second;
}

std::vector<QueryId> PendingPool::AllIds() const {
  std::vector<QueryId> out;
  out.reserve(queries_.size());
  for (const auto& [id, query] : queries_) out.push_back(id);
  return out;
}

std::vector<QueryId> PendingPool::QueriesWithHeadOn(
    const std::string& relation) const {
  auto it = by_head_relation_.find(ToLowerAscii(relation));
  if (it == by_head_relation_.end()) return {};
  return std::vector<QueryId>(it->second.begin(), it->second.end());
}

std::vector<QueryId> PendingPool::QueriesWithConstraintOn(
    const std::string& relation) const {
  auto it = by_constraint_relation_.find(ToLowerAscii(relation));
  if (it == by_constraint_relation_.end()) return {};
  return std::vector<QueryId>(it->second.begin(), it->second.end());
}

std::vector<QueryId> PendingPool::QueriesWithDomainOn(
    const std::string& table) const {
  auto it = by_domain_table_.find(ToLowerAscii(table));
  if (it == by_domain_table_.end()) return {};
  return std::vector<QueryId>(it->second.begin(), it->second.end());
}

std::vector<QueryId> PendingPool::CandidateProviders(
    const AnswerAtom& constraint) const {
  const std::string rel_key = ToLowerAscii(constraint.relation);
  auto rel = head_index_.find(rel_key);
  if (rel == head_index_.end()) return {};

  // Filter on the constraint's first constant position: a providing
  // head must carry the same constant there or a variable.
  for (size_t i = 0; i < constraint.terms.size(); ++i) {
    if (!constraint.terms[i].is_constant()) continue;
    auto pos = rel->second.find(i);
    if (pos == rel->second.end()) break;  // no head has this position
    std::set<QueryId> merged = pos->second.variables;
    auto value = pos->second.constants.find(constraint.terms[i].constant);
    if (value != pos->second.constants.end()) {
      merged.insert(value->second.begin(), value->second.end());
    }
    return std::vector<QueryId>(merged.begin(), merged.end());
  }
  // All-variable constraint: every head on the relation is a candidate.
  return QueriesWithHeadOn(constraint.relation);
}

std::vector<QueryId> PendingPool::QueriesUnblockedBy(
    const std::string& relation, const Tuple& tuple) const {
  const std::string rel_key = ToLowerAscii(relation);
  auto rel = constraint_index_.find(rel_key);
  if (rel == constraint_index_.end()) return {};

  // Narrow by the tuple's first value, then verify exactly.
  std::set<QueryId> candidates;
  auto pos = rel->second.find(0);
  if (pos != rel->second.end() && !tuple.empty()) {
    candidates = pos->second.variables;
    auto value = pos->second.constants.find(tuple.at(0));
    if (value != pos->second.constants.end()) {
      candidates.insert(value->second.begin(), value->second.end());
    }
  } else {
    auto coarse = by_constraint_relation_.find(rel_key);
    if (coarse == by_constraint_relation_.end()) return {};
    candidates = coarse->second;
  }

  std::vector<QueryId> out;
  for (QueryId id : candidates) {
    auto query = Get(id);
    if (query == nullptr) continue;
    for (const AnswerAtom& c : query->constraints) {
      if (EqualsIgnoreCase(c.relation, relation) &&
          AtomMayMatchTuple(c, tuple)) {
        out.push_back(id);
        break;
      }
    }
  }
  return out;
}

namespace {

/// Concatenates per-pool id lists (each already sorted) and restores
/// global id order, so a merged view enumerates candidates exactly like
/// one pool holding the union would.
std::vector<QueryId> MergeIdLists(
    const std::vector<const PendingPool*>& pools,
    std::vector<QueryId> (PendingPool::*member)(const std::string&) const,
    const std::string& arg) {
  std::vector<QueryId> out;
  for (const PendingPool* pool : pools) {
    std::vector<QueryId> part = (pool->*member)(arg);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::shared_ptr<const EntangledQuery> MergedPendingView::Get(
    QueryId id) const {
  for (const PendingPool* pool : pools_) {
    auto query = pool->Get(id);
    if (query != nullptr) return query;
  }
  return nullptr;
}

bool MergedPendingView::Contains(QueryId id) const {
  for (const PendingPool* pool : pools_) {
    if (pool->Contains(id)) return true;
  }
  return false;
}

size_t MergedPendingView::size() const {
  size_t total = 0;
  for (const PendingPool* pool : pools_) total += pool->size();
  return total;
}

std::vector<QueryId> MergedPendingView::AllIds() const {
  std::vector<QueryId> out;
  for (const PendingPool* pool : pools_) {
    std::vector<QueryId> part = pool->AllIds();
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<QueryId> MergedPendingView::QueriesWithHeadOn(
    const std::string& relation) const {
  return MergeIdLists(pools_, &PendingPool::QueriesWithHeadOn, relation);
}

std::vector<QueryId> MergedPendingView::QueriesWithConstraintOn(
    const std::string& relation) const {
  return MergeIdLists(pools_, &PendingPool::QueriesWithConstraintOn, relation);
}

std::vector<QueryId> MergedPendingView::CandidateProviders(
    const AnswerAtom& constraint) const {
  std::vector<QueryId> out;
  for (const PendingPool* pool : pools_) {
    std::vector<QueryId> part = pool->CandidateProviders(constraint);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<QueryId> MergedPendingView::QueriesUnblockedBy(
    const std::string& relation, const Tuple& tuple) const {
  std::vector<QueryId> out;
  for (const PendingPool* pool : pools_) {
    std::vector<QueryId> part = pool->QueriesUnblockedBy(relation, tuple);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<QueryId> MergedPendingView::QueriesWithDomainOn(
    const std::string& table) const {
  return MergeIdLists(pools_, &PendingPool::QueriesWithDomainOn, table);
}

}  // namespace youtopia
