#ifndef YOUTOPIA_ENTANGLE_NORMALIZER_H_
#define YOUTOPIA_ENTANGLE_NORMALIZER_H_

#include <string>

#include "common/status.h"
#include "entangle/entangled_query.h"
#include "sql/ast.h"

namespace youtopia {

/// The query-compiler half of the paper's architecture (§2.2): translates
/// a parsed entangled SELECT into the coordination component's
/// intermediate representation.
///
/// Mapping:
///   - select items of each INTO ANSWER group  -> head AnswerAtom terms
///   - `x IN (SELECT col FROM T WHERE ...)`    -> DomainPredicate
///   - `(e1, ..., en) IN ANSWER R`             -> constraint AnswerAtom
///   - `term op term` comparisons              -> VarComparison
///
/// Unqualified identifiers are coordination variables (the paper's
/// `fno`); the same spelling names the same variable everywhere in the
/// query, case-insensitively. Terms may be `var`, `var + k`, `var - k`,
/// or constants.
class Normalizer {
 public:
  /// `id`, `owner` and `sql` are carried into the result for the pending
  /// pool and administrative interface.
  static Result<EntangledQuery> Normalize(const SelectStatement& stmt,
                                          QueryId id, std::string owner,
                                          std::string sql);
};

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_NORMALIZER_H_
