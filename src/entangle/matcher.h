#ifndef YOUTOPIA_ENTANGLE_MATCHER_H_
#define YOUTOPIA_ENTANGLE_MATCHER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "entangle/pending_pool.h"
#include "entangle/unification.h"
#include "storage/storage_engine.h"

namespace youtopia {

/// Tuning knobs for the matching algorithm. Joint satisfiability of
/// entangled queries is NP-hard in general (companion paper [2]), so the
/// search is budgeted; exceeding a budget leaves queries pending rather
/// than failing them.
struct MatchConfig {
  /// Maximum number of queries in one coordination group.
  size_t max_group_size = 32;
  /// Search-step budget per TryMatch call (obligation expansions).
  size_t max_steps = 200000;
  /// Candidate-binding budget in the grounding phase.
  size_t max_grounding_attempts = 100000;
  /// Seed for CHOOSE-1 nondeterminism (candidate shuffling).
  uint64_t rng_seed = 0xC0FFEEull;
  /// Design decision #1: restrict partner search to queries whose heads
  /// touch the constraint's relation. Disable only for ablation benches.
  bool use_signature_index = true;
  /// Allow constraints to be satisfied by answers already installed in
  /// the stored answer relation (the demo's browse-then-book path).
  bool allow_stored_answers = true;
  /// Grounding order heuristic: assign the class with the fewest
  /// candidates first (fail-first). Disable only for the ablation bench
  /// — the naive order takes evaluable classes as encountered.
  bool prefer_most_constrained = true;
};

/// A successfully matched coordination group with grounded answers.
struct MatchResult {
  /// Participating pending queries (the root is always present).
  std::vector<QueryId> group;
  /// For each query, the grounded tuple per head atom, parallel to
  /// EntangledQuery::heads.
  std::map<QueryId, std::vector<Tuple>> answers;
  /// Answer relations touched (for retriggering).
  std::vector<std::string> relations;
  /// Flat, de-duplicated list of (relation, tuple) pairs the group
  /// contributes — what installation writes and what install hooks
  /// (seat inventory, failure injection) inspect.
  std::vector<std::pair<std::string, Tuple>> installed;
  /// Number of constraints satisfied by already-stored answers.
  size_t from_stored = 0;
  /// Search effort actually spent.
  size_t steps = 0;
};

/// The coordination matching algorithm (paper §1: "the functionality of
/// matching and jointly executing entangled queries").
///
/// Two phases, per design decision #2 in DESIGN.md:
///  1. *Symbolic phase* — a backtracking search assembles a closed group:
///     starting from the root query, every constraint atom of every
///     member must be unified with (a) a head atom of a member, or
///     (b) an already-installed tuple of the stored answer relation, or
///     (c) a head atom of another pending query, which then joins the
///     group bringing its own constraints. Unification is pure symbol
///     manipulation — no database access except stored-answer probes.
///  2. *Grounding phase* — the merged variable classes are assigned
///     concrete values from their domain predicates (database queries),
///     most-constrained-first, with backtracking; all domain predicates
///     and comparisons are verified under the full grounding. CHOOSE 1
///     picks uniformly at random among valid candidates (seeded).
class Matcher {
 public:
  Matcher(StorageEngine* storage, MatchConfig config)
      : storage_(storage), config_(config), rng_(config.rng_seed) {}

  Matcher(const Matcher&) = delete;
  Matcher& operator=(const Matcher&) = delete;

  /// Attempts to build a coordination group containing `root`.
  /// Returns nullopt when no group exists within budget (the query
  /// stays pending). Errors indicate storage-level failures only.
  Result<std::optional<MatchResult>> TryMatch(QueryId root,
                                              const PendingView& pool);

  const MatchConfig& config() const { return config_; }

 private:
  /// One member of the group being assembled.
  struct Member {
    std::shared_ptr<const EntangledQuery> query;
    size_t var_base = 0;  ///< Offset of its vars in the global space.
  };

  /// Mutable search state, copied at branch points.
  struct GroupState {
    std::vector<Member> members;
    Substitution subst{0};
    /// Outstanding (member index, constraint index) obligations.
    std::vector<std::pair<size_t, size_t>> obligations;
    size_t from_stored = 0;
  };

  /// Search bookkeeping shared across a TryMatch call.
  struct SearchStats {
    size_t steps = 0;
    size_t grounding_attempts = 0;
    bool budget_exhausted = false;
  };

  /// Maps a local term of member `m` into global variable space.
  static Term Globalize(const Term& t, size_t var_base);
  static AnswerAtom GlobalizeAtom(const AnswerAtom& atom, size_t var_base);

  /// Appends `query` as a new member (remapping vars, queueing its
  /// constraints as obligations). Returns the member index.
  static size_t AddMember(GroupState* state,
                          std::shared_ptr<const EntangledQuery> query);

  /// DFS over obligations. On success fills `result`.
  Result<bool> Search(GroupState state, const PendingView& pool,
                      SearchStats* stats, MatchResult* result);

  /// Phase 2: grounds all variable classes and verifies the group.
  Result<bool> TryGround(const GroupState& state, SearchStats* stats,
                         MatchResult* result);

  /// Recursive class-assignment search.
  Result<bool> GroundClasses(const GroupState& state,
                             Substitution subst,
                             const std::vector<size_t>& class_roots,
                             SearchStats* stats, MatchResult* result);

  /// Evaluates a domain predicate of member `m` under `subst`.
  /// Returns nullopt when a correlated condition references an unbound
  /// class (caller defers the class).
  Result<std::optional<std::vector<Value>>> EvaluateDomain(
      const DomainPredicate& domain, size_t var_base,
      const Substitution& subst) const;

  /// Resolves a (global-space) term to a value under `subst`;
  /// nullopt if its class is unbound.
  static std::optional<Value> ResolveTerm(const Term& term,
                                          const Substitution& subst);

  /// Verifies all domain predicates and comparisons under a full
  /// grounding, then builds the MatchResult.
  Result<bool> FinalizeGrounding(const GroupState& state,
                                 const Substitution& subst,
                                 MatchResult* result);

  /// Stored tuples of `relation` that could match `constraint`
  /// (index-accelerated when a constant term hits an indexed column).
  Result<std::vector<Tuple>> StoredCandidates(
      const AnswerAtom& constraint) const;

  StorageEngine* storage_;
  MatchConfig config_;
  Random rng_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_MATCHER_H_
