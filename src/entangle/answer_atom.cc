#include "entangle/answer_atom.h"

namespace youtopia {

std::string Term::ToString(const std::vector<std::string>* var_names) const {
  if (is_constant()) return constant.ToString();
  std::string name;
  if (var_names != nullptr && var < var_names->size()) {
    name = (*var_names)[var];
  } else {
    name = "$" + std::to_string(var);
  }
  if (offset > 0) return name + " + " + std::to_string(offset);
  if (offset < 0) return name + " - " + std::to_string(-offset);
  return name;
}

bool AnswerAtom::IsGround() const {
  for (const Term& t : terms) {
    if (!t.is_constant()) return false;
  }
  return true;
}

Tuple AnswerAtom::ToTuple() const {
  Tuple out;
  for (const Term& t : terms) out.Append(t.constant);
  return out;
}

std::string AnswerAtom::ToString(
    const std::vector<std::string>* var_names) const {
  std::string out = relation + "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString(var_names);
  }
  return out + ")";
}

}  // namespace youtopia
