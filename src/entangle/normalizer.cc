#include "entangle/normalizer.h"

#include <map>

#include "common/string_util.h"
#include "exec/planner.h"
#include "sql/unparser.h"

namespace youtopia {

namespace {

/// Variable registry for one query: identifier spelling -> VarId.
class VarRegistry {
 public:
  VarId Intern(const std::string& name) {
    const std::string key = ToLowerAscii(name);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    const VarId id = static_cast<VarId>(names_.size());
    ids_.emplace(key, id);
    names_.push_back(name);
    return id;
  }

  std::vector<std::string> TakeNames() { return std::move(names_); }

 private:
  std::map<std::string, VarId> ids_;
  std::vector<std::string> names_;
};

/// Normalizes an expression to a Term: constant literal, variable, or
/// variable +/- integer constant.
Result<Term> ExprToTerm(const Expr& expr, VarRegistry* vars) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return Term::Constant(As<LiteralExpr>(expr).value);
    case ExprKind::kColumnRef: {
      const auto& ref = As<ColumnRefExpr>(expr);
      if (!ref.qualifier.empty()) {
        return Status::InvalidArgument(
            "qualified name " + ref.qualifier + "." + ref.column +
            " cannot be a coordination variable (entangled queries bind "
            "database values via IN (SELECT ...) predicates)");
      }
      return Term::Variable(vars->Intern(ref.column));
    }
    case ExprKind::kUnary: {
      const auto& u = As<UnaryExpr>(expr);
      if (u.op == UnaryOp::kNeg) {
        auto inner = ExprToTerm(*u.operand, vars);
        if (!inner.ok()) return inner.status();
        if (inner->is_constant() &&
            inner->constant.type() == DataType::kInt64) {
          return Term::Constant(Value::Int64(-inner->constant.int64_value()));
        }
        if (inner->is_constant() &&
            inner->constant.type() == DataType::kDouble) {
          return Term::Constant(
              Value::Double(-inner->constant.double_value()));
        }
      }
      return Status::InvalidArgument("expression '" + ExprToSql(expr) +
                                     "' is not a valid entangled term");
    }
    case ExprKind::kBinary: {
      const auto& b = As<BinaryExpr>(expr);
      if (b.op == BinaryOp::kAdd || b.op == BinaryOp::kSub) {
        auto lhs = ExprToTerm(*b.left, vars);
        if (!lhs.ok()) return lhs.status();
        auto rhs = ExprToTerm(*b.right, vars);
        if (!rhs.ok()) return rhs.status();
        const int64_t sign = b.op == BinaryOp::kAdd ? 1 : -1;
        // var +/- int constant (either side for +).
        if (lhs->is_variable() && rhs->is_constant() &&
            rhs->constant.type() == DataType::kInt64) {
          return Term::Variable(lhs->var,
                                lhs->offset +
                                    sign * rhs->constant.int64_value());
        }
        if (b.op == BinaryOp::kAdd && lhs->is_constant() &&
            rhs->is_variable() &&
            lhs->constant.type() == DataType::kInt64) {
          return Term::Variable(rhs->var,
                                rhs->offset + lhs->constant.int64_value());
        }
        if (lhs->is_constant() && rhs->is_constant()) {
          // Constant folding over integers.
          if (lhs->constant.type() == DataType::kInt64 &&
              rhs->constant.type() == DataType::kInt64) {
            return Term::Constant(Value::Int64(
                lhs->constant.int64_value() +
                sign * rhs->constant.int64_value()));
          }
        }
      }
      return Status::InvalidArgument(
          "expression '" + ExprToSql(expr) +
          "' is not a valid entangled term (supported: constants, "
          "variables, var +/- integer)");
    }
    default:
      return Status::InvalidArgument("expression '" + ExprToSql(expr) +
                                     "' is not a valid entangled term");
  }
}

/// Translates `needle IN (SELECT col FROM T WHERE ...)` to a
/// DomainPredicate.
Result<DomainPredicate> TranslateDomain(const InSubqueryExpr& in,
                                        VarRegistry* vars) {
  if (in.negated) {
    return Status::NotImplemented(
        "NOT IN (subquery) is not supported in entangled queries");
  }
  auto needle = ExprToTerm(*in.needle, vars);
  if (!needle.ok()) return needle.status();
  if (!needle->is_variable() || needle->offset != 0) {
    return Status::InvalidArgument(
        "the left side of IN (SELECT ...) must be a plain coordination "
        "variable, got '" + ExprToSql(*in.needle) + "'");
  }
  const SelectStatement& sub = *in.subquery;
  if (sub.IsEntangled()) {
    return Status::InvalidArgument(
        "subqueries of entangled queries must be regular SELECTs");
  }
  if (sub.from.size() != 1) {
    return Status::NotImplemented(
        "domain subqueries must select from exactly one table");
  }
  if (sub.select_list.size() != 1 ||
      sub.select_list[0]->kind != ExprKind::kColumnRef) {
    return Status::InvalidArgument(
        "domain subqueries must select exactly one column");
  }
  const auto& out_col = As<ColumnRefExpr>(*sub.select_list[0]);

  DomainPredicate domain;
  domain.output_var = needle->var;
  domain.table = sub.from[0].table;
  domain.output_column = out_col.column;

  for (const Expr* conjunct : SplitConjuncts(sub.where.get())) {
    if (conjunct->kind != ExprKind::kBinary) {
      return Status::NotImplemented(
          "domain subquery condition '" + ExprToSql(*conjunct) +
          "' is not a supported comparison");
    }
    const auto& cmp = As<BinaryExpr>(*conjunct);
    switch (cmp.op) {
      case BinaryOp::kEq:
      case BinaryOp::kNeq:
      case BinaryOp::kLt:
      case BinaryOp::kLte:
      case BinaryOp::kGt:
      case BinaryOp::kGte:
        break;
      default:
        return Status::NotImplemented(
            "domain subquery condition '" + ExprToSql(*conjunct) +
            "' is not a supported comparison");
    }
    // One side must be a column of the subquery table, the other a
    // constant or an outer coordination variable. When both sides are
    // bare identifiers (e.g. `fno = fno` in the adjacent-seat query),
    // the left side is resolved as the subquery table's column and the
    // right as the outer variable — a documented dialect rule.
    DomainPredicate::Condition cond;
    const Expr* col_side = nullptr;
    const Expr* term_side = nullptr;
    BinaryOp op = cmp.op;

    auto is_column = [&](const Expr& e) {
      return e.kind == ExprKind::kColumnRef;
    };
    if (is_column(*cmp.left)) {
      col_side = cmp.left.get();
      term_side = cmp.right.get();
    } else if (is_column(*cmp.right)) {
      col_side = cmp.right.get();
      term_side = cmp.left.get();
      // Flip the comparison: c op t written as t op' c.
      switch (op) {
        case BinaryOp::kLt:
          op = BinaryOp::kGt;
          break;
        case BinaryOp::kLte:
          op = BinaryOp::kGte;
          break;
        case BinaryOp::kGt:
          op = BinaryOp::kLt;
          break;
        case BinaryOp::kGte:
          op = BinaryOp::kLte;
          break;
        default:
          break;
      }
    } else {
      return Status::InvalidArgument(
          "domain subquery condition '" + ExprToSql(*conjunct) +
          "' must compare a column with a constant or variable");
    }
    cond.column = As<ColumnRefExpr>(*col_side).column;
    cond.op = op;
    auto rhs = ExprToTerm(*term_side, vars);
    if (!rhs.ok()) return rhs.status();
    cond.rhs = rhs.TakeValue();
    domain.conditions.push_back(std::move(cond));
  }
  return domain;
}

}  // namespace

Result<EntangledQuery> Normalizer::Normalize(const SelectStatement& stmt,
                                             QueryId id, std::string owner,
                                             std::string sql) {
  if (!stmt.IsEntangled()) {
    return Status::InvalidArgument(
        "statement has no INTO ANSWER clause; it is a regular query");
  }
  if (!stmt.from.empty()) {
    return Status::InvalidArgument(
        "entangled queries bind database values through IN (SELECT ...) "
        "predicates, not a FROM clause");
  }

  EntangledQuery query;
  query.id = id;
  query.owner = std::move(owner);
  query.sql = std::move(sql);
  query.choose = stmt.choose == 0 ? 1 : stmt.choose;
  if (query.choose != 1) {
    return Status::NotImplemented(
        "CHOOSE k with k > 1 is not supported; each entangled query "
        "receives exactly one answer per head (paper semantics)");
  }

  VarRegistry vars;

  for (const auto& head : stmt.heads) {
    AnswerAtom atom;
    atom.relation = head.answer_relation;
    for (const auto& e : head.exprs) {
      auto term = ExprToTerm(*e, &vars);
      if (!term.ok()) return term.status();
      atom.terms.push_back(term.TakeValue());
    }
    query.heads.push_back(std::move(atom));
  }

  for (const Expr* conjunct : SplitConjuncts(stmt.where.get())) {
    switch (conjunct->kind) {
      case ExprKind::kInSubquery: {
        auto domain =
            TranslateDomain(As<InSubqueryExpr>(*conjunct), &vars);
        if (!domain.ok()) return domain.status();
        query.domains.push_back(domain.TakeValue());
        break;
      }
      case ExprKind::kInAnswer: {
        const auto& in = As<InAnswerExpr>(*conjunct);
        if (in.negated) {
          return Status::NotImplemented(
              "NOT IN ANSWER constraints are not supported (negative "
              "coordination is future work in the paper)");
        }
        AnswerAtom atom;
        atom.relation = in.relation;
        for (const auto& e : in.tuple) {
          auto term = ExprToTerm(*e, &vars);
          if (!term.ok()) return term.status();
          atom.terms.push_back(term.TakeValue());
        }
        query.constraints.push_back(std::move(atom));
        break;
      }
      case ExprKind::kBinary: {
        const auto& cmp = As<BinaryExpr>(*conjunct);
        switch (cmp.op) {
          case BinaryOp::kEq:
          case BinaryOp::kNeq:
          case BinaryOp::kLt:
          case BinaryOp::kLte:
          case BinaryOp::kGt:
          case BinaryOp::kGte:
            break;
          default:
            return Status::InvalidArgument(
                "unsupported entangled WHERE conjunct: " +
                ExprToSql(*conjunct));
        }
        VarComparison comparison;
        auto lhs = ExprToTerm(*cmp.left, &vars);
        if (!lhs.ok()) return lhs.status();
        auto rhs = ExprToTerm(*cmp.right, &vars);
        if (!rhs.ok()) return rhs.status();
        comparison.lhs = lhs.TakeValue();
        comparison.op = cmp.op;
        comparison.rhs = rhs.TakeValue();
        query.comparisons.push_back(std::move(comparison));
        break;
      }
      default:
        return Status::InvalidArgument(
            "unsupported entangled WHERE conjunct: " + ExprToSql(*conjunct));
    }
  }

  query.var_names = vars.TakeNames();

  // Sanity: every head must have at least one term; at least one head.
  if (query.heads.empty()) {
    return Status::InvalidArgument("entangled query has no INTO ANSWER head");
  }
  for (const AnswerAtom& h : query.heads) {
    if (h.terms.empty()) {
      return Status::InvalidArgument("head of " + h.relation + " is empty");
    }
  }
  return query;
}

}  // namespace youtopia
