#ifndef YOUTOPIA_ENTANGLE_ANSWER_ATOM_H_
#define YOUTOPIA_ENTANGLE_ANSWER_ATOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/tuple.h"
#include "types/value.h"

namespace youtopia {

/// Index of a coordination variable within one entangled query.
using VarId = uint32_t;

/// A term of an answer atom: either a constant or a coordination
/// variable, optionally with an integer offset (`seat + 1`, used by the
/// demo's adjacent-seat coordination). Non-integer variables must carry
/// offset 0.
struct Term {
  enum class Kind { kConstant, kVariable };

  static Term Constant(Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.constant = std::move(v);
    return t;
  }
  static Term Variable(VarId var, int64_t offset = 0) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = var;
    t.offset = offset;
    return t;
  }

  bool is_constant() const { return kind == Kind::kConstant; }
  bool is_variable() const { return kind == Kind::kVariable; }

  bool operator==(const Term& other) const {
    if (kind != other.kind) return false;
    if (is_constant()) return constant == other.constant;
    return var == other.var && offset == other.offset;
  }

  /// Rendering with variable names supplied by the owning query
  /// (nullptr -> "$<id>").
  std::string ToString(const std::vector<std::string>* var_names = nullptr) const;

  Kind kind = Kind::kConstant;
  Value constant;
  VarId var = 0;
  int64_t offset = 0;
};

/// An atom over an answer relation, e.g. Reservation('Kramer', fno).
/// Appears in two roles (paper §2.1): as a *head* — the tuple a query
/// contributes INTO ANSWER — and as a *constraint* — a tuple the query
/// requires to be present in the system-wide answer relation.
struct AnswerAtom {
  std::string relation;
  std::vector<Term> terms;

  size_t arity() const { return terms.size(); }

  /// True when every term is a constant.
  bool IsGround() const;

  /// Converts a fully ground atom to a tuple. Caller must check
  /// IsGround().
  Tuple ToTuple() const;

  /// "Relation(t1, ..., tn)".
  std::string ToString(const std::vector<std::string>* var_names = nullptr) const;

  bool operator==(const AnswerAtom& other) const {
    return relation == other.relation && terms == other.terms;
  }
};

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_ANSWER_ATOM_H_
