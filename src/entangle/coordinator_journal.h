#ifndef YOUTOPIA_ENTANGLE_COORDINATOR_JOURNAL_H_
#define YOUTOPIA_ENTANGLE_COORDINATOR_JOURNAL_H_

#include <vector>

#include "common/status.h"
#include "entangle/entangled_query.h"

namespace youtopia {

class Transaction;

/// Durability hooks for coordinator activity (design decision #8). The
/// coordinator calls these at the three points where its pending state
/// changes; a WAL-backed implementation journals them so coordinations
/// survive a restart. All calls arrive with the relevant shard mutexes
/// held, so implementations must not call back into the coordinator.
///
/// The contract per call:
///   Submitted  — `query` was registered as pending (its id assigned).
///                A failure unwinds the registration: the query is
///                withdrawn and the submission returns the error, so a
///                query the log never saw is never left pending.
///   Resolved   — `id` left the pending pool without matching
///                (cancellation, expiry, failed-submission cleanup).
///                Failures are logged and otherwise ignored: the query
///                is already gone from the live pool either way, and at
///                replay an unresolved submit merely re-registers a
///                query the client already saw terminate.
///   Installed  — `group` matched and `txn` holds the not-yet-committed
///                installation writes (answer tuples + install-hook
///                effects, available as txn.redo_log()). Called
///                immediately BEFORE the transaction commits: on
///                failure the caller aborts the transaction and the
///                group stays pending, so a matched group is never
///                visible in storage without being in the journal —
///                match resolution and install writes are one record,
///                atomically durable or not at all.
class CoordinatorJournal {
 public:
  virtual ~CoordinatorJournal() = default;

  virtual Status Submitted(const EntangledQuery& query) = 0;
  virtual Status Resolved(QueryId id, const Status& outcome) = 0;
  virtual Status Installed(const std::vector<QueryId>& group,
                           const Transaction& txn) = 0;
};

}  // namespace youtopia

#endif  // YOUTOPIA_ENTANGLE_COORDINATOR_JOURNAL_H_
