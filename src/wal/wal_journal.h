#ifndef YOUTOPIA_WAL_WAL_JOURNAL_H_
#define YOUTOPIA_WAL_WAL_JOURNAL_H_

#include <vector>

#include "entangle/coordinator_journal.h"
#include "wal/wal_manager.h"

namespace youtopia::wal {

/// CoordinatorJournal backed by the WAL: submissions become kSubmit
/// records (id + owner + original SQL, enough to re-normalize after a
/// restart), resolutions kResolve, and installations ONE kInstall
/// record carrying the group's ids plus the install transaction's redo
/// log — so a matched group's resolution and its writes are atomically
/// durable (design decision #8).
///
/// Appends only buffer; the server layer syncs after the coordinator
/// call returns (the acknowledgment point), which is what lets group
/// commit amortize one fsync over concurrent submissions.
class WalCoordinatorJournal : public CoordinatorJournal {
 public:
  explicit WalCoordinatorJournal(WalManager* wal) : wal_(wal) {}

  Status Submitted(const EntangledQuery& query) override;
  Status Resolved(QueryId id, const Status& outcome) override;
  Status Installed(const std::vector<QueryId>& group,
                   const Transaction& txn) override;

 private:
  WalManager* wal_;
};

}  // namespace youtopia::wal

#endif  // YOUTOPIA_WAL_WAL_JOURNAL_H_
