#ifndef YOUTOPIA_WAL_WAL_RECORD_H_
#define YOUTOPIA_WAL_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace youtopia::wal {

/// Design decision #8: what the log records. Regular statements are
/// *command-logged* — the SQL text, re-executed in log order at
/// recovery (valid because every record is appended while its 2PL locks
/// are still held, so log order extends the serialization order).
/// Coordinator install transactions are *redo-logged* tuple-by-tuple —
/// their writes (answer installs plus arbitrary install-hook writes)
/// have no SQL text — and the same record carries the matched group's
/// query ids, making "answers written" and "group resolved" one atomic
/// durability event. Submissions and withdrawals round out the
/// coordinator journal so the pending pool survives restart.
enum class WalRecordType : uint8_t {
  kStatement = 1,  ///< One committed non-SELECT SQL statement.
  kSubmit = 2,     ///< An entangled query entered the pending pool.
  kResolve = 3,    ///< A pending query left the pool without a match.
  kInstall = 4,    ///< A matched group's install txn + resolution.
};

/// One write of an install transaction, in storage's stored form.
struct WalRedoWrite {
  enum class Kind : uint8_t { kInsert = 1, kDelete = 2, kUpdate = 3 };
  Kind kind = Kind::kInsert;
  std::string table;
  uint64_t rid = 0;
  Tuple tuple;  ///< After-image; empty for kDelete.

  bool operator==(const WalRedoWrite& other) const {
    return kind == other.kind && table == other.table && rid == other.rid &&
           tuple == other.tuple;
  }
};

/// One log record. A tagged union kept flat: only the fields of the
/// active `type` are meaningful (the codec writes nothing else).
struct WalRecord {
  WalRecordType type = WalRecordType::kStatement;
  std::string sql;               ///< kStatement, kSubmit.
  uint64_t query_id = 0;         ///< kSubmit, kResolve.
  std::string owner;             ///< kSubmit.
  std::vector<uint64_t> group;   ///< kInstall: resolved query ids.
  std::vector<WalRedoWrite> writes;  ///< kInstall.

  static WalRecord Statement(std::string sql);
  static WalRecord Submit(uint64_t query_id, std::string owner,
                          std::string sql);
  static WalRecord Resolve(uint64_t query_id);
  static WalRecord Install(std::vector<uint64_t> group,
                           std::vector<WalRedoWrite> writes);

  void EncodeTo(WireWriter* w) const;
  static bool DecodeFrom(WireReader* r, WalRecord* out);
};

/// One pending entangled submission as journaled/checkpointed: enough
/// to re-normalize and re-register it with its original id.
struct CheckpointPending {
  uint64_t query_id = 0;
  std::string owner;
  std::string sql;
};

/// Full checkpointed table: schema, indexed columns, and the heap's
/// exact slot layout (RowIds preserved, tombstones implied by gaps).
struct CheckpointTable {
  std::string name;  ///< Original-case name.
  Schema schema;
  std::vector<std::string> indexed_columns;  ///< By column name.
  uint64_t slot_count = 0;
  std::vector<std::pair<uint64_t, Tuple>> rows;  ///< (rid, tuple).
};

/// A complete engine snapshot at a quiescent point. Restoring it and
/// replaying every later record reproduces the pre-crash state.
struct CheckpointState {
  std::vector<CheckpointTable> tables;
  std::vector<CheckpointPending> pending;
  uint64_t next_query_id = 1;
  /// First segment sequence number holding post-checkpoint records.
  uint64_t first_segment = 0;

  void EncodeTo(WireWriter* w) const;
  static bool DecodeFrom(WireReader* r, CheckpointState* out);
};

}  // namespace youtopia::wal

#endif  // YOUTOPIA_WAL_WAL_RECORD_H_
