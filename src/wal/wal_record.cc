#include "wal/wal_record.h"

#include <algorithm>

namespace youtopia::wal {

WalRecord WalRecord::Statement(std::string sql) {
  WalRecord record;
  record.type = WalRecordType::kStatement;
  record.sql = std::move(sql);
  return record;
}

WalRecord WalRecord::Submit(uint64_t query_id, std::string owner,
                            std::string sql) {
  WalRecord record;
  record.type = WalRecordType::kSubmit;
  record.query_id = query_id;
  record.owner = std::move(owner);
  record.sql = std::move(sql);
  return record;
}

WalRecord WalRecord::Resolve(uint64_t query_id) {
  WalRecord record;
  record.type = WalRecordType::kResolve;
  record.query_id = query_id;
  return record;
}

WalRecord WalRecord::Install(std::vector<uint64_t> group,
                             std::vector<WalRedoWrite> writes) {
  WalRecord record;
  record.type = WalRecordType::kInstall;
  record.group = std::move(group);
  record.writes = std::move(writes);
  return record;
}

void WalRecord::EncodeTo(WireWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type));
  switch (type) {
    case WalRecordType::kStatement:
      w->PutString(sql);
      break;
    case WalRecordType::kSubmit:
      w->PutVarint(query_id);
      w->PutString(owner);
      w->PutString(sql);
      break;
    case WalRecordType::kResolve:
      w->PutVarint(query_id);
      break;
    case WalRecordType::kInstall:
      w->PutVarint(group.size());
      for (uint64_t id : group) w->PutVarint(id);
      w->PutVarint(writes.size());
      for (const WalRedoWrite& write : writes) {
        w->PutU8(static_cast<uint8_t>(write.kind));
        w->PutString(write.table);
        w->PutVarint(write.rid);
        w->PutTuple(write.tuple);
      }
      break;
  }
}

bool WalRecord::DecodeFrom(WireReader* r, WalRecord* out) {
  uint8_t type = 0;
  if (!r->GetU8(&type)) return false;
  *out = WalRecord();
  out->type = static_cast<WalRecordType>(type);
  switch (out->type) {
    case WalRecordType::kStatement:
      return r->GetString(&out->sql);
    case WalRecordType::kSubmit:
      return r->GetVarint(&out->query_id) && r->GetString(&out->owner) &&
             r->GetString(&out->sql);
    case WalRecordType::kResolve:
      return r->GetVarint(&out->query_id);
    case WalRecordType::kInstall: {
      uint64_t ngroup = 0;
      if (!r->GetVarint(&ngroup) || ngroup > r->remaining()) {
        r->MarkFailed();
        return false;
      }
      out->group.reserve(std::min<uint64_t>(ngroup, kMaxEagerReserve));
      for (uint64_t i = 0; i < ngroup; ++i) {
        uint64_t id = 0;
        if (!r->GetVarint(&id)) return false;
        out->group.push_back(id);
      }
      uint64_t nwrites = 0;
      if (!r->GetVarint(&nwrites) || nwrites > r->remaining()) {
        r->MarkFailed();
        return false;
      }
      out->writes.reserve(std::min<uint64_t>(nwrites, kMaxEagerReserve));
      for (uint64_t i = 0; i < nwrites; ++i) {
        WalRedoWrite write;
        uint8_t kind = 0;
        if (!r->GetU8(&kind) || kind < 1 || kind > 3) {
          r->MarkFailed();
          return false;
        }
        write.kind = static_cast<WalRedoWrite::Kind>(kind);
        if (!r->GetString(&write.table) || !r->GetVarint(&write.rid) ||
            !r->GetTuple(&write.tuple)) {
          return false;
        }
        out->writes.push_back(std::move(write));
      }
      return true;
    }
  }
  r->MarkFailed();
  return false;
}

// ------------------------------------------------------------ checkpoint

namespace {

void EncodeSchema(WireWriter* w, const Schema& schema) {
  w->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const Column& column : schema.columns()) {
    w->PutString(column.name);
    w->PutU8(static_cast<uint8_t>(column.type));
    w->PutBool(column.nullable);
  }
}

bool DecodeSchema(WireReader* r, Schema* schema) {
  uint32_t ncols = 0;
  if (!r->GetU32(&ncols) || ncols > r->remaining()) {
    r->MarkFailed();
    return false;
  }
  std::vector<Column> columns;
  columns.reserve(std::min<uint32_t>(ncols, kMaxEagerReserve));
  for (uint32_t i = 0; i < ncols; ++i) {
    Column column;
    uint8_t type = 0;
    if (!r->GetString(&column.name) || !r->GetU8(&type) ||
        !r->GetBool(&column.nullable)) {
      return false;
    }
    column.type = static_cast<DataType>(type);
    columns.push_back(std::move(column));
  }
  auto validated = Schema::Create(std::move(columns));
  if (!validated.ok()) {
    r->MarkFailed();
    return false;
  }
  *schema = validated.TakeValue();
  return true;
}

}  // namespace

void CheckpointState::EncodeTo(WireWriter* w) const {
  w->PutVarint(first_segment);
  w->PutVarint(next_query_id);
  w->PutU32(static_cast<uint32_t>(tables.size()));
  for (const CheckpointTable& table : tables) {
    w->PutString(table.name);
    EncodeSchema(w, table.schema);
    w->PutU32(static_cast<uint32_t>(table.indexed_columns.size()));
    for (const std::string& column : table.indexed_columns) {
      w->PutString(column);
    }
    w->PutVarint(table.slot_count);
    w->PutU32(static_cast<uint32_t>(table.rows.size()));
    for (const auto& [rid, tuple] : table.rows) {
      w->PutVarint(rid);
      w->PutTuple(tuple);
    }
  }
  w->PutU32(static_cast<uint32_t>(pending.size()));
  for (const CheckpointPending& p : pending) {
    w->PutVarint(p.query_id);
    w->PutString(p.owner);
    w->PutString(p.sql);
  }
}

bool CheckpointState::DecodeFrom(WireReader* r, CheckpointState* out) {
  *out = CheckpointState();
  uint32_t ntables = 0;
  if (!r->GetVarint(&out->first_segment) ||
      !r->GetVarint(&out->next_query_id) || !r->GetU32(&ntables) ||
      ntables > r->remaining()) {
    r->MarkFailed();
    return false;
  }
  out->tables.reserve(std::min<uint32_t>(ntables, kMaxEagerReserve));
  for (uint32_t i = 0; i < ntables; ++i) {
    CheckpointTable table;
    uint32_t nindexes = 0;
    if (!r->GetString(&table.name) || !DecodeSchema(r, &table.schema) ||
        !r->GetU32(&nindexes) || nindexes > r->remaining()) {
      r->MarkFailed();
      return false;
    }
    table.indexed_columns.reserve(std::min<uint32_t>(nindexes, kMaxEagerReserve));
    for (uint32_t j = 0; j < nindexes; ++j) {
      std::string column;
      if (!r->GetString(&column)) return false;
      table.indexed_columns.push_back(std::move(column));
    }
    uint32_t nrows = 0;
    if (!r->GetVarint(&table.slot_count) || !r->GetU32(&nrows) ||
        nrows > r->remaining()) {
      r->MarkFailed();
      return false;
    }
    table.rows.reserve(std::min<uint32_t>(nrows, kMaxEagerReserve));
    for (uint32_t j = 0; j < nrows; ++j) {
      uint64_t rid = 0;
      Tuple tuple;
      if (!r->GetVarint(&rid) || !r->GetTuple(&tuple)) return false;
      table.rows.emplace_back(rid, std::move(tuple));
    }
    out->tables.push_back(std::move(table));
  }
  uint32_t npending = 0;
  if (!r->GetU32(&npending) || npending > r->remaining()) {
    r->MarkFailed();
    return false;
  }
  out->pending.reserve(std::min<uint32_t>(npending, kMaxEagerReserve));
  for (uint32_t i = 0; i < npending; ++i) {
    CheckpointPending p;
    if (!r->GetVarint(&p.query_id) || !r->GetString(&p.owner) ||
        !r->GetString(&p.sql)) {
      return false;
    }
    out->pending.push_back(std::move(p));
  }
  return true;
}

}  // namespace youtopia::wal
