#ifndef YOUTOPIA_WAL_WAL_MANAGER_H_
#define YOUTOPIA_WAL_WAL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "wal/wal_record.h"

namespace youtopia::wal {

/// Log sequence number: a monotone per-record counter. LSN n is durable
/// once every record up to n has reached disk (or been superseded by a
/// checkpoint that contains its effects).
using Lsn = uint64_t;

struct WalConfig {
  /// Off by default: the seed's in-memory semantics, byte for byte.
  bool enabled = false;
  /// Directory holding segments + checkpoint. Created on Open.
  std::string dir;
  /// Rotate to a new segment once the current one exceeds this.
  size_t segment_bytes = 16u << 20;
  /// Log volume after which an automatic checkpoint is worth taking.
  size_t checkpoint_bytes = 64u << 20;
  /// Group commit (design decision #8): appends buffer in memory and
  /// Sync elects a leader that flushes every buffered record with ONE
  /// fsync, waking all waiters. With `false`, every append writes and
  /// fsyncs inline — the classic one-fsync-per-commit log that
  /// bench_wal contrasts against.
  bool group_commit = true;
  /// Turn off to skip fsync syscalls (tests; durability = process
  /// lifetime only).
  bool fsync = true;
  /// Take a final checkpoint in ~Youtopia so restart replays nothing.
  bool checkpoint_on_shutdown = true;
};

/// Counters for the admin "-- WAL --" section and WorkloadReport.
struct WalStats {
  size_t records_appended = 0;
  uint64_t bytes_appended = 0;
  size_t syncs = 0;
  size_t fsyncs = 0;
  size_t group_commit_batches = 0;
  /// Records per leader flush — the amortization group commit buys.
  Histogram batch_records;
  size_t checkpoints = 0;
  size_t segments_created = 0;
  size_t segments_deleted = 0;
  size_t recovered_records = 0;
  uint64_t recovery_micros = 0;
};

/// Segmented write-ahead log with group commit, checkpointing and
/// crash-consistent recovery (design decision #8).
///
/// On-disk layout under `config.dir`:
///   wal-<seq>.log   record segments, each record framed as
///                   u32 length | u32 crc32(payload) | payload
///   checkpoint      one framed CheckpointState (written via tmp+rename)
///
/// Startup protocol: Open() → checkpoint() → Replay(apply) →
/// OpenForAppend(), after which Append/Sync are live. A torn tail
/// (partial final record, detected by length/CRC) is truncated by
/// OpenForAppend — it can only be an unacknowledged commit.
class WalManager {
 public:
  explicit WalManager(WalConfig config);
  ~WalManager();

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Creates the directory, loads the checkpoint (if any) and scans
  /// segments. Deletes segments the last checkpoint made unreachable.
  Status Open();

  /// The checkpoint loaded by Open, if one exists.
  const std::optional<CheckpointState>& checkpoint() const {
    return checkpoint_;
  }

  /// Iterates every valid post-checkpoint record in log order. Stops at
  /// the first invalid frame (torn tail). An `apply` error aborts
  /// replay and is returned.
  Status Replay(const std::function<Status(const WalRecord&)>& apply);

  /// Truncates the torn tail found by Replay and opens the final
  /// segment for appending. Must follow Replay (or Open when the log is
  /// fresh).
  Status OpenForAppend();

  /// Buffers one record and assigns its LSN. With group_commit=false
  /// the record is written and fsynced inline instead. Durability is
  /// only guaranteed after Sync(lsn) returns OK.
  Result<Lsn> Append(const WalRecord& record);

  /// Runs `action` and, on success, appends `record`, atomically with
  /// respect to every other append. DDL uses this: it takes no 2PL
  /// locks, so only append-mutex exclusion can keep its log position
  /// consistent with its execution order against concurrent DML.
  Result<Lsn> AppendSerialized(const std::function<Status()>& action,
                               const WalRecord& record);

  /// Blocks until `lsn` is durable. Group-commit leader/follower: the
  /// first waiter flushes everything buffered with one fsync; waiters
  /// that arrive mid-flush are batched into the next one.
  Status Sync(Lsn lsn);

  /// Sync up to the last appended record.
  Status SyncAll();

  /// True once the post-checkpoint log volume exceeds
  /// config.checkpoint_bytes.
  bool ShouldCheckpoint() const;

  /// Writes `state` as the new checkpoint: flushes buffered records,
  /// rotates to a fresh segment, writes checkpoint.tmp, fsyncs, renames
  /// over `checkpoint`, then deletes the now-unreachable segments. The
  /// caller must hold the engine quiescent (the snapshot must be
  /// consistent with everything appended so far).
  Status WriteCheckpoint(CheckpointState state);

  WalStats stats() const;

  /// Test-only: simulates losing the process — every buffered
  /// (unsynced) record is discarded and all further operations fail.
  /// Files already written stay as a real crash would leave them.
  void SimulateCrash();

  /// Points inside a group-commit flush where a test hook may inject a
  /// crash: before any byte is written (batch lost), after half the
  /// batch (torn record on disk), or after the write but before fsync
  /// (records on disk but never acknowledged).
  enum class CrashPoint { kBeforeWrite, kMidWrite, kBeforeFsync };

  /// Test-only: `hook` runs at each CrashPoint during flushes;
  /// returning true triggers SimulateCrash semantics at that point.
  void SetCrashHook(std::function<bool(CrashPoint)> hook);

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

 private:
  std::string SegmentPath(uint64_t seq) const;
  Status OpenSegmentLocked(uint64_t seq);
  Status RotateIfNeededLocked(size_t incoming_bytes);
  /// Writes `batch` to the current segment and fsyncs; honors `hook`.
  /// Owns only fd/segment state (callers update durable_lsn_ under mu_).
  Status FlushBatch(const std::string& batch, size_t batch_records,
                    const std::function<bool(CrashPoint)>& hook);
  Result<Lsn> AppendLocked(const WalRecord& record) REQUIRES(mu_);
  Status CrashedError() const;
  static std::string EncodeFrame(const WalRecord& record);

  const WalConfig config_;

  /// Rank kWal: AppendSerialized runs DDL actions (catalog + storage
  /// mutations) while holding mu_, so kWal orders BEFORE the storage
  /// and catalog latches. The 2PL lock manager's internal mutex never
  /// nests with mu_ in either direction — LockManager calls return
  /// before any WAL call and vice versa.
  mutable Mutex mu_{LockRank::kWal, "wal"};
  CondVar cv_;
  std::string pending_ GUARDED_BY(mu_);  ///< Encoded frames not yet written.
  size_t pending_records_ GUARDED_BY(mu_) = 0;
  Lsn appended_lsn_ GUARDED_BY(mu_) = 0;
  Lsn durable_lsn_ GUARDED_BY(mu_) = 0;
  bool flush_in_progress_ GUARDED_BY(mu_) = false;
  Status io_error_ GUARDED_BY(mu_) = Status::OK();
  std::function<bool(CrashPoint)> crash_hook_ GUARDED_BY(mu_);
  std::atomic<bool> crashed_{false};

  // Segment file state. Mutated only by the single active flusher
  // (flush_in_progress_) or under mu_ in single-threaded phases.
  int fd_ = -1;
  uint64_t current_seq_ = 0;
  size_t current_segment_bytes_ = 0;
  bool open_for_append_ = false;

  // Populated by Open/Replay.
  std::optional<CheckpointState> checkpoint_;
  std::vector<uint64_t> segments_;   ///< Sorted live segment seqs.
  uint64_t tail_seq_ = 0;            ///< Where Replay stopped.
  size_t tail_offset_ = 0;           ///< Valid bytes in tail segment.

  // Counters (atomics: flushers update them outside mu_).
  std::atomic<size_t> records_appended_{0};
  std::atomic<uint64_t> bytes_appended_{0};
  std::atomic<uint64_t> bytes_since_checkpoint_{0};
  std::atomic<size_t> syncs_{0};
  std::atomic<size_t> fsyncs_{0};
  std::atomic<size_t> group_commit_batches_{0};
  Histogram batch_records_;
  std::atomic<size_t> checkpoints_{0};
  std::atomic<size_t> segments_created_{0};
  std::atomic<size_t> segments_deleted_{0};
  std::atomic<size_t> recovered_records_{0};
  std::atomic<uint64_t> recovery_micros_{0};
};

}  // namespace youtopia::wal

#endif  // YOUTOPIA_WAL_WAL_MANAGER_H_
