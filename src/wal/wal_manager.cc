#include "wal/wal_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/logging.h"

namespace youtopia::wal {

namespace {

/// Frame header: u32 length of payload + u32 crc32(payload).
constexpr size_t kFrameHeaderBytes = 8;
/// A record frame larger than this is treated as corruption, not
/// buffered against (mirrors the wire protocol's bound).
constexpr uint32_t kMaxRecordBytes = 64u * 1024 * 1024;

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) return ErrnoStatus("fsync " + what);
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open for fsync " + path);
  Status s = FsyncFd(fd, path);
  ::close(fd);
  return s;
}

Status WriteAll(int fd, const char* data, size_t n,
                const std::string& what) {
  size_t written = 0;
  while (written < n) {
    ssize_t r = ::write(fd, data + written, n - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write " + what);
    }
    written += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

WalManager::WalManager(WalConfig config) : config_(std::move(config)) {}

WalManager::~WalManager() {
  if (fd_ >= 0) ::close(fd_);
}

std::string WalManager::SegmentPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%010llu.log",
                static_cast<unsigned long long>(seq));
  return config_.dir + "/" + name;
}

std::string WalManager::EncodeFrame(const WalRecord& record) {
  WireWriter payload;
  record.EncodeTo(&payload);
  WireWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.bytes().size()));
  frame.PutU32(Crc32(payload.bytes()));
  std::string out = frame.Take();
  out += payload.bytes();
  return out;
}

Status WalManager::Open() {
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) {
    return Status::Internal("create wal dir " + config_.dir + ": " +
                            ec.message());
  }

  // Load the checkpoint, if one was ever completed (rename is atomic,
  // so a crash mid-write leaves only checkpoint.tmp, which we ignore).
  const std::string checkpoint_path = config_.dir + "/checkpoint";
  std::ifstream in(checkpoint_path, std::ios::binary);
  if (in) {
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    WireReader header(bytes);
    uint32_t length = 0;
    uint32_t crc = 0;
    if (!header.GetU32(&length) || !header.GetU32(&crc) ||
        bytes.size() != kFrameHeaderBytes + length) {
      return Status::Internal("checkpoint file is malformed");
    }
    std::string_view payload(bytes.data() + kFrameHeaderBytes, length);
    if (Crc32(payload) != crc) {
      return Status::Internal("checkpoint file fails CRC");
    }
    WireReader reader(payload);
    CheckpointState state;
    if (!CheckpointState::DecodeFrom(&reader, &state) || !reader.AtEnd()) {
      return Status::Internal("checkpoint payload does not decode");
    }
    checkpoint_ = std::move(state);
  }
  const uint64_t first_segment =
      checkpoint_.has_value() ? checkpoint_->first_segment : 1;

  segments_.clear();
  for (const auto& entry : std::filesystem::directory_iterator(config_.dir)) {
    unsigned long long seq = 0;
    const std::string name = entry.path().filename().string();
    // Accept only names that round-trip through SegmentPath. sscanf alone
    // also matches unpadded ("wal-1.log") and suffixed ("wal-1.logx")
    // names; replay would then reopen the reconstructed padded path and
    // fail recovery outright — or, with both spellings present, replay
    // the same sequence number twice. (Found by fuzz_wal_replay.)
    if (std::sscanf(name.c_str(), "wal-%llu.log", &seq) == 1 &&
        SegmentPath(seq) == config_.dir + "/" + name) {
      if (seq < first_segment) {
        // Unreachable since the checkpoint; a crash interrupted the
        // post-checkpoint cleanup.
        std::filesystem::remove(entry.path(), ec);
        segments_deleted_.fetch_add(1, std::memory_order_relaxed);
      } else {
        segments_.push_back(seq);
      }
    }
  }
  std::sort(segments_.begin(), segments_.end());
  tail_seq_ = segments_.empty() ? first_segment : segments_.back();
  tail_offset_ = 0;
  if (!segments_.empty()) {
    tail_offset_ = static_cast<size_t>(
        std::filesystem::file_size(SegmentPath(segments_.back()), ec));
    if (ec) tail_offset_ = 0;
  }
  return Status::OK();
}

Status WalManager::Replay(
    const std::function<Status(const WalRecord&)>& apply) {
  const auto start = std::chrono::steady_clock::now();
  bool stopped = false;
  for (size_t i = 0; i < segments_.size() && !stopped; ++i) {
    const uint64_t seq = segments_[i];
    std::ifstream in(SegmentPath(seq), std::ios::binary);
    if (!in) return Status::Internal("cannot read " + SegmentPath(seq));
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    size_t offset = 0;
    while (offset + kFrameHeaderBytes <= bytes.size()) {
      WireReader header(
          std::string_view(bytes).substr(offset, kFrameHeaderBytes));
      uint32_t length = 0;
      uint32_t crc = 0;
      header.GetU32(&length);
      header.GetU32(&crc);
      if (length == 0 || length > kMaxRecordBytes ||
          offset + kFrameHeaderBytes + length > bytes.size()) {
        break;  // torn tail
      }
      std::string_view payload(bytes.data() + offset + kFrameHeaderBytes,
                               length);
      if (Crc32(payload) != crc) break;
      WireReader reader(payload);
      WalRecord record;
      if (!WalRecord::DecodeFrom(&reader, &record) || !reader.AtEnd()) break;
      YOUTOPIA_RETURN_IF_ERROR(apply(record));
      recovered_records_.fetch_add(1, std::memory_order_relaxed);
      bytes_since_checkpoint_.fetch_add(kFrameHeaderBytes + length,
                                        std::memory_order_relaxed);
      offset += kFrameHeaderBytes + length;
    }
    if (offset < bytes.size()) {
      // An invalid frame: everything at and past it is a torn tail —
      // only ever unacknowledged bytes, safe (and required) to drop.
      tail_seq_ = seq;
      tail_offset_ = offset;
      stopped = true;
    }
  }
  recovery_micros_.store(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()),
      std::memory_order_relaxed);
  return Status::OK();
}

Status WalManager::OpenSegmentLocked(uint64_t seq) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = SegmentPath(seq);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) return ErrnoStatus("open segment " + path);
  current_seq_ = seq;
  segments_created_.fetch_add(1, std::memory_order_relaxed);
  if (segments_.empty() || segments_.back() != seq) segments_.push_back(seq);
  // Make the directory entry durable before any record lands in it.
  if (config_.fsync) {
    YOUTOPIA_RETURN_IF_ERROR(FsyncPath(config_.dir));
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status WalManager::OpenForAppend() {
  MutexLock lock(mu_);
  // Truncate the torn tail, then drop any segments past it — they are
  // unreachable once the tail is the logical end of the log.
  std::error_code ec;
  bool truncated = false;
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i] > tail_seq_) {
      std::filesystem::remove(SegmentPath(segments_[i]), ec);
      segments_deleted_.fetch_add(1, std::memory_order_relaxed);
      truncated = true;
    }
  }
  segments_.erase(
      std::remove_if(segments_.begin(), segments_.end(),
                     [&](uint64_t seq) { return seq > tail_seq_; }),
      segments_.end());
  if (!segments_.empty()) {
    const std::string path = SegmentPath(tail_seq_);
    if (std::filesystem::file_size(path, ec) != tail_offset_ && !ec) {
      std::filesystem::resize_file(path, tail_offset_, ec);
      if (ec) {
        return Status::Internal("truncate " + path + ": " + ec.message());
      }
      truncated = true;
    }
    current_segment_bytes_ = tail_offset_;
    YOUTOPIA_RETURN_IF_ERROR(OpenSegmentLocked(tail_seq_));
    segments_created_.fetch_sub(1, std::memory_order_relaxed);  // reopened
    if (truncated && config_.fsync) {
      YOUTOPIA_RETURN_IF_ERROR(FsyncFd(fd_, path));
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    current_segment_bytes_ = 0;
    YOUTOPIA_RETURN_IF_ERROR(OpenSegmentLocked(tail_seq_));
  }
  open_for_append_ = true;
  return Status::OK();
}

Status WalManager::CrashedError() const {
  return Status::Aborted("wal crashed (simulated)");
}

Status WalManager::RotateIfNeededLocked(size_t incoming_bytes) {
  if (current_segment_bytes_ == 0 ||
      current_segment_bytes_ + incoming_bytes <= config_.segment_bytes) {
    return Status::OK();
  }
  if (config_.fsync && fd_ >= 0) {
    YOUTOPIA_RETURN_IF_ERROR(FsyncFd(fd_, SegmentPath(current_seq_)));
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  current_segment_bytes_ = 0;
  return OpenSegmentLocked(current_seq_ + 1);
}

Status WalManager::FlushBatch(const std::string& batch, size_t batch_records,
                              const std::function<bool(CrashPoint)>& hook) {
  // Runs with flush_in_progress_ set (or under mu_ in inline-append
  // mode), so this thread owns the fd/segment state. It must NOT touch
  // durable_lsn_ or io_error_ — those belong to mu_; callers update
  // them after relocking.
  if (batch.empty()) return Status::OK();
  if (hook && hook(CrashPoint::kBeforeWrite)) {
    crashed_.store(true, std::memory_order_release);
    return CrashedError();
  }
  YOUTOPIA_RETURN_IF_ERROR(RotateIfNeededLocked(batch.size()));
  if (hook && hook(CrashPoint::kMidWrite)) {
    // Half the batch reaches disk: a torn record for recovery to find.
    (void)WriteAll(fd_, batch.data(), batch.size() / 2, "torn batch");
    crashed_.store(true, std::memory_order_release);
    return CrashedError();
  }
  YOUTOPIA_RETURN_IF_ERROR(
      WriteAll(fd_, batch.data(), batch.size(), SegmentPath(current_seq_)));
  current_segment_bytes_ += batch.size();
  if (hook && hook(CrashPoint::kBeforeFsync)) {
    // Bytes written, never acknowledged: recovery may legitimately
    // surface more state than was acked.
    crashed_.store(true, std::memory_order_release);
    return CrashedError();
  }
  if (config_.fsync) {
    YOUTOPIA_RETURN_IF_ERROR(FsyncFd(fd_, SegmentPath(current_seq_)));
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  bytes_since_checkpoint_.fetch_add(batch.size(), std::memory_order_relaxed);
  group_commit_batches_.fetch_add(1, std::memory_order_relaxed);
  batch_records_.Record(batch_records);
  return Status::OK();
}

Result<Lsn> WalManager::AppendLocked(const WalRecord& record) {
  if (crashed()) return CrashedError();
  if (!io_error_.ok()) return io_error_;
  if (!open_for_append_) {
    return Status::Internal("wal is not open for append");
  }
  std::string frame = EncodeFrame(record);
  const Lsn lsn = ++appended_lsn_;
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  bytes_appended_.fetch_add(frame.size(), std::memory_order_relaxed);
  if (config_.group_commit) {
    pending_ += frame;
    ++pending_records_;
  } else {
    // One fsync per record: the naive log that group commit amortizes.
    Status s = FlushBatch(frame, 1, crash_hook_);
    if (!s.ok()) {
      if (!crashed()) io_error_ = s;
      return s;
    }
    durable_lsn_ = lsn;
  }
  return lsn;
}

Result<Lsn> WalManager::Append(const WalRecord& record) {
  MutexLock lock(mu_);
  return AppendLocked(record);
}

Result<Lsn> WalManager::AppendSerialized(
    const std::function<Status()>& action, const WalRecord& record) {
  MutexLock lock(mu_);
  if (crashed()) return CrashedError();
  if (!io_error_.ok()) return io_error_;
  YOUTOPIA_RETURN_IF_ERROR(action());
  return AppendLocked(record);
}

Status WalManager::Sync(Lsn lsn) {
  MutexLock lock(mu_);
  syncs_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    if (crashed()) return CrashedError();
    if (!io_error_.ok()) return io_error_;
    if (durable_lsn_ >= lsn) return Status::OK();
    if (flush_in_progress_) {
      cv_.Wait(mu_);
      continue;
    }
    // Leader: take everything buffered and flush it with one fsync.
    flush_in_progress_ = true;
    std::string batch = std::move(pending_);
    pending_.clear();
    const size_t batch_records = pending_records_;
    pending_records_ = 0;
    const Lsn batch_lsn = appended_lsn_;
    auto hook = crash_hook_;
    lock.Unlock();
    // Segment/fd state is safe outside mu_: flush_in_progress_ makes
    // this thread the only flusher.
    Status s = FlushBatch(batch, batch_records, hook);
    lock.Lock();
    flush_in_progress_ = false;
    if (s.ok()) {
      durable_lsn_ = std::max(durable_lsn_, batch_lsn);
    } else if (!crashed()) {
      io_error_ = s;
    }
    cv_.NotifyAll();
    if (!s.ok()) return s;
  }
}

Status WalManager::SyncAll() {
  Lsn target = 0;
  {
    MutexLock lock(mu_);
    target = appended_lsn_;
  }
  return Sync(target);
}

bool WalManager::ShouldCheckpoint() const {
  return bytes_since_checkpoint_.load(std::memory_order_relaxed) >=
         config_.checkpoint_bytes;
}

Status WalManager::WriteCheckpoint(CheckpointState state) {
  MutexLock lock(mu_);
  cv_.Wait(mu_, [&] { return !flush_in_progress_; });
  if (crashed()) return CrashedError();
  if (!io_error_.ok()) return io_error_;
  if (!open_for_append_) {
    return Status::Internal("wal is not open for append");
  }

  // Buffered records' effects are inside `state`, but until the rename
  // lands the old checkpoint + log remain authoritative — so flush them
  // first; the checkpoint then supersedes them.
  std::string batch = std::move(pending_);
  pending_.clear();
  const size_t batch_records = pending_records_;
  pending_records_ = 0;
  Status s = FlushBatch(batch, batch_records, crash_hook_);
  if (!s.ok()) {
    if (!crashed()) io_error_ = s;
    return s;
  }
  durable_lsn_ = appended_lsn_;

  // Rotate so the checkpoint can name a clean first segment.
  if (config_.fsync && fd_ >= 0 && current_segment_bytes_ > 0) {
    YOUTOPIA_RETURN_IF_ERROR(FsyncFd(fd_, SegmentPath(current_seq_)));
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  current_segment_bytes_ = 0;
  YOUTOPIA_RETURN_IF_ERROR(OpenSegmentLocked(current_seq_ + 1));
  state.first_segment = current_seq_;

  WireWriter payload;
  state.EncodeTo(&payload);
  WireWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.bytes().size()));
  frame.PutU32(Crc32(payload.bytes()));

  const std::string tmp_path = config_.dir + "/checkpoint.tmp";
  const std::string final_path = config_.dir + "/checkpoint";
  int tmp = ::open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (tmp < 0) return ErrnoStatus("open " + tmp_path);
  s = WriteAll(tmp, frame.bytes().data(), frame.bytes().size(), tmp_path);
  if (s.ok()) {
    s = WriteAll(tmp, payload.bytes().data(), payload.bytes().size(),
                 tmp_path);
  }
  if (s.ok() && config_.fsync) {
    s = FsyncFd(tmp, tmp_path);
    if (s.ok()) fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  ::close(tmp);
  YOUTOPIA_RETURN_IF_ERROR(s);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("rename " + tmp_path);
  }
  if (config_.fsync) {
    YOUTOPIA_RETURN_IF_ERROR(FsyncPath(config_.dir));
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }

  // The rename is the commit point; older segments are unreachable now.
  std::error_code ec;
  for (uint64_t seq : segments_) {
    if (seq < state.first_segment) {
      std::filesystem::remove(SegmentPath(seq), ec);
      segments_deleted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  segments_.erase(
      std::remove_if(segments_.begin(), segments_.end(),
                     [&](uint64_t seq) { return seq < state.first_segment; }),
      segments_.end());
  bytes_since_checkpoint_.store(0, std::memory_order_relaxed);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  // A completed checkpoint makes every appended record durable
  // transitively (its effects are in the snapshot).
  durable_lsn_ = appended_lsn_;
  cv_.NotifyAll();
  return Status::OK();
}

WalStats WalManager::stats() const {
  WalStats out;
  out.records_appended = records_appended_.load(std::memory_order_relaxed);
  out.bytes_appended = bytes_appended_.load(std::memory_order_relaxed);
  out.syncs = syncs_.load(std::memory_order_relaxed);
  out.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  out.group_commit_batches =
      group_commit_batches_.load(std::memory_order_relaxed);
  out.batch_records = batch_records_;
  out.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  out.segments_created = segments_created_.load(std::memory_order_relaxed);
  out.segments_deleted = segments_deleted_.load(std::memory_order_relaxed);
  out.recovered_records = recovered_records_.load(std::memory_order_relaxed);
  out.recovery_micros = recovery_micros_.load(std::memory_order_relaxed);
  return out;
}

void WalManager::SimulateCrash() {
  MutexLock lock(mu_);
  pending_.clear();
  pending_records_ = 0;
  crashed_.store(true, std::memory_order_release);
  cv_.NotifyAll();
}

void WalManager::SetCrashHook(std::function<bool(CrashPoint)> hook) {
  MutexLock lock(mu_);
  crash_hook_ = std::move(hook);
}

}  // namespace youtopia::wal
