#include "wal/recovery.h"

#include <algorithm>
#include <map>

#include "entangle/answer_relation.h"
#include "sql/parser.h"

namespace youtopia::wal {

namespace {

Status RestoreCheckpoint(StorageEngine* storage, const CheckpointState& cp) {
  for (const CheckpointTable& table : cp.tables) {
    YOUTOPIA_RETURN_IF_ERROR(storage->CreateTable(table.name, table.schema));
    YOUTOPIA_RETURN_IF_ERROR(storage->LoadTableSnapshot(
        table.name, static_cast<size_t>(table.slot_count), table.rows));
    // Indexes last: CreateIndex backfills from the loaded heap.
    for (const std::string& column : table.indexed_columns) {
      YOUTOPIA_RETURN_IF_ERROR(storage->CreateIndex(table.name, column));
    }
  }
  return Status::OK();
}

Status ApplyInstall(StorageEngine* storage, const WalRecord& record) {
  // The live install path writes through TxnManager under 2PL; replay
  // is single-threaded, so the redo writes go straight to storage. The
  // answer relation may not exist yet (it was auto-created inside the
  // crashed run); recreate it from the after-image prototype exactly as
  // AnswerRelationManager did.
  AnswerRelationManager answers(storage, /*auto_create=*/true);
  for (const WalRedoWrite& write : record.writes) {
    switch (write.kind) {
      case WalRedoWrite::Kind::kInsert: {
        if (!storage->catalog().HasTable(write.table)) {
          YOUTOPIA_RETURN_IF_ERROR(
              answers.EnsureRelation(write.table, write.tuple));
        }
        auto rid = storage->Insert(write.table, write.tuple);
        if (!rid.ok()) return rid.status();
        if (rid.value() != write.rid) {
          return Status::Internal(
              "install replay of " + write.table + " produced rid " +
              std::to_string(rid.value()) + ", log says " +
              std::to_string(write.rid) + " — log and state diverged");
        }
        break;
      }
      case WalRedoWrite::Kind::kDelete:
        YOUTOPIA_RETURN_IF_ERROR(storage->Delete(write.table, write.rid));
        break;
      case WalRedoWrite::Kind::kUpdate:
        YOUTOPIA_RETURN_IF_ERROR(
            storage->Update(write.table, write.rid, write.tuple));
        break;
    }
  }
  return Status::OK();
}

}  // namespace

Status Recover(WalManager* wal, StorageEngine* storage, Executor* executor,
               RecoveryResult* out) {
  *out = RecoveryResult();
  // Ordered map: the pool is rebuilt in id order, which is also
  // submission order.
  std::map<uint64_t, CheckpointPending> pending;

  const std::optional<CheckpointState>& loaded = wal->checkpoint();
  if (loaded.has_value()) {
    const CheckpointState& cp = *loaded;
    YOUTOPIA_RETURN_IF_ERROR(RestoreCheckpoint(storage, cp));
    for (const CheckpointPending& p : cp.pending) pending[p.query_id] = p;
    out->next_query_id = cp.next_query_id;
  }

  Status replayed = wal->Replay([&](const WalRecord& record) -> Status {
    switch (record.type) {
      case WalRecordType::kStatement: {
        auto stmt = Parser::ParseStatement(record.sql);
        if (!stmt.ok()) return stmt.status();
        auto result = executor->Execute(**stmt);
        if (!result.ok()) {
          return Status::Internal("statement replay failed (" +
                                  result.status().message() +
                                  "): " + record.sql);
        }
        ++out->statements_replayed;
        return Status::OK();
      }
      case WalRecordType::kSubmit: {
        pending[record.query_id] = {record.query_id, record.owner,
                                    record.sql};
        out->next_query_id =
            std::max(out->next_query_id, record.query_id + 1);
        return Status::OK();
      }
      case WalRecordType::kResolve:
        pending.erase(record.query_id);
        return Status::OK();
      case WalRecordType::kInstall: {
        YOUTOPIA_RETURN_IF_ERROR(ApplyInstall(storage, record));
        for (uint64_t id : record.group) {
          pending.erase(id);
          out->next_query_id = std::max(out->next_query_id, id + 1);
        }
        ++out->installs_replayed;
        return Status::OK();
      }
    }
    return Status::Internal("unknown wal record type");
  });
  YOUTOPIA_RETURN_IF_ERROR(replayed);

  out->pending.reserve(pending.size());
  for (auto& [id, p] : pending) {
    out->next_query_id = std::max(out->next_query_id, id + 1);
    out->pending.push_back(std::move(p));
  }
  return Status::OK();
}

}  // namespace youtopia::wal
