#ifndef YOUTOPIA_WAL_RECOVERY_H_
#define YOUTOPIA_WAL_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"
#include "storage/storage_engine.h"
#include "wal/wal_manager.h"

namespace youtopia::wal {

/// What recovery hands back to the server layer: the submissions that
/// were pending at the crash (for re-registration with the coordinator,
/// original ids preserved) and the id counter floor that keeps future
/// submissions from colliding with journaled ones.
struct RecoveryResult {
  size_t statements_replayed = 0;
  size_t installs_replayed = 0;
  std::vector<CheckpointPending> pending;  ///< Sorted by query id.
  uint64_t next_query_id = 1;
};

/// Replays `wal` into `storage`/`executor`: restores the checkpoint
/// snapshot (tables with exact RowId layout, then indexes), then
/// applies every logged record in order — statements re-execute their
/// SQL, install records redo their tuple writes (auto-creating answer
/// relations exactly as the live install path does) and resolve their
/// group. The caller must invoke this between WalManager::Open and
/// OpenForAppend, before any concurrent activity.
Status Recover(WalManager* wal, StorageEngine* storage, Executor* executor,
               RecoveryResult* out);

}  // namespace youtopia::wal

#endif  // YOUTOPIA_WAL_RECOVERY_H_
