#include "wal/wal_journal.h"

#include "txn/transaction.h"

namespace youtopia::wal {

namespace {

WalRedoWrite::Kind ToWalKind(RedoEntry::Kind kind) {
  switch (kind) {
    case RedoEntry::Kind::kInsert:
      return WalRedoWrite::Kind::kInsert;
    case RedoEntry::Kind::kDelete:
      return WalRedoWrite::Kind::kDelete;
    case RedoEntry::Kind::kUpdate:
      return WalRedoWrite::Kind::kUpdate;
  }
  return WalRedoWrite::Kind::kInsert;  // unreachable
}

}  // namespace

Status WalCoordinatorJournal::Submitted(const EntangledQuery& query) {
  auto lsn = wal_->Append(WalRecord::Submit(query.id, query.owner, query.sql));
  return lsn.ok() ? Status::OK() : lsn.status();
}

Status WalCoordinatorJournal::Resolved(QueryId id, const Status& outcome) {
  (void)outcome;  // replay only needs to know the query left the pool
  auto lsn = wal_->Append(WalRecord::Resolve(id));
  return lsn.ok() ? Status::OK() : lsn.status();
}

Status WalCoordinatorJournal::Installed(const std::vector<QueryId>& group,
                                        const Transaction& txn) {
  std::vector<WalRedoWrite> writes;
  writes.reserve(txn.redo_log().size());
  for (const RedoEntry& entry : txn.redo_log()) {
    WalRedoWrite write;
    write.kind = ToWalKind(entry.kind);
    write.table = entry.table;
    write.rid = entry.rid;
    write.tuple = entry.tuple;
    writes.push_back(std::move(write));
  }
  auto lsn = wal_->Append(WalRecord::Install(group, std::move(writes)));
  return lsn.ok() ? Status::OK() : lsn.status();
}

}  // namespace youtopia::wal
