#include "server/metrics.h"

#include <cmath>
#include <cstdio>

#include "entangle/coordinator.h"
#include "server/plan_cache.h"
#include "service/executor_service.h"
#include "wal/wal_manager.h"

namespace youtopia {

void AppendMetric(const std::string& name, const std::string& type,
                  double value, std::string* out) {
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
  out->append(name);
  out->push_back(' ');
  char buf[64];
  if (std::nearbyint(value) == value && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  out->append(buf);
  out->push_back('\n');
}

void AppendEngineMetrics(const Youtopia& db, std::string* out) {
  const ExecutorService::Stats exec = db.executor_service().stats();
  AppendMetric("youtopia_executor_workers", "gauge",
               static_cast<double>(exec.workers), out);
  AppendMetric("youtopia_executor_queue_depth", "gauge",
               static_cast<double>(exec.queue_depth), out);
  AppendMetric("youtopia_executor_peak_queue_depth", "gauge",
               static_cast<double>(exec.peak_queue_depth), out);
  AppendMetric("youtopia_executor_executing", "gauge",
               static_cast<double>(exec.executing), out);
  AppendMetric("youtopia_executor_submitted_total", "counter",
               static_cast<double>(exec.submitted), out);
  AppendMetric("youtopia_executor_executed_total", "counter",
               static_cast<double>(exec.executed), out);
  AppendMetric("youtopia_executor_lock_requeues_total", "counter",
               static_cast<double>(exec.lock_requeues), out);
  AppendMetric("youtopia_executor_entangled_parked_total", "counter",
               static_cast<double>(exec.entangled_parked), out);
  AppendMetric("youtopia_executor_rejected_total", "counter",
               static_cast<double>(exec.rejected), out);
  AppendMetric("youtopia_executor_shed_total", "counter",
               static_cast<double>(exec.shed), out);
  AppendMetric("youtopia_executor_worker_utilization", "gauge",
               exec.WorkerUtilization(), out);

  const CoordinatorStats coord = db.coordinator().stats();
  AppendMetric("youtopia_coordinator_pending", "gauge",
               static_cast<double>(db.coordinator().pending_count()), out);
  AppendMetric("youtopia_coordinator_submitted_total", "counter",
               static_cast<double>(coord.submitted), out);
  AppendMetric("youtopia_coordinator_matched_queries_total", "counter",
               static_cast<double>(coord.matched_queries), out);
  AppendMetric("youtopia_coordinator_matched_groups_total", "counter",
               static_cast<double>(coord.matched_groups), out);
  AppendMetric("youtopia_coordinator_cancelled_total", "counter",
               static_cast<double>(coord.cancelled), out);
  AppendMetric("youtopia_coordinator_retrigger_rounds_total", "counter",
               static_cast<double>(coord.retrigger_rounds), out);
  AppendMetric("youtopia_coordinator_match_calls_total", "counter",
               static_cast<double>(coord.match_calls), out);

  const PlanCache::Stats plans = db.plan_cache().stats();
  AppendMetric("youtopia_plan_cache_hits_total", "counter",
               static_cast<double>(plans.hits), out);
  AppendMetric("youtopia_plan_cache_misses_total", "counter",
               static_cast<double>(plans.misses), out);
  AppendMetric("youtopia_plan_cache_evictions_total", "counter",
               static_cast<double>(plans.evictions), out);
  AppendMetric("youtopia_plan_cache_invalidations_total", "counter",
               static_cast<double>(plans.invalidations), out);
  AppendMetric("youtopia_plan_cache_size", "gauge",
               static_cast<double>(plans.size), out);

  AppendMetric("youtopia_wal_enabled", "gauge", db.wal() ? 1 : 0, out);
  if (db.wal() != nullptr) {
    const wal::WalStats wal = db.wal()->stats();
    AppendMetric("youtopia_wal_records_appended_total", "counter",
                 static_cast<double>(wal.records_appended), out);
    AppendMetric("youtopia_wal_bytes_appended_total", "counter",
                 static_cast<double>(wal.bytes_appended), out);
    AppendMetric("youtopia_wal_fsyncs_total", "counter",
                 static_cast<double>(wal.fsyncs), out);
    AppendMetric("youtopia_wal_group_commit_batches_total", "counter",
                 static_cast<double>(wal.group_commit_batches), out);
    AppendMetric("youtopia_wal_checkpoints_total", "counter",
                 static_cast<double>(wal.checkpoints), out);
  }
}

}  // namespace youtopia
