#ifndef YOUTOPIA_SERVER_CLIENT_INTERFACE_H_
#define YOUTOPIA_SERVER_CLIENT_INTERFACE_H_

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/youtopia.h"

namespace youtopia {

/// The backend-agnostic client surface: everything a middle tier needs
/// from the engine, implemented both by the in-process `Client` (an
/// embedded `Youtopia`) and by `net::RemoteClient` (the wire protocol to
/// a `net::YoutopiaServer`). Callers written against this interface —
/// the travel middle tier, the workload driver — run unchanged in either
/// deployment, which is the paper's architecture: many middle tiers, one
/// shared entangled-query engine.
///
/// Semantics are the in-process Client's (see server/client.h):
/// synchronous calls block for the statement result; the *Async forms
/// return futures; entangled submissions return immediately with an
/// `EntangledHandle` whose completion is consumed via Wait or
/// OnComplete. A remote backend preserves those semantics by pairing
/// each registered query with a detached handle completed on
/// server-pushed notifications.
class ClientInterface {
 public:
  using CompletionCallback = EntangledHandle::CompletionCallback;

  virtual ~ClientInterface() = default;

  /// Default owner tag attached to entangled submissions.
  virtual const std::string& owner() const = 0;

  /// Executes one *regular* statement (entangled rejected).
  virtual Result<QueryResult> Execute(const std::string& sql) = 0;
  virtual std::future<Result<QueryResult>> ExecuteAsync(
      const std::string& sql) = 0;

  /// Executes a ';'-separated batch of regular statements; first failure
  /// stops the script.
  virtual Status ExecuteScript(const std::string& sql) = 0;
  virtual std::future<Status> ExecuteScriptAsync(const std::string& sql) = 0;

  /// Submits one *entangled* query (owner tag = owner()).
  virtual Result<EntangledHandle> Submit(
      const std::string& sql, CompletionCallback on_complete = nullptr) = 0;
  virtual Result<EntangledHandle> SubmitAs(
      const std::string& owner, const std::string& sql,
      CompletionCallback on_complete = nullptr) = 0;

  /// Submits a batch of entangled queries in one coordinator round.
  virtual Result<std::vector<EntangledHandle>> SubmitBatch(
      const std::vector<std::string>& statements,
      CompletionCallback on_complete = nullptr) = 0;
  virtual Result<std::vector<EntangledHandle>> SubmitBatchAs(
      const std::vector<std::string>& owners,
      const std::vector<std::string>& statements,
      CompletionCallback on_complete = nullptr) = 0;

  /// Runs any single statement, auto-detecting entangled queries.
  virtual Result<RunOutcome> Run(const std::string& sql) = 0;
  virtual std::future<Result<RunOutcome>> RunAsync(const std::string& sql) = 0;

  /// Not-yet-answered entangled queries this client submitted.
  virtual std::vector<EntangledHandle> Outstanding() = 0;

  /// Waits until every outstanding query completes or `timeout` passes.
  /// Default implementation, shared by every backend: built purely on
  /// Outstanding() + EntangledHandle::Wait, so in-process and remote
  /// semantics cannot drift.
  virtual Status WaitForAll(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (const EntangledHandle& handle : Outstanding()) {
      const auto now = std::chrono::steady_clock::now();
      const auto remaining =
          now >= deadline
              ? std::chrono::milliseconds(0)
              : std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - now);
      const Status status = handle.Wait(remaining);
      if (!status.ok() && status.code() == StatusCode::kTimedOut) {
        return status;
      }
    }
    return Status::OK();
  }

  /// Withdraws this client's pending queries.
  virtual Status CancelAll() = 0;
};

}  // namespace youtopia

#endif  // YOUTOPIA_SERVER_CLIENT_INTERFACE_H_
