#include "server/youtopia.h"

#include "service/executor_service.h"
#include "sql/table_refs.h"

namespace youtopia {

namespace {

/// The acquire-locks + execute stages for one regular statement, under
/// an auto-commit transaction that holds S locks on read tables and X
/// locks on written tables for the statement's duration. This is what
/// makes regular queries observe coordination installs atomically
/// (reservations appear group-at-a-time, never half a pair).
///
/// The cached physical plan (when the statement carries one) executes
/// only if its catalog-version stamp is still current, and that check
/// happens *after* the locks are acquired: DDL takes no 2PL locks, so
/// a blocking lock wait can span a whole drop/recreate — a version
/// check done before the wait could admit a plan whose column bindings
/// no longer match the table. Checked under the locks, the stale plan
/// degrades to the seed path (the executor re-plans right here),
/// leaving exactly the seed's residual DDL-vs-DML exposure and nothing
/// more.
///
/// `LockWait::kBlock` waits inside the lock manager (surfacing
/// kTimedOut after its deadline — possible deadlock); `LockWait::kTry`
/// fails the acquire stage immediately on conflict so a pool worker can
/// requeue the statement instead of sleeping. Either way a failed
/// acquire aborts the transaction, so no locks leak and the statement
/// has no side effects — it is safe to re-drive.
Result<QueryResult> ExecuteLocked(Executor* executor, TxnManager* txns,
                                  const Catalog& catalog,
                                  const PreparedStatement& prepared,
                                  LockWait lock_wait, bool* lock_conflict) {
  const Statement& stmt = *prepared.stmt;
  const TableRefs& refs = prepared.refs;
  auto txn = txns->Begin();
  auto acquire = [&](const std::string& table, LockMode mode) {
    return lock_wait == LockWait::kBlock
               ? txns->lock_manager().Acquire(txn->id(), table, mode)
               : txns->lock_manager().TryAcquire(txn->id(), table, mode);
  };
  auto acquire_failed = [&](Status s) {
    // Nothing has executed: aborting releases the partial lock set and
    // leaves the statement safe to re-drive.
    (void)txns->Abort(txn.get());
    if (lock_conflict != nullptr && s.code() == StatusCode::kTimedOut) {
      *lock_conflict = true;
    }
    return s;
  };
  // std::set iteration is sorted, giving a global acquisition order
  // that avoids lock-order deadlocks between regular statements.
  for (const std::string& table : refs.writes) {
    Status s = acquire(table, LockMode::kExclusive);
    if (!s.ok()) return acquire_failed(std::move(s));
  }
  for (const std::string& table : refs.reads) {
    if (refs.writes.count(table) > 0) continue;
    Status s = acquire(table, LockMode::kShared);
    if (!s.ok()) return acquire_failed(std::move(s));
  }
  const PlannedSelect* plan =
      prepared.plan.has_value() &&
              prepared.catalog_version == catalog.version()
          ? &*prepared.plan
          : nullptr;
  auto result =
      plan != nullptr
          ? executor->ExecutePlanned(static_cast<const SelectStatement&>(stmt),
                                     *plan)
          : executor->Execute(stmt);
  // The executor applied changes directly to storage; the transaction
  // only held the locks. Commit releases them.
  (void)txns->Commit(txn.get());
  return result;
}

}  // namespace

Youtopia::Youtopia(YoutopiaConfig config)
    : config_(config),
      executor_(&storage_),
      txn_manager_(&storage_),
      coordinator_(&storage_, &txn_manager_, config.coordinator),
      plan_cache_(config.plan_cache.capacity),
      executor_service_(
          std::make_unique<ExecutorService>(this, config.executor)) {}

Youtopia::~Youtopia() = default;

Result<PreparedStatementPtr> Youtopia::PrepareParsed(StatementPtr stmt,
                                                     std::string sql) const {
  auto prepared = std::make_shared<PreparedStatement>();
  // Stamp *before* reading any catalog state: a DDL racing with the
  // plan build bumps the version after this read, so the stamp can only
  // err stale (entry discarded although valid), never fresh (stale plan
  // served).
  prepared->catalog_version = storage_.catalog().version();
  prepared->stmt = std::shared_ptr<const Statement>(std::move(stmt));
  prepared->refs = CollectTableRefs(*prepared->stmt);
  prepared->entangled =
      prepared->stmt->kind == StatementKind::kSelect &&
      static_cast<const SelectStatement&>(*prepared->stmt).IsEntangled();
  prepared->sql = std::move(sql);
  if (prepared->stmt->kind == StatementKind::kSelect && !prepared->entangled) {
    // Regular SELECTs are planned here, ahead of locks, so repeated
    // submissions skip the planner entirely on a cache hit. Other
    // statement kinds resolve the catalog at execution (unchanged).
    auto plan = executor_.Plan(
        static_cast<const SelectStatement&>(*prepared->stmt));
    if (!plan.ok()) return plan.status();
    prepared->plan.emplace(plan.TakeValue());
  }
  return PreparedStatementPtr(std::move(prepared));
}

Result<PreparedStatementPtr> Youtopia::PrepareParsedCached(
    StatementPtr stmt, std::string text) const {
  if (!plan_cache_.enabled()) {
    return PrepareParsed(std::move(stmt), std::move(text));
  }
  const std::string key = PlanCache::NormalizeKey(text);
  if (auto hit = plan_cache_.Lookup(key, storage_.catalog().version())) {
    return hit;
  }
  auto prepared = PrepareParsed(std::move(stmt), std::move(text));
  if (prepared.ok()) {
    plan_cache_.Insert(key, *prepared, (*prepared)->catalog_version);
  }
  return prepared;
}

Result<PreparedStatementPtr> Youtopia::Prepare(const std::string& sql) const {
  std::string key;
  if (plan_cache_.enabled()) {
    key = PlanCache::NormalizeKey(sql);
    if (auto hit = plan_cache_.Lookup(key, storage_.catalog().version())) {
      return hit;
    }
  }
  auto stmt = Parser::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  auto prepared = PrepareParsed(std::move(stmt.value()), sql);
  if (plan_cache_.enabled() && prepared.ok()) {
    plan_cache_.Insert(key, *prepared, (*prepared)->catalog_version);
  }
  return prepared;
}

Result<QueryResult> Youtopia::ExecutePrepared(const PreparedStatement& prepared,
                                              LockWait lock_wait,
                                              bool* lock_conflict) {
  if (prepared.stmt == nullptr) {
    return Status::InvalidArgument("empty prepared statement");
  }
  if (prepared.entangled) {
    return Status::InvalidArgument(
        "entangled query submitted to Execute(); use Submit() or Run()");
  }
  auto result = ExecuteLocked(&executor_, &txn_manager_, storage_.catalog(),
                              prepared, lock_wait, lock_conflict);
  if (!result.ok()) return result;
  if (config_.retrigger_on_dml && result->affected_rows > 0 &&
      coordinator_.pending_count() > 0) {
    for (const std::string& table : prepared.refs.writes) {
      auto retriggered = coordinator_.RetriggerDependentsOf(table);
      if (!retriggered.ok()) return retriggered.status();
    }
  }
  return result;
}

Result<EntangledHandle> Youtopia::SubmitPrepared(
    const PreparedStatement& prepared, const std::string& owner) {
  if (prepared.stmt == nullptr) {
    return Status::InvalidArgument("empty prepared statement");
  }
  if (!prepared.entangled || prepared.stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("not an entangled SELECT statement");
  }
  const auto& select = static_cast<const SelectStatement&>(*prepared.stmt);
  auto query = Normalizer::Normalize(select, /*id=*/0, owner, prepared.sql);
  if (!query.ok()) return query.status();
  return coordinator_.Submit(query.TakeValue());
}

Result<QueryResult> Youtopia::Execute(const std::string& sql) {
  auto prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  return ExecutePrepared(**prepared, LockWait::kBlock);
}

Status Youtopia::ExecuteScript(const std::string& sql) {
  // Parsing stays all-or-nothing (a syntax error anywhere rejects the
  // script before anything executes), but each statement is *prepared*
  // only when reached: planning consults the catalog, so a statement
  // referencing a table an earlier script statement creates must not be
  // planned before that statement runs. The executor service's script
  // tasks drive the identical per-step path, so the two cannot diverge.
  auto parts = Parser::ParseScriptParts(sql);
  if (!parts.ok()) return parts.status();
  for (auto& part : *parts) {
    auto prepared = PrepareParsedCached(std::move(part.stmt),
                                        std::move(part.text));
    if (!prepared.ok()) return prepared.status();
    auto result = ExecutePrepared(**prepared);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<EntangledHandle> Youtopia::Submit(const std::string& sql,
                                         const std::string& owner) {
  auto prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  if ((*prepared)->stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("not a SELECT statement");
  }
  return SubmitPrepared(**prepared, owner);
}

Result<std::vector<EntangledHandle>> Youtopia::SubmitBatch(
    const std::vector<std::string>& statements,
    const std::vector<std::string>& owners) {
  if (!owners.empty() && owners.size() != statements.size()) {
    return Status::InvalidArgument(
        "SubmitBatch owners/statements size mismatch");
  }
  // Compile the whole batch up front so a malformed member rejects it
  // before anything is registered with the coordinator.
  std::vector<EntangledQuery> queries;
  queries.reserve(statements.size());
  for (size_t i = 0; i < statements.size(); ++i) {
    auto prepared = Prepare(statements[i]);
    if (!prepared.ok()) return prepared.status();
    if ((*prepared)->stmt->kind != StatementKind::kSelect) {
      return Status::InvalidArgument("batch statement " + std::to_string(i) +
                                     " is not a SELECT statement");
    }
    const auto& select =
        static_cast<const SelectStatement&>(*(*prepared)->stmt);
    auto query = Normalizer::Normalize(
        select, /*id=*/0, owners.empty() ? "" : owners[i], (*prepared)->sql);
    if (!query.ok()) return query.status();
    queries.push_back(query.TakeValue());
  }
  return coordinator_.SubmitAll(std::move(queries));
}

Result<RunOutcome> Youtopia::Run(const std::string& sql,
                                 const std::string& owner) {
  auto prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  RunOutcome outcome;
  if ((*prepared)->entangled) {
    auto handle = SubmitPrepared(**prepared, owner);
    if (!handle.ok()) return handle.status();
    outcome.entangled = true;
    outcome.handle = handle.TakeValue();
    return outcome;
  }
  auto result = ExecutePrepared(**prepared, LockWait::kBlock);
  if (!result.ok()) return result.status();
  outcome.result = result.TakeValue();
  return outcome;
}

}  // namespace youtopia
