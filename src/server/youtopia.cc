#include "server/youtopia.h"

#include <algorithm>

#include "common/logging.h"
#include "service/executor_service.h"
#include "sql/table_refs.h"
#include "wal/recovery.h"
#include "wal/wal_journal.h"

namespace youtopia {

namespace {

/// The acquire-locks + execute stages for one regular statement, under
/// an auto-commit transaction that holds S locks on read tables and X
/// locks on written tables for the statement's duration. This is what
/// makes regular queries observe coordination installs atomically
/// (reservations appear group-at-a-time, never half a pair).
///
/// The cached physical plan (when the statement carries one) executes
/// only if its table-version stamps are still current, and that check
/// happens *after* the locks are acquired: DDL takes no 2PL locks, so
/// a blocking lock wait can span a whole drop/recreate — a version
/// check done before the wait could admit a plan whose column bindings
/// no longer match the table. Checked under the locks, the stale plan
/// degrades to the seed path (the executor re-plans right here),
/// leaving exactly the seed's residual DDL-vs-DML exposure and nothing
/// more.
///
/// `LockWait::kBlock` waits inside the lock manager (surfacing
/// kTimedOut after its deadline — possible deadlock); `LockWait::kTry`
/// fails the acquire stage immediately on conflict so a pool worker can
/// requeue the statement instead of sleeping. Either way a failed
/// acquire aborts the transaction, so no locks leak and the statement
/// has no side effects — it is safe to re-drive.
/// When `wal` is non-null, every successful non-SELECT statement is
/// journaled as a command-log record (its SQL text; replay re-executes
/// it). The append happens *before* Commit releases the 2PL locks, so
/// log order is a valid serialization order for DML. DDL takes no 2PL
/// locks at all, so it goes through AppendSerialized instead: execution
/// and append run atomically under the log mutex, the only exclusion
/// that can keep its log position consistent with its execution order.
/// Appends only buffer — the caller syncs at its acknowledgment point,
/// `*logged_lsn` says up to where.
Result<QueryResult> ExecuteLocked(Executor* executor, TxnManager* txns,
                                  const Catalog& catalog,
                                  const PreparedStatement& prepared,
                                  LockWait lock_wait, bool* lock_conflict,
                                  wal::WalManager* wal,
                                  wal::Lsn* logged_lsn) {
  const Statement& stmt = *prepared.stmt;
  const TableRefs& refs = prepared.refs;
  if (txns->mvcc_enabled() && stmt.kind == StatementKind::kSelect &&
      refs.writes.empty()) {
    // The browse path (design decision #10): a regular SELECT under
    // MVCC takes *no locks at all* — no transaction, no S locks, no
    // lock-manager traffic. It opens a snapshot at the current
    // watermark and resolves every scan, index probe and subquery at
    // that timestamp; writers stamp their versions at commit, so the
    // snapshot observes each transaction (and each coordination
    // install) entirely or not at all. `lock_conflict` can never fire
    // here and SELECTs are never journaled, so neither out-parameter is
    // touched. Plan freshness is checked without locks: the same
    // residual DDL-vs-read exposure as the seed (DDL takes no 2PL locks
    // either way), with a stale plan degrading to re-plan-and-execute.
    SnapshotHandle snapshot = txns->OpenSnapshot();
    const auto& select = static_cast<const SelectStatement&>(stmt);
    return prepared.plan.has_value() && PreparedStatementFresh(prepared, catalog)
               ? executor->ExecutePlanned(select, *prepared.plan,
                                          snapshot.ts())
               : executor->ExecuteSelect(select, snapshot.ts());
  }
  const bool journal =
      wal != nullptr && stmt.kind != StatementKind::kSelect;
  auto txn = txns->Begin();

  if (journal && refs.writes.empty()) {
    // No write footprint + not a SELECT = DDL (CollectTableRefs reports
    // no refs for schema statements).
    QueryResult ddl_result;
    auto lsn = wal->AppendSerialized(
        [&]() -> Status {
          auto result = executor->Execute(stmt);
          if (!result.ok()) return result.status();
          ddl_result = result.TakeValue();
          return Status::OK();
        },
        wal::WalRecord::Statement(prepared.sql));
    (void)txns->Commit(txn.get());
    if (!lsn.ok()) return lsn.status();
    *logged_lsn = *lsn;
    return ddl_result;
  }
  auto acquire = [&](const std::string& table, LockMode mode) {
    return lock_wait == LockWait::kBlock
               ? txns->lock_manager().Acquire(txn->id(), table, mode)
               : txns->lock_manager().TryAcquire(txn->id(), table, mode);
  };
  auto acquire_failed = [&](Status s) {
    // Nothing has executed: aborting releases the partial lock set and
    // leaves the statement safe to re-drive.
    (void)txns->Abort(txn.get());
    if (lock_conflict != nullptr && s.code() == StatusCode::kTimedOut) {
      *lock_conflict = true;
    }
    return s;
  };
  // std::set iteration is sorted, giving a global acquisition order
  // that avoids lock-order deadlocks between regular statements.
  for (const std::string& table : refs.writes) {
    Status s = acquire(table, LockMode::kExclusive);
    if (!s.ok()) return acquire_failed(std::move(s));
  }
  for (const std::string& table : refs.reads) {
    if (refs.writes.count(table) > 0) continue;
    Status s = acquire(table, LockMode::kShared);
    if (!s.ok()) return acquire_failed(std::move(s));
  }
  const PlannedSelect* plan =
      prepared.plan.has_value() && PreparedStatementFresh(prepared, catalog)
          ? &*prepared.plan
          : nullptr;
  // Under MVCC the statement's writes are tagged with the surrounding
  // lock-holding transaction: they enter storage as *pending* versions,
  // invisible to every snapshot, and Commit below stamps them all with
  // one timestamp — a multi-row UPDATE (or a coordination install)
  // becomes visible to lock-free readers atomically, never row by row.
  // Unversioned mode passes 0 and keeps the seed's in-place writes.
  const TxnId dml_txn = txns->mvcc_enabled() ? txn->id() : 0;
  auto result =
      plan != nullptr
          ? executor->ExecutePlanned(static_cast<const SelectStatement&>(stmt),
                                     *plan)
          : executor->Execute(stmt, dml_txn);
  if (result.ok() && journal) {
    // Append while still holding the write locks: no conflicting
    // statement can slip between this record and its effects, so log
    // order = lock order = a valid serialization. Failed statements
    // are not journaled (they are not acknowledged as durable either).
    auto lsn = wal->Append(wal::WalRecord::Statement(prepared.sql));
    if (!lsn.ok()) {
      (void)txns->Commit(txn.get());
      return lsn.status();
    }
    *logged_lsn = *lsn;
  }
  // The executor applied changes directly to storage; the transaction
  // only held the locks. Commit releases them.
  (void)txns->Commit(txn.get());
  return result;
}

}  // namespace

bool PreparedStatementFresh(const PreparedStatement& prepared,
                            const Catalog& catalog) {
  for (const auto& [table, version] : prepared.table_versions) {
    if (catalog.TableVersion(table) != version) return false;
  }
  return true;
}

Youtopia::Youtopia(YoutopiaConfig config)
    : config_(config),
      storage_(config.mvcc.num_versions),
      executor_(&storage_),
      txn_manager_(&storage_),
      coordinator_(&storage_, &txn_manager_, config.coordinator),
      plan_cache_(config.plan_cache.capacity),
      executor_service_(
          std::make_unique<ExecutorService>(this, config.executor)) {
  if (config_.wal.enabled) {
    wal_ = std::make_unique<wal::WalManager>(config_.wal);
    recovery_status_ = RecoverFromWal();
    if (!recovery_status_.ok()) {
      YOUTOPIA_LOG(kError) << "WAL recovery failed: "
                           << recovery_status_.ToString();
    }
  }
}

Youtopia::~Youtopia() {
  // Join the workers before the final checkpoint so no statement is
  // mid-flight while the snapshot is taken.
  executor_service_.reset();
  if (wal_ != nullptr && recovery_status_.ok() && !wal_->crashed()) {
    Status final = config_.wal.checkpoint_on_shutdown
                       ? Checkpoint()
                       : wal_->SyncAll();
    if (!final.ok()) {
      YOUTOPIA_LOG(kWarning) << "WAL shutdown flush failed: "
                             << final.ToString();
    }
  }
}

Status Youtopia::RecoverFromWal() {
  YOUTOPIA_RETURN_IF_ERROR(wal_->Open());
  wal::RecoveryResult recovered;
  YOUTOPIA_RETURN_IF_ERROR(
      wal::Recover(wal_.get(), &storage_, &executor_, &recovered));
  YOUTOPIA_RETURN_IF_ERROR(wal_->OpenForAppend());

  // Re-register the coordinations that were pending at the crash,
  // original ids preserved, by re-normalizing their logged SQL — the
  // schema they reference was just replayed, so normalization sees the
  // same catalog the original submission did.
  for (const wal::CheckpointPending& p : recovered.pending) {
    auto stmt = Parser::ParseStatement(p.sql);
    if (!stmt.ok()) return stmt.status();
    if ((*stmt)->kind != StatementKind::kSelect) {
      return Status::Internal("journaled pending query " +
                              std::to_string(p.query_id) +
                              " is not a SELECT: " + p.sql);
    }
    const auto& select = static_cast<const SelectStatement&>(**stmt);
    auto query = Normalizer::Normalize(select, p.query_id, p.owner, p.sql);
    if (!query.ok()) return query.status();
    YOUTOPIA_RETURN_IF_ERROR(coordinator_.RestorePending(query.TakeValue()));
  }
  coordinator_.SeedNextQueryId(recovered.next_query_id);

  // Journal from here on: a retrigger below may close a group that only
  // became matchable across the restart, and its install must be logged
  // like any other.
  journal_ = std::make_unique<wal::WalCoordinatorJournal>(wal_.get());
  coordinator_.SetJournal(journal_.get());
  auto retriggered = coordinator_.RetriggerAll();
  if (!retriggered.ok()) return retriggered.status();
  YOUTOPIA_RETURN_IF_ERROR(wal_->SyncAll());
  if (wal_->ShouldCheckpoint()) {
    YOUTOPIA_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::OK();
}

Status Youtopia::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("WAL is not enabled");
  }
  return coordinator_.WithQuiescedPending(
      [&](const std::vector<PendingQueryInfo>& pending,
          QueryId next_id) -> Status {
        // The shard mutexes quiesce the coordinator (no install can
        // run); S locks on every table drain regular DML — a writer
        // holds its locks only for the statement's duration and never
        // blocks on a shard mutex while holding them, so this cannot
        // deadlock. Sorted acquisition mirrors the statement path.
        auto txn = txn_manager_.Begin();
        std::vector<TableInfo> tables = storage_.catalog().ListTables();
        std::sort(tables.begin(), tables.end(),
                  [](const TableInfo& a, const TableInfo& b) {
                    return a.name < b.name;
                  });
        for (const TableInfo& table : tables) {
          Status s = txn_manager_.lock_manager().Acquire(
              txn->id(), table.name, LockMode::kShared);
          if (!s.ok()) {
            (void)txn_manager_.Abort(txn.get());
            return s;
          }
        }

        wal::CheckpointState state;
        state.next_query_id = next_id;
        state.tables.reserve(tables.size());
        Status built = Status::OK();
        for (const TableInfo& table : tables) {
          wal::CheckpointTable snapshot;
          snapshot.name = table.name;
          snapshot.schema = table.schema;
          for (size_t column : table.indexed_columns) {
            snapshot.indexed_columns.push_back(
                table.schema.columns()[column].name);
          }
          auto slots = storage_.TableSlotCount(table.name);
          if (!slots.ok()) {
            built = slots.status();
            break;
          }
          snapshot.slot_count = slots.value();
          auto rows = storage_.Scan(table.name);
          if (!rows.ok()) {
            built = rows.status();
            break;
          }
          snapshot.rows = rows.TakeValue();
          state.tables.push_back(std::move(snapshot));
        }
        if (built.ok()) {
          state.pending.reserve(pending.size());
          for (const PendingQueryInfo& info : pending) {
            state.pending.push_back(
                wal::CheckpointPending{info.id, info.owner, info.sql});
          }
          built = wal_->WriteCheckpoint(std::move(state));
        }
        (void)txn_manager_.Commit(txn.get());
        return built;
      });
}

void Youtopia::MaybeAutoCheckpoint() {
  if (wal_ == nullptr || !wal_->ShouldCheckpoint()) return;
  if (checkpoint_inflight_.exchange(true)) return;  // one at a time
  Status s = Checkpoint();
  checkpoint_inflight_.store(false);
  if (!s.ok()) {
    YOUTOPIA_LOG(kWarning) << "automatic checkpoint failed: "
                           << s.ToString();
  }
}

Result<PreparedStatementPtr> Youtopia::PrepareParsed(StatementPtr stmt,
                                                     std::string sql) const {
  auto prepared = std::make_shared<PreparedStatement>();
  // Stamp *before* reading any other catalog state: a DDL racing with
  // the plan build bumps the versions after this read, so the stamps
  // can only err stale (entry discarded although valid), never fresh
  // (stale plan served). The footprint itself is pure AST, so it is
  // safe to collect it first to learn which tables to stamp.
  prepared->stmt = std::shared_ptr<const Statement>(std::move(stmt));
  prepared->refs = CollectTableRefs(*prepared->stmt);
  prepared->catalog_version = storage_.catalog().version();
  for (const std::string& table : prepared->refs.writes) {
    prepared->table_versions.emplace_back(
        table, storage_.catalog().TableVersion(table));
  }
  for (const std::string& table : prepared->refs.reads) {
    if (prepared->refs.writes.count(table) > 0) continue;
    prepared->table_versions.emplace_back(
        table, storage_.catalog().TableVersion(table));
  }
  prepared->entangled =
      prepared->stmt->kind == StatementKind::kSelect &&
      static_cast<const SelectStatement&>(*prepared->stmt).IsEntangled();
  prepared->sql = std::move(sql);
  if (prepared->stmt->kind == StatementKind::kSelect && !prepared->entangled) {
    // Regular SELECTs are planned here, ahead of locks, so repeated
    // submissions skip the planner entirely on a cache hit. Other
    // statement kinds resolve the catalog at execution (unchanged).
    auto plan = executor_.Plan(
        static_cast<const SelectStatement&>(*prepared->stmt));
    if (!plan.ok()) return plan.status();
    prepared->plan.emplace(plan.TakeValue());
  }
  return PreparedStatementPtr(std::move(prepared));
}

Result<PreparedStatementPtr> Youtopia::PrepareParsedCached(
    StatementPtr stmt, std::string text) const {
  if (!plan_cache_.enabled()) {
    return PrepareParsed(std::move(stmt), std::move(text));
  }
  const std::string key = PlanCache::NormalizeKey(text);
  if (auto hit = plan_cache_.Lookup(key, storage_.catalog())) {
    return hit;
  }
  auto prepared = PrepareParsed(std::move(stmt), std::move(text));
  if (prepared.ok()) {
    plan_cache_.Insert(key, *prepared);
  }
  return prepared;
}

Result<PreparedStatementPtr> Youtopia::Prepare(const std::string& sql) const {
  std::string key;
  if (plan_cache_.enabled()) {
    key = PlanCache::NormalizeKey(sql);
    if (auto hit = plan_cache_.Lookup(key, storage_.catalog())) {
      return hit;
    }
  }
  auto stmt = Parser::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  auto prepared = PrepareParsed(std::move(stmt.value()), sql);
  if (plan_cache_.enabled() && prepared.ok()) {
    plan_cache_.Insert(key, *prepared);
  }
  return prepared;
}

Result<QueryResult> Youtopia::ExecutePrepared(const PreparedStatement& prepared,
                                              LockWait lock_wait,
                                              bool* lock_conflict) {
  if (prepared.stmt == nullptr) {
    return Status::InvalidArgument("empty prepared statement");
  }
  if (prepared.entangled) {
    return Status::InvalidArgument(
        "entangled query submitted to Execute(); use Submit() or Run()");
  }
  wal::Lsn logged = 0;
  auto result = ExecuteLocked(&executor_, &txn_manager_, storage_.catalog(),
                              prepared, lock_wait, lock_conflict,
                              wal_.get(), &logged);
  if (!result.ok()) return result;
  if (config_.retrigger_on_dml && result->affected_rows > 0 &&
      coordinator_.pending_count() > 0) {
    for (const std::string& table : prepared.refs.writes) {
      auto retriggered = coordinator_.RetriggerDependentsOf(table);
      if (!retriggered.ok()) return retriggered.status();
    }
  }
  if (logged != 0) {
    // Acknowledgment point: the statement (and any install records a
    // retrigger above appended) must be on disk before this returns.
    // With group commit, concurrent sessions land here together and
    // one leader fsyncs for all of them.
    YOUTOPIA_RETURN_IF_ERROR(wal_->SyncAll());
    MaybeAutoCheckpoint();
  }
  return result;
}

Result<EntangledHandle> Youtopia::SubmitPrepared(
    const PreparedStatement& prepared, const std::string& owner) {
  if (prepared.stmt == nullptr) {
    return Status::InvalidArgument("empty prepared statement");
  }
  if (!prepared.entangled || prepared.stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("not an entangled SELECT statement");
  }
  const auto& select = static_cast<const SelectStatement&>(*prepared.stmt);
  auto query = Normalizer::Normalize(select, /*id=*/0, owner, prepared.sql);
  if (!query.ok()) return query.status();
  auto handle = coordinator_.Submit(query.TakeValue());
  if (handle.ok() && wal_ != nullptr) {
    // The submit record — and the install record, if this submission
    // closed a group — must be durable before the handle is returned.
    YOUTOPIA_RETURN_IF_ERROR(wal_->SyncAll());
    MaybeAutoCheckpoint();
  }
  return handle;
}

Result<QueryResult> Youtopia::Execute(const std::string& sql) {
  auto prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  return ExecutePrepared(**prepared, LockWait::kBlock);
}

Status Youtopia::ExecuteScript(const std::string& sql) {
  // Parsing stays all-or-nothing (a syntax error anywhere rejects the
  // script before anything executes), but each statement is *prepared*
  // only when reached: planning consults the catalog, so a statement
  // referencing a table an earlier script statement creates must not be
  // planned before that statement runs. The executor service's script
  // tasks drive the identical per-step path, so the two cannot diverge.
  auto parts = Parser::ParseScriptParts(sql);
  if (!parts.ok()) return parts.status();
  for (auto& part : *parts) {
    auto prepared = PrepareParsedCached(std::move(part.stmt),
                                        std::move(part.text));
    if (!prepared.ok()) return prepared.status();
    auto result = ExecutePrepared(**prepared);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<EntangledHandle> Youtopia::Submit(const std::string& sql,
                                         const std::string& owner) {
  auto prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  if ((*prepared)->stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("not a SELECT statement");
  }
  return SubmitPrepared(**prepared, owner);
}

Result<std::vector<EntangledHandle>> Youtopia::SubmitBatch(
    const std::vector<std::string>& statements,
    const std::vector<std::string>& owners) {
  if (!owners.empty() && owners.size() != statements.size()) {
    return Status::InvalidArgument(
        "SubmitBatch owners/statements size mismatch");
  }
  // Compile the whole batch up front so a malformed member rejects it
  // before anything is registered with the coordinator.
  std::vector<EntangledQuery> queries;
  queries.reserve(statements.size());
  for (size_t i = 0; i < statements.size(); ++i) {
    auto prepared = Prepare(statements[i]);
    if (!prepared.ok()) return prepared.status();
    if ((*prepared)->stmt->kind != StatementKind::kSelect) {
      return Status::InvalidArgument("batch statement " + std::to_string(i) +
                                     " is not a SELECT statement");
    }
    const auto& select =
        static_cast<const SelectStatement&>(*(*prepared)->stmt);
    auto query = Normalizer::Normalize(
        select, /*id=*/0, owners.empty() ? "" : owners[i], (*prepared)->sql);
    if (!query.ok()) return query.status();
    queries.push_back(query.TakeValue());
  }
  auto handles = coordinator_.SubmitAll(std::move(queries));
  if (handles.ok() && wal_ != nullptr) {
    YOUTOPIA_RETURN_IF_ERROR(wal_->SyncAll());
    MaybeAutoCheckpoint();
  }
  return handles;
}

Result<RunOutcome> Youtopia::Run(const std::string& sql,
                                 const std::string& owner) {
  auto prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  RunOutcome outcome;
  if ((*prepared)->entangled) {
    auto handle = SubmitPrepared(**prepared, owner);
    if (!handle.ok()) return handle.status();
    outcome.entangled = true;
    outcome.handle = handle.TakeValue();
    return outcome;
  }
  auto result = ExecutePrepared(**prepared, LockWait::kBlock);
  if (!result.ok()) return result.status();
  outcome.result = result.TakeValue();
  return outcome;
}

}  // namespace youtopia
