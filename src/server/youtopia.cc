#include "server/youtopia.h"

#include "service/executor_service.h"
#include "sql/table_refs.h"

namespace youtopia {

namespace {

/// The acquire-locks + execute stages for one regular statement, under
/// an auto-commit transaction that holds S locks on read tables and X
/// locks on written tables for the statement's duration. This is what
/// makes regular queries observe coordination installs atomically
/// (reservations appear group-at-a-time, never half a pair).
///
/// `LockWait::kBlock` waits inside the lock manager (surfacing
/// kTimedOut after its deadline — possible deadlock); `LockWait::kTry`
/// fails the acquire stage immediately on conflict so a pool worker can
/// requeue the statement instead of sleeping. Either way a failed
/// acquire aborts the transaction, so no locks leak and the statement
/// has no side effects — it is safe to re-drive.
Result<QueryResult> ExecuteLocked(Executor* executor, TxnManager* txns,
                                  const Statement& stmt, const TableRefs& refs,
                                  LockWait lock_wait, bool* lock_conflict) {
  auto txn = txns->Begin();
  auto acquire = [&](const std::string& table, LockMode mode) {
    return lock_wait == LockWait::kBlock
               ? txns->lock_manager().Acquire(txn->id(), table, mode)
               : txns->lock_manager().TryAcquire(txn->id(), table, mode);
  };
  auto acquire_failed = [&](Status s) {
    // Nothing has executed: aborting releases the partial lock set and
    // leaves the statement safe to re-drive.
    (void)txns->Abort(txn.get());
    if (lock_conflict != nullptr && s.code() == StatusCode::kTimedOut) {
      *lock_conflict = true;
    }
    return s;
  };
  // std::set iteration is sorted, giving a global acquisition order
  // that avoids lock-order deadlocks between regular statements.
  for (const std::string& table : refs.writes) {
    Status s = acquire(table, LockMode::kExclusive);
    if (!s.ok()) return acquire_failed(std::move(s));
  }
  for (const std::string& table : refs.reads) {
    if (refs.writes.count(table) > 0) continue;
    Status s = acquire(table, LockMode::kShared);
    if (!s.ok()) return acquire_failed(std::move(s));
  }
  auto result = executor->Execute(stmt);
  // The executor applied changes directly to storage; the transaction
  // only held the locks. Commit releases them.
  (void)txns->Commit(txn.get());
  return result;
}

}  // namespace

Youtopia::Youtopia(YoutopiaConfig config)
    : config_(config),
      executor_(&storage_),
      txn_manager_(&storage_),
      coordinator_(&storage_, &txn_manager_, config.coordinator),
      executor_service_(
          std::make_unique<ExecutorService>(this, config.executor)) {}

Youtopia::~Youtopia() = default;

PreparedStatement Youtopia::PrepareParsed(StatementPtr stmt,
                                          std::string sql) const {
  PreparedStatement prepared;
  prepared.stmt = std::shared_ptr<const Statement>(std::move(stmt));
  prepared.refs = CollectTableRefs(*prepared.stmt);
  prepared.entangled =
      prepared.stmt->kind == StatementKind::kSelect &&
      static_cast<const SelectStatement&>(*prepared.stmt).IsEntangled();
  prepared.sql = std::move(sql);
  return prepared;
}

Result<PreparedStatement> Youtopia::Prepare(const std::string& sql) const {
  auto stmt = Parser::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  return PrepareParsed(std::move(stmt.value()), sql);
}

Result<QueryResult> Youtopia::ExecutePrepared(const PreparedStatement& prepared,
                                              LockWait lock_wait,
                                              bool* lock_conflict) {
  if (prepared.stmt == nullptr) {
    return Status::InvalidArgument("empty prepared statement");
  }
  if (prepared.entangled) {
    return Status::InvalidArgument(
        "entangled query submitted to Execute(); use Submit() or Run()");
  }
  auto result = ExecuteLocked(&executor_, &txn_manager_, *prepared.stmt,
                              prepared.refs, lock_wait, lock_conflict);
  if (!result.ok()) return result;
  if (config_.retrigger_on_dml && result->affected_rows > 0 &&
      coordinator_.pending_count() > 0) {
    for (const std::string& table : prepared.refs.writes) {
      auto retriggered = coordinator_.RetriggerDependentsOf(table);
      if (!retriggered.ok()) return retriggered.status();
    }
  }
  return result;
}

Result<EntangledHandle> Youtopia::SubmitPrepared(
    const PreparedStatement& prepared, const std::string& owner) {
  if (prepared.stmt == nullptr) {
    return Status::InvalidArgument("empty prepared statement");
  }
  if (!prepared.entangled || prepared.stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("not an entangled SELECT statement");
  }
  const auto& select = static_cast<const SelectStatement&>(*prepared.stmt);
  auto query = Normalizer::Normalize(select, /*id=*/0, owner, prepared.sql);
  if (!query.ok()) return query.status();
  return coordinator_.Submit(query.TakeValue());
}

Result<QueryResult> Youtopia::Execute(const std::string& sql) {
  auto prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  return ExecutePrepared(*prepared, LockWait::kBlock);
}

Status Youtopia::ExecuteScript(const std::string& sql) {
  auto stmts = Parser::ParseScript(sql);
  if (!stmts.ok()) return stmts.status();
  // The same staged path the executor service's script tasks use, so
  // the two cannot diverge (entangled statements are rejected with the
  // same error, partial-execution semantics are identical).
  for (auto& stmt : *stmts) {
    auto result = ExecutePrepared(PrepareParsed(std::move(stmt), sql));
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<EntangledHandle> Youtopia::Submit(const std::string& sql,
                                         const std::string& owner) {
  auto stmt = Parser::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  if (stmt.value()->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("not a SELECT statement");
  }
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  auto query = Normalizer::Normalize(select, /*id=*/0, owner, sql);
  if (!query.ok()) return query.status();
  return coordinator_.Submit(query.TakeValue());
}

Result<std::vector<EntangledHandle>> Youtopia::SubmitBatch(
    const std::vector<std::string>& statements,
    const std::vector<std::string>& owners) {
  if (!owners.empty() && owners.size() != statements.size()) {
    return Status::InvalidArgument(
        "SubmitBatch owners/statements size mismatch");
  }
  // Compile the whole batch up front so a malformed member rejects it
  // before anything is registered with the coordinator.
  std::vector<EntangledQuery> queries;
  queries.reserve(statements.size());
  for (size_t i = 0; i < statements.size(); ++i) {
    auto stmt = Parser::ParseStatement(statements[i]);
    if (!stmt.ok()) return stmt.status();
    if (stmt.value()->kind != StatementKind::kSelect) {
      return Status::InvalidArgument("batch statement " + std::to_string(i) +
                                     " is not a SELECT statement");
    }
    const auto& select = static_cast<const SelectStatement&>(*stmt.value());
    auto query = Normalizer::Normalize(
        select, /*id=*/0, owners.empty() ? "" : owners[i], statements[i]);
    if (!query.ok()) return query.status();
    queries.push_back(query.TakeValue());
  }
  return coordinator_.SubmitAll(std::move(queries));
}

Result<RunOutcome> Youtopia::Run(const std::string& sql,
                                 const std::string& owner) {
  auto prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  RunOutcome outcome;
  if (prepared->entangled) {
    auto handle = SubmitPrepared(*prepared, owner);
    if (!handle.ok()) return handle.status();
    outcome.entangled = true;
    outcome.handle = handle.TakeValue();
    return outcome;
  }
  auto result = ExecutePrepared(*prepared, LockWait::kBlock);
  if (!result.ok()) return result.status();
  outcome.result = result.TakeValue();
  return outcome;
}

}  // namespace youtopia
