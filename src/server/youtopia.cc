#include "server/youtopia.h"

#include "sql/table_refs.h"

namespace youtopia {

namespace {

/// Runs one regular statement under an auto-commit transaction that
/// holds S locks on read tables and X locks on written tables for the
/// statement's duration. This is what makes regular queries observe
/// coordination installs atomically (reservations appear group-at-a-
/// time, never half a pair). Lock-wait timeouts are surfaced as
/// kTimedOut; callers may retry.
Result<QueryResult> ExecuteLocked(Executor* executor, TxnManager* txns,
                                  const Statement& stmt) {
  const TableRefs refs = CollectTableRefs(stmt);
  auto txn = txns->Begin();
  // std::set iteration is sorted, giving a global acquisition order
  // that avoids lock-order deadlocks between regular statements.
  for (const std::string& table : refs.writes) {
    Status s = txns->lock_manager().Acquire(txn->id(), table,
                                            LockMode::kExclusive);
    if (!s.ok()) {
      (void)txns->Abort(txn.get());
      return s;
    }
  }
  for (const std::string& table : refs.reads) {
    if (refs.writes.count(table) > 0) continue;
    Status s =
        txns->lock_manager().Acquire(txn->id(), table, LockMode::kShared);
    if (!s.ok()) {
      (void)txns->Abort(txn.get());
      return s;
    }
  }
  auto result = executor->Execute(stmt);
  // The executor applied changes directly to storage; the transaction
  // only held the locks. Commit releases them.
  (void)txns->Commit(txn.get());
  return result;
}

}  // namespace

Youtopia::Youtopia(YoutopiaConfig config)
    : config_(config),
      executor_(&storage_),
      txn_manager_(&storage_),
      coordinator_(&storage_, &txn_manager_, config.coordinator) {}

Result<QueryResult> Youtopia::ExecuteRegular(const Statement& stmt) {
  auto result = ExecuteLocked(&executor_, &txn_manager_, stmt);
  if (!result.ok()) return result;
  if (config_.retrigger_on_dml && result->affected_rows > 0 &&
      coordinator_.pending_count() > 0) {
    for (const std::string& table : CollectTableRefs(stmt).writes) {
      auto retriggered = coordinator_.RetriggerDependentsOf(table);
      if (!retriggered.ok()) return retriggered.status();
    }
  }
  return result;
}

Result<QueryResult> Youtopia::Execute(const std::string& sql) {
  auto stmt = Parser::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  if (stmt.value()->kind == StatementKind::kSelect &&
      static_cast<const SelectStatement&>(*stmt.value()).IsEntangled()) {
    return Status::InvalidArgument(
        "entangled query submitted to Execute(); use Submit() or Run()");
  }
  return ExecuteRegular(*stmt.value());
}

Status Youtopia::ExecuteScript(const std::string& sql) {
  auto stmts = Parser::ParseScript(sql);
  if (!stmts.ok()) return stmts.status();
  for (const auto& stmt : *stmts) {
    auto result = ExecuteRegular(*stmt);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<EntangledHandle> Youtopia::Submit(const std::string& sql,
                                         const std::string& owner) {
  auto stmt = Parser::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  if (stmt.value()->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("not a SELECT statement");
  }
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  auto query = Normalizer::Normalize(select, /*id=*/0, owner, sql);
  if (!query.ok()) return query.status();
  return coordinator_.Submit(query.TakeValue());
}

Result<std::vector<EntangledHandle>> Youtopia::SubmitBatch(
    const std::vector<std::string>& statements,
    const std::vector<std::string>& owners) {
  if (!owners.empty() && owners.size() != statements.size()) {
    return Status::InvalidArgument(
        "SubmitBatch owners/statements size mismatch");
  }
  // Compile the whole batch up front so a malformed member rejects it
  // before anything is registered with the coordinator.
  std::vector<EntangledQuery> queries;
  queries.reserve(statements.size());
  for (size_t i = 0; i < statements.size(); ++i) {
    auto stmt = Parser::ParseStatement(statements[i]);
    if (!stmt.ok()) return stmt.status();
    if (stmt.value()->kind != StatementKind::kSelect) {
      return Status::InvalidArgument("batch statement " + std::to_string(i) +
                                     " is not a SELECT statement");
    }
    const auto& select = static_cast<const SelectStatement&>(*stmt.value());
    auto query = Normalizer::Normalize(
        select, /*id=*/0, owners.empty() ? "" : owners[i], statements[i]);
    if (!query.ok()) return query.status();
    queries.push_back(query.TakeValue());
  }
  return coordinator_.SubmitAll(std::move(queries));
}

Result<RunOutcome> Youtopia::Run(const std::string& sql,
                                 const std::string& owner) {
  auto stmt = Parser::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  RunOutcome outcome;
  if (stmt.value()->kind == StatementKind::kSelect &&
      static_cast<const SelectStatement&>(*stmt.value()).IsEntangled()) {
    const auto& select = static_cast<const SelectStatement&>(*stmt.value());
    auto query = Normalizer::Normalize(select, /*id=*/0, owner, sql);
    if (!query.ok()) return query.status();
    auto handle = coordinator_.Submit(query.TakeValue());
    if (!handle.ok()) return handle.status();
    outcome.entangled = true;
    outcome.handle = handle.TakeValue();
    return outcome;
  }
  auto result = ExecuteRegular(*stmt.value());
  if (!result.ok()) return result.status();
  outcome.result = result.TakeValue();
  return outcome;
}

}  // namespace youtopia
