#include "server/session.h"

#include <algorithm>

namespace youtopia {

void Session::Record(const std::string& sql) {
  std::lock_guard<std::mutex> lock(mu_);
  history_.push_back(sql);
}

void Session::Track(const EntangledHandle& handle) {
  std::lock_guard<std::mutex> lock(mu_);
  outstanding_.push_back(handle);
}

Result<RunOutcome> Session::Run(const std::string& sql) {
  Record(sql);
  auto outcome = db_->Run(sql, user_);
  if (outcome.ok() && outcome->entangled && outcome->handle.has_value() &&
      !outcome->handle->Done()) {
    Track(*outcome->handle);
  }
  return outcome;
}

Result<QueryResult> Session::Execute(const std::string& sql) {
  Record(sql);
  return db_->Execute(sql);
}

Result<EntangledHandle> Session::Submit(const std::string& sql) {
  Record(sql);
  auto handle = db_->Submit(sql, user_);
  if (handle.ok() && !handle->Done()) Track(*handle);
  return handle;
}

std::vector<EntangledHandle> Session::Outstanding() {
  std::lock_guard<std::mutex> lock(mu_);
  outstanding_.erase(
      std::remove_if(outstanding_.begin(), outstanding_.end(),
                     [](const EntangledHandle& h) { return h.Done(); }),
      outstanding_.end());
  return outstanding_;
}

Status Session::WaitForAll(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (const EntangledHandle& handle : Outstanding()) {
    const auto now = std::chrono::steady_clock::now();
    const auto remaining =
        now >= deadline
            ? std::chrono::milliseconds(0)
            : std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - now);
    Status status = handle.Wait(remaining);
    if (!status.ok() && status.code() == StatusCode::kTimedOut) {
      return status;
    }
  }
  return Status::OK();
}

Status Session::CancelAll() {
  for (const EntangledHandle& handle : Outstanding()) {
    Status status = db_->coordinator().Cancel(handle.id());
    // NotFound just means it completed concurrently.
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }
  return Status::OK();
}

std::vector<std::string> Session::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

}  // namespace youtopia
