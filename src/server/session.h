#ifndef YOUTOPIA_SERVER_SESSION_H_
#define YOUTOPIA_SERVER_SESSION_H_

#include <chrono>
#include <string>
#include <vector>

#include "server/client.h"

namespace youtopia {

/// A user session against a shared Youtopia instance — what each
/// middle-tier connection of the demo's web application holds. A thin
/// wrapper over the `Client` façade that fixes the owner tag to the
/// session user; new code should hold a `Client` directly and use
/// `ClientOptions` for configuration.
///
/// Thread-compatible: one session per thread; the underlying Youtopia
/// instance is shared and thread-safe.
class Session {
 public:
  Session(Youtopia* db, std::string user)
      : client_(db, ClientOptions(std::move(user))) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& user() const { return client_.owner(); }

  /// The façade this session delegates through.
  Client& client() { return client_; }

  /// Runs any statement; entangled queries are tagged with this
  /// session's user and their handles retained (see Outstanding).
  /// Delegates through the engine's executor service (via the client
  /// façade), so one network thread can drive many sessions by using
  /// the async forms and never blocking per statement.
  Result<RunOutcome> Run(const std::string& sql) { return client_.Run(sql); }

  /// Async Run: the future resolves when the statement is processed
  /// (for entangled queries, when the pending handle is registered).
  std::future<Result<RunOutcome>> RunAsync(const std::string& sql) {
    return client_.RunAsync(sql);
  }

  /// Regular statement convenience.
  Result<QueryResult> Execute(const std::string& sql) {
    return client_.Execute(sql);
  }

  /// Async regular statement convenience.
  std::future<Result<QueryResult>> ExecuteAsync(const std::string& sql) {
    return client_.ExecuteAsync(sql);
  }

  /// Entangled submission convenience; `on_complete` (optional) fires
  /// exactly once when the query reaches a terminal state.
  Result<EntangledHandle> Submit(
      const std::string& sql,
      Client::CompletionCallback on_complete = nullptr) {
    return client_.Submit(sql, std::move(on_complete));
  }

  /// Handles of this session's not-yet-answered entangled queries.
  /// Completed handles are pruned on each call.
  std::vector<EntangledHandle> Outstanding() {
    return client_.Outstanding();
  }

  /// Waits until every outstanding query completes or `timeout` passes.
  /// Returns OK when none remain pending.
  Status WaitForAll(std::chrono::milliseconds timeout) {
    return client_.WaitForAll(timeout);
  }

  /// Withdraws all of this session's pending queries.
  Status CancelAll() { return client_.CancelAll(); }

  /// The statements this session ran, in order.
  std::vector<std::string> History() const { return client_.History(); }

 private:
  Client client_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_SERVER_SESSION_H_
