#ifndef YOUTOPIA_SERVER_SESSION_H_
#define YOUTOPIA_SERVER_SESSION_H_

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "server/youtopia.h"

namespace youtopia {

/// A user session against a shared Youtopia instance — what each
/// middle-tier connection of the demo's web application holds. The
/// session carries the user identity (owner tag for entangled queries),
/// tracks the user's outstanding coordination handles, and records a
/// statement history for the admin interface.
///
/// Thread-compatible: one session per thread; the underlying Youtopia
/// instance is shared and thread-safe.
class Session {
 public:
  Session(Youtopia* db, std::string user)
      : db_(db), user_(std::move(user)) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& user() const { return user_; }

  /// Runs any statement; entangled queries are tagged with this
  /// session's user and their handles retained (see Outstanding).
  Result<RunOutcome> Run(const std::string& sql);

  /// Regular statement convenience.
  Result<QueryResult> Execute(const std::string& sql);

  /// Entangled submission convenience.
  Result<EntangledHandle> Submit(const std::string& sql);

  /// Handles of this session's not-yet-answered entangled queries.
  /// Completed handles are pruned on each call.
  std::vector<EntangledHandle> Outstanding();

  /// Waits until every outstanding query completes or `timeout` passes.
  /// Returns OK when none remain pending.
  Status WaitForAll(std::chrono::milliseconds timeout);

  /// Withdraws all of this session's pending queries.
  Status CancelAll();

  /// The statements this session ran, in order.
  std::vector<std::string> History() const;

 private:
  void Track(const EntangledHandle& handle);
  void Record(const std::string& sql);

  Youtopia* db_;
  std::string user_;
  mutable std::mutex mu_;
  std::vector<EntangledHandle> outstanding_;
  std::vector<std::string> history_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_SERVER_SESSION_H_
