#include "server/admin.h"

#include "common/string_util.h"

namespace youtopia {

std::string AdminSnapshot::ToString() const {
  std::string out;
  out += "================ Youtopia system state ================\n";
  out += "-- Tables --\n";
  for (const TableEntry& t : tables) {
    out += StringPrintf("  %-24s %6zu row(s)  %s", t.name.c_str(), t.rows,
                        t.schema.c_str());
    if (!t.indexed_columns.empty()) {
      out += "  [indexed: " + JoinStrings(t.indexed_columns, ", ") + "]";
    }
    out += StringPrintf("  [v%llu]",
                        static_cast<unsigned long long>(t.version));
    out += "\n";
  }
  out += "-- MVCC --\n";
  if (!mvcc.enabled) {
    out += "  disabled (mvcc.num_versions = 1)\n";
  } else {
    out += StringPrintf(
        "  num_versions=%zu clock=%llu watermark=%llu active_snapshots=%zu\n",
        mvcc.num_versions, static_cast<unsigned long long>(mvcc.clock),
        static_cast<unsigned long long>(mvcc.watermark),
        mvcc.active_snapshots);
  }
  out += "-- Pending entangled queries --\n";
  if (pending.empty()) out += "  (none)\n";
  for (const PendingQueryInfo& p : pending) {
    out += "  #" + std::to_string(p.id);
    if (!p.owner.empty()) out += " owner=" + p.owner;
    out += StringPrintf(" waiting=%.1fms",
                        static_cast<double>(p.age_micros) / 1000.0);
    out += "\n    sql: " + p.sql + "\n";
    // Indent the IR dump.
    for (const std::string& line : SplitString(p.ir, '\n')) {
      if (!line.empty()) out += "    " + line + "\n";
    }
  }
  out += "-- Coordination statistics --\n";
  out += StringPrintf(
      "  submitted=%zu matched=%zu groups=%zu cancelled=%zu "
      "failed_installs=%zu\n",
      stats.submitted, stats.matched_queries, stats.matched_groups,
      stats.cancelled, stats.failed_installs);
  out += StringPrintf(
      "  match_calls=%zu search_steps=%zu from_stored=%zu "
      "match_time_us=%llu\n",
      stats.match_calls, stats.search_steps_total,
      stats.constraints_from_stored,
      static_cast<unsigned long long>(stats.match_micros_total));
  out += StringPrintf(
      "  batches=%zu batched_queries=%zu callbacks_registered=%zu "
      "callbacks_fired=%zu\n",
      stats.batches, stats.batched_queries, stats.callbacks_registered,
      stats.callbacks_fired);
  out += StringPrintf("  shard_rounds=%zu global_rounds=%zu "
                      "cross_shard_queries=%zu\n",
                      stats.shard_rounds, stats.global_rounds,
                      stats.cross_shard_queries);
  out += "-- Coordinator shards --\n";
  for (const Coordinator::ShardInfo& s : shards) {
    out += StringPrintf(
        "  shard %zu: pending=%zu submitted=%zu matched=%zu groups=%zu "
        "rounds(local=%zu, global=%zu) cross_shard=%zu\n",
        s.shard, s.pending, s.stats.submitted, s.stats.matched_queries,
        s.stats.matched_groups, s.stats.shard_rounds, s.stats.global_rounds,
        s.stats.cross_shard_queries);
  }
  out += "-- Executor service --\n";
  out += StringPrintf(
      "  workers=%zu queue_depth=%zu (peak=%zu, executing=%zu)\n",
      executor.workers, executor.queue_depth, executor.peak_queue_depth,
      executor.executing);
  out += StringPrintf(
      "  submitted=%zu executed=%zu lock_requeues=%zu entangled_parked=%zu "
      "rejected=%zu utilization=%.1f%%\n",
      executor.submitted, executor.executed, executor.lock_requeues,
      executor.entangled_parked, executor.rejected,
      executor.WorkerUtilization() * 100.0);
  out += "-- Plan cache --\n";
  if (plan_cache.capacity == 0) {
    out += "  disabled (plan_cache.capacity = 0)\n";
  } else {
    out += StringPrintf(
        "  size=%zu/%zu hits=%zu misses=%zu (hit_rate=%.1f%%) "
        "evictions=%zu invalidations=%zu\n",
        plan_cache.size, plan_cache.capacity, plan_cache.hits,
        plan_cache.misses, plan_cache.HitRate() * 100.0,
        plan_cache.evictions, plan_cache.invalidations);
  }
  out += "-- WAL --\n";
  if (!wal_enabled) {
    out += "  disabled (wal.enabled = false)\n";
  } else {
    out += StringPrintf(
        "  records=%zu bytes=%llu syncs=%zu fsyncs=%zu\n",
        wal.records_appended,
        static_cast<unsigned long long>(wal.bytes_appended), wal.syncs,
        wal.fsyncs);
    out += StringPrintf(
        "  group_commit_batches=%zu batch_records(mean=%.1f, max=%llu)\n",
        wal.group_commit_batches, wal.batch_records.mean(),
        static_cast<unsigned long long>(wal.batch_records.count() > 0
                                            ? wal.batch_records.max()
                                            : 0));
    out += StringPrintf(
        "  checkpoints=%zu segments(created=%zu, deleted=%zu)\n",
        wal.checkpoints, wal.segments_created, wal.segments_deleted);
    out += StringPrintf(
        "  recovery: records_replayed=%zu time_us=%llu\n",
        wal.recovered_records,
        static_cast<unsigned long long>(wal.recovery_micros));
  }
  out += "-- Match graph --\n";
  out += match_graph;
  out += "=======================================================\n";
  return out;
}

AdminSnapshot TakeAdminSnapshot(const Youtopia& db) {
  AdminSnapshot snapshot;
  const StorageEngine& storage = db.storage();
  for (const TableInfo& info : storage.catalog().ListTables()) {
    AdminSnapshot::TableEntry entry;
    entry.name = info.name;
    entry.schema = info.schema.ToString();
    auto size = storage.TableSize(info.name);
    entry.rows = size.ok() ? size.value() : 0;
    for (size_t col : info.indexed_columns) {
      entry.indexed_columns.push_back(info.schema.column(col).name);
    }
    entry.version = info.version;
    snapshot.tables.push_back(std::move(entry));
  }
  snapshot.mvcc.enabled = storage.mvcc_enabled();
  snapshot.mvcc.num_versions = storage.num_versions();
  snapshot.mvcc.clock = storage.mvcc().clock();
  snapshot.mvcc.watermark = storage.mvcc().watermark();
  snapshot.mvcc.active_snapshots = storage.mvcc().active_snapshots();
  snapshot.pending = db.coordinator().Pending();
  snapshot.stats = db.coordinator().stats();
  snapshot.shards = db.coordinator().ShardInfos();
  snapshot.executor = db.executor_service().stats();
  snapshot.plan_cache = db.plan_cache().stats();
  if (db.wal() != nullptr) {
    snapshot.wal_enabled = true;
    snapshot.wal = db.wal()->stats();
  }
  snapshot.match_graph = db.coordinator().RenderGraph();
  return snapshot;
}

}  // namespace youtopia
