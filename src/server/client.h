#ifndef YOUTOPIA_SERVER_CLIENT_H_
#define YOUTOPIA_SERVER_CLIENT_H_

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "server/client_interface.h"
#include "server/youtopia.h"
#include "service/executor_service.h"

namespace youtopia {

/// Per-client configuration for the `Client` façade.
struct ClientOptions {
  ClientOptions() = default;
  /// Shorthand for the common case: an owner-tagged client, optionally
  /// without history (long-lived shared clients, benchmarks).
  explicit ClientOptions(std::string owner_tag, bool record = true)
      : owner(std::move(owner_tag)), record_history(record) {}

  /// Default owner tag attached to entangled submissions — what the
  /// admin interface and notifications display. Overridable per call
  /// via the *As variants.
  std::string owner;

  /// Upper bound on automatic retries of regular statements that lose
  /// lock conflicts (kTimedOut from the lock manager). Zero means no
  /// caller-requested retries, surfacing the conflict — the seed's
  /// behavior. Non-zero absorbs transient conflicts the way a driver's
  /// statement timeout does. Carried into every `StatementTask` this
  /// client submits, so the executor service paces its conflict
  /// requeues by the same budget.
  std::chrono::milliseconds statement_timeout{0};

  /// Initial pause between lock-conflict retries. Each retry doubles
  /// the pause (exponential backoff, capped at the larger of this and
  /// retry_max_interval, and at the time left until the statement
  /// deadline), so a long conflict is waited out instead of hammered.
  /// Non-positive values are treated as 1ms — the retry loop never
  /// busy-spins on the clock.
  std::chrono::milliseconds retry_interval{1};

  /// Upper bound on the exponential backoff pause. Never clamps below
  /// retry_interval: the configured initial pause is the minimum
  /// pacing.
  std::chrono::milliseconds retry_max_interval{64};

  /// Record statement history for the admin interface.
  bool record_history = true;
};

/// The pause the client sleeps before its (completed_attempts+1)-th
/// lock-conflict retry: retry_interval doubled per completed retry,
/// clamped to [max(retry_interval, 1ms), max(retry_max_interval,
/// retry_interval, 1ms)]. The 1ms floor is what keeps a zero
/// retry_interval from degenerating into a busy spin on
/// steady_clock::now(). A thin wrapper over `ExponentialBackoff`
/// (common/backoff.h) — the executor service's conflict requeues run
/// the identical schedule. Exposed so tests (and middle tiers that
/// mirror the client's pacing) can check the schedule without racing
/// clocks.
std::chrono::milliseconds LockRetryPause(const ClientOptions& options,
                                         size_t completed_attempts);

/// The stable public façade over an embedded `Youtopia` instance — the
/// API every external caller (middle tiers, examples, benchmarks,
/// future network frontends) programs against. One `Client` per logical
/// connection; the underlying `Youtopia` is shared and thread-safe,
/// the `Client` itself is thread-safe for tracking but intended to be
/// driven like a connection: one logical caller at a time.
///
/// Execute / Run / ExecuteScript (and their async forms) flow through
/// the engine's `ExecutorService` as `StatementTask`s tagged with this
/// client's session id, so those statements execute in submission
/// order while different clients' statements run in parallel across
/// the pool. The synchronous methods are thin blocking wrappers over
/// the async ones; with the default pool size of zero they execute
/// inline in the calling thread — the seed's synchronous semantics.
/// `Submit`/`SubmitBatch` are different: they register with the
/// coordinator immediately (non-blocking, no queueing), so they are
/// NOT ordered relative to still-queued async statements of the same
/// client — an entangled submission that must observe a prior
/// `ExecuteAsync` write should go through `RunAsync` (same FIFO
/// domain) instead.
///
/// Entangled submissions are non-blocking: they return an
/// `EntangledHandle` immediately, and completion is consumed either by
/// blocking (`handle.Wait`) or — the scalable form — by registering an
/// `OnComplete` callback at submission time, so no caller thread parks
/// per outstanding query.
class Client : public ClientInterface {
 public:
  using CompletionCallback = EntangledHandle::CompletionCallback;

  explicit Client(Youtopia* db, ClientOptions options = {})
      : db_(db), options_(std::move(options)) {}

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  const ClientOptions& options() const { return options_; }
  const std::string& owner() const override { return options_.owner; }
  Youtopia& db() { return *db_; }
  const Youtopia& db() const { return *db_; }

  /// This client's FIFO domain in the executor service.
  uint64_t session_id() const { return session_id_; }

  /// Executes one *regular* statement, retrying lock conflicts up to
  /// the statement timeout. Entangled statements are rejected with
  /// InvalidArgument (use Submit / SubmitBatch / Run).
  Result<QueryResult> Execute(const std::string& sql) override;

  /// Async Execute: enqueues the statement on the executor service and
  /// returns a future for its result. The calling thread is free as
  /// soon as the task is admitted (backpressure: admission blocks while
  /// the submission queue is full).
  std::future<Result<QueryResult>> ExecuteAsync(const std::string& sql) override;

  /// Executes a ';'-separated batch of regular statements, discarding
  /// results (schema/data setup scripts). First failure stops the
  /// script: earlier statements stay applied, later ones never run.
  Status ExecuteScript(const std::string& sql) override;

  /// Async ExecuteScript; the whole script is one task, so it holds the
  /// session's FIFO slot until it completes or fails.
  std::future<Status> ExecuteScriptAsync(const std::string& sql) override;

  /// Submits one *entangled* query tagged with the client's owner.
  /// `on_complete` (optional) is registered on the handle before
  /// returning, so a completion can never slip between submission and
  /// registration.
  Result<EntangledHandle> Submit(
      const std::string& sql, CompletionCallback on_complete = nullptr) override;

  /// Submit with an explicit owner tag (middle tiers acting for many
  /// end users share one client).
  Result<EntangledHandle> SubmitAs(
      const std::string& owner, const std::string& sql,
      CompletionCallback on_complete = nullptr) override;

  /// Submits a batch of entangled queries in one coordinator round —
  /// the group-submission path (friends booking together). All handles
  /// are returned in statement order; `on_complete` (optional) is
  /// registered on every handle. All-or-nothing: a statement that fails
  /// to parse or normalize rejects the whole batch before anything is
  /// registered.
  Result<std::vector<EntangledHandle>> SubmitBatch(
      const std::vector<std::string>& statements,
      CompletionCallback on_complete = nullptr) override;

  /// SubmitBatch with per-statement owner tags (`owners` empty = the
  /// client's owner for all; otherwise must match `statements` size).
  Result<std::vector<EntangledHandle>> SubmitBatchAs(
      const std::vector<std::string>& owners,
      const std::vector<std::string>& statements,
      CompletionCallback on_complete = nullptr) override;

  /// Runs any single statement, auto-detecting entangled queries.
  /// Entangled handles are tagged with the client's owner and tracked.
  Result<RunOutcome> Run(const std::string& sql) override;

  /// Async Run. The future resolves when the statement is processed:
  /// for a regular statement with its result, for an entangled one as
  /// soon as it is registered (the outcome carries the pending handle —
  /// consume completion via handle.Wait or handle.OnComplete, exactly
  /// as with the synchronous Run).
  std::future<Result<RunOutcome>> RunAsync(const std::string& sql) override;

  /// Handles of this client's not-yet-answered entangled queries.
  /// Completed handles are pruned on each call.
  std::vector<EntangledHandle> Outstanding() override;

  // WaitForAll: ClientInterface's default (Outstanding + Wait) applies.

  /// Withdraws all of this client's pending queries.
  Status CancelAll() override;

  /// The statements this client ran, in order (when recording is on).
  std::vector<std::string> History() const;

 private:
  /// Outstanding-handle tracking, shared (via shared_ptr) with
  /// in-flight async continuations so a continuation that runs after
  /// the Client is destroyed touches valid memory and is simply
  /// tracking for nobody.
  struct OutstandingSet {
    /// Rank kClient: Snapshot/Prune call EntangledHandle::Done(), which
    /// takes the handle-state mutex — so this orders before it.
    Mutex mu{LockRank::kClient, "client_outstanding"};
    std::vector<EntangledHandle> handles GUARDED_BY(mu);
    size_t prune_watermark GUARDED_BY(mu) = 16;

    /// Drops completed handles once the set crosses the watermark
    /// (amortized O(1) per Track).
    void PruneLocked() REQUIRES(mu);
    void Track(const EntangledHandle& handle);
    void TrackAll(const std::vector<EntangledHandle>& handles);
    /// Prunes and returns the still-pending handles.
    std::vector<EntangledHandle> Snapshot();
  };

  /// A StatementTask carrying this client's session, owner and retry
  /// policy.
  StatementTask MakeTask(StatementTask::Kind kind, const std::string& sql);

  void Record(const std::string& sql);

  Youtopia* db_;
  ClientOptions options_;
  const uint64_t session_id_ = ExecutorService::AllocateSessionId();
  std::shared_ptr<OutstandingSet> outstanding_ =
      std::make_shared<OutstandingSet>();
  mutable Mutex mu_{LockRank::kClient, "client_history"};
  std::vector<std::string> history_ GUARDED_BY(mu_);
};

}  // namespace youtopia

#endif  // YOUTOPIA_SERVER_CLIENT_H_
