#ifndef YOUTOPIA_SERVER_METRICS_H_
#define YOUTOPIA_SERVER_METRICS_H_

#include <string>

#include "server/youtopia.h"

namespace youtopia {

/// Appends the engine's counters to `out` in Prometheus text-exposition
/// format (`# TYPE` lines plus `name value`): executor-service queue
/// depth and shed/rejected counts, coordinator counters, plan-cache
/// hit/miss/eviction counts, WAL append/fsync/checkpoint counts, and
/// MVCC state. This is the admin snapshot made machine-readable — the
/// net layer adds its own request/latency series on top and serves the
/// whole page through the metrics endpoint.
void AppendEngineMetrics(const Youtopia& db, std::string* out);

/// One "# TYPE" header plus one sample, e.g.
/// `youtopia_executor_shed_total 42`.
void AppendMetric(const std::string& name, const std::string& type,
                  double value, std::string* out);

}  // namespace youtopia

#endif  // YOUTOPIA_SERVER_METRICS_H_
