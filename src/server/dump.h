#ifndef YOUTOPIA_SERVER_DUMP_H_
#define YOUTOPIA_SERVER_DUMP_H_

#include <string>

#include "common/status.h"
#include "server/youtopia.h"

namespace youtopia {

/// Serializes the whole database (schemas, indexes, rows — including
/// answer relations, which are ordinary tables) to a ';'-separated SQL
/// script that `Youtopia::ExecuteScript` restores. Pending entangled
/// queries are *not* part of the dump: they are session state, and their
/// handles cannot outlive the process.
///
/// This is the portable export path (human-readable, cross-version).
/// Crash durability is the WAL's job (DESIGN.md #8): its binary
/// checkpoints also carry pending coordinations and exact RowIds,
/// which a SQL script cannot express.
Result<std::string> DumpToScript(const Youtopia& db);

/// Restores a dump into an empty Youtopia instance.
Status RestoreFromScript(Youtopia* db, const std::string& script);

}  // namespace youtopia

#endif  // YOUTOPIA_SERVER_DUMP_H_
