#include "server/client.h"

#include <algorithm>
#include <thread>

namespace youtopia {

void Client::Record(const std::string& sql) {
  if (!options_.record_history) return;
  std::lock_guard<std::mutex> lock(mu_);
  history_.push_back(sql);
}

void Client::PruneLocked() {
  // Amortized prune: long-lived shared clients (middle tiers, load
  // drivers) submit unboundedly many queries, so retained handles must
  // track what is genuinely outstanding, not total submissions.
  if (outstanding_.size() < prune_watermark_) return;
  outstanding_.erase(
      std::remove_if(outstanding_.begin(), outstanding_.end(),
                     [](const EntangledHandle& h) { return h.Done(); }),
      outstanding_.end());
  prune_watermark_ = std::max<size_t>(16, outstanding_.size() * 2);
}

void Client::Track(const EntangledHandle& handle) {
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked();
  outstanding_.push_back(handle);
}

void Client::TrackAll(const std::vector<EntangledHandle>& handles) {
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked();
  for (const EntangledHandle& handle : handles) {
    if (!handle.Done()) outstanding_.push_back(handle);
  }
}

std::chrono::milliseconds LockRetryPause(const ClientOptions& options,
                                         size_t completed_attempts) {
  const auto pause =
      std::max(options.retry_interval, std::chrono::milliseconds(1));
  // The cap never clamps below the configured initial interval: a
  // caller asking for 500ms between retries gets at least 500ms even
  // with a smaller retry_max_interval.
  const auto cap = std::max(options.retry_max_interval, pause);
  auto backoff = pause;
  for (size_t i = 0; i < completed_attempts && backoff < cap; ++i) {
    backoff *= 2;
  }
  return std::min(backoff, cap);
}

namespace {

/// Continues retrying after `result` failed with a lock conflict
/// (kTimedOut), backing off per LockRetryPause between attempts and
/// never sleeping past the statement deadline.
template <typename T, typename Fn>
Result<T> RetryAfterLockTimeout(const ClientOptions& options, Result<T> result,
                                Fn attempt) {
  if (options.statement_timeout.count() <= 0) return result;
  const auto deadline =
      std::chrono::steady_clock::now() + options.statement_timeout;
  size_t attempts = 0;
  while (!result.ok() && result.status().code() == StatusCode::kTimedOut) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::this_thread::sleep_for(
        std::min(LockRetryPause(options, attempts), remaining));
    ++attempts;
    result = attempt();
  }
  return result;
}

/// Runs `attempt` and, when the statement timeout is set, retries
/// lock-conflict failures with exponential backoff until the deadline.
template <typename T, typename Fn>
Result<T> RetryOnLockTimeout(const ClientOptions& options, Fn attempt) {
  Result<T> result = attempt();
  return RetryAfterLockTimeout<T>(options, std::move(result), attempt);
}

}  // namespace

Result<QueryResult> Client::Execute(const std::string& sql) {
  Record(sql);
  return RetryOnLockTimeout<QueryResult>(
      options_, [&] { return db_->Execute(sql); });
}

Status Client::ExecuteScript(const std::string& sql) {
  Record(sql);
  return db_->ExecuteScript(sql);
}

Result<EntangledHandle> Client::Submit(const std::string& sql,
                                       CompletionCallback on_complete) {
  return SubmitAs(options_.owner, sql, std::move(on_complete));
}

Result<EntangledHandle> Client::SubmitAs(const std::string& owner,
                                         const std::string& sql,
                                         CompletionCallback on_complete) {
  Record(sql);
  auto handle = db_->Submit(sql, owner);
  if (!handle.ok()) return handle;
  if (on_complete) handle->OnComplete(std::move(on_complete));
  if (!handle->Done()) Track(*handle);
  return handle;
}

Result<std::vector<EntangledHandle>> Client::SubmitBatch(
    const std::vector<std::string>& statements,
    CompletionCallback on_complete) {
  return SubmitBatchAs({}, statements, std::move(on_complete));
}

Result<std::vector<EntangledHandle>> Client::SubmitBatchAs(
    const std::vector<std::string>& owners,
    const std::vector<std::string>& statements,
    CompletionCallback on_complete) {
  // owners/statements size mismatch is rejected by Youtopia::SubmitBatch.
  for (const std::string& sql : statements) Record(sql);
  std::vector<std::string> tags;
  if (owners.empty()) {
    tags.assign(statements.size(), options_.owner);
  } else {
    tags = owners;
  }
  auto handles = db_->SubmitBatch(statements, tags);
  if (!handles.ok()) return handles;
  // Register callbacks immediately: completions that already happened
  // inside the batch round fire right here, later ones fire from the
  // completing thread.
  if (on_complete) {
    for (EntangledHandle& handle : *handles) handle.OnComplete(on_complete);
  }
  TrackAll(*handles);
  return handles;
}

namespace {

/// True when `sql` parses as an entangled SELECT. Used to decide
/// whether a timed-out Run may be re-issued: a regular statement that
/// lost a lock conflict is side-effect free on failure, while an
/// entangled submission must never be blindly re-submitted.
bool IsEntangledStatement(const std::string& sql) {
  auto stmt = Parser::ParseStatement(sql);
  return stmt.ok() && stmt.value()->kind == StatementKind::kSelect &&
         static_cast<const SelectStatement&>(*stmt.value()).IsEntangled();
}

}  // namespace

Result<RunOutcome> Client::Run(const std::string& sql) {
  Record(sql);
  auto outcome = db_->Run(sql, options_.owner);
  // Regular statements get the same lock-conflict retry as Execute; an
  // entangled submission must never be blindly re-issued. The failed
  // first attempt enters the backoff loop directly — no immediate
  // second attempt without a pause.
  if (!outcome.ok() && outcome.status().code() == StatusCode::kTimedOut &&
      options_.statement_timeout.count() > 0 && !IsEntangledStatement(sql)) {
    outcome = RetryAfterLockTimeout<RunOutcome>(
        options_, std::move(outcome),
        [&] { return db_->Run(sql, options_.owner); });
  }
  if (outcome.ok() && outcome->entangled && outcome->handle.has_value() &&
      !outcome->handle->Done()) {
    Track(*outcome->handle);
  }
  return outcome;
}

std::vector<EntangledHandle> Client::Outstanding() {
  std::lock_guard<std::mutex> lock(mu_);
  outstanding_.erase(
      std::remove_if(outstanding_.begin(), outstanding_.end(),
                     [](const EntangledHandle& h) { return h.Done(); }),
      outstanding_.end());
  return outstanding_;
}

Status Client::WaitForAll(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (const EntangledHandle& handle : Outstanding()) {
    const auto now = std::chrono::steady_clock::now();
    const auto remaining =
        now >= deadline
            ? std::chrono::milliseconds(0)
            : std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - now);
    Status status = handle.Wait(remaining);
    if (!status.ok() && status.code() == StatusCode::kTimedOut) {
      return status;
    }
  }
  return Status::OK();
}

Status Client::CancelAll() {
  for (const EntangledHandle& handle : Outstanding()) {
    Status status = db_->coordinator().Cancel(handle.id());
    // NotFound just means it completed concurrently.
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }
  return Status::OK();
}

std::vector<std::string> Client::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

}  // namespace youtopia
