#include "server/client.h"

#include <algorithm>

#include "common/backoff.h"

namespace youtopia {

void Client::Record(const std::string& sql) {
  if (!options_.record_history) return;
  MutexLock lock(mu_);
  history_.push_back(sql);
}

void Client::OutstandingSet::PruneLocked() {
  // Amortized prune: long-lived shared clients (middle tiers, load
  // drivers) submit unboundedly many queries, so retained handles must
  // track what is genuinely outstanding, not total submissions.
  if (handles.size() < prune_watermark) return;
  handles.erase(
      std::remove_if(handles.begin(), handles.end(),
                     [](const EntangledHandle& h) { return h.Done(); }),
      handles.end());
  prune_watermark = std::max<size_t>(16, handles.size() * 2);
}

void Client::OutstandingSet::Track(const EntangledHandle& handle) {
  MutexLock lock(mu);
  PruneLocked();
  handles.push_back(handle);
}

void Client::OutstandingSet::TrackAll(
    const std::vector<EntangledHandle>& tracked) {
  MutexLock lock(mu);
  PruneLocked();
  for (const EntangledHandle& handle : tracked) {
    if (!handle.Done()) handles.push_back(handle);
  }
}

std::vector<EntangledHandle> Client::OutstandingSet::Snapshot() {
  MutexLock lock(mu);
  handles.erase(
      std::remove_if(handles.begin(), handles.end(),
                     [](const EntangledHandle& h) { return h.Done(); }),
      handles.end());
  return handles;
}

std::chrono::milliseconds LockRetryPause(const ClientOptions& options,
                                         size_t completed_attempts) {
  return ExponentialBackoff(options.retry_interval, options.retry_max_interval,
                            completed_attempts);
}

StatementTask Client::MakeTask(StatementTask::Kind kind,
                               const std::string& sql) {
  StatementTask task;
  task.sql = sql;
  task.owner = options_.owner;
  task.session = session_id_;
  task.kind = kind;
  task.statement_timeout = options_.statement_timeout;
  task.retry_interval = options_.retry_interval;
  task.retry_max_interval = options_.retry_max_interval;
  return task;
}

std::future<Result<QueryResult>> Client::ExecuteAsync(const std::string& sql) {
  Record(sql);
  auto promise = std::make_shared<std::promise<Result<QueryResult>>>();
  auto future = promise->get_future();
  StatementTask task = MakeTask(StatementTask::Kind::kExecute, sql);
  task.on_done = [promise](Result<RunOutcome> outcome) {
    if (!outcome.ok()) {
      promise->set_value(Result<QueryResult>(outcome.status()));
    } else {
      promise->set_value(Result<QueryResult>(std::move(outcome->result)));
    }
  };
  Status admitted = db_->executor_service().Submit(std::move(task));
  if (!admitted.ok()) promise->set_value(Result<QueryResult>(admitted));
  return future;
}

Result<QueryResult> Client::Execute(const std::string& sql) {
  return ExecuteAsync(sql).get();
}

std::future<Status> Client::ExecuteScriptAsync(const std::string& sql) {
  Record(sql);
  auto promise = std::make_shared<std::promise<Status>>();
  auto future = promise->get_future();
  StatementTask task = MakeTask(StatementTask::Kind::kScript, sql);
  task.on_done = [promise](Result<RunOutcome> outcome) {
    promise->set_value(outcome.status());
  };
  Status admitted = db_->executor_service().Submit(std::move(task));
  if (!admitted.ok()) promise->set_value(admitted);
  return future;
}

Status Client::ExecuteScript(const std::string& sql) {
  return ExecuteScriptAsync(sql).get();
}

Result<EntangledHandle> Client::Submit(const std::string& sql,
                                       CompletionCallback on_complete) {
  return SubmitAs(options_.owner, sql, std::move(on_complete));
}

Result<EntangledHandle> Client::SubmitAs(const std::string& owner,
                                         const std::string& sql,
                                         CompletionCallback on_complete) {
  Record(sql);
  auto handle = db_->Submit(sql, owner);
  if (!handle.ok()) return handle;
  if (on_complete) handle->OnComplete(std::move(on_complete));
  if (!handle->Done()) outstanding_->Track(*handle);
  return handle;
}

Result<std::vector<EntangledHandle>> Client::SubmitBatch(
    const std::vector<std::string>& statements,
    CompletionCallback on_complete) {
  return SubmitBatchAs({}, statements, std::move(on_complete));
}

Result<std::vector<EntangledHandle>> Client::SubmitBatchAs(
    const std::vector<std::string>& owners,
    const std::vector<std::string>& statements,
    CompletionCallback on_complete) {
  // owners/statements size mismatch is rejected by Youtopia::SubmitBatch.
  for (const std::string& sql : statements) Record(sql);
  std::vector<std::string> tags;
  if (owners.empty()) {
    tags.assign(statements.size(), options_.owner);
  } else {
    tags = owners;
  }
  auto handles = db_->SubmitBatch(statements, tags);
  if (!handles.ok()) return handles;
  // Register callbacks immediately: completions that already happened
  // inside the batch round fire right here, later ones fire from the
  // completing thread.
  if (on_complete) {
    for (EntangledHandle& handle : *handles) handle.OnComplete(on_complete);
  }
  outstanding_->TrackAll(*handles);
  return handles;
}

std::future<Result<RunOutcome>> Client::RunAsync(const std::string& sql) {
  Record(sql);
  auto promise = std::make_shared<std::promise<Result<RunOutcome>>>();
  auto future = promise->get_future();
  StatementTask task = MakeTask(StatementTask::Kind::kRun, sql);
  // The continuation shares the tracking set (not `this`), so a
  // Client destroyed while tasks are still in flight is safe.
  auto outstanding = outstanding_;
  task.on_done = [outstanding, promise](Result<RunOutcome> outcome) {
    // Track before resolving the future, so Outstanding() already sees
    // the handle when the caller's .get() returns.
    if (outcome.ok() && outcome->entangled && outcome->handle.has_value() &&
        !outcome->handle->Done()) {
      outstanding->Track(*outcome->handle);
    }
    promise->set_value(std::move(outcome));
  };
  Status admitted = db_->executor_service().Submit(std::move(task));
  if (!admitted.ok()) promise->set_value(Result<RunOutcome>(admitted));
  return future;
}

Result<RunOutcome> Client::Run(const std::string& sql) {
  return RunAsync(sql).get();
}

std::vector<EntangledHandle> Client::Outstanding() {
  return outstanding_->Snapshot();
}

Status Client::CancelAll() {
  for (const EntangledHandle& handle : Outstanding()) {
    Status status = db_->coordinator().Cancel(handle.id());
    // NotFound just means it completed concurrently.
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }
  return Status::OK();
}

std::vector<std::string> Client::History() const {
  MutexLock lock(mu_);
  return history_;
}

}  // namespace youtopia
