#ifndef YOUTOPIA_SERVER_ADMIN_H_
#define YOUTOPIA_SERVER_ADMIN_H_

#include <string>
#include <vector>

#include "server/youtopia.h"
#include "service/executor_service.h"

namespace youtopia {

/// A point-in-time view of the system internals — the backend of the
/// demo's administrative ("debugging") interface (paper §3.2): tables,
/// pending entangled queries with their IR, coordination statistics, and
/// the match-graph visualization.
struct AdminSnapshot {
  struct TableEntry {
    std::string name;
    std::string schema;
    size_t rows = 0;
    std::vector<std::string> indexed_columns;
    /// Per-table schema-generation stamp — the counter the plan cache
    /// compares, so the version split is visible per relation.
    uint64_t version = 0;
  };

  /// MVCC state (design decision #10); meaningful when `mvcc_enabled`.
  struct MvccEntry {
    bool enabled = false;
    size_t num_versions = 1;
    uint64_t clock = 0;
    uint64_t watermark = 0;
    size_t active_snapshots = 0;
  };

  std::vector<TableEntry> tables;
  MvccEntry mvcc;
  std::vector<PendingQueryInfo> pending;
  CoordinatorStats stats;
  /// Per-shard breakdown of the coordinator's pending pool and
  /// counters; the shard-attributable counters sum to `stats`.
  std::vector<Coordinator::ShardInfo> shards;
  /// Executor-service counters: queue depth, tasks executed, conflict
  /// requeues, worker utilization.
  ExecutorService::Stats executor;
  /// Plan-cache counters: hits, misses, LRU evictions, catalog-version
  /// invalidations, occupancy.
  PlanCache::Stats plan_cache;
  /// WAL counters: appends, group-commit batching, fsyncs, checkpoints
  /// and the last recovery's replay work. `wal_enabled` false means the
  /// durability subsystem is off (the seed's in-memory semantics).
  bool wal_enabled = false;
  wal::WalStats wal;
  std::string match_graph;

  /// Full multi-section text rendering for the admin console.
  std::string ToString() const;
};

/// Captures the current state of `db`.
AdminSnapshot TakeAdminSnapshot(const Youtopia& db);

}  // namespace youtopia

#endif  // YOUTOPIA_SERVER_ADMIN_H_
