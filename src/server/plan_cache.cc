#include "server/plan_cache.h"

namespace youtopia {

PreparedStatementPtr PlanCache::Lookup(const std::string& key,
                                       uint64_t catalog_version) {
  if (!enabled()) return nullptr;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->catalog_version != catalog_version) {
    // Stale: the catalog changed since this plan was built. Discard
    // lazily here rather than sweeping on every DDL — DDL is rare and
    // must not pay O(cache).
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key, PreparedStatementPtr plan,
                       uint64_t catalog_version) {
  if (!enabled() || plan == nullptr) return;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Replace in place (a concurrent preparer of the same statement or
    // a fresher plan after DDL); keeps the entry's LRU position hot.
    it->second->plan = std::move(plan);
    it->second->catalog_version = catalog_version;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan), catalog_version});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mu_);
  Stats snapshot = stats_;
  snapshot.size = lru_.size();
  snapshot.capacity = capacity_;
  return snapshot;
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

std::string PlanCache::NormalizeKey(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (in_string) {
      out.push_back(c);
      // The lexer escapes a quote inside a literal as ''; both bytes
      // stay inside the string state.
      if (c == '\'') {
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          out.push_back(sql[++i]);
        } else {
          in_string = false;
        }
      }
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
        c == '\v') {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
    if (c == '\'') in_string = true;
  }
  // One statement-terminating ';' is syntax-neutral for ParseStatement.
  if (!out.empty() && out.back() == ';') out.pop_back();
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace youtopia
