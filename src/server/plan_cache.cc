#include "server/plan_cache.h"

namespace youtopia {

PreparedStatementPtr PlanCache::Lookup(const std::string& key,
                                       const Catalog& catalog) {
  if (!enabled()) return nullptr;
  PreparedStatementPtr candidate;
  {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    candidate = it->second->plan;
  }
  // The freshness check reads the catalog, whose mutex ranks *below*
  // this cache's (kCatalog 140 < kPlanCache 170) — so it runs between
  // the two critical sections, never under mu_. The entry is re-looked-
  // up afterwards and touched only if it is still the same plan (a
  // concurrent replace keeps its own, fresher stamps).
  if (PreparedStatementFresh(*candidate, catalog)) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end() && it->second->plan == candidate) {
      lru_.splice(lru_.begin(), lru_, it->second);
    }
    ++stats_.hits;
    return candidate;
  }
  // Stale: a referenced table changed since this plan was built.
  // Discard lazily here rather than sweeping on every DDL — DDL is
  // rare and must not pay O(cache).
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end() && it->second->plan == candidate) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  ++stats_.invalidations;
  ++stats_.misses;
  return nullptr;
}

void PlanCache::Insert(const std::string& key, PreparedStatementPtr plan) {
  if (!enabled() || plan == nullptr) return;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Replace in place (a concurrent preparer of the same statement or
    // a fresher plan after DDL); keeps the entry's LRU position hot.
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mu_);
  Stats snapshot = stats_;
  snapshot.size = lru_.size();
  snapshot.capacity = capacity_;
  return snapshot;
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

std::string PlanCache::NormalizeKey(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (in_string) {
      out.push_back(c);
      // The lexer escapes a quote inside a literal as ''; both bytes
      // stay inside the string state.
      if (c == '\'') {
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          out.push_back(sql[++i]);
        } else {
          in_string = false;
        }
      }
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
        c == '\v') {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
    if (c == '\'') in_string = true;
  }
  // One statement-terminating ';' is syntax-neutral for ParseStatement.
  if (!out.empty() && out.back() == ';') out.pop_back();
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace youtopia
