#ifndef YOUTOPIA_SERVER_PLAN_CACHE_H_
#define YOUTOPIA_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"

namespace youtopia {

class Catalog;
struct PreparedStatement;

/// True iff every table-version stamp `prepared` recorded when planning
/// started still matches the live catalog — the plan's bindings and
/// index choices are current. Relation-granular: DDL on an unrelated
/// table does not stale this plan. A statement with no table references
/// (constant SELECT) is always fresh. Defined in youtopia.cc, next to
/// the stamping code it mirrors.
bool PreparedStatementFresh(const PreparedStatement& prepared,
                            const Catalog& catalog);

/// A fully prepared (parsed + planned) statement, shared immutably: the
/// plan cache, every executing thread and every requeued task hold the
/// same object. Nothing behind this pointer mutates after construction
/// — per-execution state (ExecContext, lock bookkeeping, conflict
/// budgets) lives with the execution, never in the plan.
using PreparedStatementPtr = std::shared_ptr<const PreparedStatement>;

/// Configuration of the shared plan cache (YoutopiaConfig::plan_cache).
struct PlanCacheConfig {
  /// Maximum number of cached plans; least-recently-used entries are
  /// evicted beyond it. 0 disables the cache entirely — every statement
  /// is re-parsed and re-planned per submission, the seed's behavior.
  size_t capacity = 256;
};

/// Shared, thread-safe LRU cache of prepared statements, keyed by
/// normalized SQL text (design decision #7). One instance per Youtopia
/// engine sits under `Prepare`, so all three submission surfaces — the
/// in-process Client, executor-service worker tasks (including per-step
/// script prepares) and wire-protocol sessions — share hot plans.
///
/// Invalidation is table-version-based and lazy: every entry carries
/// the per-table version stamps recorded when planning *started*
/// (inside the PreparedStatement itself), and a lookup re-checks them
/// against the live catalog — a mismatch on any referenced table
/// discards the entry (a plan may depend on schema bindings and index
/// choices, both catalog state). Relation-granular: DDL on table A
/// leaves table B's plans warm. Stamping before planning makes a
/// concurrent DDL race safe in the stale direction only: the worst
/// case is an entry that is discarded although it happens to still be
/// valid, never a stale plan served as fresh.
class PlanCache {
 public:
  /// Counters for the admin snapshot and the workload report.
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    /// Entries displaced by capacity (LRU).
    size_t evictions = 0;
    /// Entries discarded on lookup because a referenced table's version
    /// stamp was stale (DDL on that table, or install-hook registration
    /// — which restamps every table — since planning).
    size_t invalidations = 0;
    size_t size = 0;
    size_t capacity = 0;

    double HitRate() const {
      const size_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Capacity 0 = disabled: lookups always miss, inserts are dropped,
  /// counters stay zero — byte-for-byte seed semantics.
  bool enabled() const { return capacity_ > 0; }

  /// Returns the cached plan for `key` if present and still fresh
  /// against `catalog` (PreparedStatementFresh over the entry's
  /// per-table stamps); nullptr otherwise. A stale entry is erased
  /// (counted as an invalidation, not a plain miss).
  PreparedStatementPtr Lookup(const std::string& key, const Catalog& catalog);

  /// Inserts (or replaces) the plan under `key`, evicting the least-
  /// recently-used entry beyond capacity. The freshness stamps travel
  /// inside the PreparedStatement itself. Failed prepares are never
  /// inserted by callers.
  void Insert(const std::string& key, PreparedStatementPtr plan);

  /// Drops every entry (tests, manual admin reset).
  void Clear();

  Stats stats() const;
  size_t size() const;

  /// The cache key for a SQL text: ASCII whitespace runs collapsed to
  /// one space (single-quoted literals preserved verbatim), ends
  /// trimmed, one trailing ';' dropped. Cheaper than lexing — the key
  /// must cost less than the parse it saves — so keyword case is NOT
  /// folded: 'select 1' and 'SELECT 1' are distinct entries, which
  /// costs a duplicate slot, never a wrong answer.
  static std::string NormalizeKey(std::string_view sql);

 private:
  struct Entry {
    std::string key;
    PreparedStatementPtr plan;
  };

  const size_t capacity_;

  /// The prepare path holds no other engine lock around cache calls;
  /// takes nothing itself.
  mutable Mutex mu_{LockRank::kPlanCache, "plan_cache"};
  /// Front = most recently used.
  std::list<Entry> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace youtopia

#endif  // YOUTOPIA_SERVER_PLAN_CACHE_H_
