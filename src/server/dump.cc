#include "server/dump.h"

#include "common/string_util.h"

namespace youtopia {

namespace {

/// SQL type keyword for a column type.
const char* SqlTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
    case DataType::kNull:
      return "TEXT";
  }
  return "TEXT";
}

}  // namespace

Result<std::string> DumpToScript(const Youtopia& db) {
  std::string script;
  const StorageEngine& storage = db.storage();
  for (const TableInfo& info : storage.catalog().ListTables()) {
    // Schema.
    script += "CREATE TABLE " + info.name + " (";
    for (size_t i = 0; i < info.schema.num_columns(); ++i) {
      const Column& col = info.schema.column(i);
      if (i > 0) script += ", ";
      script += col.name;
      script += " ";
      script += SqlTypeName(col.type);
      if (!col.nullable) script += " NOT NULL";
    }
    script += ");\n";

    // Rows, batched into one INSERT per table.
    auto rows = storage.Scan(info.name);
    if (!rows.ok()) return rows.status();
    if (!rows->empty()) {
      script += "INSERT INTO " + info.name + " VALUES ";
      for (size_t r = 0; r < rows->size(); ++r) {
        if (r > 0) script += ", ";
        script += (*rows)[r].second.ToString();
      }
      script += ";\n";
    }

    // Indexes (recreated after the data loads, backfill handles rows).
    for (size_t col : info.indexed_columns) {
      script += "CREATE INDEX ON " + info.name + " (" +
                info.schema.column(col).name + ");\n";
    }
  }
  return script;
}

Status RestoreFromScript(Youtopia* db, const std::string& script) {
  if (!db->storage().catalog().ListTables().empty()) {
    return Status::InvalidArgument(
        "restore target must be an empty Youtopia instance");
  }
  return db->ExecuteScript(script);
}

}  // namespace youtopia
