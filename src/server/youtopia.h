#ifndef YOUTOPIA_SERVER_YOUTOPIA_H_
#define YOUTOPIA_SERVER_YOUTOPIA_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "entangle/coordinator.h"
#include "entangle/normalizer.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "storage/storage_engine.h"
#include "txn/txn_manager.h"

namespace youtopia {

/// Whole-system configuration.
struct YoutopiaConfig {
  CoordinatorConfig coordinator;
  /// After regular DML changes a table, automatically re-run matching
  /// for pending entangled queries whose domain predicates read it —
  /// the paper's "waits for an opportunity to retry" without manual
  /// RetriggerAll calls.
  bool retrigger_on_dml = true;
};

/// Outcome of running one SQL string that may be regular or entangled.
struct RunOutcome {
  bool entangled = false;
  /// Set for regular statements.
  QueryResult result;
  /// Set for entangled statements.
  std::optional<EntangledHandle> handle;
};

/// The embedded Youtopia database system — the top of the architecture
/// in Figure 2 of the paper. One object owns the storage engine, the
/// execution engine, the transaction manager and the coordination
/// component; sessions (threads) share it.
///
/// Regular SQL goes to the execution engine; entangled queries (SELECT
/// ... INTO ANSWER ...) are compiled to the coordination IR and
/// registered with the coordinator, returning a waitable handle.
class Youtopia {
 public:
  explicit Youtopia(YoutopiaConfig config = {});

  Youtopia(const Youtopia&) = delete;
  Youtopia& operator=(const Youtopia&) = delete;

  /// Executes one *regular* statement. Entangled statements are
  /// rejected with InvalidArgument (use Submit or Run).
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes a ';'-separated batch of regular statements, discarding
  /// results (schema/data setup scripts).
  Status ExecuteScript(const std::string& sql);

  /// Submits one *entangled* query. `owner` tags the query for the
  /// admin interface and notifications.
  Result<EntangledHandle> Submit(const std::string& sql,
                                 const std::string& owner = "");

  /// Submits a batch of *entangled* queries in one coordinator round
  /// (Coordinator::SubmitAll): a complete group submitted together
  /// closes without N lock round-trips. `owners` is either empty (no
  /// tag) or one tag per statement. All-or-nothing: any statement that
  /// fails to parse or normalize rejects the batch before anything is
  /// registered.
  Result<std::vector<EntangledHandle>> SubmitBatch(
      const std::vector<std::string>& statements,
      const std::vector<std::string>& owners = {});

  /// Runs any single statement, auto-detecting entangled queries —
  /// what the demo's SQL command-line interface does.
  Result<RunOutcome> Run(const std::string& sql,
                         const std::string& owner = "");

  StorageEngine& storage() { return storage_; }
  const StorageEngine& storage() const { return storage_; }
  Executor& executor() { return executor_; }
  TxnManager& txn_manager() { return txn_manager_; }
  Coordinator& coordinator() { return coordinator_; }
  const Coordinator& coordinator() const { return coordinator_; }

 private:
  /// Runs a regular statement under table locks, then (for DML, when
  /// configured) retriggers pending queries reading the written tables.
  Result<QueryResult> ExecuteRegular(const Statement& stmt);

  YoutopiaConfig config_;
  StorageEngine storage_;
  Executor executor_;
  TxnManager txn_manager_;
  Coordinator coordinator_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_SERVER_YOUTOPIA_H_
