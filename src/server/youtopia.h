#ifndef YOUTOPIA_SERVER_YOUTOPIA_H_
#define YOUTOPIA_SERVER_YOUTOPIA_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "entangle/coordinator.h"
#include "entangle/normalizer.h"
#include "exec/executor.h"
#include "server/plan_cache.h"
#include "service/executor_config.h"
#include "sql/parser.h"
#include "sql/table_refs.h"
#include "storage/storage_engine.h"
#include "txn/txn_manager.h"
#include "wal/wal_manager.h"

namespace youtopia {

class ExecutorService;
namespace wal {
class WalCoordinatorJournal;
}

/// Multi-version storage configuration (design decision #10).
struct MvccConfig {
  /// Versions retained per row, newest-first. >= 2 enables MVCC: every
  /// regular SELECT runs lock-free against a snapshot timestamp, and
  /// writers keep strict 2PL, stamping new versions at commit. 1 keeps
  /// exactly one version per row — the seed's in-place 2PL semantics,
  /// byte for byte (SELECTs lock, updates overwrite, aborts replay the
  /// undo log). The cap is a retention *budget*, not a hard bound: a
  /// version an open snapshot can still see is never reclaimed, so
  /// chains may transiently exceed it while old snapshots are live.
  size_t num_versions = 4;
};

/// Whole-system configuration.
struct YoutopiaConfig {
  CoordinatorConfig coordinator;
  /// Tuple versioning + snapshot reads (design decision #10).
  /// num_versions = 1 degrades to the seed's single-version 2PL
  /// behavior.
  MvccConfig mvcc;
  /// After regular DML changes a table, automatically re-run matching
  /// for pending entangled queries whose domain predicates read it —
  /// the paper's "waits for an opportunity to retry" without manual
  /// RetriggerAll calls.
  bool retrigger_on_dml = true;
  /// The submission queue + worker pool under the statement path. The
  /// default (num_workers = 0) executes every submission inline in the
  /// submitting thread — the seed's synchronous behavior.
  ExecutorServiceConfig executor;
  /// The shared prepared-statement cache under `Prepare` (design
  /// decision #7). capacity = 0 turns it off — every statement is
  /// re-parsed and re-planned per submission, the seed's behavior.
  PlanCacheConfig plan_cache;
  /// The durability subsystem (design decision #8): write-ahead log +
  /// crash recovery + coordinator journal. Off by default — the seed's
  /// in-memory semantics, byte for byte.
  wal::WalConfig wal;
};

/// Outcome of running one SQL string that may be regular or entangled.
struct RunOutcome {
  bool entangled = false;
  /// Set for regular statements.
  QueryResult result;
  /// Set for entangled statements.
  std::optional<EntangledHandle> handle;
};

/// A statement after the parse and plan stages of the pipeline: the AST,
/// its lock footprint, the routing decision (regular vs entangled) and —
/// for regular SELECTs — the physical plan, built against the catalog
/// version recorded in `catalog_version`.
///
/// Immutable after construction and shared via `PreparedStatementPtr`:
/// the plan cache, requeued executor tasks and any number of
/// concurrently executing threads hold the same object. Anything a
/// single execution mutates (ExecContext, lock state, conflict budgets)
/// lives with that execution — never here (design decision #7).
struct PreparedStatement {
  std::shared_ptr<const Statement> stmt;
  /// Lock footprint: `writes` locked exclusive, `reads` shared.
  TableRefs refs;
  /// True for entangled SELECTs — routed to the coordinator, not the
  /// execution engine.
  bool entangled = false;
  /// Original text (normalizer input, diagnostics, history).
  std::string sql;
  /// Physical plan for regular SELECTs (borrowing expression nodes from
  /// `stmt`, which this struct keeps alive); nullopt for every other
  /// statement kind. PlanNode execution is const — sharing is safe.
  std::optional<PlannedSelect> plan;
  /// Per-table version stamps observed when planning started, one per
  /// referenced table (reads and writes; empty for statements with no
  /// table references, which never go stale). PreparedStatementFresh
  /// compares them against the live catalog: ExecutePrepared falls back
  /// to plan-under-locks when any stamp is stale, and the plan cache
  /// discards the entry. Relation-granular — DDL on an unrelated table
  /// leaves this statement's plan warm.
  std::vector<std::pair<std::string, uint64_t>> table_versions;
  /// Global catalog version observed when planning started (kept for
  /// diagnostics and the admin snapshot; freshness decisions use the
  /// per-table stamps above).
  uint64_t catalog_version = 0;
};

/// How the acquire-locks stage of `ExecutePrepared` waits on conflicts.
enum class LockWait {
  /// Block inside the lock manager up to its wait timeout (seed
  /// behavior; what inline execution and direct callers use).
  kBlock,
  /// Fail the stage immediately with kTimedOut so the caller can
  /// requeue the statement — the executor service's workers use this;
  /// a pool thread never sleeps holding no locks.
  kTry,
};

/// The embedded Youtopia database system — the top of the architecture
/// in Figure 2 of the paper. One object owns the storage engine, the
/// execution engine, the transaction manager, the coordination
/// component and the executor service; sessions (threads) share it.
///
/// Regular SQL goes to the execution engine; entangled queries (SELECT
/// ... INTO ANSWER ...) are compiled to the coordination IR and
/// registered with the coordinator, returning a waitable handle.
///
/// The statement path is staged — parse (`Prepare`) → plan (lock
/// footprint, routing) → acquire locks → execute (`ExecutePrepared` /
/// `SubmitPrepared`) — so the executor service can run each stage from
/// a pool worker and release the worker between stages (conflict
/// requeue, entangled parking). The synchronous methods below are thin
/// compositions of the same stages.
class Youtopia {
 public:
  explicit Youtopia(YoutopiaConfig config = {});
  ~Youtopia();

  Youtopia(const Youtopia&) = delete;
  Youtopia& operator=(const Youtopia&) = delete;

  /// Executes one *regular* statement. Entangled statements are
  /// rejected with InvalidArgument (use Submit or Run).
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes a ';'-separated batch of regular statements, discarding
  /// results (schema/data setup scripts). Partial-execution semantics:
  /// statements run in order and the first failure stops the script —
  /// everything before it stays applied, nothing after it runs.
  Status ExecuteScript(const std::string& sql);

  /// Submits one *entangled* query. `owner` tags the query for the
  /// admin interface and notifications.
  Result<EntangledHandle> Submit(const std::string& sql,
                                 const std::string& owner = "");

  /// Submits a batch of *entangled* queries in one coordinator round
  /// (Coordinator::SubmitAll): a complete group submitted together
  /// closes without N lock round-trips. `owners` is either empty (no
  /// tag) or one tag per statement. All-or-nothing: any statement that
  /// fails to parse or normalize rejects the batch before anything is
  /// registered.
  Result<std::vector<EntangledHandle>> SubmitBatch(
      const std::vector<std::string>& statements,
      const std::vector<std::string>& owners = {});

  /// Runs any single statement, auto-detecting entangled queries —
  /// what the demo's SQL command-line interface does.
  Result<RunOutcome> Run(const std::string& sql,
                         const std::string& owner = "");

  // ------------------------------------------------------------------
  // Staged statement path (what the executor service's workers drive).

  /// Parse + plan, through the shared plan cache: a hit returns the
  /// cached immutable plan without touching the parser or planner; a
  /// miss builds the AST, collects the lock footprint, routes the
  /// statement (regular vs entangled), builds the physical plan for
  /// regular SELECTs, and caches the result. Reads the catalog (schema
  /// bindings, index choices) but takes no table locks.
  Result<PreparedStatementPtr> Prepare(const std::string& sql) const;

  /// The plan stage alone, for an already-parsed statement: lock
  /// footprint + routing + physical plan. The single implementation
  /// behind Prepare and the script paths, so the routing rule lives in
  /// exactly one place. Does not consult the cache.
  Result<PreparedStatementPtr> PrepareParsed(StatementPtr stmt,
                                             std::string sql) const;

  /// PrepareParsed through the cache: keyed on `text` (one statement's
  /// own source, not a whole script). What the per-step script prepare
  /// uses — the AST is already parsed, so only the plan stage is saved,
  /// but scripts replaying hot statements share plans with every other
  /// surface.
  Result<PreparedStatementPtr> PrepareParsedCached(StatementPtr stmt,
                                                   std::string text) const;

  /// Acquire-locks + execute stages for a *regular* prepared statement:
  /// takes the footprint's table locks (per `lock_wait`), runs the
  /// execution engine, commits, then retriggers dependent pending
  /// coordinations (when configured). When the acquire stage loses —
  /// and only then — `lock_conflict` (optional) is set true; at that
  /// point no locks are held and nothing has executed, so the
  /// statement is safe to re-drive. A kTimedOut without the flag came
  /// from after execution (e.g. the retrigger path) and must NOT be
  /// re-driven blindly.
  Result<QueryResult> ExecutePrepared(const PreparedStatement& prepared,
                                      LockWait lock_wait = LockWait::kBlock,
                                      bool* lock_conflict = nullptr);

  /// Normalize + register stage for an *entangled* prepared statement:
  /// compiles to the coordination IR and submits to the coordinator.
  /// Non-blocking — completion is consumed via the returned handle
  /// (Wait or OnComplete).
  Result<EntangledHandle> SubmitPrepared(const PreparedStatement& prepared,
                                         const std::string& owner);

  StorageEngine& storage() { return storage_; }
  const StorageEngine& storage() const { return storage_; }
  Executor& executor() { return executor_; }
  TxnManager& txn_manager() { return txn_manager_; }
  Coordinator& coordinator() { return coordinator_; }
  const Coordinator& coordinator() const { return coordinator_; }

  /// The submission queue + worker pool driving the statement path.
  /// Always present; with `num_workers = 0` it executes submissions
  /// inline (seed synchronous semantics).
  ExecutorService& executor_service() { return *executor_service_; }
  const ExecutorService& executor_service() const {
    return *executor_service_;
  }

  /// The shared prepared-statement cache (stats for the admin snapshot
  /// and the workload report; Clear for tests and admin resets).
  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// The write-ahead log, or nullptr when `config.wal.enabled` is off.
  wal::WalManager* wal() { return wal_.get(); }
  const wal::WalManager* wal() const { return wal_.get(); }

  /// Outcome of startup recovery. The constructor cannot fail, so a
  /// corrupt or un-replayable log surfaces here; callers that care
  /// about durability should check it before serving traffic. OK when
  /// the WAL is disabled or the log replayed cleanly.
  const Status& recovery_status() const { return recovery_status_; }

  /// Takes a checkpoint now: quiesces the coordinator (all shard
  /// mutexes) and regular DML (S locks on every table), snapshots
  /// tables + pending coordinations, and hands the snapshot to the WAL,
  /// which truncates the log behind it. InvalidArgument when the WAL is
  /// disabled. Also runs automatically once the post-checkpoint log
  /// volume exceeds `wal.checkpoint_bytes`, and from the destructor
  /// when `wal.checkpoint_on_shutdown` is set.
  Status Checkpoint();

 private:
  /// Startup recovery: open the log, replay checkpoint + records into
  /// storage, re-register surviving pending coordinations (original ids
  /// preserved), attach the journal, then retrigger — a group that
  /// became matchable only because of the restart closes immediately,
  /// and is journaled like any other.
  Status RecoverFromWal();

  /// Single-flight automatic checkpoint once the log volume warrants
  /// one; concurrent sessions skip instead of queueing.
  void MaybeAutoCheckpoint();

  YoutopiaConfig config_;
  StorageEngine storage_;
  Executor executor_;
  TxnManager txn_manager_;
  Coordinator coordinator_;
  /// Mutable: Prepare is logically const (it builds no engine state —
  /// the cache is memoization).
  mutable PlanCache plan_cache_;
  /// Durability subsystem; null when config.wal.enabled is off. The
  /// journal adapter feeds coordinator activity into the same log.
  std::unique_ptr<wal::WalManager> wal_;
  std::unique_ptr<wal::WalCoordinatorJournal> journal_;
  Status recovery_status_ = Status::OK();
  std::atomic<bool> checkpoint_inflight_{false};
  /// Declared last: constructed after (and destroyed before) every
  /// component its workers drive.
  std::unique_ptr<ExecutorService> executor_service_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_SERVER_YOUTOPIA_H_
