#include "types/type.h"

#include "common/string_util.h"

namespace youtopia {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

Result<DataType> DataTypeFromString(std::string_view name) {
  const std::string lower = ToLowerAscii(name);
  if (lower == "int" || lower == "integer" || lower == "bigint" ||
      lower == "int64") {
    return DataType::kInt64;
  }
  if (lower == "double" || lower == "float" || lower == "real") {
    return DataType::kDouble;
  }
  if (lower == "varchar" || lower == "text" || lower == "string" ||
      lower == "char") {
    return DataType::kString;
  }
  if (lower == "bool" || lower == "boolean") {
    return DataType::kBool;
  }
  return Status::InvalidArgument("unknown type name: " + std::string(name));
}

bool IsCoercible(DataType from, DataType to) {
  if (from == to) return true;
  if (from == DataType::kNull) return true;
  if (from == DataType::kInt64 && to == DataType::kDouble) return true;
  return false;
}

}  // namespace youtopia
