#include "types/schema.h"

#include <unordered_set>

#include "common/string_util.h"

namespace youtopia {

Result<Schema> Schema::Create(std::vector<Column> columns) {
  std::unordered_set<std::string> seen;
  for (const Column& c : columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("column name may not be empty");
    }
    if (!seen.insert(ToLowerAscii(c.name)).second) {
      return Status::InvalidArgument("duplicate column name: " + c.name);
    }
  }
  return Schema(std::move(columns));
}

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::ColumnIndex(std::string_view name) const {
  if (auto idx = FindColumn(name)) return *idx;
  return Status::NotFound("no column named " + std::string(name));
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeToString(columns_[i].type);
    if (!columns_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

}  // namespace youtopia
