#ifndef YOUTOPIA_TYPES_TUPLE_H_
#define YOUTOPIA_TYPES_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace youtopia {

/// A row of values. Tuples are schema-agnostic; validation against a
/// Schema happens at insertion (see ValidateAgainst).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation (joins).
  Tuple Concat(const Tuple& other) const;

  /// Projection onto the given column indexes. Indexes must be in range.
  Tuple Project(const std::vector<size_t>& indexes) const;

  /// Checks arity, per-column type coercibility, and NOT NULL
  /// constraints; returns the (possibly coerced) tuple.
  Result<Tuple> ValidateAgainst(const Schema& schema) const;

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const;

  size_t Hash() const;

  /// "(v1, v2, ...)" rendering.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace youtopia

#endif  // YOUTOPIA_TYPES_TUPLE_H_
