#ifndef YOUTOPIA_TYPES_TYPE_H_
#define YOUTOPIA_TYPES_TYPE_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace youtopia {

/// Column data types supported by the engine. The travel workloads of the
/// paper use integers (flight numbers, prices as cents), strings (names,
/// destinations) and dates (stored as int64 days-since-epoch by the
/// application layer); DOUBLE and BOOL round out expression evaluation.
enum class DataType {
  kNull = 0,  ///< Type of the SQL NULL literal before coercion.
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Stable lowercase name ("int64", "string", ...).
const char* DataTypeToString(DataType type);

/// Parses a SQL type name (INT/INTEGER/BIGINT/INT64, DOUBLE/FLOAT/REAL,
/// VARCHAR/TEXT/STRING, BOOL/BOOLEAN). Case-insensitive.
Result<DataType> DataTypeFromString(std::string_view name);

/// True if a value of `from` may be stored in a column of `to`
/// (identity, int64->double widening, and NULL into anything).
bool IsCoercible(DataType from, DataType to);

}  // namespace youtopia

#endif  // YOUTOPIA_TYPES_TYPE_H_
