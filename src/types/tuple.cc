#include "types/tuple.h"

#include "common/string_util.h"

namespace youtopia {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> vals = values_;
  vals.insert(vals.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(vals));
}

Tuple Tuple::Project(const std::vector<size_t>& indexes) const {
  std::vector<Value> vals;
  vals.reserve(indexes.size());
  for (size_t i : indexes) vals.push_back(values_[i]);
  return Tuple(std::move(vals));
}

Result<Tuple> Tuple::ValidateAgainst(const Schema& schema) const {
  if (values_.size() != schema.num_columns()) {
    return Status::InvalidArgument(StringPrintf(
        "tuple has %zu values but schema %s has %zu columns", values_.size(),
        schema.ToString().c_str(), schema.num_columns()));
  }
  std::vector<Value> coerced;
  coerced.reserve(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    const Column& col = schema.column(i);
    if (values_[i].is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL in NOT NULL column " + col.name);
      }
      coerced.push_back(Value::Null());
      continue;
    }
    auto cv = values_[i].CoerceTo(col.type);
    if (!cv.ok()) {
      return Status::InvalidArgument("column " + col.name + ": " +
                                     cv.status().message());
    }
    coerced.push_back(cv.TakeValue());
  }
  return Tuple(std::move(coerced));
}

bool Tuple::operator<(const Tuple& other) const {
  const size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    if (values_[i] < other.values_[i]) return true;
    if (other.values_[i] < values_[i]) return false;
  }
  return values_.size() < other.values_.size();
}

size_t Tuple::Hash() const {
  size_t h = 0x811c9dc5u;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return os << t.ToString();
}

}  // namespace youtopia
