#ifndef YOUTOPIA_TYPES_SCHEMA_H_
#define YOUTOPIA_TYPES_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/type.h"

namespace youtopia {

/// One column of a relation schema.
struct Column {
  std::string name;
  DataType type = DataType::kNull;
  bool nullable = true;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }
};

/// An ordered list of named, typed columns. Column names are compared
/// case-insensitively, matching SQL identifier semantics.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  /// Validates uniqueness of column names (case-insensitive).
  static Result<Schema> Create(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or nullopt.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Like FindColumn but returns a NotFound status naming the column.
  Result<size_t> ColumnIndex(std::string_view name) const;

  /// Concatenation, used by joins. Duplicate names are permitted in the
  /// output (resolution is by position downstream).
  Schema Concat(const Schema& other) const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  /// "(name type, ...)" rendering for admin output and errors.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_TYPES_SCHEMA_H_
