#include "types/value.h"

#include <cmath>
#include <cstdlib>
#include <functional>

#include "common/string_util.h"

namespace youtopia {

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
  }
  return DataType::kNull;
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(int64_value());
    case DataType::kDouble:
      return double_value();
    default:
      return Status::InvalidArgument("value " + ToString() +
                                     " is not numeric");
  }
}

Result<Value> Value::CoerceTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (type() == target) return *this;
  if (type() == DataType::kInt64 && target == DataType::kDouble) {
    return Value::Double(static_cast<double>(int64_value()));
  }
  return Status::InvalidArgument("cannot coerce " +
                                 std::string(DataTypeToString(type())) +
                                 " to " + DataTypeToString(target));
}

namespace {
/// Rank used to interleave numerics in the total order.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;
    case DataType::kString:
      return 3;
  }
  return 4;
}
}  // namespace

bool Value::operator<(const Value& other) const {
  const int ra = TypeRank(type());
  const int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb;
  switch (type()) {
    case DataType::kNull:
      return false;  // NULL == NULL in the total order
    case DataType::kBool:
      return !bool_value() && other.bool_value();
    case DataType::kInt64:
    case DataType::kDouble: {
      // Both numeric; compare as double (exact for the int64 range used
      // by workloads; full i64 precision comparison when both are int64).
      if (type() == DataType::kInt64 && other.type() == DataType::kInt64) {
        return int64_value() < other.int64_value();
      }
      return AsDouble().value() < other.AsDouble().value();
    }
    case DataType::kString:
      return string_value() < other.string_value();
  }
  return false;
}

size_t Value::Hash() const {
  const size_t kTypeSalt[] = {0x9e3779b9u, 0x7f4a7c15u, 0x85ebca6bu,
                              0xc2b2ae35u, 0x27d4eb2fu};
  size_t h = kTypeSalt[data_.index()];
  switch (type()) {
    case DataType::kNull:
      return h;
    case DataType::kBool:
      return h ^ (bool_value() ? 0x1u : 0x2u);
    case DataType::kInt64:
      return h ^ std::hash<int64_t>{}(int64_value());
    case DataType::kDouble:
      return h ^ std::hash<double>{}(double_value());
    case DataType::kString:
      return h ^ std::hash<std::string>{}(string_value());
  }
  return h;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case DataType::kInt64:
      return std::to_string(int64_value());
    case DataType::kDouble: {
      // Shortest decimal form that parses back to the same bits, so
      // DumpToScript -> RestoreFromScript preserves double columns
      // exactly. 15 digits round-trips most values and keeps the
      // human-readable forms tests assert on ("3.5"); 17 always does.
      const double v = double_value();
      for (int precision = 15; precision <= 17; ++precision) {
        std::string s = StringPrintf("%.*g", precision, v);
        if (std::strtod(s.c_str(), nullptr) == v) return s;
      }
      return StringPrintf("%.17g", v);
    }
    case DataType::kString:
      return QuoteSqlString(string_value());
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace youtopia
