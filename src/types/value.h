#ifndef YOUTOPIA_TYPES_VALUE_H_
#define YOUTOPIA_TYPES_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/status.h"
#include "types/type.h"

namespace youtopia {

/// A dynamically typed SQL value. Small, copyable, hashable; the unit of
/// data everywhere in the engine (tuples, expression evaluation, answer
/// atoms, index keys).
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int64(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  DataType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  /// Typed accessors; calling the wrong one is a programming bug
  /// (std::get throws std::bad_variant_access).
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }

  /// Numeric view: int64 widened to double. Error for non-numeric types.
  Result<double> AsDouble() const;

  /// Coerces to `target` per IsCoercible. NULL stays NULL.
  Result<Value> CoerceTo(DataType target) const;

  /// Deep equality: same type and same payload. NULL == NULL here
  /// (this is *identity* equality used by containers, not SQL ternary
  /// logic — the expression evaluator layers SQL semantics on top).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for sorting/index keys: NULL < bool < int64/double
  /// (numerically interleaved) < string.
  bool operator<(const Value& other) const;

  /// Stable hash compatible with operator== (int64 and the equal double
  /// hash differently — callers index on identical types per column, so
  /// cross-type probes are not required).
  size_t Hash() const;

  /// SQL-literal rendering: NULL, TRUE, 42, 3.5, 'text' (quotes doubled).
  std::string ToString() const;

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Payload data) : data_(std::move(data)) {}

  Payload data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace youtopia

#endif  // YOUTOPIA_TYPES_VALUE_H_
