#ifndef YOUTOPIA_TXN_TXN_MANAGER_H_
#define YOUTOPIA_TXN_TXN_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/storage_engine.h"
#include "txn/lock_manager.h"
#include "txn/mvcc.h"
#include "txn/transaction.h"

namespace youtopia {

/// Strict two-phase-locking transaction layer over the storage engine.
/// Provides the classical *isolation* abstraction the paper contrasts with
/// coordination (§1): Youtopia keeps transactions and layers entangled
/// queries beside them — the coordinator installs each matched group's
/// answers inside one transaction from this manager.
class TxnManager {
 public:
  explicit TxnManager(StorageEngine* storage) : storage_(storage) {}

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Starts a transaction. The returned object stays owned by the caller
  /// and must end via Commit or Abort.
  std::unique_ptr<Transaction> Begin();

  /// Write operations; acquire X table locks and append undo records.
  Result<RowId> Insert(Transaction* txn, const std::string& table,
                       const Tuple& tuple);
  Status Delete(Transaction* txn, const std::string& table, RowId rid);
  Status Update(Transaction* txn, const std::string& table, RowId rid,
                const Tuple& tuple);

  /// Read operations; acquire S table locks.
  Result<Tuple> Get(Transaction* txn, const std::string& table, RowId rid);
  Result<std::vector<std::pair<RowId, Tuple>>> Scan(Transaction* txn,
                                                    const std::string& table);
  Result<std::vector<RowId>> IndexLookup(Transaction* txn,
                                         const std::string& table,
                                         const std::string& column,
                                         const Value& key);

  /// Releases locks; the transaction's effects become permanent. In
  /// MVCC mode this is also where the commit timestamp is issued: the
  /// storage engine stamps every pending version the transaction wrote
  /// with one fresh timestamp before the 2PL locks drop, so snapshot
  /// readers see the whole transaction or none of it.
  Status Commit(Transaction* txn);

  /// Rolls back, then releases locks. Unversioned mode replays the undo
  /// log in reverse (undo of a delete resurrects the row under its
  /// original RowId, so row identity is preserved across aborts); MVCC
  /// mode discards the transaction's pending versions instead.
  Status Abort(Transaction* txn);

  /// True when the storage engine keeps version chains (num_versions
  /// >= 2) and snapshot reads are available.
  bool mvcc_enabled() const { return storage_->mvcc_enabled(); }

  /// Opens a read-only snapshot at the current watermark: the txn
  /// context for lock-free SELECTs. Closes (and unpins GC) when the
  /// handle is destroyed.
  SnapshotHandle OpenSnapshot() {
    return SnapshotHandle(&storage_->mvcc());
  }

  LockManager& lock_manager() { return lock_manager_; }

 private:
  Status EnsureActive(const Transaction* txn) const;

  StorageEngine* storage_;
  LockManager lock_manager_;
  std::atomic<TxnId> next_txn_id_{1};
};

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_TXN_MANAGER_H_
