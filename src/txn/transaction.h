#ifndef YOUTOPIA_TXN_TRANSACTION_H_
#define YOUTOPIA_TXN_TRANSACTION_H_

#include <string>
#include <vector>

#include "storage/heap_table.h"
#include "txn/lock_manager.h"
#include "types/tuple.h"

namespace youtopia {

enum class TxnState { kActive, kCommitted, kAborted };

/// One undo-log record. On abort the records are replayed in reverse.
struct UndoEntry {
  enum class Kind { kInsert, kDelete, kUpdate };
  Kind kind;
  std::string table;
  RowId rid = 0;
  /// Pre-image for kDelete/kUpdate (empty for kInsert).
  Tuple old_tuple;
};

/// One redo-log record: the after-image of a write made through the
/// TxnManager, in storage's stored (validated/coerced) form. The WAL
/// journals these for coordinator install transactions, whose writes
/// (answer installs plus arbitrary install-hook writes) have no SQL
/// text to re-execute at recovery.
struct RedoEntry {
  enum class Kind { kInsert, kDelete, kUpdate };
  Kind kind;
  std::string table;
  RowId rid = 0;
  /// After-image for kInsert/kUpdate (empty for kDelete).
  Tuple tuple;
};

/// Book-keeping for one transaction: id, state, and the undo log.
/// Transactions are created and driven by TxnManager; this struct holds
/// no locks itself (the LockManager tracks holders by TxnId).
class Transaction {
 public:
  explicit Transaction(TxnId id) : id_(id) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  void RecordInsert(const std::string& table, RowId rid);
  void RecordDelete(const std::string& table, RowId rid, Tuple old_tuple);
  void RecordUpdate(const std::string& table, RowId rid, Tuple old_tuple);
  void RecordRedo(RedoEntry entry) { redo_log_.push_back(std::move(entry)); }

  const std::vector<UndoEntry>& undo_log() const { return undo_log_; }
  const std::vector<RedoEntry>& redo_log() const { return redo_log_; }

 private:
  TxnId id_;
  TxnState state_ = TxnState::kActive;
  std::vector<UndoEntry> undo_log_;
  std::vector<RedoEntry> redo_log_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_TRANSACTION_H_
