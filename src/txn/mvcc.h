#ifndef YOUTOPIA_TXN_MVCC_H_
#define YOUTOPIA_TXN_MVCC_H_

#include <algorithm>
#include <cstdint>
#include <set>

#include "common/mutex.h"

namespace youtopia {

/// Commit timestamp. Timestamps are issued by one MvccController per
/// engine; 0 is "no snapshot" (current reads) and versions loaded from
/// a checkpoint or created in unversioned mode carry kBaseTs.
using Ts = uint64_t;

/// Transaction id (same alias as txn/lock_manager.h; redeclared here so
/// the storage layer can tag pending versions without pulling in the
/// lock manager).
using TxnId = uint64_t;

/// begin_ts of a version written by a transaction that has not yet
/// committed. Pending versions are invisible to every snapshot; the
/// writer's own current reads see them through the head of the chain.
inline constexpr Ts kPendingTs = ~Ts{0};

/// The timestamp committed versions start at (the clock's initial
/// value): everything present before the first commit is visible to
/// every snapshot.
inline constexpr Ts kBaseTs = 1;

/// Timestamp authority for MVCC (design decision #10): a monotonically
/// increasing commit clock, the set of commits currently stamping their
/// versions, and the set of open read snapshots.
///
/// The watermark protocol keeps multi-row commits atomic for lock-free
/// readers. BeginCommit() advances the clock and registers the new
/// timestamp as in flight; the writer then stamps its versions;
/// EndCommit() retires it and republishes the watermark as the largest
/// timestamp below every still-in-flight commit. Snapshots open at the
/// watermark, so a reader can never observe some rows of a commit
/// without the others — the commit's timestamp stays above the
/// watermark until every row is stamped.
///
/// LowWater() is the GC bound: the oldest timestamp any live snapshot
/// (or any snapshot opened from now on) can read at. Pruning keeps the
/// newest version at or below it plus everything newer, so GC never
/// reclaims a version a live snapshot can see.
class MvccController {
 public:
  MvccController() = default;
  MvccController(const MvccController&) = delete;
  MvccController& operator=(const MvccController&) = delete;

  /// Issues the next commit timestamp and marks it in flight.
  Ts BeginCommit() {
    MutexLock lock(mu_);
    const Ts ts = ++clock_;
    inflight_.insert(ts);
    return ts;
  }

  /// Retires `ts` and advances the watermark past every fully stamped
  /// commit.
  void EndCommit(Ts ts) {
    MutexLock lock(mu_);
    inflight_.erase(ts);
    watermark_ = inflight_.empty() ? clock_ : *inflight_.begin() - 1;
  }

  /// Registers a read snapshot at the current watermark. Must be paired
  /// with CloseSnapshot (SnapshotHandle does this).
  Ts OpenSnapshot() {
    MutexLock lock(mu_);
    const Ts ts = watermark_;
    snapshots_.insert(ts);
    return ts;
  }

  void CloseSnapshot(Ts ts) {
    MutexLock lock(mu_);
    auto it = snapshots_.find(ts);
    if (it != snapshots_.end()) snapshots_.erase(it);
  }

  /// Oldest timestamp any live or future snapshot can read at.
  Ts LowWater() const {
    MutexLock lock(mu_);
    return snapshots_.empty() ? watermark_
                              : std::min(watermark_, *snapshots_.begin());
  }

  Ts watermark() const {
    MutexLock lock(mu_);
    return watermark_;
  }

  Ts clock() const {
    MutexLock lock(mu_);
    return clock_;
  }

  size_t active_snapshots() const {
    MutexLock lock(mu_);
    return snapshots_.size();
  }

 private:
  mutable Mutex mu_{LockRank::kMvccClock, "mvcc_clock"};
  Ts clock_ GUARDED_BY(mu_) = kBaseTs;
  Ts watermark_ GUARDED_BY(mu_) = kBaseTs;
  /// Commit timestamps issued but not yet fully stamped.
  std::set<Ts> inflight_ GUARDED_BY(mu_);
  /// Open snapshot timestamps (multiset: many readers share one
  /// watermark value).
  std::multiset<Ts> snapshots_ GUARDED_BY(mu_);
};

/// RAII registration of one read snapshot. Default-constructed handles
/// are inert (ts() == 0, the "no snapshot" sentinel).
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  explicit SnapshotHandle(MvccController* controller)
      : controller_(controller),
        ts_(controller == nullptr ? 0 : controller->OpenSnapshot()) {}
  ~SnapshotHandle() { Release(); }

  SnapshotHandle(SnapshotHandle&& other) noexcept
      : controller_(other.controller_), ts_(other.ts_) {
    other.controller_ = nullptr;
    other.ts_ = 0;
  }
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      ts_ = other.ts_;
      other.controller_ = nullptr;
      other.ts_ = 0;
    }
    return *this;
  }
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  Ts ts() const { return ts_; }
  bool valid() const { return controller_ != nullptr; }

  void Release() {
    if (controller_ != nullptr) {
      controller_->CloseSnapshot(ts_);
      controller_ = nullptr;
      ts_ = 0;
    }
  }

 private:
  MvccController* controller_ = nullptr;
  Ts ts_ = 0;
};

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_MVCC_H_
