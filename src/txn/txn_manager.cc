#include "txn/txn_manager.h"

#include "common/logging.h"

namespace youtopia {

std::unique_ptr<Transaction> TxnManager::Begin() {
  return std::make_unique<Transaction>(
      next_txn_id_.fetch_add(1, std::memory_order_relaxed));
}

Status TxnManager::EnsureActive(const Transaction* txn) const {
  if (txn == nullptr) return Status::InvalidArgument("null transaction");
  if (txn->state() != TxnState::kActive) {
    return Status::Aborted("transaction " + std::to_string(txn->id()) +
                           " is not active");
  }
  return Status::OK();
}

Result<RowId> TxnManager::Insert(Transaction* txn, const std::string& table,
                                 const Tuple& tuple) {
  YOUTOPIA_RETURN_IF_ERROR(EnsureActive(txn));
  YOUTOPIA_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn->id(), table, LockMode::kExclusive));
  auto rid = storage_->Insert(table, tuple, txn->id());
  if (!rid.ok()) return rid.status();
  txn->RecordInsert(table, rid.value());
  // Redo after-image in stored form: the heap may have coerced the
  // tuple (e.g. nullable widening), and replay must reproduce storage
  // bytes, not caller bytes.
  auto stored = storage_->Get(table, rid.value());
  txn->RecordRedo({RedoEntry::Kind::kInsert, table, rid.value(),
                   stored.ok() ? stored.TakeValue() : tuple});
  return rid.value();
}

Status TxnManager::Delete(Transaction* txn, const std::string& table,
                          RowId rid) {
  YOUTOPIA_RETURN_IF_ERROR(EnsureActive(txn));
  YOUTOPIA_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn->id(), table, LockMode::kExclusive));
  auto old = storage_->Get(table, rid);
  if (!old.ok()) return old.status();
  YOUTOPIA_RETURN_IF_ERROR(storage_->Delete(table, rid, txn->id()));
  txn->RecordDelete(table, rid, old.TakeValue());
  txn->RecordRedo({RedoEntry::Kind::kDelete, table, rid, Tuple()});
  return Status::OK();
}

Status TxnManager::Update(Transaction* txn, const std::string& table,
                          RowId rid, const Tuple& tuple) {
  YOUTOPIA_RETURN_IF_ERROR(EnsureActive(txn));
  YOUTOPIA_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn->id(), table, LockMode::kExclusive));
  auto old = storage_->Get(table, rid);
  if (!old.ok()) return old.status();
  YOUTOPIA_RETURN_IF_ERROR(storage_->Update(table, rid, tuple, txn->id()));
  txn->RecordUpdate(table, rid, old.TakeValue());
  auto stored = storage_->Get(table, rid);
  txn->RecordRedo({RedoEntry::Kind::kUpdate, table, rid,
                   stored.ok() ? stored.TakeValue() : tuple});
  return Status::OK();
}

Result<Tuple> TxnManager::Get(Transaction* txn, const std::string& table,
                              RowId rid) {
  YOUTOPIA_RETURN_IF_ERROR(EnsureActive(txn));
  YOUTOPIA_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn->id(), table, LockMode::kShared));
  return storage_->Get(table, rid);
}

Result<std::vector<std::pair<RowId, Tuple>>> TxnManager::Scan(
    Transaction* txn, const std::string& table) {
  YOUTOPIA_RETURN_IF_ERROR(EnsureActive(txn));
  YOUTOPIA_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn->id(), table, LockMode::kShared));
  return storage_->Scan(table);
}

Result<std::vector<RowId>> TxnManager::IndexLookup(Transaction* txn,
                                                   const std::string& table,
                                                   const std::string& column,
                                                   const Value& key) {
  YOUTOPIA_RETURN_IF_ERROR(EnsureActive(txn));
  YOUTOPIA_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn->id(), table, LockMode::kShared));
  return storage_->IndexLookup(table, column, key);
}

Status TxnManager::Commit(Transaction* txn) {
  YOUTOPIA_RETURN_IF_ERROR(EnsureActive(txn));
  if (storage_->mvcc_enabled()) {
    // Stamp the pending versions with one fresh commit timestamp while
    // the 2PL locks are still held: lock release must not expose a
    // half-stamped transaction to current readers, and the watermark
    // protocol hides it from snapshot readers.
    YOUTOPIA_RETURN_IF_ERROR(storage_->CommitTxn(txn->id()));
  }
  txn->set_state(TxnState::kCommitted);
  lock_manager_.ReleaseAll(txn->id());
  return Status::OK();
}

Status TxnManager::Abort(Transaction* txn) {
  YOUTOPIA_RETURN_IF_ERROR(EnsureActive(txn));
  if (storage_->mvcc_enabled()) {
    // Versioned rollback: pop the transaction's pending versions; the
    // committed chain underneath is untouched, so no undo replay (and
    // no Restore) is needed.
    Status s = storage_->AbortTxn(txn->id());
    if (!s.ok()) {
      YOUTOPIA_LOG(kWarning) << "mvcc abort failed: " << s;
    }
    txn->set_state(TxnState::kAborted);
    lock_manager_.ReleaseAll(txn->id());
    return Status::OK();
  }
  const auto& log = txn->undo_log();
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    switch (it->kind) {
      case UndoEntry::Kind::kInsert: {
        Status s = storage_->Delete(it->table, it->rid);
        if (!s.ok()) {
          YOUTOPIA_LOG(kWarning)
              << "undo insert failed on " << it->table << ": " << s;
        }
        break;
      }
      case UndoEntry::Kind::kDelete: {
        Status s = storage_->Restore(it->table, it->rid, it->old_tuple);
        if (!s.ok()) {
          YOUTOPIA_LOG(kWarning)
              << "undo delete failed on " << it->table << ": " << s;
        }
        break;
      }
      case UndoEntry::Kind::kUpdate: {
        Status s = storage_->Update(it->table, it->rid, it->old_tuple);
        if (!s.ok()) {
          YOUTOPIA_LOG(kWarning)
              << "undo update failed on " << it->table << ": " << s;
        }
        break;
      }
    }
  }
  txn->set_state(TxnState::kAborted);
  lock_manager_.ReleaseAll(txn->id());
  return Status::OK();
}

}  // namespace youtopia
