#include "txn/lock_manager.h"

#include "common/string_util.h"

namespace youtopia {

bool LockManager::Compatible(const TableLock& state, TxnId txn,
                             LockMode mode) {
  if (state.exclusive_holder == txn) return true;  // re-entrant under X
  if (mode == LockMode::kShared) {
    return state.exclusive_holder == 0;
  }
  // Exclusive: no other X holder and no other S holders.
  if (state.exclusive_holder != 0) return false;
  if (state.shared_holders.empty()) return true;
  // Upgrade allowed when txn is the only S holder.
  return state.shared_holders.size() == 1 &&
         state.shared_holders.count(txn) == 1;
}

Status LockManager::Acquire(TxnId txn, const std::string& table,
                            LockMode mode,
                            std::chrono::milliseconds timeout) {
  MutexLock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Table names are case-insensitive everywhere in the engine; the lock
  // key must agree or two spellings would not exclude each other.
  TableLock& state = locks_[ToLowerAscii(table)];
  if (!cv_.WaitUntil(mu_, deadline,
                     [&] { return Compatible(state, txn, mode); })) {
    return Status::TimedOut("lock wait timeout on table " + table +
                            " (possible deadlock)");
  }
  if (mode == LockMode::kShared) {
    if (state.exclusive_holder != txn) state.shared_holders.insert(txn);
  } else {
    state.shared_holders.erase(txn);  // S->X upgrade consumes the S lock
    state.exclusive_holder = txn;
  }
  return Status::OK();
}

Status LockManager::TryAcquire(TxnId txn, const std::string& table,
                               LockMode mode) {
  MutexLock lock(mu_);
  TableLock& state = locks_[ToLowerAscii(table)];
  if (!Compatible(state, txn, mode)) {
    return Status::TimedOut("lock conflict on table " + table);
  }
  if (mode == LockMode::kShared) {
    if (state.exclusive_holder != txn) state.shared_holders.insert(txn);
  } else {
    state.shared_holders.erase(txn);  // S->X upgrade consumes the S lock
    state.exclusive_holder = txn;
  }
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  {
    MutexLock lock(mu_);
    // Entries are never erased: waiters blocked in Acquire hold
    // references into the map. The map is bounded by the number of
    // distinct table names, so this does not grow without bound.
    for (auto& [table, state] : locks_) {
      state.shared_holders.erase(txn);
      if (state.exclusive_holder == txn) state.exclusive_holder = 0;
    }
  }
  cv_.NotifyAll();
}

bool LockManager::Holds(TxnId txn, const std::string& table,
                        LockMode mode) const {
  MutexLock lock(mu_);
  auto it = locks_.find(ToLowerAscii(table));
  if (it == locks_.end()) return false;
  const TableLock& state = it->second;
  if (state.exclusive_holder == txn) return true;
  return mode == LockMode::kShared && state.shared_holders.count(txn) == 1;
}

}  // namespace youtopia
