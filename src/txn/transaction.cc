#include "txn/transaction.h"

namespace youtopia {

void Transaction::RecordInsert(const std::string& table, RowId rid) {
  undo_log_.push_back({UndoEntry::Kind::kInsert, table, rid, Tuple()});
}

void Transaction::RecordDelete(const std::string& table, RowId rid,
                               Tuple old_tuple) {
  undo_log_.push_back(
      {UndoEntry::Kind::kDelete, table, rid, std::move(old_tuple)});
}

void Transaction::RecordUpdate(const std::string& table, RowId rid,
                               Tuple old_tuple) {
  undo_log_.push_back(
      {UndoEntry::Kind::kUpdate, table, rid, std::move(old_tuple)});
}

}  // namespace youtopia
