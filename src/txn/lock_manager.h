#ifndef YOUTOPIA_TXN_LOCK_MANAGER_H_
#define YOUTOPIA_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/mutex.h"
#include "common/status.h"

namespace youtopia {

using TxnId = uint64_t;

/// Lock modes for table-level two-phase locking.
enum class LockMode { kShared, kExclusive };

/// Table-granularity S/X lock manager with wait timeouts. Deadlocks are
/// broken by timeout: a waiter that exceeds its deadline gets kTimedOut
/// and its transaction aborts and (for coordination rounds) retries.
/// Table granularity is deliberate — entangled-query installation touches
/// few tables and the matcher serializes rounds, so finer granularity
/// would buy little here.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `mode` on `table` for `txn`. Re-entrant: a holder of X may
  /// take S or X again; a sole S holder may upgrade to X. Blocks up to
  /// `timeout`; returns kTimedOut on expiry.
  Status Acquire(TxnId txn, const std::string& table, LockMode mode,
                 std::chrono::milliseconds timeout =
                     std::chrono::milliseconds(500));

  /// Non-blocking Acquire: grants `mode` on `table` immediately when
  /// compatible, otherwise returns kTimedOut without waiting. This is
  /// the surface the executor service's conflict-requeue path uses — a
  /// pool worker must never sleep inside the lock manager, it releases
  /// the task back to the submission queue instead. The failure code
  /// deliberately matches the blocking path's so retry logic keyed on
  /// kTimedOut treats both uniformly.
  Status TryAcquire(TxnId txn, const std::string& table, LockMode mode);

  /// Releases every lock held by `txn` (commit/abort time; strict 2PL).
  void ReleaseAll(TxnId txn);

  /// True if `txn` holds at least `mode` on `table` (X satisfies S).
  bool Holds(TxnId txn, const std::string& table, LockMode mode) const;

 private:
  struct TableLock {
    std::set<TxnId> shared_holders;
    TxnId exclusive_holder = 0;  ///< 0 = none.
  };

  /// True if `txn` may be granted `mode` on `state` right now.
  static bool Compatible(const TableLock& state, TxnId txn, LockMode mode);

  mutable Mutex mu_{LockRank::kLockManager, "lock_manager"};
  CondVar cv_;
  std::map<std::string, TableLock> locks_ GUARDED_BY(mu_);
};

}  // namespace youtopia

#endif  // YOUTOPIA_TXN_LOCK_MANAGER_H_
