#include "exec/plan.h"

#include <unordered_map>

#include "sql/unparser.h"

namespace youtopia {

std::string PlanNode::ToStringTree(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += ToString();
  out += "\n";
  for (const auto& child : children_) {
    out += child->ToStringTree(indent + 1);
  }
  return out;
}

Result<std::vector<Tuple>> SeqScanNode::Execute(ExecContext& ctx) const {
  auto rows = ctx.snapshot != 0 ? ctx.storage->ScanSnapshot(table_,
                                                            ctx.snapshot)
                                : ctx.storage->Scan(table_);
  if (!rows.ok()) return rows.status();
  std::vector<Tuple> out;
  out.reserve(rows->size());
  for (auto& [rid, tuple] : *rows) out.push_back(std::move(tuple));
  return out;
}

Result<std::vector<Tuple>> IndexScanNode::Execute(ExecContext& ctx) const {
  if (ctx.snapshot != 0) {
    // Snapshot probe: the engine resolves each candidate's visible
    // version and re-verifies the key (the index also carries keys of
    // newer or pruned-pending versions).
    auto rows = ctx.storage->IndexLookupSnapshot(table_, column_, key_,
                                                 ctx.snapshot);
    if (!rows.ok()) return rows.status();
    std::vector<Tuple> out;
    out.reserve(rows->size());
    for (auto& [rid, tuple] : *rows) out.push_back(std::move(tuple));
    return out;
  }
  auto rids = ctx.storage->IndexLookup(table_, column_, key_);
  if (!rids.ok()) return rids.status();
  std::vector<Tuple> out;
  out.reserve(rids->size());
  for (RowId rid : *rids) {
    auto tuple = ctx.storage->Get(table_, rid);
    // A row deleted between lookup and fetch is simply skipped.
    if (tuple.ok()) out.push_back(tuple.TakeValue());
  }
  return out;
}

Result<std::vector<Tuple>> CrossJoinNode::Execute(ExecContext& ctx) const {
  auto left = children_[0]->Execute(ctx);
  if (!left.ok()) return left.status();
  auto right = children_[1]->Execute(ctx);
  if (!right.ok()) return right.status();
  std::vector<Tuple> out;
  out.reserve(left->size() * right->size());
  for (const Tuple& l : *left) {
    for (const Tuple& r : *right) {
      out.push_back(l.Concat(r));
    }
  }
  return out;
}

Result<std::vector<Tuple>> HashJoinNode::Execute(ExecContext& ctx) const {
  auto left = children_[0]->Execute(ctx);
  if (!left.ok()) return left.status();
  auto right = children_[1]->Execute(ctx);
  if (!right.ok()) return right.status();

  std::unordered_map<Value, std::vector<const Tuple*>, ValueHash> build;
  for (const Tuple& l : *left) {
    if (left_key_ >= l.size()) {
      return Status::Internal("hash join key out of range on build side");
    }
    build[l.at(left_key_)].push_back(&l);
  }
  std::vector<Tuple> out;
  for (const Tuple& r : *right) {
    if (right_key_ >= r.size()) {
      return Status::Internal("hash join key out of range on probe side");
    }
    auto it = build.find(r.at(right_key_));
    if (it == build.end()) continue;
    for (const Tuple* l : it->second) {
      out.push_back(l->Concat(r));
    }
  }
  return out;
}

Result<std::vector<Tuple>> FilterNode::Execute(ExecContext& ctx) const {
  auto input = children_[0]->Execute(ctx);
  if (!input.ok()) return input.status();
  ExpressionEvaluator eval(columns_, ctx.executor, ctx.snapshot);
  std::vector<Tuple> out;
  for (Tuple& row : *input) {
    auto keep = eval.EvaluatePredicate(*predicate_, &row);
    if (!keep.ok()) return keep.status();
    if (keep.value()) out.push_back(std::move(row));
  }
  return out;
}

std::string FilterNode::ToString() const {
  return "Filter(" + ExprToSql(*predicate_) + ")";
}

Result<std::vector<Tuple>> ProjectNode::Execute(ExecContext& ctx) const {
  auto input = children_[0]->Execute(ctx);
  if (!input.ok()) return input.status();
  ExpressionEvaluator eval(columns_, ctx.executor, ctx.snapshot);
  std::vector<Tuple> out;
  out.reserve(input->size());
  for (const Tuple& row : *input) {
    Tuple projected;
    for (const Expr* e : exprs_) {
      auto v = eval.Evaluate(*e, &row);
      if (!v.ok()) return v.status();
      projected.Append(v.TakeValue());
    }
    out.push_back(std::move(projected));
  }
  return out;
}

}  // namespace youtopia
