#ifndef YOUTOPIA_EXEC_EXECUTOR_H_
#define YOUTOPIA_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/planner.h"
#include "sql/ast.h"
#include "storage/storage_engine.h"

namespace youtopia {

/// Result of executing one statement.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<Tuple> rows;
  /// For DML: number of rows inserted/updated/deleted.
  size_t affected_rows = 0;

  /// ASCII table rendering (used by the SQL command-line interface).
  std::string ToString() const;
};

/// The execution engine of the paper's architecture (§2.2): "evaluates
/// queries on the database as required by the coordination component, as
/// well as executing any other queries and updates that may be
/// necessary." Handles all regular (non-entangled) statements; entangled
/// SELECTs are rejected here and routed to the Coordinator by the server
/// layer.
class Executor {
 public:
  explicit Executor(StorageEngine* storage)
      : storage_(storage), planner_(storage) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Executes any regular statement. `txn` tags DML writes with the
  /// surrounding transaction in MVCC mode (0 = auto-commit: each write
  /// is stamped individually); `snapshot` resolves SELECT reads at that
  /// timestamp (0 = current reads, the unversioned behavior). The two
  /// are mutually exclusive by construction: DML carries a txn, SELECT
  /// a snapshot.
  Result<QueryResult> Execute(const Statement& stmt, TxnId txn = 0,
                              Ts snapshot = 0);

  /// Regular SELECT only, optionally at a snapshot timestamp.
  Result<QueryResult> ExecuteSelect(const SelectStatement& stmt,
                                    Ts snapshot = 0);

  /// The plan stage alone: translates a regular SELECT to its physical
  /// plan against the current catalog. Pure catalog/index reads — this
  /// is what the prepare path (and the plan cache behind it) calls
  /// ahead of execution.
  Result<PlannedSelect> Plan(const SelectStatement& stmt) const {
    return planner_.PlanSelect(stmt);
  }

  /// Executes a pre-built plan for `stmt`. The plan is immutable during
  /// execution (PlanNode::Execute is const; all per-execution state
  /// lives in the ExecContext and the materialized tuple vectors), so
  /// one shared cached plan may execute on any number of threads
  /// concurrently. The caller is responsible for plan freshness — a
  /// plan built against an older catalog version must be re-planned,
  /// not executed (Youtopia::ExecutePrepared handles this). `snapshot`
  /// threads an MVCC read timestamp through every scan, index probe and
  /// subquery in the plan (0 = current reads).
  Result<QueryResult> ExecutePlanned(const SelectStatement& stmt,
                                     const PlannedSelect& planned,
                                     Ts snapshot = 0);

  /// Evaluates a single-column subquery to its value list (domain
  /// predicates / IN membership), at `snapshot` when non-zero so a
  /// snapshot SELECT's subqueries read the same instant as its scans.
  Result<std::vector<Value>> EvaluateSubquery(const SelectStatement& stmt,
                                              Ts snapshot = 0);

  /// True if the stored answer relation `relation` contains `probe`
  /// (exact tuple). Backs `IN ANSWER` in regular queries: browsing
  /// already-coordinated answers. Resolved at `snapshot` when non-zero.
  Result<bool> AnswerContains(const std::string& relation, const Tuple& probe,
                              Ts snapshot = 0);

 private:
  Result<QueryResult> ExecuteCreateTable(const CreateTableStatement& stmt);
  Result<QueryResult> ExecuteCreateIndex(const CreateIndexStatement& stmt);
  Result<QueryResult> ExecuteDropTable(const DropTableStatement& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStatement& stmt, TxnId txn);
  Result<QueryResult> ExecuteDelete(const DeleteStatement& stmt, TxnId txn);
  Result<QueryResult> ExecuteUpdate(const UpdateStatement& stmt, TxnId txn);

  StorageEngine* storage_;
  Planner planner_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_EXEC_EXECUTOR_H_
