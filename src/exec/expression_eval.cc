#include "exec/expression_eval.h"

#include "common/string_util.h"
#include "exec/executor.h"

namespace youtopia {

void BoundColumns::AddSource(const std::string& qualifier,
                             const Schema& schema, size_t base) {
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    entries_.push_back({qualifier, schema.column(i).name, base + i});
  }
}

Result<size_t> BoundColumns::Resolve(const std::string& qualifier,
                                     const std::string& column) const {
  const Entry* found = nullptr;
  for (const Entry& e : entries_) {
    if (!qualifier.empty() && !EqualsIgnoreCase(e.qualifier, qualifier)) {
      continue;
    }
    if (!EqualsIgnoreCase(e.column, column)) continue;
    if (found != nullptr) {
      return Status::InvalidArgument("ambiguous column reference: " + column);
    }
    found = &e;
  }
  if (found == nullptr) {
    std::string full = qualifier.empty() ? column : qualifier + "." + column;
    return Status::NotFound("unknown column: " + full);
  }
  return found->index;
}

Result<Value> ExpressionEvaluator::Evaluate(const Expr& expr,
                                            const Tuple* row) const {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return As<LiteralExpr>(expr).value;
    case ExprKind::kColumnRef: {
      const auto& ref = As<ColumnRefExpr>(expr);
      if (columns_ == nullptr || row == nullptr) {
        return Status::InvalidArgument("column reference " + ref.column +
                                       " in constant context");
      }
      auto idx = columns_->Resolve(ref.qualifier, ref.column);
      if (!idx.ok()) return idx.status();
      return row->at(idx.value());
    }
    case ExprKind::kUnary: {
      const auto& u = As<UnaryExpr>(expr);
      auto v = Evaluate(*u.operand, row);
      if (!v.ok()) return v.status();
      if (v->is_null()) return Value::Null();
      if (u.op == UnaryOp::kNot) {
        if (v->type() != DataType::kBool) {
          return Status::InvalidArgument("NOT requires a boolean operand");
        }
        return Value::Bool(!v->bool_value());
      }
      // Negation.
      if (v->type() == DataType::kInt64) {
        return Value::Int64(-v->int64_value());
      }
      if (v->type() == DataType::kDouble) {
        return Value::Double(-v->double_value());
      }
      return Status::InvalidArgument("unary '-' requires a numeric operand");
    }
    case ExprKind::kBinary:
      return EvaluateBinary(As<BinaryExpr>(expr), row);
    case ExprKind::kInSubquery: {
      const auto& in = As<InSubqueryExpr>(expr);
      if (executor_ == nullptr) {
        return Status::InvalidArgument("subquery in constant context");
      }
      auto needle = Evaluate(*in.needle, row);
      if (!needle.ok()) return needle.status();
      if (needle->is_null()) return Value::Null();
      auto values = executor_->EvaluateSubquery(*in.subquery, snapshot_);
      if (!values.ok()) return values.status();
      bool present = false;
      for (const Value& v : *values) {
        if (v == *needle) {
          present = true;
          break;
        }
      }
      return Value::Bool(in.negated ? !present : present);
    }
    case ExprKind::kInAnswer: {
      const auto& in = As<InAnswerExpr>(expr);
      if (executor_ == nullptr) {
        return Status::InvalidArgument("IN ANSWER in constant context");
      }
      Tuple probe;
      for (const auto& e : in.tuple) {
        auto v = Evaluate(*e, row);
        if (!v.ok()) return v.status();
        if (v->is_null()) return Value::Null();
        probe.Append(v.TakeValue());
      }
      auto present = executor_->AnswerContains(in.relation, probe, snapshot_);
      if (!present.ok()) return present.status();
      return Value::Bool(in.negated ? !present.value() : present.value());
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> ExpressionEvaluator::EvaluatePredicate(const Expr& expr,
                                                    const Tuple* row) const {
  auto v = Evaluate(expr, row);
  if (!v.ok()) return v.status();
  if (v->is_null()) return false;  // NULL is not TRUE
  if (v->type() != DataType::kBool) {
    return Status::InvalidArgument("predicate did not evaluate to a boolean");
  }
  return v->bool_value();
}

Result<Value> ExpressionEvaluator::EvaluateBinary(const BinaryExpr& expr,
                                                  const Tuple* row) const {
  // Kleene AND/OR need short-circuit-with-null handling.
  if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
    auto lhs = Evaluate(*expr.left, row);
    if (!lhs.ok()) return lhs.status();
    auto rhs = Evaluate(*expr.right, row);
    if (!rhs.ok()) return rhs.status();
    auto as_tri = [](const Value& v) -> Result<int> {
      if (v.is_null()) return -1;  // unknown
      if (v.type() != DataType::kBool) {
        return Status::InvalidArgument("AND/OR requires boolean operands");
      }
      return v.bool_value() ? 1 : 0;
    };
    auto l = as_tri(*lhs);
    if (!l.ok()) return l.status();
    auto r = as_tri(*rhs);
    if (!r.ok()) return r.status();
    if (expr.op == BinaryOp::kAnd) {
      if (l.value() == 0 || r.value() == 0) return Value::Bool(false);
      if (l.value() == -1 || r.value() == -1) return Value::Null();
      return Value::Bool(true);
    }
    if (l.value() == 1 || r.value() == 1) return Value::Bool(true);
    if (l.value() == -1 || r.value() == -1) return Value::Null();
    return Value::Bool(false);
  }

  auto lhs = Evaluate(*expr.left, row);
  if (!lhs.ok()) return lhs.status();
  auto rhs = Evaluate(*expr.right, row);
  if (!rhs.ok()) return rhs.status();

  switch (expr.op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLte:
    case BinaryOp::kGt:
    case BinaryOp::kGte:
      return EvaluateComparison(expr.op, *lhs, *rhs);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return EvaluateArithmetic(expr.op, *lhs, *rhs);
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Value> ExpressionEvaluator::EvaluateComparison(BinaryOp op,
                                                      const Value& lhs,
                                                      const Value& rhs) const {
  return CompareValues(op, lhs, rhs);
}

Result<Value> CompareValues(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  // Numeric comparison across int64/double; otherwise types must match.
  const bool numeric =
      (lhs.type() == DataType::kInt64 || lhs.type() == DataType::kDouble) &&
      (rhs.type() == DataType::kInt64 || rhs.type() == DataType::kDouble);
  if (!numeric && lhs.type() != rhs.type()) {
    return Status::InvalidArgument(
        "cannot compare " + std::string(DataTypeToString(lhs.type())) +
        " with " + DataTypeToString(rhs.type()));
  }

  int cmp;  // -1, 0, 1
  if (numeric && (lhs.type() == DataType::kDouble ||
                  rhs.type() == DataType::kDouble)) {
    const double a = lhs.AsDouble().value();
    const double b = rhs.AsDouble().value();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (lhs.type() == DataType::kInt64) {
    const int64_t a = lhs.int64_value();
    const int64_t b = rhs.int64_value();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (lhs.type() == DataType::kString) {
    cmp = lhs.string_value().compare(rhs.string_value());
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else {  // bool
    const int a = lhs.bool_value() ? 1 : 0;
    const int b = rhs.bool_value() ? 1 : 0;
    cmp = a - b;
  }

  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(cmp == 0);
    case BinaryOp::kNeq:
      return Value::Bool(cmp != 0);
    case BinaryOp::kLt:
      return Value::Bool(cmp < 0);
    case BinaryOp::kLte:
      return Value::Bool(cmp <= 0);
    case BinaryOp::kGt:
      return Value::Bool(cmp > 0);
    case BinaryOp::kGte:
      return Value::Bool(cmp >= 0);
    default:
      return Status::Internal("not a comparison op");
  }
}

Result<Value> ExpressionEvaluator::EvaluateArithmetic(BinaryOp op,
                                                      const Value& lhs,
                                                      const Value& rhs) const {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  // String concatenation via '+' (used to build display names).
  if (op == BinaryOp::kAdd && lhs.type() == DataType::kString &&
      rhs.type() == DataType::kString) {
    return Value::String(lhs.string_value() + rhs.string_value());
  }

  if (lhs.type() == DataType::kInt64 && rhs.type() == DataType::kInt64) {
    const int64_t a = lhs.int64_value();
    const int64_t b = rhs.int64_value();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int64(a + b);
      case BinaryOp::kSub:
        return Value::Int64(a - b);
      case BinaryOp::kMul:
        return Value::Int64(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int64(a / b);
      default:
        break;
    }
  }
  auto a = lhs.AsDouble();
  if (!a.ok()) {
    return Status::InvalidArgument("arithmetic requires numeric operands, got " +
                                   lhs.ToString());
  }
  auto b = rhs.AsDouble();
  if (!b.ok()) {
    return Status::InvalidArgument("arithmetic requires numeric operands, got " +
                                   rhs.ToString());
  }
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(a.value() + b.value());
    case BinaryOp::kSub:
      return Value::Double(a.value() - b.value());
    case BinaryOp::kMul:
      return Value::Double(a.value() * b.value());
    case BinaryOp::kDiv:
      if (b.value() == 0.0) {
        return Status::InvalidArgument("division by zero");
      }
      return Value::Double(a.value() / b.value());
    default:
      return Status::Internal("not an arithmetic op");
  }
}

Result<bool> CompareValuesBool(BinaryOp op, const Value& lhs,
                               const Value& rhs) {
  auto v = CompareValues(op, lhs, rhs);
  if (!v.ok()) return v.status();
  if (v->is_null()) return false;
  return v->bool_value();
}

Result<Value> EvaluateConstant(const Expr& expr) {
  ExpressionEvaluator eval(nullptr, nullptr);
  return eval.Evaluate(expr, nullptr);
}

}  // namespace youtopia
