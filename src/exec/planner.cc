#include "exec/planner.h"

#include "common/string_util.h"
#include "sql/unparser.h"

namespace youtopia {

std::vector<const Expr*> SplitConjuncts(const Expr* predicate) {
  std::vector<const Expr*> out;
  if (predicate == nullptr) return out;
  if (predicate->kind == ExprKind::kBinary) {
    const auto& b = As<BinaryExpr>(*predicate);
    if (b.op == BinaryOp::kAnd) {
      auto left = SplitConjuncts(b.left.get());
      auto right = SplitConjuncts(b.right.get());
      out.insert(out.end(), left.begin(), left.end());
      out.insert(out.end(), right.begin(), right.end());
      return out;
    }
  }
  out.push_back(predicate);
  return out;
}

namespace {

/// Matches `col = <constant literal>` (either side) against the given
/// scope; returns (column name, key) if the column belongs to `table_ref`
/// and is indexed.
struct IndexableConjunct {
  std::string column;
  Value key;
};

std::optional<IndexableConjunct> MatchIndexable(
    const Expr* conjunct, const SelectStatement::TableRef& ref,
    const Schema& schema, const StorageEngine* storage) {
  if (conjunct->kind != ExprKind::kBinary) return std::nullopt;
  const auto& b = As<BinaryExpr>(*conjunct);
  if (b.op != BinaryOp::kEq) return std::nullopt;

  const Expr* col_side = nullptr;
  const Expr* lit_side = nullptr;
  if (b.left->kind == ExprKind::kColumnRef &&
      b.right->kind == ExprKind::kLiteral) {
    col_side = b.left.get();
    lit_side = b.right.get();
  } else if (b.right->kind == ExprKind::kColumnRef &&
             b.left->kind == ExprKind::kLiteral) {
    col_side = b.right.get();
    lit_side = b.left.get();
  } else {
    return std::nullopt;
  }

  const auto& col = As<ColumnRefExpr>(*col_side);
  const std::string scope = ref.alias.empty() ? ref.table : ref.alias;
  if (!col.qualifier.empty() && !EqualsIgnoreCase(col.qualifier, scope)) {
    return std::nullopt;
  }
  if (!schema.FindColumn(col.column).has_value()) return std::nullopt;
  if (!storage->HasIndex(ref.table, col.column)) return std::nullopt;
  return IndexableConjunct{col.column, As<LiteralExpr>(*lit_side).value};
}

/// Matches an equi-join conjunct `x.col = y.col` where one side resolves
/// in `bound` (columns of the scans already stacked) and the other in
/// `incoming` (the scan being added). Returns (bound index, incoming
/// index) for a HashJoinNode.
struct JoinKeys {
  size_t left;   ///< Index within the accumulated (bound) tuple.
  size_t right;  ///< Index within the incoming scan's tuple.
};

std::optional<JoinKeys> MatchEquiJoin(const Expr* conjunct,
                                      const BoundColumns& bound,
                                      const BoundColumns& incoming) {
  if (conjunct->kind != ExprKind::kBinary) return std::nullopt;
  const auto& b = As<BinaryExpr>(*conjunct);
  if (b.op != BinaryOp::kEq) return std::nullopt;
  if (b.left->kind != ExprKind::kColumnRef ||
      b.right->kind != ExprKind::kColumnRef) {
    return std::nullopt;
  }
  const auto& lhs = As<ColumnRefExpr>(*b.left);
  const auto& rhs = As<ColumnRefExpr>(*b.right);
  auto bl = bound.Resolve(lhs.qualifier, lhs.column);
  auto ir = incoming.Resolve(rhs.qualifier, rhs.column);
  if (bl.ok() && ir.ok()) return JoinKeys{bl.value(), ir.value()};
  auto br = bound.Resolve(rhs.qualifier, rhs.column);
  auto il = incoming.Resolve(lhs.qualifier, lhs.column);
  if (br.ok() && il.ok()) return JoinKeys{br.value(), il.value()};
  return std::nullopt;
}

}  // namespace

Result<PlannedSelect> Planner::PlanSelect(const SelectStatement& stmt) const {
  if (stmt.IsEntangled()) {
    return Status::InvalidArgument(
        "entangled queries are handled by the coordinator, not the executor");
  }
  if (stmt.from.empty() && !stmt.select_list.empty()) {
    // Constant SELECT (e.g. SELECT 1+1): plan as projection over one
    // empty row.
    PlannedSelect planned;
    planned.columns = std::make_unique<BoundColumns>();
    // A scan-less constant select is handled by the executor directly;
    // signal with a null root.
    planned.root = nullptr;
    for (const auto& e : stmt.select_list) {
      planned.column_names.push_back(ExprToName(e.get()));
    }
    return planned;
  }

  PlannedSelect planned;
  planned.columns = std::make_unique<BoundColumns>();

  // Build scan nodes for each FROM entry and register their columns.
  std::unique_ptr<PlanNode> root;
  size_t base = 0;
  const auto conjuncts = SplitConjuncts(stmt.where.get());
  // Tracks which conjunct was absorbed into an index scan.
  const Expr* absorbed = nullptr;

  for (size_t t = 0; t < stmt.from.size(); ++t) {
    const auto& ref = stmt.from[t];
    auto info = storage_->catalog().GetTable(ref.table);
    if (!info.ok()) return info.status();
    const std::string scope = ref.alias.empty() ? ref.table : ref.alias;

    // Name table for just this scan, used to detect equi-join conjuncts
    // linking it to the scans already stacked.
    BoundColumns incoming;
    incoming.AddSource(scope, info->schema, 0);

    std::unique_ptr<PlanNode> scan;
    if (stmt.from.size() == 1 && absorbed == nullptr) {
      for (const Expr* c : conjuncts) {
        auto m = MatchIndexable(c, ref, info->schema, storage_);
        if (m.has_value()) {
          scan = std::make_unique<IndexScanNode>(ref.table, m->column,
                                                 m->key);
          absorbed = c;
          break;
        }
      }
    }
    if (!scan) scan = std::make_unique<SeqScanNode>(ref.table);

    if (!root) {
      root = std::move(scan);
    } else {
      // Prefer a hash join when a conjunct equates a column of the new
      // table with one of the already-joined tables; otherwise fall
      // back to a cross product (residual filter handles conditions).
      std::optional<JoinKeys> keys;
      for (const Expr* c : conjuncts) {
        keys = MatchEquiJoin(c, *planned.columns, incoming);
        if (keys.has_value()) break;
      }
      if (keys.has_value()) {
        root = std::make_unique<HashJoinNode>(std::move(root),
                                              std::move(scan), keys->left,
                                              keys->right);
      } else {
        root = std::make_unique<CrossJoinNode>(std::move(root),
                                               std::move(scan));
      }
    }
    planned.columns->AddSource(scope, info->schema, base);
    base += info->schema.num_columns();
  }

  // Residual filter: everything except the absorbed conjunct. We filter
  // with the full predicate unless the absorbed conjunct was the whole
  // WHERE clause (re-checking it would be correct but wasted work only
  // when it is the sole conjunct).
  if (stmt.where != nullptr &&
      !(absorbed != nullptr && conjuncts.size() == 1)) {
    root = std::make_unique<FilterNode>(std::move(root), stmt.where.get(),
                                        planned.columns.get());
  }

  // Projection. `*` expands to all bound columns.
  std::vector<const Expr*> projections;
  bool star = false;
  for (const auto& e : stmt.select_list) {
    if (e->kind == ExprKind::kColumnRef &&
        As<ColumnRefExpr>(*e).column == "*") {
      star = true;
      continue;
    }
    projections.push_back(e.get());
    planned.column_names.push_back(ExprToName(e.get()));
  }
  if (star) {
    if (!projections.empty()) {
      return Status::InvalidArgument("'*' cannot be mixed with expressions");
    }
    // Identity projection: skip the ProjectNode entirely.
    for (const auto& entry : planned.columns->entries()) {
      planned.column_names.push_back(entry.column);
    }
    planned.root = std::move(root);
    return planned;
  }

  planned.root = std::make_unique<ProjectNode>(std::move(root),
                                               std::move(projections),
                                               planned.columns.get());
  return planned;
}

}  // namespace youtopia
