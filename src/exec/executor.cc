#include "exec/executor.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/expression_eval.h"

namespace youtopia {

std::string QueryResult::ToString() const {
  if (column_names.empty()) {
    return StringPrintf("OK, %zu row(s) affected", affected_rows);
  }
  // Compute column widths.
  std::vector<size_t> widths(column_names.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < column_names.size(); ++i) {
    widths[i] = column_names[i].size();
  }
  cells.reserve(rows.size());
  for (const Tuple& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < column_names.size(); ++i) {
      std::string cell = i < row.size() ? row.at(i).ToString() : "";
      widths[i] = std::max(widths[i], cell.size());
      line.push_back(std::move(cell));
    }
    cells.push_back(std::move(line));
  }
  auto rule = [&widths]() {
    std::string out = "+";
    for (size_t w : widths) out += std::string(w + 2, '-') + "+";
    return out + "\n";
  };
  auto line = [&widths](const std::vector<std::string>& fields) {
    std::string out = "|";
    for (size_t i = 0; i < fields.size(); ++i) {
      out += " " + fields[i] + std::string(widths[i] - fields[i].size(), ' ') +
             " |";
    }
    return out + "\n";
  };
  std::string out = rule();
  out += line(column_names);
  out += rule();
  for (const auto& row : cells) out += line(row);
  out += rule();
  out += StringPrintf("%zu row(s)", rows.size());
  return out;
}

Result<QueryResult> Executor::Execute(const Statement& stmt, TxnId txn,
                                      Ts snapshot) {
  switch (stmt.kind) {
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(static_cast<const CreateTableStatement&>(stmt));
    case StatementKind::kCreateIndex:
      return ExecuteCreateIndex(static_cast<const CreateIndexStatement&>(stmt));
    case StatementKind::kDropTable:
      return ExecuteDropTable(static_cast<const DropTableStatement&>(stmt));
    case StatementKind::kInsert:
      return ExecuteInsert(static_cast<const InsertStatement&>(stmt), txn);
    case StatementKind::kDelete:
      return ExecuteDelete(static_cast<const DeleteStatement&>(stmt), txn);
    case StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const UpdateStatement&>(stmt), txn);
    case StatementKind::kSelect:
      return ExecuteSelect(static_cast<const SelectStatement&>(stmt),
                           snapshot);
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> Executor::ExecuteSelect(const SelectStatement& stmt,
                                            Ts snapshot) {
  auto planned = planner_.PlanSelect(stmt);
  if (!planned.ok()) return planned.status();
  return ExecutePlanned(stmt, *planned, snapshot);
}

Result<QueryResult> Executor::ExecutePlanned(const SelectStatement& stmt,
                                             const PlannedSelect& planned,
                                             Ts snapshot) {
  QueryResult result;
  result.column_names = planned.column_names;

  if (planned.root == nullptr) {
    // Constant SELECT: evaluate the projection list over no row.
    ExpressionEvaluator eval(nullptr, this, snapshot);
    Tuple row;
    for (const auto& e : stmt.select_list) {
      auto v = eval.Evaluate(*e, nullptr);
      if (!v.ok()) return v.status();
      row.Append(v.TakeValue());
    }
    result.rows.push_back(std::move(row));
    return result;
  }

  ExecContext ctx{storage_, this, snapshot};
  auto rows = planned.root->Execute(ctx);
  if (!rows.ok()) return rows.status();
  result.rows = rows.TakeValue();
  return result;
}

Result<std::vector<Value>> Executor::EvaluateSubquery(
    const SelectStatement& stmt, Ts snapshot) {
  auto result = ExecuteSelect(stmt, snapshot);
  if (!result.ok()) return result.status();
  if (result->column_names.size() != 1) {
    return Status::InvalidArgument(
        "IN subquery must produce exactly one column");
  }
  std::vector<Value> out;
  out.reserve(result->rows.size());
  for (const Tuple& row : result->rows) {
    out.push_back(row.at(0));
  }
  return out;
}

Result<bool> Executor::AnswerContains(const std::string& relation,
                                      const Tuple& probe, Ts snapshot) {
  auto info = storage_->catalog().GetTable(relation);
  if (!info.ok()) {
    return Status::NotFound("answer relation " + relation +
                            " does not exist");
  }
  if (probe.size() != info->schema.num_columns()) {
    return Status::InvalidArgument(StringPrintf(
        "IN ANSWER %s probe has %zu values, relation has %zu columns",
        relation.c_str(), probe.size(), info->schema.num_columns()));
  }
  auto rows = snapshot != 0 ? storage_->ScanSnapshot(relation, snapshot)
                            : storage_->Scan(relation);
  if (!rows.ok()) return rows.status();
  for (const auto& [rid, tuple] : *rows) {
    if (tuple == probe) return true;
  }
  return false;
}

Result<QueryResult> Executor::ExecuteCreateTable(
    const CreateTableStatement& stmt) {
  std::vector<Column> columns;
  columns.reserve(stmt.columns.size());
  for (const auto& def : stmt.columns) {
    auto type = DataTypeFromString(def.type_name);
    if (!type.ok()) return type.status();
    columns.push_back({def.name, type.value(), !def.not_null});
  }
  auto schema = Schema::Create(std::move(columns));
  if (!schema.ok()) return schema.status();
  YOUTOPIA_RETURN_IF_ERROR(
      storage_->CreateTable(stmt.table, schema.TakeValue()));
  return QueryResult{};
}

Result<QueryResult> Executor::ExecuteCreateIndex(
    const CreateIndexStatement& stmt) {
  YOUTOPIA_RETURN_IF_ERROR(storage_->CreateIndex(stmt.table, stmt.column));
  return QueryResult{};
}

Result<QueryResult> Executor::ExecuteDropTable(
    const DropTableStatement& stmt) {
  YOUTOPIA_RETURN_IF_ERROR(storage_->DropTable(stmt.table));
  return QueryResult{};
}

Result<QueryResult> Executor::ExecuteInsert(const InsertStatement& stmt,
                                            TxnId txn) {
  QueryResult result;
  for (const auto& row_exprs : stmt.rows) {
    Tuple row;
    for (const auto& e : row_exprs) {
      auto v = EvaluateConstant(*e);
      if (!v.ok()) return v.status();
      row.Append(v.TakeValue());
    }
    auto rid = storage_->Insert(stmt.table, row, txn);
    if (!rid.ok()) return rid.status();
    ++result.affected_rows;
  }
  return result;
}

Result<QueryResult> Executor::ExecuteDelete(const DeleteStatement& stmt,
                                            TxnId txn) {
  auto info = storage_->catalog().GetTable(stmt.table);
  if (!info.ok()) return info.status();
  BoundColumns columns;
  columns.AddSource(stmt.table, info->schema, 0);
  ExpressionEvaluator eval(&columns, this);

  auto rows = storage_->Scan(stmt.table);
  if (!rows.ok()) return rows.status();
  QueryResult result;
  for (const auto& [rid, tuple] : *rows) {
    bool match = true;
    if (stmt.where) {
      auto keep = eval.EvaluatePredicate(*stmt.where, &tuple);
      if (!keep.ok()) return keep.status();
      match = keep.value();
    }
    if (match) {
      YOUTOPIA_RETURN_IF_ERROR(storage_->Delete(stmt.table, rid, txn));
      ++result.affected_rows;
    }
  }
  return result;
}

Result<QueryResult> Executor::ExecuteUpdate(const UpdateStatement& stmt,
                                            TxnId txn) {
  auto info = storage_->catalog().GetTable(stmt.table);
  if (!info.ok()) return info.status();
  BoundColumns columns;
  columns.AddSource(stmt.table, info->schema, 0);
  ExpressionEvaluator eval(&columns, this);

  // Resolve assignment targets once.
  std::vector<size_t> targets;
  for (const auto& [col, expr] : stmt.assignments) {
    auto idx = info->schema.ColumnIndex(col);
    if (!idx.ok()) return idx.status();
    targets.push_back(idx.value());
  }

  auto rows = storage_->Scan(stmt.table);
  if (!rows.ok()) return rows.status();
  QueryResult result;
  for (const auto& [rid, tuple] : *rows) {
    bool match = true;
    if (stmt.where) {
      auto keep = eval.EvaluatePredicate(*stmt.where, &tuple);
      if (!keep.ok()) return keep.status();
      match = keep.value();
    }
    if (!match) continue;
    Tuple updated = tuple;
    for (size_t i = 0; i < stmt.assignments.size(); ++i) {
      auto v = eval.Evaluate(*stmt.assignments[i].second, &tuple);
      if (!v.ok()) return v.status();
      updated.at(targets[i]) = v.TakeValue();
    }
    YOUTOPIA_RETURN_IF_ERROR(storage_->Update(stmt.table, rid, updated, txn));
    ++result.affected_rows;
  }
  return result;
}

}  // namespace youtopia
