#ifndef YOUTOPIA_EXEC_PLAN_H_
#define YOUTOPIA_EXEC_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/expression_eval.h"
#include "storage/storage_engine.h"

namespace youtopia {

class Executor;

/// Execution context threaded through a plan tree.
struct ExecContext {
  StorageEngine* storage = nullptr;
  /// Back-reference for subquery / IN ANSWER evaluation inside predicates.
  Executor* executor = nullptr;
  /// MVCC read timestamp: every scan, index probe and predicate
  /// subquery in the tree resolves visibility at this instant. 0 =
  /// current reads (the unversioned behavior).
  Ts snapshot = 0;
};

/// A physical plan operator. Operators materialize their output — the
/// engine is in-memory and demo-scale, so the simplicity of full
/// materialization wins over iterator plumbing.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  virtual Result<std::vector<Tuple>> Execute(ExecContext& ctx) const = 0;

  /// One-line operator description, e.g. "SeqScan(Flights)". The admin
  /// interface prints plan trees via ToStringTree.
  virtual std::string ToString() const = 0;

  /// Indented rendering of this subtree.
  std::string ToStringTree(int indent = 0) const;

  const std::vector<std::unique_ptr<PlanNode>>& children() const {
    return children_;
  }

 protected:
  std::vector<std::unique_ptr<PlanNode>> children_;
};

/// Full scan of a heap table.
class SeqScanNode : public PlanNode {
 public:
  explicit SeqScanNode(std::string table) : table_(std::move(table)) {}
  Result<std::vector<Tuple>> Execute(ExecContext& ctx) const override;
  std::string ToString() const override { return "SeqScan(" + table_ + ")"; }

 private:
  std::string table_;
};

/// Hash-index point lookup: rows of `table` where `column` == `key`.
class IndexScanNode : public PlanNode {
 public:
  IndexScanNode(std::string table, std::string column, Value key)
      : table_(std::move(table)), column_(std::move(column)),
        key_(std::move(key)) {}
  Result<std::vector<Tuple>> Execute(ExecContext& ctx) const override;
  std::string ToString() const override {
    return "IndexScan(" + table_ + "." + column_ + " = " + key_.ToString() +
           ")";
  }

 private:
  std::string table_;
  std::string column_;
  Value key_;
};

/// Cartesian product (conditions are applied by an enclosing Filter).
class CrossJoinNode : public PlanNode {
 public:
  CrossJoinNode(std::unique_ptr<PlanNode> left,
                std::unique_ptr<PlanNode> right) {
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }
  Result<std::vector<Tuple>> Execute(ExecContext& ctx) const override;
  std::string ToString() const override { return "CrossJoin"; }
};

/// Equi-join on one column pair, build side = left.
class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(std::unique_ptr<PlanNode> left, std::unique_ptr<PlanNode> right,
               size_t left_key, size_t right_key)
      : left_key_(left_key), right_key_(right_key) {
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }
  Result<std::vector<Tuple>> Execute(ExecContext& ctx) const override;
  std::string ToString() const override {
    return "HashJoin(left[" + std::to_string(left_key_) + "] = right[" +
           std::to_string(right_key_) + "])";
  }

 private:
  size_t left_key_;
  size_t right_key_;
};

/// Keeps rows where `predicate` evaluates to TRUE.
class FilterNode : public PlanNode {
 public:
  FilterNode(std::unique_ptr<PlanNode> child, const Expr* predicate,
             const BoundColumns* columns)
      : predicate_(predicate), columns_(columns) {
    children_.push_back(std::move(child));
  }
  Result<std::vector<Tuple>> Execute(ExecContext& ctx) const override;
  std::string ToString() const override;

 private:
  const Expr* predicate_;       ///< Owned by the statement AST.
  const BoundColumns* columns_; ///< Owned by the PlannedSelect.
};

/// Evaluates the projection expressions for each input row.
class ProjectNode : public PlanNode {
 public:
  ProjectNode(std::unique_ptr<PlanNode> child,
              std::vector<const Expr*> exprs, const BoundColumns* columns)
      : exprs_(std::move(exprs)), columns_(columns) {
    children_.push_back(std::move(child));
  }
  Result<std::vector<Tuple>> Execute(ExecContext& ctx) const override;
  std::string ToString() const override {
    return "Project(" + std::to_string(exprs_.size()) + " exprs)";
  }

 private:
  std::vector<const Expr*> exprs_;
  const BoundColumns* columns_;
};

}  // namespace youtopia

#endif  // YOUTOPIA_EXEC_PLAN_H_
