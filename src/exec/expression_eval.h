#ifndef YOUTOPIA_EXEC_EXPRESSION_EVAL_H_
#define YOUTOPIA_EXEC_EXPRESSION_EVAL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "txn/mvcc.h"
#include "types/tuple.h"

namespace youtopia {

class Executor;

/// Column-name resolution table for one query scope: maps
/// (qualifier, column) pairs to positions in the combined input tuple.
class BoundColumns {
 public:
  /// Adds all columns of `schema` under `qualifier` (alias or table name),
  /// offset by `base` in the combined tuple.
  void AddSource(const std::string& qualifier, const Schema& schema,
                 size_t base);

  /// Resolves a reference. Unqualified names search all sources;
  /// ambiguity is an error. NotFound if absent.
  Result<size_t> Resolve(const std::string& qualifier,
                         const std::string& column) const;

  /// All entries in declaration order (for `*` expansion).
  struct Entry {
    std::string qualifier;
    std::string column;
    size_t index;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// Evaluates expression trees over a row, with SQL three-valued logic:
/// comparisons against NULL yield NULL; AND/OR follow Kleene semantics;
/// a filter accepts a row only when the predicate is exactly TRUE.
///
/// `executor` (optional) services `IN (SELECT ...)` subqueries and
/// `IN ANSWER R` membership tests against the stored answer relation —
/// the latter is what lets users *browse* coordinated bookings with
/// regular queries (paper §3.1, the browse-then-book path).
class ExpressionEvaluator {
 public:
  /// `snapshot` (optional) is the MVCC read timestamp subqueries and
  /// IN ANSWER probes resolve at, so every read inside one snapshot
  /// SELECT observes the same instant. 0 = current reads.
  ExpressionEvaluator(const BoundColumns* columns, Executor* executor,
                      Ts snapshot = 0)
      : columns_(columns), executor_(executor), snapshot_(snapshot) {}

  /// Evaluates `expr` against `row` (may be null for constant folding).
  Result<Value> Evaluate(const Expr& expr, const Tuple* row) const;

  /// Evaluates as a filter predicate: true iff result is TRUE.
  Result<bool> EvaluatePredicate(const Expr& expr, const Tuple* row) const;

 private:
  Result<Value> EvaluateBinary(const BinaryExpr& expr, const Tuple* row) const;
  Result<Value> EvaluateComparison(BinaryOp op, const Value& lhs,
                                   const Value& rhs) const;
  Result<Value> EvaluateArithmetic(BinaryOp op, const Value& lhs,
                                   const Value& rhs) const;

  const BoundColumns* columns_;  ///< May be null (constants only).
  Executor* executor_;           ///< May be null (no subqueries).
  Ts snapshot_;                  ///< 0 = current reads.
};

/// Convenience: evaluates an expression that must be constant (INSERT
/// values). Errors on column references or subqueries.
Result<Value> EvaluateConstant(const Expr& expr);

/// SQL comparison over two values, shared by the evaluator and the
/// entangled-query matcher. NULL operands yield NULL.
Result<Value> CompareValues(BinaryOp op, const Value& lhs, const Value& rhs);

/// Comparison folded to a filter decision: true iff result is TRUE.
Result<bool> CompareValuesBool(BinaryOp op, const Value& lhs,
                               const Value& rhs);

}  // namespace youtopia

#endif  // YOUTOPIA_EXEC_EXPRESSION_EVAL_H_
