#ifndef YOUTOPIA_EXEC_PLANNER_H_
#define YOUTOPIA_EXEC_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/plan.h"
#include "sql/ast.h"

namespace youtopia {

/// A planned regular SELECT: the physical tree plus the name-resolution
/// table it references and the output column names. The plan borrows
/// expression nodes from the statement, so the SelectStatement must
/// outlive execution.
struct PlannedSelect {
  std::unique_ptr<PlanNode> root;
  std::unique_ptr<BoundColumns> columns;
  std::vector<std::string> column_names;
};

/// Translates regular SELECT ASTs to physical plans. Planning picks an
/// index scan when the single FROM table has an equality conjunct
/// `col = constant` over an indexed column; everything else becomes
/// scan → cross join → filter → project.
class Planner {
 public:
  explicit Planner(const StorageEngine* storage) : storage_(storage) {}

  /// Fails with InvalidArgument for entangled statements — those go to
  /// the coordination component, not the executor.
  Result<PlannedSelect> PlanSelect(const SelectStatement& stmt) const;

 private:
  const StorageEngine* storage_;
};

/// Splits a predicate into top-level AND conjuncts (borrowed pointers).
std::vector<const Expr*> SplitConjuncts(const Expr* predicate);

}  // namespace youtopia

#endif  // YOUTOPIA_EXEC_PLANNER_H_
