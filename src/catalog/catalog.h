#ifndef YOUTOPIA_CATALOG_CATALOG_H_
#define YOUTOPIA_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "types/schema.h"

namespace youtopia {

/// Unique id of a table within one Youtopia instance.
using TableId = uint32_t;

/// Catalog entry for one table.
struct TableInfo {
  TableId id = 0;
  std::string name;          ///< Original-case name as created.
  Schema schema;
  /// Column indexes that carry a hash index (maintained by the storage
  /// engine). Kept here so the planner can pick index scans.
  std::vector<size_t> indexed_columns;
  /// Schema-generation stamp of *this table*, drawn from the global
  /// version counter at every mutation that touches it (create, index
  /// add, install-hook registration). Monotone across drop/recreate —
  /// a recreated table always carries a fresh stamp, so a plan built
  /// against the old incarnation can never read as current.
  uint64_t version = 0;
};

/// Name → table metadata registry. Names are case-insensitive. The catalog
/// is thread-safe: the coordination component resolves table metadata from
/// concurrent sessions.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a new table; fails with AlreadyExists on duplicate names.
  Result<TableId> CreateTable(const std::string& name, Schema schema);

  /// Unregisters; fails with NotFound if absent.
  Status DropTable(const std::string& name);

  /// Metadata lookup by name (copy; metadata is small).
  Result<TableInfo> GetTable(const std::string& name) const;

  /// Metadata lookup by id.
  Result<TableInfo> GetTable(TableId id) const;

  bool HasTable(const std::string& name) const;

  /// Records that `column_index` of `table` now has a hash index.
  Status AddIndexedColumn(const std::string& table, size_t column_index);

  /// All tables, sorted by name (for the admin interface).
  std::vector<TableInfo> ListTables() const;

  /// Monotone schema-generation counter, bumped by every successful
  /// mutation (CreateTable / DropTable / AddIndexedColumn) and by
  /// out-of-band semantic changes reported via BumpVersion (the
  /// coordinator's install-hook registration). The plan cache stamps
  /// every cached plan with the version current when planning started;
  /// a stamp that no longer matches marks the plan stale (design
  /// decision #7). Readable without the catalog mutex — the prepare
  /// path polls it per statement.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Marks every plan prepared before this call stale. Called
  /// internally by the mutators above; external components call it when
  /// they change something plans may depend on without touching the
  /// catalog maps themselves.
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  /// Per-table schema-generation stamp (design decision #7, refined):
  /// the version counter the plan cache actually compares, so DDL on
  /// one table leaves every other table's plans warm. 0 when the table
  /// does not exist — which also never matches a recorded stamp, so a
  /// plan over a dropped table reads as stale.
  uint64_t TableVersion(const std::string& name) const;

  /// Bumps the global counter once and restamps *every* table with the
  /// new value: a semantic change that isn't scoped to one table (the
  /// coordinator's install-hook registration changes how entangled
  /// answers appear everywhere) must stale all plans, per-table stamps
  /// included.
  void BumpAllTableVersions();

 private:
  /// Acquired inside DDL critical sections (under kWal) and from the
  /// planner/matcher with coordinator shard mutexes held; takes nothing
  /// itself.
  mutable Mutex mu_{LockRank::kCatalog, "catalog"};
  TableId next_id_ GUARDED_BY(mu_) = 1;
  std::atomic<uint64_t> version_{1};
  /// Keyed by lowercase name.
  std::map<std::string, TableInfo> tables_ GUARDED_BY(mu_);
};

}  // namespace youtopia

#endif  // YOUTOPIA_CATALOG_CATALOG_H_
