#include "catalog/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace youtopia {

Result<TableId> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (name.empty()) {
    return Status::InvalidArgument("table name may not be empty");
  }
  MutexLock lock(mu_);
  const std::string key = ToLowerAscii(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  TableInfo info;
  info.id = next_id_++;
  info.name = name;
  info.schema = std::move(schema);
  BumpVersion();
  // Stamp with the freshly bumped global value: monotone even across a
  // drop/recreate of the same name, so stale plans can never match.
  info.version = version();
  const TableId id = info.id;
  tables_.emplace(key, std::move(info));
  return id;
}

Status Catalog::DropTable(const std::string& name) {
  MutexLock lock(mu_);
  const std::string key = ToLowerAscii(name);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("no table named " + name);
  }
  BumpVersion();
  return Status::OK();
}

Result<TableInfo> Catalog::GetTable(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = tables_.find(ToLowerAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return it->second;
}

Result<TableInfo> Catalog::GetTable(TableId id) const {
  MutexLock lock(mu_);
  for (const auto& [key, info] : tables_) {
    if (info.id == id) return info;
  }
  return Status::NotFound("no table with id " + std::to_string(id));
}

bool Catalog::HasTable(const std::string& name) const {
  MutexLock lock(mu_);
  return tables_.count(ToLowerAscii(name)) > 0;
}

Status Catalog::AddIndexedColumn(const std::string& table,
                                 size_t column_index) {
  MutexLock lock(mu_);
  auto it = tables_.find(ToLowerAscii(table));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + table);
  }
  if (column_index >= it->second.schema.num_columns()) {
    return Status::OutOfRange("column index out of range for " + table);
  }
  auto& cols = it->second.indexed_columns;
  if (std::find(cols.begin(), cols.end(), column_index) != cols.end()) {
    return Status::AlreadyExists("column already indexed");
  }
  cols.push_back(column_index);
  BumpVersion();
  it->second.version = version();
  return Status::OK();
}

uint64_t Catalog::TableVersion(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = tables_.find(ToLowerAscii(name));
  return it == tables_.end() ? 0 : it->second.version;
}

void Catalog::BumpAllTableVersions() {
  MutexLock lock(mu_);
  BumpVersion();
  const uint64_t v = version();
  for (auto& [key, info] : tables_) info.version = v;
}

std::vector<TableInfo> Catalog::ListTables() const {
  MutexLock lock(mu_);
  std::vector<TableInfo> out;
  out.reserve(tables_.size());
  for (const auto& [key, info] : tables_) out.push_back(info);
  return out;
}

}  // namespace youtopia
