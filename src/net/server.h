#ifndef YOUTOPIA_NET_SERVER_H_
#define YOUTOPIA_NET_SERVER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "net/metrics_exporter.h"
#include "net/protocol.h"
#include "server/youtopia.h"

namespace youtopia::net {

struct ServerConfig {
  /// IPv4 address to bind. Loopback by default: exposing an engine
  /// beyond the host is a deployment decision (TLS is ROADMAP headroom).
  std::string bind_address = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read the actual one via port().
  uint16_t port = 0;
  int listen_backlog = 64;
  uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Per-connection send timeout. A client that stops draining its
  /// socket would otherwise block response writers — executor workers,
  /// completion-push threads — in ::send forever once its buffer fills;
  /// after this long the write fails and the connection is dropped, so
  /// one stalled client can never freeze the shared engine.
  std::chrono::milliseconds send_timeout{5000};
  /// Plaintext metrics endpoint (`/metrics`-style, Prometheus text
  /// format) on a side listener. -1 (the default) disables it; 0 binds
  /// a kernel-assigned port — read the actual one via metrics_port().
  int metrics_port = -1;
};

/// The wire-protocol front end over one embedded `Youtopia` — what turns
/// the engine into the shared tier of the paper's architecture: many
/// remote middle tiers, one coordinator and one executor-service worker
/// pool (design decision #6).
///
/// One lightweight reader thread per connection decodes frames and
/// routes them:
///   - Execute / Run / ExecuteScript become `StatementTask`s on the
///     engine's ExecutorService, with the connection as the FIFO session
///     — exactly how an in-process `Client` drives the engine, so remote
///     statements share the pool (and its conflict-requeue machinery)
///     with everything else. The completion continuation encodes the
///     response and writes it back from whichever thread finished the
///     task.
///   - Submit / SubmitBatch register with the coordinator directly
///     (non-blocking, as in-process). Entangled completions are pushed
///     asynchronously as `CompletionPush` frames via
///     `EntangledHandle::OnComplete` — no server thread parks per
///     pending coordination, and the push is always sequenced after the
///     response that announced the handle.
///
/// Backpressure: a connection that outruns the executor service blocks
/// its own reader in `Submit` (bounded queue), which stops draining the
/// socket and lets TCP flow control push back on the client — per-client
/// fairness falls out of per-session FIFO rather than a bespoke window.
class YoutopiaServer {
 public:
  struct Stats {
    size_t connections_accepted = 0;
    size_t connections_active = 0;
    /// Frames decoded and dispatched (requests only, not pushes).
    size_t requests = 0;
    /// Of `requests`, a breakdown by frame type, indexed by the
    /// MessageType wire value (so requests_by_type[1] counts
    /// kExecuteRequest frames).
    std::array<size_t, 16> requests_by_type{};
    /// Statements rejected with kOverloaded at the executor's admission
    /// high-water mark — the wire-visible face of load shedding.
    size_t shed = 0;
    /// CompletionPush frames sent.
    size_t pushes = 0;
    /// Connections dropped for malformed or unexpected frames.
    size_t protocol_errors = 0;
  };

  explicit YoutopiaServer(Youtopia* db, ServerConfig config = {});
  ~YoutopiaServer();

  YoutopiaServer(const YoutopiaServer&) = delete;
  YoutopiaServer& operator=(const YoutopiaServer&) = delete;

  /// Binds, listens and spawns the accept loop. Fails if the address is
  /// taken or the server was already started.
  Status Start();

  /// Stops accepting, severs every connection and joins all threads.
  /// Statements already admitted to the executor service still complete
  /// (their responses go nowhere). Idempotent; the destructor calls it.
  void Stop();

  /// The bound TCP port (the kernel's pick when config.port was 0).
  /// Valid after a successful Start(). Reads under mu_: port_ is
  /// written by Start() on another thread, and an unguarded read here
  /// was a (benign-looking) data race the annotation pass uncovered.
  uint16_t port() const {
    MutexLock lock(mu_);
    return port_;
  }

  /// The bound metrics port; 0 when the endpoint is disabled. Valid
  /// after a successful Start().
  uint16_t metrics_port() const;

  bool running() const;
  Stats stats() const;

  /// Latency of admitted statements (Execute/Script/Run), dispatch to
  /// response, in microseconds. Snapshot copy; shed requests excluded.
  Histogram statement_latency() const;

  /// The page the metrics endpoint serves: engine counters (executor,
  /// coordinator, plan cache, WAL) plus the server's own request,
  /// shed and latency series, in Prometheus text format. Public so
  /// tests and operators can render without a scrape.
  std::string MetricsText() const;

 private:
  struct Connection;
  /// Stats shared with completion callbacks, which can outlive the
  /// server object (a pending coordination completes after Stop).
  struct SharedStats {
    /// Rank kNetServerStats: taken inside the server mutex (accept path
    /// books a connection while holding mu_).
    Mutex mu{LockRank::kNetServerStats, "net_server_stats"};
    Stats stats GUARDED_BY(mu);
    /// Admitted-statement latency. Internally synchronized (its own
    /// terminal-rank mutex), recorded from completion continuations
    /// without taking `mu`.
    Histogram statement_latency;
  };

  void AcceptLoop(int listen_fd);
  void ReaderLoop(uint64_t id, std::shared_ptr<Connection> conn);
  /// Joins reader threads whose connections ended and drops their
  /// Connection entries.
  void ReapFinishedLocked() REQUIRES(mu_);
  /// Routes one decoded frame; non-OK means protocol error (drop the
  /// connection).
  Status Dispatch(const std::shared_ptr<Connection>& conn,
                  const Frame& frame);

  /// Registers a CompletionPush to `conn` when `handle` completes.
  void PushOnCompletion(const std::shared_ptr<Connection>& conn,
                        EntangledHandle handle);

  Youtopia* db_;
  const ServerConfig config_;
  std::shared_ptr<SharedStats> shared_stats_ =
      std::make_shared<SharedStats>();
  /// Side listener for the metrics page. Started after the main
  /// listener in Start(); stopped (thread joined) first in Stop(), so
  /// its render callback never runs against a dying server.
  MetricsExporter metrics_exporter_;

  mutable Mutex mu_{LockRank::kNetServer, "net_server"};
  bool started_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  int listen_fd_ GUARDED_BY(mu_) = -1;
  uint16_t port_ GUARDED_BY(mu_) = 0;
  std::thread accept_thread_ GUARDED_BY(mu_);
  /// Live connections and their reader threads, keyed by the
  /// connection's session id. A reader that exits queues its key on
  /// `finished_`; the accept loop (per accepted connection) and Stop()
  /// reap — joining the thread and dropping the Connection reference —
  /// so a long-running server does not accumulate dead readers.
  std::map<uint64_t, std::shared_ptr<Connection>> connections_
      GUARDED_BY(mu_);
  std::map<uint64_t, std::thread> readers_ GUARDED_BY(mu_);
  std::vector<uint64_t> finished_ GUARDED_BY(mu_);
};

}  // namespace youtopia::net

#endif  // YOUTOPIA_NET_SERVER_H_
