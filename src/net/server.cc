#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "server/metrics.h"
#include "service/executor_service.h"

namespace youtopia::net {

namespace {

/// Client-side view of `handle` right now. Monotone: once done, outcome
/// and answers are stable, so a done=true snapshot is complete; a
/// done=false snapshot is completed later by the push path.
uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

WireHandle SnapshotHandle(const EntangledHandle& handle) {
  WireHandle wire;
  wire.query_id = handle.id();
  wire.done = handle.Done();
  if (wire.done) {
    wire.outcome = handle.Outcome().value_or(Status::OK());
    wire.answers = handle.Answers();
  }
  return wire;
}

/// Encodes and sends `resp`; if the frame would exceed the connection's
/// limit (the peer's assembler would reject it and drop the whole
/// connection), a same-type error response with the same request_id is
/// sent instead — one request fails, the connection survives. Returns
/// false when the fallback went out: the caller announced an *error*,
/// and must not follow up as if the real response was delivered (e.g.
/// no completion pushes for handles the client never learned about).
template <typename ConnPtr, typename Response>
bool SendResponseChecked(const ConnPtr& conn, uint32_t max_frame_bytes,
                         const Response& resp) {
  std::string frame = EncodeFrame(resp);
  const bool fits =
      frame.size() <= size_t{max_frame_bytes} + kFrameHeaderBytes;
  if (!fits) {
    Response fallback;
    fallback.request_id = resp.request_id;
    fallback.status = Status::OutOfRange(
        "encoded response (" + std::to_string(frame.size()) +
        " bytes) exceeds the frame limit");
    frame = EncodeFrame(fallback);
  }
  conn->Send(frame);
  return fits;
}

/// CompletionPush variant: oversize answers are replaced by an
/// OutOfRange outcome (never a silently-empty satisfied push — a client
/// acting on "satisfied, no answers" could double-book).
template <typename ConnPtr>
void SendPushChecked(const ConnPtr& conn, uint32_t max_frame_bytes,
                     const CompletionPush& push) {
  std::string frame = EncodeFrame(push);
  if (frame.size() > size_t{max_frame_bytes} + kFrameHeaderBytes) {
    CompletionPush fallback;
    fallback.query_id = push.query_id;
    fallback.outcome = Status::OutOfRange(
        "completion answers exceed the frame limit");
    frame = EncodeFrame(fallback);
  }
  conn->Send(frame);
}

/// Registers the one push callback both entangled paths (Submit-side
/// and Run-side) use: when `handle` completes, its terminal state goes
/// to `conn` as a CompletionPush. Holds connection and stats, never the
/// server — it may fire long after Stop().
template <typename ConnPtr, typename StatsPtr>
void PushWhenComplete(ConnPtr conn, StatsPtr stats, uint32_t max_frame_bytes,
                      EntangledHandle handle) {
  handle.OnComplete([conn = std::move(conn), stats = std::move(stats),
                     max_frame_bytes](const EntangledHandle& done) {
    CompletionPush push;
    push.query_id = done.id();
    push.outcome = done.Outcome().value_or(Status::OK());
    push.answers = done.Answers();
    SendPushChecked(conn, max_frame_bytes, push);
    MutexLock lock(stats->mu);
    ++stats->stats.pushes;
  });
}

}  // namespace

/// One accepted TCP connection. Held via shared_ptr by the reader
/// thread, by statement-task continuations and by completion-push
/// callbacks — whichever finishes last closes the descriptor.
struct YoutopiaServer::Connection {
  int fd = -1;
  /// The connection's FIFO domain in the executor service: statements
  /// from one remote client execute in submission order, different
  /// connections run in parallel across the pool.
  uint64_t session = 0;

  /// Rank kConnectionWrite: a leaf among the networking locks — Send
  /// runs only syscalls under it, never another acquisition.
  Mutex write_mu{LockRank::kConnectionWrite, "connection_write"};
  bool closed GUARDED_BY(write_mu) = false;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Writes one encoded frame atomically with respect to other writers
  /// (worker continuations, push callbacks, the reader). Errors mark
  /// the connection closed; later sends are no-ops.
  void Send(const std::string& frame) {
    MutexLock lock(write_mu);
    if (closed) return;
    size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        // EAGAIN/EWOULDBLOCK here is the SO_SNDTIMEO expiring: the peer
        // stopped draining its socket. Fatal either way — a stalled
        // client must never hold a shared executor worker in send().
        closed = true;
        ::shutdown(fd, SHUT_RDWR);
        return;
      }
      sent += static_cast<size_t>(n);
    }
  }

  /// Severs the connection: the reader's recv returns and writers stop.
  void Sever() {
    MutexLock lock(write_mu);
    closed = true;
    ::shutdown(fd, SHUT_RDWR);
  }
};

YoutopiaServer::YoutopiaServer(Youtopia* db, ServerConfig config)
    : db_(db),
      config_(std::move(config)),
      // The render callback runs on the exporter thread; Stop() joins
      // that thread before the server's own teardown, so `this` is
      // valid for as long as the callback can fire.
      metrics_exporter_([this] { return MetricsText(); }) {}

YoutopiaServer::~YoutopiaServer() { Stop(); }

Status YoutopiaServer::Start() {
  MutexLock lock(mu_);
  if (started_) return Status::AlreadyExists("server already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   config_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::Internal(
        "bind " + config_.bind_address + ":" +
        std::to_string(config_.port) + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, config_.listen_backlog) != 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (config_.metrics_port >= 0) {
    const Status metrics_started = metrics_exporter_.Start(
        config_.bind_address, static_cast<uint16_t>(config_.metrics_port));
    if (!metrics_started.ok()) {
      ::close(fd);
      return metrics_started;
    }
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  started_ = true;
  stopping_ = false;
  // The thread gets its own copy of the descriptor: Stop() nulls the
  // member while the loop is still blocked in accept().
  accept_thread_ = std::thread([this, fd] { AcceptLoop(fd); });
  return Status::OK();
}

void YoutopiaServer::Stop() {
  // First: no more scrapes. Joining the exporter thread here means no
  // render callback can observe the teardown below (it reads db_ and
  // the shared stats block, both still fully alive at this point).
  metrics_exporter_.Stop();
  std::map<uint64_t, std::shared_ptr<Connection>> connections;
  std::map<uint64_t, std::thread> readers;
  std::thread accept_thread;
  int listen_fd = -1;
  {
    MutexLock lock(mu_);
    if (!started_) return;
    started_ = false;
    stopping_ = true;
    listen_fd = listen_fd_;
    listen_fd_ = -1;
    // shutdown unblocks the accept loop; the descriptor is closed only
    // after that thread joins, so its number cannot be reused under it.
    ::shutdown(listen_fd, SHUT_RDWR);
    connections.swap(connections_);
    readers.swap(readers_);
    finished_.clear();
    accept_thread = std::move(accept_thread_);
  }
  for (const auto& [id, conn] : connections) conn->Sever();
  if (accept_thread.joinable()) accept_thread.join();
  if (listen_fd >= 0) ::close(listen_fd);
  for (auto& [id, reader] : readers) {
    if (reader.joinable()) reader.join();
  }
  // Connection objects (and their descriptors) are released as the last
  // completion callbacks holding them fire.
}

void YoutopiaServer::ReapFinishedLocked() {
  for (uint64_t id : finished_) {
    auto reader = readers_.find(id);
    if (reader != readers_.end()) {
      // The thread queued its id as its last action; join returns as
      // soon as it finishes unwinding.
      if (reader->second.joinable()) reader->second.join();
      readers_.erase(reader);
    }
    connections_.erase(id);
  }
  finished_.clear();
}

bool YoutopiaServer::running() const {
  MutexLock lock(mu_);
  return started_;
}

YoutopiaServer::Stats YoutopiaServer::stats() const {
  MutexLock lock(shared_stats_->mu);
  return shared_stats_->stats;
}

uint16_t YoutopiaServer::metrics_port() const {
  return config_.metrics_port >= 0 ? metrics_exporter_.port() : 0;
}

Histogram YoutopiaServer::statement_latency() const {
  return shared_stats_->statement_latency;
}

std::string YoutopiaServer::MetricsText() const {
  std::string out;
  AppendEngineMetrics(*db_, &out);

  Stats s;
  {
    MutexLock lock(shared_stats_->mu);
    s = shared_stats_->stats;
  }
  AppendMetric("youtopia_server_connections_accepted_total", "counter",
               static_cast<double>(s.connections_accepted), &out);
  AppendMetric("youtopia_server_connections_active", "gauge",
               static_cast<double>(s.connections_active), &out);
  AppendMetric("youtopia_server_requests_total", "counter",
               static_cast<double>(s.requests), &out);
  AppendMetric("youtopia_server_shed_total", "counter",
               static_cast<double>(s.shed), &out);
  AppendMetric("youtopia_server_pushes_total", "counter",
               static_cast<double>(s.pushes), &out);
  AppendMetric("youtopia_server_protocol_errors_total", "counter",
               static_cast<double>(s.protocol_errors), &out);

  char line[192];
  out += "# TYPE youtopia_server_requests_by_type_total counter\n";
  for (size_t i = 0; i < s.requests_by_type.size(); ++i) {
    if (s.requests_by_type[i] == 0) continue;
    std::snprintf(line, sizeof(line),
                  "youtopia_server_requests_by_type_total{type=\"%s\"} %llu\n",
                  MessageTypeToString(static_cast<MessageType>(i)),
                  static_cast<unsigned long long>(s.requests_by_type[i]));
    out += line;
  }

  const Histogram lat = shared_stats_->statement_latency;
  out += "# TYPE youtopia_server_statement_latency_us summary\n";
  const struct {
    const char* label;
    double p;
  } quantiles[] = {{"0.5", 50.0}, {"0.9", 90.0}, {"0.99", 99.0}};
  for (const auto& q : quantiles) {
    std::snprintf(
        line, sizeof(line),
        "youtopia_server_statement_latency_us{quantile=\"%s\"} %llu\n",
        q.label,
        static_cast<unsigned long long>(
            lat.count() == 0 ? 0 : lat.Percentile(q.p)));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "youtopia_server_statement_latency_us_sum %.0f\n",
                lat.mean() * static_cast<double>(lat.count()));
  out += line;
  std::snprintf(line, sizeof(line),
                "youtopia_server_statement_latency_us_count %llu\n",
                static_cast<unsigned long long>(lat.count()));
  out += line;
  return out;
}

void YoutopiaServer::AcceptLoop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Stop() shut the listener down (or it's genuinely dead).
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.send_timeout.count() > 0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(config_.send_timeout.count() / 1000);
      tv.tv_usec =
          static_cast<suseconds_t>((config_.send_timeout.count() % 1000) *
                                   1000);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->session = ExecutorService::AllocateSessionId();
    // Book the connection before its reader starts, so the reader's
    // decrement on a fast disconnect can never precede this increment.
    {
      MutexLock lock(shared_stats_->mu);
      ++shared_stats_->stats.connections_accepted;
      ++shared_stats_->stats.connections_active;
    }
    {
      MutexLock lock(mu_);
      if (stopping_) {
        conn->Sever();
        MutexLock slock(shared_stats_->mu);
        --shared_stats_->stats.connections_active;
        return;
      }
      ReapFinishedLocked();
      const uint64_t id = conn->session;
      connections_.emplace(id, conn);
      readers_.emplace(id,
                       std::thread([this, id, conn] { ReaderLoop(id, conn); }));
    }
  }
}

void YoutopiaServer::ReaderLoop(uint64_t id,
                                std::shared_ptr<Connection> conn) {
  FrameAssembler assembler(config_.max_frame_bytes);
  char buf[1 << 16];
  bool protocol_error = false;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    assembler.Append(buf, static_cast<size_t>(n));
    for (;;) {
      auto next = assembler.Next();
      if (!next.ok()) {
        YOUTOPIA_LOG(kWarning)
            << "dropping connection: " << next.status().ToString();
        protocol_error = true;
        break;
      }
      if (!next->has_value()) break;
      const Status dispatched = Dispatch(conn, **next);
      if (!dispatched.ok()) {
        YOUTOPIA_LOG(kWarning)
            << "dropping connection: " << dispatched.ToString();
        protocol_error = true;
        break;
      }
    }
    if (protocol_error) break;
  }
  conn->Sever();
  {
    MutexLock lock(shared_stats_->mu);
    --shared_stats_->stats.connections_active;
    if (protocol_error) ++shared_stats_->stats.protocol_errors;
  }
  // Queue ourselves for reaping (join + connection-entry drop) by the
  // accept loop or Stop. Last action: after this the thread only
  // unwinds, so a reaper's join returns promptly.
  MutexLock lock(mu_);
  if (!stopping_) finished_.push_back(id);
}

void YoutopiaServer::PushOnCompletion(
    const std::shared_ptr<Connection>& conn, EntangledHandle handle) {
  PushWhenComplete(conn, shared_stats_, config_.max_frame_bytes,
                   std::move(handle));
}

Status YoutopiaServer::Dispatch(const std::shared_ptr<Connection>& conn,
                                const Frame& frame) {
  {
    MutexLock lock(shared_stats_->mu);
    ++shared_stats_->stats.requests;
    const size_t type_index = static_cast<size_t>(frame.type);
    if (type_index < shared_stats_->stats.requests_by_type.size()) {
      ++shared_stats_->stats.requests_by_type[type_index];
    }
  }
  const auto dispatched_at = std::chrono::steady_clock::now();
  switch (frame.type) {
    case MessageType::kExecuteRequest: {
      auto req = DecodePayload<ExecuteRequest>(frame.payload);
      if (!req.ok()) return req.status();
      StatementTask task;
      task.sql = req->sql;
      task.session = conn->session;
      task.kind = StatementTask::Kind::kExecute;
      const uint64_t request_id = req->request_id;
      const uint32_t max_frame = config_.max_frame_bytes;
      auto stats = shared_stats_;
      task.on_done = [conn, stats, request_id, max_frame,
                      dispatched_at](Result<RunOutcome> outcome) {
        ExecuteResponse resp;
        resp.request_id = request_id;
        resp.status = outcome.status();
        if (outcome.ok()) resp.result = std::move(outcome->result);
        SendResponseChecked(conn, max_frame, resp);
        stats->statement_latency.Record(ElapsedMicros(dispatched_at));
      };
      const Status admitted =
          db_->executor_service().Submit(std::move(task));
      if (!admitted.ok()) {
        ExecuteResponse resp;
        resp.request_id = request_id;
        resp.status = admitted;
        SendResponseChecked(conn, config_.max_frame_bytes, resp);
        if (admitted.code() == StatusCode::kOverloaded) {
          MutexLock lock(shared_stats_->mu);
          ++shared_stats_->stats.shed;
        }
      }
      return Status::OK();
    }
    case MessageType::kScriptRequest: {
      auto req = DecodePayload<ScriptRequest>(frame.payload);
      if (!req.ok()) return req.status();
      StatementTask task;
      task.sql = req->sql;
      task.session = conn->session;
      task.kind = StatementTask::Kind::kScript;
      const uint64_t request_id = req->request_id;
      const uint32_t max_frame = config_.max_frame_bytes;
      auto stats = shared_stats_;
      task.on_done = [conn, stats, request_id, max_frame,
                      dispatched_at](Result<RunOutcome> outcome) {
        ScriptResponse resp;
        resp.request_id = request_id;
        resp.status = outcome.status();
        SendResponseChecked(conn, max_frame, resp);
        stats->statement_latency.Record(ElapsedMicros(dispatched_at));
      };
      const Status admitted =
          db_->executor_service().Submit(std::move(task));
      if (!admitted.ok()) {
        ScriptResponse resp;
        resp.request_id = request_id;
        resp.status = admitted;
        SendResponseChecked(conn, config_.max_frame_bytes, resp);
        if (admitted.code() == StatusCode::kOverloaded) {
          MutexLock lock(shared_stats_->mu);
          ++shared_stats_->stats.shed;
        }
      }
      return Status::OK();
    }
    case MessageType::kRunRequest: {
      auto req = DecodePayload<RunRequest>(frame.payload);
      if (!req.ok()) return req.status();
      StatementTask task;
      task.sql = req->sql;
      task.owner = req->owner;
      task.session = conn->session;
      task.kind = StatementTask::Kind::kRun;
      const uint64_t request_id = req->request_id;
      // `this` stays out of the continuation (it may outlive the
      // server); PushOnCompletion's work is inlined via the shared
      // stats block.
      auto stats = shared_stats_;
      const uint32_t max_frame = config_.max_frame_bytes;
      Youtopia* db = db_;
      task.on_done = [conn, stats, request_id, max_frame, db,
                      dispatched_at](Result<RunOutcome> outcome) {
        RunResponse resp;
        resp.request_id = request_id;
        resp.status = outcome.status();
        std::optional<EntangledHandle> pending_handle;
        if (outcome.ok()) {
          resp.entangled = outcome->entangled;
          if (outcome->entangled && outcome->handle.has_value()) {
            resp.handle = SnapshotHandle(*outcome->handle);
            if (!resp.handle.done) pending_handle = *outcome->handle;
          } else {
            resp.result = std::move(outcome->result);
          }
        }
        const bool delivered = SendResponseChecked(conn, max_frame, resp);
        // Registered after the response is on the wire, so the push is
        // always sequenced behind the handle announcement (an
        // already-completed handle fires the push right here). If the
        // response degraded to an error, the client never learned the
        // query id — withdraw the coordination instead of pushing into
        // the void.
        if (pending_handle) {
          if (delivered) {
            PushWhenComplete(conn, stats, max_frame,
                             std::move(*pending_handle));
          } else {
            (void)db->coordinator().Cancel(pending_handle->id());
          }
        }
        stats->statement_latency.Record(ElapsedMicros(dispatched_at));
      };
      const Status admitted =
          db_->executor_service().Submit(std::move(task));
      if (!admitted.ok()) {
        RunResponse resp;
        resp.request_id = request_id;
        resp.status = admitted;
        SendResponseChecked(conn, config_.max_frame_bytes, resp);
        if (admitted.code() == StatusCode::kOverloaded) {
          MutexLock lock(shared_stats_->mu);
          ++shared_stats_->stats.shed;
        }
      }
      return Status::OK();
    }
    case MessageType::kSubmitRequest: {
      auto req = DecodePayload<SubmitRequest>(frame.payload);
      if (!req.ok()) return req.status();
      SubmitResponse resp;
      resp.request_id = req->request_id;
      auto handle = db_->Submit(req->sql, req->owner);
      resp.status = handle.status();
      if (handle.ok()) resp.handle = SnapshotHandle(*handle);
      const bool delivered =
          SendResponseChecked(conn, config_.max_frame_bytes, resp);
      if (handle.ok() && !resp.handle.done) {
        if (delivered) {
          PushOnCompletion(conn, *handle);
        } else {
          // The client was told OutOfRange; don't leave a phantom
          // coordination running that it believes failed.
          (void)db_->coordinator().Cancel(handle->id());
        }
      }
      return Status::OK();
    }
    case MessageType::kSubmitBatchRequest: {
      auto req = DecodePayload<SubmitBatchRequest>(frame.payload);
      if (!req.ok()) return req.status();
      SubmitBatchResponse resp;
      resp.request_id = req->request_id;
      auto handles = db_->SubmitBatch(req->statements, req->owners);
      resp.status = handles.status();
      if (handles.ok()) {
        resp.handles.reserve(handles->size());
        for (const EntangledHandle& handle : *handles) {
          resp.handles.push_back(SnapshotHandle(handle));
        }
      }
      const bool delivered =
          SendResponseChecked(conn, config_.max_frame_bytes, resp);
      if (handles.ok()) {
        for (size_t i = 0; i < handles->size(); ++i) {
          if (resp.handles[i].done) continue;
          if (delivered) {
            PushOnCompletion(conn, (*handles)[i]);
          } else {
            (void)db_->coordinator().Cancel((*handles)[i].id());
          }
        }
      }
      return Status::OK();
    }
    case MessageType::kCancelRequest: {
      auto req = DecodePayload<CancelRequest>(frame.payload);
      if (!req.ok()) return req.status();
      CancelResponse resp;
      resp.request_id = req->request_id;
      resp.status = db_->coordinator().Cancel(req->query_id);
      SendResponseChecked(conn, config_.max_frame_bytes, resp);
      return Status::OK();
    }
    case MessageType::kExecuteResponse:
    case MessageType::kScriptResponse:
    case MessageType::kSubmitResponse:
    case MessageType::kSubmitBatchResponse:
    case MessageType::kRunResponse:
    case MessageType::kCancelResponse:
    case MessageType::kCompletionPush:
      break;
  }
  return Status::InvalidArgument(
      std::string("unexpected frame from client: ") +
      MessageTypeToString(frame.type));
}

}  // namespace youtopia::net
