#include "net/protocol.h"

#include <algorithm>

namespace youtopia::net {

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kExecuteRequest:
      return "ExecuteRequest";
    case MessageType::kExecuteResponse:
      return "ExecuteResponse";
    case MessageType::kScriptRequest:
      return "ScriptRequest";
    case MessageType::kScriptResponse:
      return "ScriptResponse";
    case MessageType::kSubmitRequest:
      return "SubmitRequest";
    case MessageType::kSubmitResponse:
      return "SubmitResponse";
    case MessageType::kSubmitBatchRequest:
      return "SubmitBatchRequest";
    case MessageType::kSubmitBatchResponse:
      return "SubmitBatchResponse";
    case MessageType::kRunRequest:
      return "RunRequest";
    case MessageType::kRunResponse:
      return "RunResponse";
    case MessageType::kCancelRequest:
      return "CancelRequest";
    case MessageType::kCancelResponse:
      return "CancelResponse";
    case MessageType::kCompletionPush:
      return "CompletionPush";
  }
  return "UnknownMessage";
}

// ----------------------------------------------------- QueryResult codec

void PutQueryResult(WireWriter* w, const QueryResult& result) {
  w->PutU32(static_cast<uint32_t>(result.column_names.size()));
  for (const std::string& name : result.column_names) w->PutString(name);
  w->PutTuples(result.rows);
  w->PutU64(result.affected_rows);
}

bool GetQueryResult(WireReader* r, QueryResult* result) {
  uint32_t ncols = 0;
  if (!r->GetU32(&ncols)) return false;
  if (ncols > r->remaining()) {
    r->MarkFailed();
    return false;
  }
  result->column_names.clear();
  result->column_names.reserve(std::min<uint32_t>(ncols, kMaxEagerReserve));
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string name;
    if (!r->GetString(&name)) return false;
    result->column_names.push_back(std::move(name));
  }
  uint64_t affected = 0;
  if (!r->GetTuples(&result->rows) || !r->GetU64(&affected)) return false;
  result->affected_rows = static_cast<size_t>(affected);
  return true;
}

// -------------------------------------------------------------- messages

void WireHandle::Encode(WireWriter* w) const {
  w->PutU64(query_id);
  w->PutBool(done);
  w->PutStatus(outcome);
  w->PutTuples(answers);
}

bool WireHandle::Decode(WireReader* r, WireHandle* out) {
  return r->GetU64(&out->query_id) && r->GetBool(&out->done) &&
         r->GetStatus(&out->outcome) && r->GetTuples(&out->answers);
}

bool WireHandle::operator==(const WireHandle& other) const {
  return query_id == other.query_id && done == other.done &&
         outcome == other.outcome && answers == other.answers;
}

void ExecuteRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutString(sql);
}

bool ExecuteRequest::Decode(WireReader* r, ExecuteRequest* out) {
  return r->GetU64(&out->request_id) && r->GetString(&out->sql);
}

void ExecuteResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
  PutQueryResult(w, result);
}

bool ExecuteResponse::Decode(WireReader* r, ExecuteResponse* out) {
  return r->GetU64(&out->request_id) && r->GetStatus(&out->status) &&
         GetQueryResult(r, &out->result);
}

void ScriptRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutString(sql);
}

bool ScriptRequest::Decode(WireReader* r, ScriptRequest* out) {
  return r->GetU64(&out->request_id) && r->GetString(&out->sql);
}

void ScriptResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
}

bool ScriptResponse::Decode(WireReader* r, ScriptResponse* out) {
  return r->GetU64(&out->request_id) && r->GetStatus(&out->status);
}

void SubmitRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutString(owner);
  w->PutString(sql);
}

bool SubmitRequest::Decode(WireReader* r, SubmitRequest* out) {
  return r->GetU64(&out->request_id) && r->GetString(&out->owner) &&
         r->GetString(&out->sql);
}

void SubmitResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
  handle.Encode(w);
}

bool SubmitResponse::Decode(WireReader* r, SubmitResponse* out) {
  return r->GetU64(&out->request_id) && r->GetStatus(&out->status) &&
         WireHandle::Decode(r, &out->handle);
}

void SubmitBatchRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutU32(static_cast<uint32_t>(owners.size()));
  for (const std::string& owner : owners) w->PutString(owner);
  w->PutU32(static_cast<uint32_t>(statements.size()));
  for (const std::string& sql : statements) w->PutString(sql);
}

bool SubmitBatchRequest::Decode(WireReader* r, SubmitBatchRequest* out) {
  uint32_t nowners = 0;
  if (!r->GetU64(&out->request_id) || !r->GetU32(&nowners)) return false;
  out->owners.clear();
  for (uint32_t i = 0; i < nowners; ++i) {
    std::string owner;
    if (!r->GetString(&owner)) return false;
    out->owners.push_back(std::move(owner));
  }
  uint32_t nstatements = 0;
  if (!r->GetU32(&nstatements)) return false;
  out->statements.clear();
  for (uint32_t i = 0; i < nstatements; ++i) {
    std::string sql;
    if (!r->GetString(&sql)) return false;
    out->statements.push_back(std::move(sql));
  }
  return true;
}

void SubmitBatchResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
  w->PutU32(static_cast<uint32_t>(handles.size()));
  for (const WireHandle& handle : handles) handle.Encode(w);
}

bool SubmitBatchResponse::Decode(WireReader* r, SubmitBatchResponse* out) {
  uint32_t count = 0;
  if (!r->GetU64(&out->request_id) || !r->GetStatus(&out->status) ||
      !r->GetU32(&count)) {
    return false;
  }
  out->handles.clear();
  for (uint32_t i = 0; i < count; ++i) {
    WireHandle handle;
    if (!WireHandle::Decode(r, &handle)) return false;
    out->handles.push_back(std::move(handle));
  }
  return true;
}

void RunRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutString(owner);
  w->PutString(sql);
}

bool RunRequest::Decode(WireReader* r, RunRequest* out) {
  return r->GetU64(&out->request_id) && r->GetString(&out->owner) &&
         r->GetString(&out->sql);
}

void RunResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
  w->PutBool(entangled);
  PutQueryResult(w, result);
  handle.Encode(w);
}

bool RunResponse::Decode(WireReader* r, RunResponse* out) {
  return r->GetU64(&out->request_id) && r->GetStatus(&out->status) &&
         r->GetBool(&out->entangled) && GetQueryResult(r, &out->result) &&
         WireHandle::Decode(r, &out->handle);
}

void CancelRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutU64(query_id);
}

bool CancelRequest::Decode(WireReader* r, CancelRequest* out) {
  return r->GetU64(&out->request_id) && r->GetU64(&out->query_id);
}

void CancelResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
}

bool CancelResponse::Decode(WireReader* r, CancelResponse* out) {
  return r->GetU64(&out->request_id) && r->GetStatus(&out->status);
}

void CompletionPush::Encode(WireWriter* w) const {
  w->PutU64(query_id);
  w->PutStatus(outcome);
  w->PutTuples(answers);
}

bool CompletionPush::Decode(WireReader* r, CompletionPush* out) {
  return r->GetU64(&out->query_id) && r->GetStatus(&out->outcome) &&
         r->GetTuples(&out->answers);
}

// -------------------------------------------------------------- framing

Result<std::optional<Frame>> FrameAssembler::Next() {
  // Compact lazily so repeated small frames do not repeatedly memmove.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::optional<Frame>();
  WireReader header(
      std::string_view(buffer_).substr(consumed_, kFrameHeaderBytes));
  uint32_t length = 0;
  header.GetU32(&length);
  if (length == 0) {
    return Status::InvalidArgument("frame with zero length");
  }
  if (length > max_frame_bytes_) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(length) + " exceeds limit " +
        std::to_string(max_frame_bytes_));
  }
  if (available < kFrameHeaderBytes + length) return std::optional<Frame>();
  Frame frame;
  frame.type = static_cast<MessageType>(
      static_cast<uint8_t>(buffer_[consumed_ + kFrameHeaderBytes]));
  frame.payload.assign(buffer_, consumed_ + kFrameHeaderBytes + 1, length - 1);
  consumed_ += kFrameHeaderBytes + length;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace youtopia::net
