#include "net/protocol.h"

#include <cstring>

namespace youtopia::net {

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kExecuteRequest:
      return "ExecuteRequest";
    case MessageType::kExecuteResponse:
      return "ExecuteResponse";
    case MessageType::kScriptRequest:
      return "ScriptRequest";
    case MessageType::kScriptResponse:
      return "ScriptResponse";
    case MessageType::kSubmitRequest:
      return "SubmitRequest";
    case MessageType::kSubmitResponse:
      return "SubmitResponse";
    case MessageType::kSubmitBatchRequest:
      return "SubmitBatchRequest";
    case MessageType::kSubmitBatchResponse:
      return "SubmitBatchResponse";
    case MessageType::kRunRequest:
      return "RunRequest";
    case MessageType::kRunResponse:
      return "RunResponse";
    case MessageType::kCancelRequest:
      return "CancelRequest";
    case MessageType::kCancelResponse:
      return "CancelResponse";
    case MessageType::kCompletionPush:
      return "CompletionPush";
  }
  return "UnknownMessage";
}

// ---------------------------------------------------------------- writer

void WireWriter::PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

void WireWriter::PutU32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void WireWriter::PutU64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void WireWriter::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void WireWriter::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.append(s);
}

void WireWriter::PutStatus(const Status& status) {
  PutU8(static_cast<uint8_t>(status.code()));
  PutString(status.message());
}

void WireWriter::PutValue(const Value& value) {
  PutU8(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      PutBool(value.bool_value());
      break;
    case DataType::kInt64:
      PutI64(value.int64_value());
      break;
    case DataType::kDouble:
      PutDouble(value.double_value());
      break;
    case DataType::kString:
      PutString(value.string_value());
      break;
  }
}

void WireWriter::PutTuple(const Tuple& tuple) {
  PutU32(static_cast<uint32_t>(tuple.size()));
  for (const Value& v : tuple.values()) PutValue(v);
}

void WireWriter::PutTuples(const std::vector<Tuple>& tuples) {
  PutU32(static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) PutTuple(t);
}

void WireWriter::PutQueryResult(const QueryResult& result) {
  PutU32(static_cast<uint32_t>(result.column_names.size()));
  for (const std::string& name : result.column_names) PutString(name);
  PutTuples(result.rows);
  PutU64(result.affected_rows);
}

// ---------------------------------------------------------------- reader

bool WireReader::Take(size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::GetU8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool WireReader::GetU32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::GetU64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::GetI64(int64_t* v) {
  uint64_t raw = 0;
  if (!GetU64(&raw)) return false;
  *v = static_cast<int64_t>(raw);
  return true;
}

bool WireReader::GetDouble(double* v) {
  uint64_t bits = 0;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool WireReader::GetBool(bool* v) {
  uint8_t raw = 0;
  if (!GetU8(&raw)) return false;
  if (raw > 1) {
    ok_ = false;
    return false;
  }
  *v = raw != 0;
  return true;
}

bool WireReader::GetString(std::string* s) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  const char* p = nullptr;
  if (!Take(len, &p)) return false;
  s->assign(p, len);
  return true;
}

bool WireReader::GetStatus(Status* status) {
  uint8_t code = 0;
  std::string message;
  if (!GetU8(&code) || !GetString(&message)) return false;
  if (code > static_cast<uint8_t>(StatusCode::kNotImplemented)) {
    ok_ = false;
    return false;
  }
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

bool WireReader::GetValue(Value* value) {
  uint8_t tag = 0;
  if (!GetU8(&tag)) return false;
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      *value = Value::Null();
      return true;
    case DataType::kBool: {
      bool v = false;
      if (!GetBool(&v)) return false;
      *value = Value::Bool(v);
      return true;
    }
    case DataType::kInt64: {
      int64_t v = 0;
      if (!GetI64(&v)) return false;
      *value = Value::Int64(v);
      return true;
    }
    case DataType::kDouble: {
      double v = 0;
      if (!GetDouble(&v)) return false;
      *value = Value::Double(v);
      return true;
    }
    case DataType::kString: {
      std::string v;
      if (!GetString(&v)) return false;
      *value = Value::String(std::move(v));
      return true;
    }
  }
  ok_ = false;
  return false;
}

bool WireReader::GetTuple(Tuple* tuple) {
  uint32_t count = 0;
  if (!GetU32(&count)) return false;
  // A value takes at least a tag byte; a count beyond the remaining
  // bytes is a lie (guards against allocation bombs).
  if (count > data_.size() - pos_) {
    ok_ = false;
    return false;
  }
  std::vector<Value> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Value v;
    if (!GetValue(&v)) return false;
    values.push_back(std::move(v));
  }
  *tuple = Tuple(std::move(values));
  return true;
}

bool WireReader::GetTuples(std::vector<Tuple>* tuples) {
  uint32_t count = 0;
  if (!GetU32(&count)) return false;
  if (count > data_.size() - pos_) {
    ok_ = false;
    return false;
  }
  tuples->clear();
  tuples->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Tuple t;
    if (!GetTuple(&t)) return false;
    tuples->push_back(std::move(t));
  }
  return true;
}

bool WireReader::GetQueryResult(QueryResult* result) {
  uint32_t ncols = 0;
  if (!GetU32(&ncols)) return false;
  if (ncols > data_.size() - pos_) {
    ok_ = false;
    return false;
  }
  result->column_names.clear();
  result->column_names.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string name;
    if (!GetString(&name)) return false;
    result->column_names.push_back(std::move(name));
  }
  uint64_t affected = 0;
  if (!GetTuples(&result->rows) || !GetU64(&affected)) return false;
  result->affected_rows = static_cast<size_t>(affected);
  return true;
}

Status WireReader::Error(std::string_view what) const {
  return Status::InvalidArgument("malformed " + std::string(what) +
                                 " payload at byte " + std::to_string(pos_));
}

// -------------------------------------------------------------- messages

void WireHandle::Encode(WireWriter* w) const {
  w->PutU64(query_id);
  w->PutBool(done);
  w->PutStatus(outcome);
  w->PutTuples(answers);
}

bool WireHandle::Decode(WireReader* r, WireHandle* out) {
  return r->GetU64(&out->query_id) && r->GetBool(&out->done) &&
         r->GetStatus(&out->outcome) && r->GetTuples(&out->answers);
}

bool WireHandle::operator==(const WireHandle& other) const {
  return query_id == other.query_id && done == other.done &&
         outcome == other.outcome && answers == other.answers;
}

void ExecuteRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutString(sql);
}

bool ExecuteRequest::Decode(WireReader* r, ExecuteRequest* out) {
  return r->GetU64(&out->request_id) && r->GetString(&out->sql);
}

void ExecuteResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
  w->PutQueryResult(result);
}

bool ExecuteResponse::Decode(WireReader* r, ExecuteResponse* out) {
  return r->GetU64(&out->request_id) && r->GetStatus(&out->status) &&
         r->GetQueryResult(&out->result);
}

void ScriptRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutString(sql);
}

bool ScriptRequest::Decode(WireReader* r, ScriptRequest* out) {
  return r->GetU64(&out->request_id) && r->GetString(&out->sql);
}

void ScriptResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
}

bool ScriptResponse::Decode(WireReader* r, ScriptResponse* out) {
  return r->GetU64(&out->request_id) && r->GetStatus(&out->status);
}

void SubmitRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutString(owner);
  w->PutString(sql);
}

bool SubmitRequest::Decode(WireReader* r, SubmitRequest* out) {
  return r->GetU64(&out->request_id) && r->GetString(&out->owner) &&
         r->GetString(&out->sql);
}

void SubmitResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
  handle.Encode(w);
}

bool SubmitResponse::Decode(WireReader* r, SubmitResponse* out) {
  return r->GetU64(&out->request_id) && r->GetStatus(&out->status) &&
         WireHandle::Decode(r, &out->handle);
}

void SubmitBatchRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutU32(static_cast<uint32_t>(owners.size()));
  for (const std::string& owner : owners) w->PutString(owner);
  w->PutU32(static_cast<uint32_t>(statements.size()));
  for (const std::string& sql : statements) w->PutString(sql);
}

bool SubmitBatchRequest::Decode(WireReader* r, SubmitBatchRequest* out) {
  uint32_t nowners = 0;
  if (!r->GetU64(&out->request_id) || !r->GetU32(&nowners)) return false;
  out->owners.clear();
  for (uint32_t i = 0; i < nowners; ++i) {
    std::string owner;
    if (!r->GetString(&owner)) return false;
    out->owners.push_back(std::move(owner));
  }
  uint32_t nstatements = 0;
  if (!r->GetU32(&nstatements)) return false;
  out->statements.clear();
  for (uint32_t i = 0; i < nstatements; ++i) {
    std::string sql;
    if (!r->GetString(&sql)) return false;
    out->statements.push_back(std::move(sql));
  }
  return true;
}

void SubmitBatchResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
  w->PutU32(static_cast<uint32_t>(handles.size()));
  for (const WireHandle& handle : handles) handle.Encode(w);
}

bool SubmitBatchResponse::Decode(WireReader* r, SubmitBatchResponse* out) {
  uint32_t count = 0;
  if (!r->GetU64(&out->request_id) || !r->GetStatus(&out->status) ||
      !r->GetU32(&count)) {
    return false;
  }
  out->handles.clear();
  for (uint32_t i = 0; i < count; ++i) {
    WireHandle handle;
    if (!WireHandle::Decode(r, &handle)) return false;
    out->handles.push_back(std::move(handle));
  }
  return true;
}

void RunRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutString(owner);
  w->PutString(sql);
}

bool RunRequest::Decode(WireReader* r, RunRequest* out) {
  return r->GetU64(&out->request_id) && r->GetString(&out->owner) &&
         r->GetString(&out->sql);
}

void RunResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
  w->PutBool(entangled);
  w->PutQueryResult(result);
  handle.Encode(w);
}

bool RunResponse::Decode(WireReader* r, RunResponse* out) {
  return r->GetU64(&out->request_id) && r->GetStatus(&out->status) &&
         r->GetBool(&out->entangled) && r->GetQueryResult(&out->result) &&
         WireHandle::Decode(r, &out->handle);
}

void CancelRequest::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutU64(query_id);
}

bool CancelRequest::Decode(WireReader* r, CancelRequest* out) {
  return r->GetU64(&out->request_id) && r->GetU64(&out->query_id);
}

void CancelResponse::Encode(WireWriter* w) const {
  w->PutU64(request_id);
  w->PutStatus(status);
}

bool CancelResponse::Decode(WireReader* r, CancelResponse* out) {
  return r->GetU64(&out->request_id) && r->GetStatus(&out->status);
}

void CompletionPush::Encode(WireWriter* w) const {
  w->PutU64(query_id);
  w->PutStatus(outcome);
  w->PutTuples(answers);
}

bool CompletionPush::Decode(WireReader* r, CompletionPush* out) {
  return r->GetU64(&out->query_id) && r->GetStatus(&out->outcome) &&
         r->GetTuples(&out->answers);
}

// -------------------------------------------------------------- framing

Result<std::optional<Frame>> FrameAssembler::Next() {
  // Compact lazily so repeated small frames do not repeatedly memmove.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::optional<Frame>();
  WireReader header(
      std::string_view(buffer_).substr(consumed_, kFrameHeaderBytes));
  uint32_t length = 0;
  header.GetU32(&length);
  if (length == 0) {
    return Status::InvalidArgument("frame with zero length");
  }
  if (length > max_frame_bytes_) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(length) + " exceeds limit " +
        std::to_string(max_frame_bytes_));
  }
  if (available < kFrameHeaderBytes + length) return std::optional<Frame>();
  Frame frame;
  frame.type = static_cast<MessageType>(
      static_cast<uint8_t>(buffer_[consumed_ + kFrameHeaderBytes]));
  frame.payload.assign(buffer_, consumed_ + kFrameHeaderBytes + 1, length - 1);
  consumed_ += kFrameHeaderBytes + length;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace youtopia::net
