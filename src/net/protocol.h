#ifndef YOUTOPIA_NET_PROTOCOL_H_
#define YOUTOPIA_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "exec/executor.h"
#include "types/tuple.h"

namespace youtopia::net {

/// The wire protocol between a `RemoteClient` and a `YoutopiaServer`
/// (design decision #6): length-prefixed binary frames over a byte
/// stream.
///
///   frame := u32 length | u8 message type | payload
///
/// `length` counts the type byte plus the payload (so every valid frame
/// has length >= 1) and is bounded by `kMaxFrameBytes` — a peer that
/// announces more is malfunctioning or hostile, and the connection is
/// dropped rather than buffered against. All integers are fixed-width
/// little-endian; doubles travel as their IEEE-754 bit pattern in a u64;
/// strings and repeated fields are u32-count-prefixed.
///
/// Requests carry a client-chosen `request_id` echoed by the matching
/// response, so one connection can interleave many outstanding requests
/// (the async client surface). Entangled completions are *server-push*
/// `CompletionPush` frames keyed by the engine's query id — no request
/// pairs with them, mirroring how `EntangledHandle::OnComplete` delivers
/// completions in-process.

/// Upper bound on `length`. Generous enough for a full travel-dataset
/// dump script; small enough that a garbage length cannot OOM a reader.
inline constexpr uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

/// Bytes of the frame header (u32 length).
inline constexpr size_t kFrameHeaderBytes = 4;

enum class MessageType : uint8_t {
  kExecuteRequest = 1,
  kExecuteResponse = 2,
  kScriptRequest = 3,
  kScriptResponse = 4,
  kSubmitRequest = 5,
  kSubmitResponse = 6,
  kSubmitBatchRequest = 7,
  kSubmitBatchResponse = 8,
  kRunRequest = 9,
  kRunResponse = 10,
  kCancelRequest = 11,
  kCancelResponse = 12,
  kCompletionPush = 13,
};

const char* MessageTypeToString(MessageType type);

// ---------------------------------------------------------------- codec

/// The primitive codec lives in common/codec.h so the WAL shares it
/// (one serializer, no second encoding to drift); these aliases keep
/// the net layer's historical spelling.
using WireWriter = ::youtopia::WireWriter;
using WireReader = ::youtopia::WireReader;

/// QueryResult is an exec-layer type, so its codec stays here rather
/// than in common/ (which must not depend on exec/).
void PutQueryResult(WireWriter* w, const QueryResult& result);
bool GetQueryResult(WireReader* r, QueryResult* result);

// ------------------------------------------------------------- messages

/// Client-side view of an entangled handle at registration time: the
/// engine's query id plus, when the coordination already completed
/// inside the submit round, its terminal outcome and answers.
struct WireHandle {
  uint64_t query_id = 0;
  bool done = false;
  ::youtopia::Status outcome;
  std::vector<Tuple> answers;

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, WireHandle* out);
  bool operator==(const WireHandle& other) const;
};

struct ExecuteRequest {
  static constexpr MessageType kType = MessageType::kExecuteRequest;
  uint64_t request_id = 0;
  std::string sql;

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, ExecuteRequest* out);
};

struct ExecuteResponse {
  static constexpr MessageType kType = MessageType::kExecuteResponse;
  uint64_t request_id = 0;
  ::youtopia::Status status;
  QueryResult result;  ///< Meaningful when `status` is OK.

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, ExecuteResponse* out);
};

struct ScriptRequest {
  static constexpr MessageType kType = MessageType::kScriptRequest;
  uint64_t request_id = 0;
  std::string sql;

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, ScriptRequest* out);
};

struct ScriptResponse {
  static constexpr MessageType kType = MessageType::kScriptResponse;
  uint64_t request_id = 0;
  ::youtopia::Status status;

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, ScriptResponse* out);
};

struct SubmitRequest {
  static constexpr MessageType kType = MessageType::kSubmitRequest;
  uint64_t request_id = 0;
  std::string owner;
  std::string sql;

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, SubmitRequest* out);
};

struct SubmitResponse {
  static constexpr MessageType kType = MessageType::kSubmitResponse;
  uint64_t request_id = 0;
  ::youtopia::Status status;
  WireHandle handle;  ///< Meaningful when `status` is OK.

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, SubmitResponse* out);
};

struct SubmitBatchRequest {
  static constexpr MessageType kType = MessageType::kSubmitBatchRequest;
  uint64_t request_id = 0;
  /// Empty, or one owner per statement (Youtopia::SubmitBatch contract).
  std::vector<std::string> owners;
  std::vector<std::string> statements;

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, SubmitBatchRequest* out);
};

struct SubmitBatchResponse {
  static constexpr MessageType kType = MessageType::kSubmitBatchResponse;
  uint64_t request_id = 0;
  ::youtopia::Status status;
  std::vector<WireHandle> handles;  ///< Statement order; OK status only.

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, SubmitBatchResponse* out);
};

struct RunRequest {
  static constexpr MessageType kType = MessageType::kRunRequest;
  uint64_t request_id = 0;
  std::string owner;
  std::string sql;

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, RunRequest* out);
};

struct RunResponse {
  static constexpr MessageType kType = MessageType::kRunResponse;
  uint64_t request_id = 0;
  ::youtopia::Status status;
  bool entangled = false;
  QueryResult result;  ///< Regular statements.
  WireHandle handle;   ///< Entangled statements.

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, RunResponse* out);
};

struct CancelRequest {
  static constexpr MessageType kType = MessageType::kCancelRequest;
  uint64_t request_id = 0;
  uint64_t query_id = 0;

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, CancelRequest* out);
};

struct CancelResponse {
  static constexpr MessageType kType = MessageType::kCancelResponse;
  uint64_t request_id = 0;
  ::youtopia::Status status;

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, CancelResponse* out);
};

/// Server-push completion of an entangled query: sent on the connection
/// that registered the query once it reaches a terminal state. Always
/// sequenced *after* the response that announced the handle.
struct CompletionPush {
  static constexpr MessageType kType = MessageType::kCompletionPush;
  uint64_t query_id = 0;
  ::youtopia::Status outcome;
  std::vector<Tuple> answers;

  void Encode(WireWriter* w) const;
  static bool Decode(WireReader* r, CompletionPush* out);
};

// -------------------------------------------------------------- framing

/// Serializes `msg` into one complete frame (header + type + payload).
template <typename Message>
std::string EncodeFrame(const Message& msg) {
  WireWriter payload;
  msg.Encode(&payload);
  WireWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.bytes().size() + 1));
  frame.PutU8(static_cast<uint8_t>(Message::kType));
  std::string out = frame.Take();
  out += payload.bytes();
  return out;
}

/// Decodes a payload previously produced by EncodeFrame (sans header and
/// type byte), requiring exact consumption.
template <typename Message>
::youtopia::Result<Message> DecodePayload(std::string_view payload) {
  WireReader reader(payload);
  Message msg;
  if (!Message::Decode(&reader, &msg) || !reader.AtEnd()) {
    return reader.Error(MessageTypeToString(Message::kType));
  }
  return msg;
}

/// One decoded frame: the type byte plus its raw payload.
struct Frame {
  MessageType type = MessageType::kExecuteRequest;
  std::string payload;
};

/// Incremental frame parser for a byte stream: feed whatever the socket
/// produced, pop complete frames. Rejects frames whose announced length
/// is zero or exceeds `max_frame_bytes` — the reader must then drop the
/// connection (the stream is unsynchronizable).
class FrameAssembler {
 public:
  explicit FrameAssembler(uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t n) { buffer_.append(data, n); }
  void Append(std::string_view data) { buffer_.append(data); }

  /// Pops the next complete frame: nullopt while the buffer holds only a
  /// partial frame; InvalidArgument on a malformed length.
  ::youtopia::Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
};

}  // namespace youtopia::net

#endif  // YOUTOPIA_NET_PROTOCOL_H_
