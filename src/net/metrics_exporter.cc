#include "net/metrics_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace youtopia::net {

namespace {

/// A scraper that neither finishes its request nor drains the response
/// within this long is dropped; the next scrape starts fresh.
constexpr int kSocketTimeoutSecs = 2;

/// Upper bound on the request we bother reading. Anything a real
/// scraper sends ("GET /metrics HTTP/1.x" + a few headers) fits with
/// room to spare; the rest of an oversized request is simply not read.
constexpr size_t kMaxRequestBytes = 8 * 1024;

void SetSocketTimeouts(int fd) {
  timeval tv{};
  tv.tv_sec = kSocketTimeoutSecs;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

MetricsExporter::MetricsExporter(Renderer renderer)
    : renderer_(std::move(renderer)) {}

MetricsExporter::~MetricsExporter() { Stop(); }

Status MetricsExporter::Start(const std::string& bind_address,
                              uint16_t port) {
  MutexLock lock(mu_);
  if (started_) return Status::AlreadyExists("metrics exporter already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        Status::Internal("bind " + bind_address + ":" + std::to_string(port) +
                         ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  started_ = true;
  // The thread gets its own copy of the descriptor: Stop() nulls the
  // member while the loop may still be blocked in accept().
  accept_thread_ = std::thread([this, fd] { ServeLoop(fd); });
  return Status::OK();
}

void MetricsExporter::Stop() {
  std::thread accept_thread;
  int listen_fd = -1;
  {
    MutexLock lock(mu_);
    if (!started_) return;
    started_ = false;
    listen_fd = listen_fd_;
    listen_fd_ = -1;
    ::shutdown(listen_fd, SHUT_RDWR);
    accept_thread = std::move(accept_thread_);
  }
  if (accept_thread.joinable()) accept_thread.join();
  if (listen_fd >= 0) ::close(listen_fd);
}

uint16_t MetricsExporter::port() const {
  MutexLock lock(mu_);
  return port_;
}

void MetricsExporter::ServeLoop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Stop() shut the listener down.
    }
    SetSocketTimeouts(fd);
    // Read until the blank line ending the request headers (or EOF, a
    // bare-TCP scraper like `nc` that just waits for output). The
    // request itself is ignored: every path serves the metrics page.
    std::string request;
    char buf[1024];
    while (request.size() < kMaxRequestBytes &&
           request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      request.append(buf, static_cast<size_t>(n));
    }
    const std::string body = renderer_ ? renderer_() : std::string();
    std::string response = "HTTP/1.0 200 OK\r\n";
    response += "Content-Type: text/plain; version=0.0.4\r\n";
    response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    response += "Connection: close\r\n\r\n";
    response += body;
    SendAll(fd, response);
    ::close(fd);
  }
}

}  // namespace youtopia::net
