#include "net/remote_client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/backoff.h"
#include "common/logging.h"

namespace youtopia::net {

namespace {

StatusCode CodeOf(const Status& s) { return s.code(); }
template <typename T>
StatusCode CodeOf(const Result<T>& r) {
  return r.status().code();
}

/// Drives `issue` until it returns anything but kOverloaded or the
/// policy's retry budget is spent. Shed statements were rejected before
/// any side effect (design decision #12), so re-issuing is safe; the
/// pacing is the system-wide ExponentialBackoff schedule.
template <typename Fn>
auto RetryOverloaded(const ReconnectPolicy& policy, Fn&& issue)
    -> decltype(issue()) {
  for (size_t attempt = 0;; ++attempt) {
    auto result = issue();
    if (CodeOf(result) != StatusCode::kOverloaded ||
        attempt >= policy.overload_retry_budget) {
      return result;
    }
    std::this_thread::sleep_for(ExponentialBackoff(
        policy.overload_retry_interval, policy.overload_retry_max_interval,
        attempt));
  }
}

}  // namespace

Result<int> RemoteClient::Dial(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &resolved);
  if (rc != 0 || resolved == nullptr) {
    return Status::NotFound("cannot resolve " + host + ": " +
                            gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::NotFound("no address for " + host);
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Status::Internal("connect " + host + ":" + std::to_string(port) +
                            ": " + std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (fd < 0) return last;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<std::unique_ptr<RemoteClient>> RemoteClient::Connect(
    const std::string& host, uint16_t port, ClientOptions options,
    uint32_t max_frame_bytes, ReconnectPolicy policy) {
  // The initial dial is strict — a wrong address should fail fast; the
  // policy governs re-dials of a connection that once worked.
  auto fd = Dial(host, port);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<RemoteClient>(
      new RemoteClient(*fd, host, port, std::move(options), max_frame_bytes,
                       policy));
}

RemoteClient::RemoteClient(int fd, std::string host, uint16_t port,
                           ClientOptions options, uint32_t max_frame_bytes,
                           ReconnectPolicy policy)
    : fd_(fd),
      host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      max_frame_bytes_(max_frame_bytes),
      policy_(policy) {
  reader_ = std::thread([this] { ReaderLoop(); });
  completion_dispatcher_ = std::thread([this] { CompletionLoop(); });
}

RemoteClient::~RemoteClient() {
  Close();
  // Both threads are joined; the lock only satisfies the analysis.
  MutexLock lock(write_mu_);
  ::close(fd_);
}

bool RemoteClient::connected() const {
  MutexLock lock(mu_);
  return !closed_;
}

void RemoteClient::Close() {
  // call_once: a Close racing the destructor (or another Close) must
  // not double-join the threads; late callers block until the first
  // finishes tearing down.
  std::call_once(close_once_, [this] {
    {
      // user_closed_ first: the reader checks it under mu_ before
      // installing a redialed socket, so after this point it either
      // never installs (sees the flag) or installed already (then the
      // shutdown below hits the fresh descriptor). Either way it exits.
      MutexLock lock(mu_);
      user_closed_ = true;
    }
    link_cv_.NotifyAll();
    {
      MutexLock lock(write_mu_);
      ::shutdown(fd_, SHUT_RDWR);
    }
    if (reader_.joinable()) reader_.join();
    // ReaderLoop's exit path aborted everything already; this covers a
    // Close before the reader noticed the shutdown.
    AbortEverything(Status::Aborted("connection closed"));
    // Stop the dispatcher only after everything that can enqueue has
    // run: it drains the queue, so no completion is lost on close.
    {
      MutexLock lock(comp_mu_);
      comp_stop_ = true;
    }
    comp_cv_.NotifyAll();
    if (completion_dispatcher_.joinable()) completion_dispatcher_.join();
  });
}

Status RemoteClient::SendBytes(const std::string& bytes) {
  MutexLock lock(write_mu_);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Aborted(std::string("connection lost: ") +
                             (n < 0 ? std::strerror(errno) : "peer closed"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RemoteClient::Call(uint64_t request_id, const std::string& frame,
                          ResponseHandler handler) {
  if (frame.size() > size_t{max_frame_bytes_} + kFrameHeaderBytes) {
    // The server's assembler would reject it and sever the connection,
    // killing every other in-flight request — fail just this call.
    return Status::InvalidArgument(
        "encoded request (" + std::to_string(frame.size()) +
        " bytes) exceeds the frame limit");
  }
  {
    MutexLock lock(mu_);
    if (policy_.reconnect) {
      // A redial in progress is not a dead client: wait for the link
      // verdict instead of failing calls that raced the drop window.
      // Bounded — the reader either lands a socket or gives up after
      // its attempt budget, and Close() interrupts.
      link_cv_.Wait(mu_, [this]() { return !redialing_ || user_closed_; });
    }
    if (closed_ || user_closed_) return Status::Aborted("client is closed");
    in_flight_.emplace(request_id, std::move(handler));
  }
  const Status sent = SendBytes(frame);
  if (sent.ok()) return Status::OK();
  // Undo the registration — unless the reader already failed it (then
  // the handler has fired and the caller must treat the call as issued).
  MutexLock lock(mu_);
  if (in_flight_.erase(request_id) == 0) return Status::OK();
  return sent;
}

Status RemoteClient::ReadFromSocket(int fd) {
  FrameAssembler assembler(max_frame_bytes_);
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return Status::Aborted("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Aborted(std::string("connection lost: ") +
                             std::strerror(errno));
    }
    assembler.Append(buf, static_cast<size_t>(n));
    for (;;) {
      auto next = assembler.Next();
      if (!next.ok()) return next.status();
      if (!next->has_value()) break;
      HandleIncoming(std::move(**next));
    }
  }
}

int RemoteClient::Redial() {
  for (size_t attempt = 0; attempt < policy_.max_reconnect_attempts;
       ++attempt) {
    {
      MutexLock lock(mu_);
      const auto pause =
          ExponentialBackoff(policy_.reconnect_interval,
                             policy_.reconnect_max_interval, attempt);
      // The backoff sleep doubles as the Close() observation point.
      link_cv_.WaitFor(mu_, pause, [this]() { return user_closed_; });
      if (user_closed_) return -1;
    }
    auto fd = Dial(host_, port_);
    if (fd.ok()) return *fd;
  }
  return -1;
}

void RemoteClient::ReaderLoop() {
  int fd;
  {
    MutexLock lock(write_mu_);
    fd = fd_;
  }
  for (;;) {
    const Status reason = ReadFromSocket(fd);
    ::shutdown(fd, SHUT_RDWR);
    bool redial;
    {
      MutexLock lock(mu_);
      redial = policy_.reconnect && !user_closed_;
      // Raised before AbortEverything flips closed_, so a Call arriving
      // after the drop waits for the link verdict instead of failing.
      redialing_ = redial;
    }
    // Every in-flight request and pending handle fails with kAborted
    // even when a redial follows: the server lost their state with the
    // connection, and silently re-running a non-idempotent statement is
    // worse than surfacing a retryable error.
    AbortEverything(reason);
    if (!redial) return;
    const int new_fd = Redial();
    {
      MutexLock lock(mu_);
      if (new_fd < 0 || user_closed_) {
        redialing_ = false;
        link_cv_.NotifyAll();
        if (new_fd >= 0) ::close(new_fd);
        return;
      }
      {
        // Writers are excluded while the socket swaps; the old
        // descriptor is closed here (not in the destructor) so a
        // long-lived reconnecting client never leaks descriptors.
        MutexLock wlock(write_mu_);
        ::close(fd_);
        fd_ = new_fd;
      }
      closed_ = false;
      redialing_ = false;
    }
    link_cv_.NotifyAll();
    fd = new_fd;
  }
}

void RemoteClient::HandleIncoming(Frame frame) {
  if (frame.type == MessageType::kCompletionPush) {
    auto push = DecodePayload<CompletionPush>(frame.payload);
    if (!push.ok()) {
      YOUTOPIA_LOG(kWarning) << "bad completion push: "
                             << push.status().ToString();
      return;
    }
    ApplyCompletion(*push);
    return;
  }
  // Everything else is a response; the request id leads every payload.
  WireReader reader(frame.payload);
  uint64_t request_id = 0;
  if (!reader.GetU64(&request_id)) {
    YOUTOPIA_LOG(kWarning) << "response frame too short";
    return;
  }
  ResponseHandler handler;
  {
    MutexLock lock(mu_);
    auto it = in_flight_.find(request_id);
    if (it == in_flight_.end()) return;  // cancelled or duplicate
    handler = std::move(it->second);
    in_flight_.erase(it);
  }
  handler(std::move(frame));
}

void RemoteClient::ApplyCompletion(const CompletionPush& push) {
  std::optional<EntangledHandle> handle;
  {
    MutexLock lock(mu_);
    auto it = handles_.find(push.query_id);
    if (it == handles_.end()) {
      // Bounded: a push whose handle is never adopted (response lost to
      // an error path) must not accumulate for the connection's life.
      if (early_completions_.size() >= 256) {
        early_completions_.erase(early_completions_.begin());
      }
      early_completions_[push.query_id] = push;
      return;
    }
    handle = it->second;
    handles_.erase(it);
  }
  EnqueueCompletion(std::move(*handle), push.outcome, push.answers);
}

void RemoteClient::EnqueueCompletion(EntangledHandle handle, Status outcome,
                                     std::vector<Tuple> answers) {
  {
    MutexLock lock(comp_mu_);
    if (!comp_stop_) {
      comp_queue_.push_back(PendingCompletion{
          std::move(handle), std::move(outcome), std::move(answers)});
      comp_cv_.NotifyOne();
      return;
    }
  }
  // Dispatcher already stopped (late completion during teardown):
  // complete in the calling thread so no waiter hangs.
  DetachedHandles::Complete(handle, std::move(outcome), std::move(answers));
}

void RemoteClient::CompletionLoop() {
  for (;;) {
    std::optional<PendingCompletion> next;
    {
      MutexLock lock(comp_mu_);
      comp_cv_.Wait(comp_mu_,
                    [this] { return comp_stop_ || !comp_queue_.empty(); });
      // Stop only on a drained queue, so close never drops completions.
      if (comp_queue_.empty()) return;
      next.emplace(std::move(comp_queue_.front()));
      comp_queue_.pop_front();
    }
    DetachedHandles::Complete(next->handle, std::move(next->outcome),
                              std::move(next->answers));
  }
}

void RemoteClient::AbortEverything(const Status& reason) {
  std::map<uint64_t, ResponseHandler> in_flight;
  std::map<uint64_t, EntangledHandle> handles;
  {
    MutexLock lock(mu_);
    closed_ = true;
    in_flight.swap(in_flight_);
    handles.swap(handles_);
    early_completions_.clear();
  }
  for (auto& [id, handler] : in_flight) handler(reason);
  for (auto& [id, handle] : handles) {
    EnqueueCompletion(handle, reason, {});
  }
}

EntangledHandle RemoteClient::AdoptHandle(const WireHandle& wire) {
  EntangledHandle handle = DetachedHandles::Create(wire.query_id);
  if (wire.done) {
    DetachedHandles::Complete(handle, wire.outcome, wire.answers);
    return handle;
  }
  std::optional<CompletionPush> early;
  {
    MutexLock lock(mu_);
    auto it = early_completions_.find(wire.query_id);
    if (it != early_completions_.end()) {
      early = std::move(it->second);
      early_completions_.erase(it);
    } else if (closed_) {
      early = CompletionPush{wire.query_id,
                             Status::Aborted("connection closed"),
                             {}};
    } else {
      handles_.emplace(wire.query_id, handle);
    }
  }
  if (early) DetachedHandles::Complete(handle, early->outcome, early->answers);
  return handle;
}

// ----------------------------------------------------------- statements

std::future<Result<QueryResult>> RemoteClient::ExecuteAsync(
    const std::string& sql) {
  auto promise = std::make_shared<std::promise<Result<QueryResult>>>();
  auto future = promise->get_future();
  const uint64_t id = NextRequestId();
  const Status issued = Call(
      id, EncodeFrame(ExecuteRequest{id, sql}),
      [promise](Result<Frame> frame) {
        if (!frame.ok()) {
          promise->set_value(Result<QueryResult>(frame.status()));
          return;
        }
        auto resp = DecodePayload<ExecuteResponse>(frame->payload);
        if (!resp.ok()) {
          promise->set_value(Result<QueryResult>(resp.status()));
        } else if (!resp->status.ok()) {
          promise->set_value(Result<QueryResult>(resp->status));
        } else {
          promise->set_value(std::move(resp->result));
        }
      });
  if (!issued.ok()) promise->set_value(Result<QueryResult>(issued));
  return future;
}

Result<QueryResult> RemoteClient::Execute(const std::string& sql) {
  return RetryOverloaded(policy_,
                         [&] { return ExecuteAsync(sql).get(); });
}

std::future<Status> RemoteClient::ExecuteScriptAsync(const std::string& sql) {
  auto promise = std::make_shared<std::promise<Status>>();
  auto future = promise->get_future();
  const uint64_t id = NextRequestId();
  const Status issued = Call(
      id, EncodeFrame(ScriptRequest{id, sql}),
      [promise](Result<Frame> frame) {
        if (!frame.ok()) {
          promise->set_value(frame.status());
          return;
        }
        auto resp = DecodePayload<ScriptResponse>(frame->payload);
        promise->set_value(resp.ok() ? resp->status : resp.status());
      });
  if (!issued.ok()) promise->set_value(issued);
  return future;
}

Status RemoteClient::ExecuteScript(const std::string& sql) {
  return RetryOverloaded(policy_,
                         [&] { return ExecuteScriptAsync(sql).get(); });
}

Result<EntangledHandle> RemoteClient::Submit(const std::string& sql,
                                             CompletionCallback on_complete) {
  return SubmitAs(options_.owner, sql, std::move(on_complete));
}

Result<EntangledHandle> RemoteClient::SubmitOnce(const std::string& owner,
                                                 const std::string& sql) {
  auto promise = std::make_shared<std::promise<Result<EntangledHandle>>>();
  auto future = promise->get_future();
  const uint64_t id = NextRequestId();
  const Status issued = Call(
      id, EncodeFrame(SubmitRequest{id, owner, sql}),
      [this, promise](Result<Frame> frame) {
        // `this` is safe: handlers only run from the reader thread or
        // AbortEverything, both of which precede destruction.
        if (!frame.ok()) {
          promise->set_value(Result<EntangledHandle>(frame.status()));
          return;
        }
        auto resp = DecodePayload<SubmitResponse>(frame->payload);
        if (!resp.ok()) {
          promise->set_value(Result<EntangledHandle>(resp.status()));
        } else if (!resp->status.ok()) {
          promise->set_value(Result<EntangledHandle>(resp->status));
        } else {
          promise->set_value(AdoptHandle(resp->handle));
        }
      });
  if (!issued.ok()) return issued;
  return future.get();
}

Result<EntangledHandle> RemoteClient::SubmitAs(
    const std::string& owner, const std::string& sql,
    CompletionCallback on_complete) {
  // Safe to retry on kOverloaded: a Run of an entangled statement can
  // be shed at admission, which happens before coordinator
  // registration — no phantom coordination exists for a shed submit.
  auto handle =
      RetryOverloaded(policy_, [&] { return SubmitOnce(owner, sql); });
  if (!handle.ok()) return handle;
  if (on_complete) handle->OnComplete(std::move(on_complete));
  return handle;
}

Result<std::vector<EntangledHandle>> RemoteClient::SubmitBatch(
    const std::vector<std::string>& statements,
    CompletionCallback on_complete) {
  return SubmitBatchAs({}, statements, std::move(on_complete));
}

Result<std::vector<EntangledHandle>> RemoteClient::SubmitBatchOnce(
    const std::vector<std::string>& owners,
    const std::vector<std::string>& statements) {
  SubmitBatchRequest req;
  req.request_id = NextRequestId();
  if (owners.empty()) {
    req.owners.assign(statements.size(), options_.owner);
  } else {
    req.owners = owners;
  }
  req.statements = statements;
  auto promise =
      std::make_shared<std::promise<Result<std::vector<EntangledHandle>>>>();
  auto future = promise->get_future();
  const Status issued = Call(
      req.request_id, EncodeFrame(req), [this, promise](Result<Frame> frame) {
        if (!frame.ok()) {
          promise->set_value(
              Result<std::vector<EntangledHandle>>(frame.status()));
          return;
        }
        auto resp = DecodePayload<SubmitBatchResponse>(frame->payload);
        if (!resp.ok()) {
          promise->set_value(
              Result<std::vector<EntangledHandle>>(resp.status()));
          return;
        }
        if (!resp->status.ok()) {
          promise->set_value(
              Result<std::vector<EntangledHandle>>(resp->status));
          return;
        }
        std::vector<EntangledHandle> handles;
        handles.reserve(resp->handles.size());
        for (const WireHandle& wire : resp->handles) {
          handles.push_back(AdoptHandle(wire));
        }
        promise->set_value(std::move(handles));
      });
  if (!issued.ok()) return issued;
  return future.get();
}

Result<std::vector<EntangledHandle>> RemoteClient::SubmitBatchAs(
    const std::vector<std::string>& owners,
    const std::vector<std::string>& statements,
    CompletionCallback on_complete) {
  auto handles = RetryOverloaded(
      policy_, [&] { return SubmitBatchOnce(owners, statements); });
  if (!handles.ok()) return handles;
  if (on_complete) {
    for (EntangledHandle& handle : *handles) handle.OnComplete(on_complete);
  }
  return handles;
}

std::future<Result<RunOutcome>> RemoteClient::RunAsync(
    const std::string& sql) {
  auto promise = std::make_shared<std::promise<Result<RunOutcome>>>();
  auto future = promise->get_future();
  const uint64_t id = NextRequestId();
  const Status issued = Call(
      id, EncodeFrame(RunRequest{id, options_.owner, sql}),
      [this, promise](Result<Frame> frame) {
        if (!frame.ok()) {
          promise->set_value(Result<RunOutcome>(frame.status()));
          return;
        }
        auto resp = DecodePayload<RunResponse>(frame->payload);
        if (!resp.ok()) {
          promise->set_value(Result<RunOutcome>(resp.status()));
          return;
        }
        if (!resp->status.ok()) {
          promise->set_value(Result<RunOutcome>(resp->status));
          return;
        }
        RunOutcome outcome;
        outcome.entangled = resp->entangled;
        if (resp->entangled) {
          outcome.handle = AdoptHandle(resp->handle);
        } else {
          outcome.result = std::move(resp->result);
        }
        promise->set_value(std::move(outcome));
      });
  if (!issued.ok()) promise->set_value(Result<RunOutcome>(issued));
  return future;
}

Result<RunOutcome> RemoteClient::Run(const std::string& sql) {
  return RetryOverloaded(policy_, [&] { return RunAsync(sql).get(); });
}

// ------------------------------------------------------------- tracking

std::vector<EntangledHandle> RemoteClient::Outstanding() {
  std::vector<EntangledHandle> out;
  MutexLock lock(mu_);
  out.reserve(handles_.size());
  for (const auto& [id, handle] : handles_) out.push_back(handle);
  return out;
}

Status RemoteClient::CancelAll() {
  for (const EntangledHandle& handle : Outstanding()) {
    auto promise = std::make_shared<std::promise<Status>>();
    auto future = promise->get_future();
    const uint64_t id = NextRequestId();
    const Status issued = Call(
        id, EncodeFrame(CancelRequest{id, handle.id()}),
        [promise](Result<Frame> frame) {
          if (!frame.ok()) {
            promise->set_value(frame.status());
            return;
          }
          auto resp = DecodePayload<CancelResponse>(frame->payload);
          promise->set_value(resp.ok() ? resp->status : resp.status());
        });
    if (!issued.ok()) return issued;
    const Status status = future.get();
    // NotFound just means it completed concurrently.
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }
  return Status::OK();
}

}  // namespace youtopia::net
