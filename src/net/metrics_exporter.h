#ifndef YOUTOPIA_NET_METRICS_EXPORTER_H_
#define YOUTOPIA_NET_METRICS_EXPORTER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"

namespace youtopia::net {

/// Minimal plaintext metrics endpoint: a side listener that answers any
/// HTTP/1.0 GET with `Content-Type: text/plain` and whatever the render
/// callback returns — the Prometheus exposition idiom, small enough to
/// need no HTTP library. One accept-loop thread serves scrapes inline
/// (a scrape is one render + one write; scrapers are few and periodic),
/// with short socket timeouts so a stalled scraper cannot wedge the
/// loop.
///
/// The render callback runs on the exporter thread with no exporter
/// lock held. It must only touch state that outlives the exporter —
/// the owner stops the exporter (joining that thread) before tearing
/// down anything the callback reads.
class MetricsExporter {
 public:
  using Renderer = std::function<std::string()>;

  explicit MetricsExporter(Renderer renderer);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Binds `bind_address:port` (port 0 = kernel-assigned) and spawns
  /// the accept loop. Fails if already started or the address is taken.
  Status Start(const std::string& bind_address, uint16_t port);

  /// Stops the listener and joins the accept thread (waiting out any
  /// scrape being served). Idempotent; the destructor calls it.
  void Stop();

  /// The bound TCP port; valid after a successful Start().
  uint16_t port() const;

 private:
  void ServeLoop(int listen_fd);

  const Renderer renderer_;

  mutable Mutex mu_{LockRank::kMetricsExporter, "metrics_exporter"};
  bool started_ GUARDED_BY(mu_) = false;
  int listen_fd_ GUARDED_BY(mu_) = -1;
  uint16_t port_ GUARDED_BY(mu_) = 0;
  std::thread accept_thread_ GUARDED_BY(mu_);
};

}  // namespace youtopia::net

#endif  // YOUTOPIA_NET_METRICS_EXPORTER_H_
