#ifndef YOUTOPIA_NET_REMOTE_CLIENT_H_
#define YOUTOPIA_NET_REMOTE_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "net/protocol.h"
#include "server/client.h"
#include "server/client_interface.h"

namespace youtopia::net {

/// Resilience policy for a RemoteClient (both knobs off by default —
/// the seed's fail-fast semantics).
struct ReconnectPolicy {
  /// Re-dial a dropped connection from the reader thread with
  /// exponential backoff instead of staying down. The drop itself
  /// still fails every in-flight request and pending handle with
  /// kAborted — a non-idempotent statement must never silently re-run
  /// — but *later* calls wait out the redial and go over the fresh
  /// connection, on which push dispatch is re-registered as handles
  /// are adopted.
  bool reconnect = false;
  /// Dial attempts per drop before the client gives up for good.
  size_t max_reconnect_attempts = 8;
  std::chrono::milliseconds reconnect_interval{50};
  std::chrono::milliseconds reconnect_max_interval{2000};

  /// Transparent retries of kOverloaded responses on the synchronous
  /// surface (Execute/ExecuteScript/Run/Submit*). A shed statement was
  /// rejected before any side effect, so re-issuing is always safe;
  /// after the budget the kOverloaded status is surfaced to the
  /// caller. The async surface never retries — open-loop callers need
  /// to see every shed.
  size_t overload_retry_budget = 0;
  std::chrono::milliseconds overload_retry_interval{5};
  std::chrono::milliseconds overload_retry_max_interval{250};
};

/// Wire-protocol counterpart of the in-process `Client`: the same
/// `ClientInterface` surface, spoken to a `YoutopiaServer` over TCP, so
/// middle tiers are backend-agnostic. One RemoteClient per logical
/// connection; it is one FIFO session on the server's executor service,
/// so this client's statements execute in submission order while other
/// clients' statements run in parallel — identical to the in-process
/// contract.
///
/// Requests are correlated by id, so many async calls can be in flight
/// on the one connection. Entangled submissions block only for
/// *registration* (the SubmitResponse); completion arrives later as a
/// server-pushed `CompletionPush`, applied to the query's detached
/// `EntangledHandle` — Wait, OnComplete and Answers behave exactly as
/// they do in-process. Pushed completions are delivered from a
/// dedicated dispatch thread (not the socket reader), so an OnComplete
/// callback may synchronously call back into this client — submit a
/// follow-up, run a query — without deadlocking the connection, the
/// same reentrancy the in-process coordinator allows.
///
/// Connection loss fails all in-flight requests and completes all
/// pending handles with kAborted: a remote caller can always
/// distinguish "the coordination failed" from "we lost the engine" by
/// the status message, but never hangs.
class RemoteClient : public ClientInterface {
 public:
  /// Connects to a YoutopiaServer. Only `options.owner` and the retry
  /// fields' defaults matter remotely: conflict retry policy is applied
  /// engine-side by the executor service. `max_frame_bytes` must match
  /// the server's ServerConfig value when that was lowered from the
  /// default: requests bigger than it fail client-side instead of
  /// making the server sever the connection.
  static Result<std::unique_ptr<RemoteClient>> Connect(
      const std::string& host, uint16_t port, ClientOptions options = {},
      uint32_t max_frame_bytes = kMaxFrameBytes,
      ReconnectPolicy policy = {});

  ~RemoteClient() override;

  RemoteClient(const RemoteClient&) = delete;
  RemoteClient& operator=(const RemoteClient&) = delete;

  const ClientOptions& options() const { return options_; }
  const std::string& owner() const override { return options_.owner; }
  const ReconnectPolicy& reconnect_policy() const { return policy_; }

  /// True while the link is up: false after Close(), and — with
  /// reconnect off — after the socket fails. With reconnect on it goes
  /// false on a drop and true again once the redial lands.
  bool connected() const;

  /// Severs the connection: fails in-flight requests, aborts pending
  /// handles, joins the reader. Idempotent; the destructor calls it.
  void Close();

  Result<QueryResult> Execute(const std::string& sql) override;
  std::future<Result<QueryResult>> ExecuteAsync(
      const std::string& sql) override;
  Status ExecuteScript(const std::string& sql) override;
  std::future<Status> ExecuteScriptAsync(const std::string& sql) override;
  Result<EntangledHandle> Submit(
      const std::string& sql,
      CompletionCallback on_complete = nullptr) override;
  Result<EntangledHandle> SubmitAs(
      const std::string& owner, const std::string& sql,
      CompletionCallback on_complete = nullptr) override;
  Result<std::vector<EntangledHandle>> SubmitBatch(
      const std::vector<std::string>& statements,
      CompletionCallback on_complete = nullptr) override;
  Result<std::vector<EntangledHandle>> SubmitBatchAs(
      const std::vector<std::string>& owners,
      const std::vector<std::string>& statements,
      CompletionCallback on_complete = nullptr) override;
  Result<RunOutcome> Run(const std::string& sql) override;
  std::future<Result<RunOutcome>> RunAsync(const std::string& sql) override;
  std::vector<EntangledHandle> Outstanding() override;
  // WaitForAll: ClientInterface's default (Outstanding + Wait) applies.
  Status CancelAll() override;

 private:
  /// Invoked exactly once per issued request: with the response frame,
  /// or with the error that killed the connection. Runs on the reader
  /// thread (or the thread that discovered the failure).
  using ResponseHandler = std::function<void(Result<Frame>)>;

  RemoteClient(int fd, std::string host, uint16_t port,
               ClientOptions options, uint32_t max_frame_bytes,
               ReconnectPolicy policy);

  /// Resolves and connects one TCP socket (no client state touched).
  static Result<int> Dial(const std::string& host, uint16_t port);

  uint64_t NextRequestId() { return next_request_id_.fetch_add(1); }

  /// Registers `handler` under `request_id` and writes `frame`.
  /// Guarantees: handler fires exactly once if OK is returned, never
  /// fires if an error is returned.
  Status Call(uint64_t request_id, const std::string& frame,
              ResponseHandler handler);

  /// Serialized full-frame write.
  Status SendBytes(const std::string& bytes);

  void ReaderLoop();
  /// Reads `fd` until it fails or delivers a bad frame; returns the
  /// reason the connection is done.
  Status ReadFromSocket(int fd);
  /// Dials host_:port_ on the ExponentialBackoff schedule until a
  /// socket connects, the attempt budget runs out (-1) or Close()
  /// interrupts the backoff (-1). Runs on the reader thread.
  int Redial();

  /// One-shot wire round trips behind the Submit surfaces, split out so
  /// the overload-retry wrapper can re-issue them with fresh request
  /// ids.
  Result<EntangledHandle> SubmitOnce(const std::string& owner,
                                     const std::string& sql);
  Result<std::vector<EntangledHandle>> SubmitBatchOnce(
      const std::vector<std::string>& owners,
      const std::vector<std::string>& statements);

  void HandleIncoming(Frame frame);
  void ApplyCompletion(const CompletionPush& push);
  /// Fails every in-flight request and pending handle (connection loss).
  void AbortEverything(const Status& reason);

  /// Hands a handle completion to the dispatch thread. User OnComplete
  /// callbacks must never run on the reader (a callback that calls back
  /// into the client would wait on a response only the reader can
  /// deliver).
  void EnqueueCompletion(EntangledHandle handle, Status outcome,
                         std::vector<Tuple> answers);
  void CompletionLoop();

  /// Turns a WireHandle into a live client-side handle: already-done
  /// handles are completed on the spot, pending ones are parked in
  /// `handles_` awaiting their CompletionPush.
  EntangledHandle AdoptHandle(const WireHandle& wire);

  /// The live socket. Guarded by write_mu_: a redial swaps it while
  /// writers are excluded; the reader works on a local copy it refreshes
  /// after each swap (it is the thread doing the swapping).
  int fd_ GUARDED_BY(write_mu_);
  const std::string host_;
  const uint16_t port_;
  ClientOptions options_;
  const uint32_t max_frame_bytes_;
  const ReconnectPolicy policy_;
  /// Guards teardown: Close() may race the destructor (or another
  /// Close); only one caller runs the join sequence, the rest wait on
  /// it.
  std::once_flag close_once_;
  std::thread reader_;
  std::thread completion_dispatcher_;
  std::atomic<uint64_t> next_request_id_{1};

  /// Completion-dispatch queue (handle + terminal state), drained in
  /// arrival order by completion_dispatcher_.
  struct PendingCompletion {
    EntangledHandle handle;
    Status outcome;
    std::vector<Tuple> answers;
  };
  Mutex comp_mu_{LockRank::kRemoteClientCompletion,
                 "remote_client_completion"};
  CondVar comp_cv_;
  std::deque<PendingCompletion> comp_queue_ GUARDED_BY(comp_mu_);
  bool comp_stop_ GUARDED_BY(comp_mu_) = false;

  /// Rank kConnectionWrite: leaf of the client's locks — SendBytes runs
  /// only syscalls under it.
  Mutex write_mu_{LockRank::kConnectionWrite, "remote_client_write"};

  /// Rank kRemoteClient: orders before the completion queue's mutex
  /// (AbortEverything releases mu_, then enqueues) and before the
  /// write lock (Call registers in_flight_ under mu_, then sends).
  mutable Mutex mu_{LockRank::kRemoteClient, "remote_client"};
  bool closed_ GUARDED_BY(mu_) = false;
  /// Set by Close(); distinguishes "the user is done" from "the link
  /// dropped" (closed_), which reconnect may heal.
  bool user_closed_ GUARDED_BY(mu_) = false;
  /// True while the reader thread is between a drop and a landed
  /// redial; Call waits it out instead of failing.
  bool redialing_ GUARDED_BY(mu_) = false;
  /// Signals link-state changes: redial landed or failed for good,
  /// Close() during a backoff sleep.
  CondVar link_cv_;
  std::map<uint64_t, ResponseHandler> in_flight_ GUARDED_BY(mu_);
  /// Pending detached handles by engine query id.
  std::map<uint64_t, EntangledHandle> handles_ GUARDED_BY(mu_);
  /// Pushes that arrived before their handle was adopted (defensive —
  /// the server sequences response before push, but a cheap stash beats
  /// reasoning about every interleaving).
  std::map<uint64_t, CompletionPush> early_completions_ GUARDED_BY(mu_);
};

}  // namespace youtopia::net

#endif  // YOUTOPIA_NET_REMOTE_CLIENT_H_
