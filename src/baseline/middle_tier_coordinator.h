#ifndef YOUTOPIA_BASELINE_MIDDLE_TIER_COORDINATOR_H_
#define YOUTOPIA_BASELINE_MIDDLE_TIER_COORDINATOR_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "server/client.h"

namespace youtopia::baseline {

/// What application developers build *without* Youtopia (paper §1: the
/// alternative is "coordinating out-of-band ... and trying to make
/// near-simultaneous bookings"): pairwise same-flight coordination
/// implemented in the middle tier over ordinary tables, transactions and
/// polling.
///
/// Protocol: a request first looks for an open reciprocal proposal from
/// the partner. If present, it picks a flight, books both seats and
/// marks the proposal accepted — all in one transaction. Otherwise it
/// files its own proposal and the caller polls until a partner arrives.
///
/// The class exists to be measured against the in-DBMS coordinator
/// (bench_baseline_comparison) and to illustrate the code burden the
/// paper argues Youtopia removes: deadlock-retry loops, polling
/// latency, and manual two-sided state management.
class MiddleTierCoordinator {
 public:
  explicit MiddleTierCoordinator(Youtopia* db)
      : db_(db), client_(db, BaselineOptions()) {}

  MiddleTierCoordinator(const MiddleTierCoordinator&) = delete;
  MiddleTierCoordinator& operator=(const MiddleTierCoordinator&) = delete;

  /// Creates the CoordProposals working table.
  Status Setup();

  /// Outcome of filing a request.
  struct Ticket {
    /// Proposal row id to poll on; 0 when completed immediately.
    uint64_t pid = 0;
    bool completed = false;
    int64_t fno = 0;  ///< Booked flight when completed.
  };

  /// Requests a same-flight booking for `user` with `partner` to
  /// `dest`. Either completes both bookings immediately (reciprocal
  /// proposal found) or files a proposal.
  Result<Ticket> RequestSameFlight(const std::string& user,
                                   const std::string& partner,
                                   const std::string& dest);

  /// Checks whether the proposal was accepted; returns the flight
  /// number when it was.
  Result<std::optional<int64_t>> Poll(uint64_t pid);

  /// Polls until accepted or timeout.
  Result<int64_t> WaitForMatch(
      uint64_t pid, std::chrono::milliseconds timeout,
      std::chrono::milliseconds poll_interval = std::chrono::milliseconds(2));

 private:
  /// The baseline's setup SQL goes through the façade; everything else
  /// — the accept-or-propose transaction and its hand-rolled
  /// lock-conflict retry loop — still drives the TxnManager directly.
  /// That is deliberate: multi-statement coordination logic is exactly
  /// what the façade's per-statement machinery cannot lift, which is
  /// the paper's argument for in-DBMS coordination.
  static ClientOptions BaselineOptions() {
    return ClientOptions("baseline", /*record=*/false);
  }

  /// One attempt of the accept-or-propose transaction; kTimedOut means
  /// a lock conflict and the caller retries.
  Result<Ticket> TryRequest(const std::string& user,
                            const std::string& partner,
                            const std::string& dest);

  Youtopia* db_;
  Client client_;
};

}  // namespace youtopia::baseline

#endif  // YOUTOPIA_BASELINE_MIDDLE_TIER_COORDINATOR_H_
