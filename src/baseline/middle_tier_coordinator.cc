#include "baseline/middle_tier_coordinator.h"

#include <algorithm>
#include <thread>

namespace youtopia::baseline {

namespace {
constexpr const char* kProposals = "CoordProposals";
// Proposal states.
constexpr int64_t kOpen = 0;
constexpr int64_t kAccepted = 1;
}  // namespace

Status MiddleTierCoordinator::Setup() {
  if (db_->storage().catalog().HasTable(kProposals)) return Status::OK();
  return client_.ExecuteScript(
      "CREATE TABLE CoordProposals ("
      "  proposer TEXT NOT NULL,"
      "  partner TEXT NOT NULL,"
      "  dest TEXT NOT NULL,"
      "  fno INT NOT NULL,"
      "  state INT NOT NULL"
      ")");
}

Result<MiddleTierCoordinator::Ticket> MiddleTierCoordinator::TryRequest(
    const std::string& user, const std::string& partner,
    const std::string& dest) {
  TxnManager& txns = db_->txn_manager();
  auto txn = txns.Begin();
  // Abort-and-propagate helper: every early return must roll back.
  auto fail = [&](Status status) -> Status {
    (void)txns.Abort(txn.get());
    return status;
  };

  // Look for a reciprocal open proposal: partner proposed to user.
  auto proposals = txns.Scan(txn.get(), kProposals);
  if (!proposals.ok()) return fail(proposals.status());
  for (const auto& [rid, row] : *proposals) {
    if (row.at(0).string_value() != partner) continue;
    if (row.at(1).string_value() != user) continue;
    if (row.at(2).string_value() != dest) continue;
    if (row.at(4).int64_value() != kOpen) continue;

    // Found: choose a flight and book both travelers atomically.
    auto flights = txns.Scan(txn.get(), "Flights");
    if (!flights.ok()) return fail(flights.status());
    std::optional<int64_t> chosen;
    for (const auto& [frid, flight] : *flights) {
      // Works with both the full travel schema and the Figure-1 schema:
      // dest is the column named "dest".
      auto info = db_->storage().catalog().GetTable("Flights");
      if (!info.ok()) return fail(info.status());
      auto dest_col = info->schema.ColumnIndex("dest");
      if (!dest_col.ok()) return fail(dest_col.status());
      if (flight.at(dest_col.value()).string_value() == dest) {
        chosen = flight.at(0).int64_value();
        break;
      }
    }
    if (!chosen.has_value()) {
      return fail(Status::NotFound("no flight to " + dest));
    }
    Tuple updated = row;
    updated.at(3) = Value::Int64(*chosen);
    updated.at(4) = Value::Int64(kAccepted);
    Status status = txns.Update(txn.get(), kProposals, rid, updated);
    if (!status.ok()) return fail(status);
    auto r1 = txns.Insert(txn.get(), "Reservation",
                          Tuple({Value::String(user), Value::Int64(*chosen)}));
    if (!r1.ok()) return fail(r1.status());
    auto r2 = txns.Insert(
        txn.get(), "Reservation",
        Tuple({Value::String(partner), Value::Int64(*chosen)}));
    if (!r2.ok()) return fail(r2.status());
    YOUTOPIA_RETURN_IF_ERROR(txns.Commit(txn.get()));

    Ticket ticket;
    ticket.completed = true;
    ticket.fno = *chosen;
    return ticket;
  }

  // No reciprocal proposal: file our own and wait to be found.
  auto rid = txns.Insert(
      txn.get(), kProposals,
      Tuple({Value::String(user), Value::String(partner), Value::String(dest),
             Value::Int64(0), Value::Int64(kOpen)}));
  if (!rid.ok()) return fail(rid.status());
  YOUTOPIA_RETURN_IF_ERROR(txns.Commit(txn.get()));

  Ticket ticket;
  ticket.pid = rid.value();
  return ticket;
}

Result<MiddleTierCoordinator::Ticket> MiddleTierCoordinator::RequestSameFlight(
    const std::string& user, const std::string& partner,
    const std::string& dest) {
  // Lock-conflict retry loop with capped exponential backoff — the
  // kind of code the paper argues the middle tier should not have to
  // write (and, done naively, the kind that hammers the lock manager).
  std::chrono::milliseconds pause(1);
  for (int attempt = 0; attempt < 32; ++attempt) {
    auto ticket = TryRequest(user, partner, dest);
    if (ticket.ok()) return ticket;
    if (ticket.status().code() != StatusCode::kTimedOut) {
      return ticket.status();
    }
    std::this_thread::sleep_for(pause);
    pause = std::min(pause * 2, std::chrono::milliseconds(32));
  }
  return Status::TimedOut("could not acquire coordination locks");
}

Result<std::optional<int64_t>> MiddleTierCoordinator::Poll(uint64_t pid) {
  auto row = db_->storage().Get(kProposals, pid);
  if (!row.ok()) return row.status();
  if (row->at(4).int64_value() == kAccepted) {
    return std::optional<int64_t>(row->at(3).int64_value());
  }
  return std::optional<int64_t>{};
}

Result<int64_t> MiddleTierCoordinator::WaitForMatch(
    uint64_t pid, std::chrono::milliseconds timeout,
    std::chrono::milliseconds poll_interval) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto result = Poll(pid);
    if (!result.ok()) return result.status();
    if (result->has_value()) return result->value();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::TimedOut("no partner arrived for proposal " +
                              std::to_string(pid));
    }
    std::this_thread::sleep_for(poll_interval);
  }
}

}  // namespace youtopia::baseline
