#ifndef YOUTOPIA_STORAGE_HEAP_TABLE_H_
#define YOUTOPIA_STORAGE_HEAP_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace youtopia {

/// Position of a row within its heap table. Row ids are never reused, so a
/// stale RowId reliably reports NotFound rather than aliasing a new row.
using RowId = uint64_t;

/// In-memory slotted heap: an append-only vector of slots with tombstoned
/// deletes. This is the physical layer every scan and index probe bottoms
/// out in. Thread-safe via a reader/writer latch; multi-statement atomicity
/// is layered on top by the transaction manager.
class HeapTable {
 public:
  HeapTable(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Validates against the schema (coercing as needed) and appends.
  Result<RowId> Insert(const Tuple& tuple);

  /// Row lookup; NotFound for tombstoned or out-of-range ids.
  Result<Tuple> Get(RowId rid) const;

  /// True iff `rid` holds a live row.
  bool Contains(RowId rid) const;

  /// Tombstones the row; NotFound if already dead or out of range.
  Status Delete(RowId rid);

  /// Replaces the row in place (same RowId). Validates the new tuple.
  Status Update(RowId rid, const Tuple& tuple);

  /// Resurrects a tombstoned slot with `tuple` under its original RowId.
  /// Used exclusively by transaction rollback to undo a delete exactly;
  /// fails if the slot is out of range or still live.
  Status Restore(RowId rid, const Tuple& tuple);

  /// Number of live rows.
  size_t size() const;

  /// Number of allocated slots, live or tombstoned — the next Insert
  /// gets RowId slot_count(). Checkpoints persist it so recovery
  /// reproduces row-id assignment exactly (tombstones included).
  size_t slot_count() const;

  /// Bulk-restores checkpointed contents: sizes the slot vector to
  /// `slot_count` (everything tombstoned) and places each tuple at its
  /// recorded RowId. The table must be empty and untouched; rows must
  /// fit below `slot_count` and validate against the schema.
  Status LoadSnapshot(size_t slot_count,
                      const std::vector<std::pair<RowId, Tuple>>& rows);

  /// Materialized snapshot of all live (rid, tuple) pairs in rid order.
  /// Scans copy: the engine is in-memory and tuples are small, and a
  /// snapshot keeps iterator semantics trivial under concurrent writers.
  std::vector<std::pair<RowId, Tuple>> Scan() const;

  /// Removes all rows (admin/test helper). Row ids continue to advance.
  void Clear();

 private:
  std::string name_;
  Schema schema_;
  /// Row-level latch, acquired under the engine's kStorageTables
  /// latch (or alone); takes nothing itself.
  mutable SharedMutex latch_{LockRank::kHeapTable, "heap_table"};
  std::vector<std::optional<Tuple>> slots_ GUARDED_BY(latch_);
  size_t live_count_ GUARDED_BY(latch_) = 0;
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_HEAP_TABLE_H_
