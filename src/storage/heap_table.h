#ifndef YOUTOPIA_STORAGE_HEAP_TABLE_H_
#define YOUTOPIA_STORAGE_HEAP_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "txn/mvcc.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace youtopia {

/// Position of a row within its heap table. Row ids are never reused, so a
/// stale RowId reliably reports NotFound rather than aliasing a new row.
using RowId = uint64_t;

/// One version of a row. Versions live newest-first in their slot's
/// chain; a version's end timestamp is implicit — it is the begin_ts of
/// the next-newer committed version (or "still live" at the head).
struct TupleVersion {
  Tuple tuple;
  /// kPendingTs until the writing transaction commits; the commit
  /// timestamp afterwards.
  Ts begin_ts = kBaseTs;
  /// Writing transaction while pending (0 = auto-commit writer).
  TxnId writer = 0;
  /// A delete marker: the row is invisible at and after begin_ts. Only
  /// ever at the head of a chain — slots are never re-inserted.
  bool tombstone = false;
};

/// How a versioned write is stamped: already committed (auto-commit
/// writers stamp with a real timestamp up front) or pending under a
/// transaction (stamped later by CommitVersions).
struct VersionStamp {
  Ts begin_ts = kBaseTs;
  TxnId writer = 0;

  static VersionStamp Committed(Ts ts) { return {ts, 0}; }
  static VersionStamp Pending(TxnId txn) { return {kPendingTs, txn}; }
};

/// In-memory slotted heap: an append-only vector of slots, each holding
/// a newest-first version chain. This is the physical layer every scan
/// and index probe bottoms out in. Thread-safe via a reader/writer
/// latch; multi-statement atomicity is layered on top by the
/// transaction manager and the MVCC commit protocol.
///
/// `num_versions == 1` (the default) is the unversioned mode: updates
/// replace in place, deletes empty the slot, every chain holds at most
/// one committed version — byte-for-byte the pre-MVCC semantics.
/// `num_versions >= 2` keeps up to that many versions per slot for
/// snapshot readers; pruning (CommitVersions / Prune) keeps more only
/// while a live snapshot still needs them.
class HeapTable {
 public:
  HeapTable(std::string name, Schema schema, size_t num_versions = 1)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        num_versions_(num_versions < 1 ? 1 : num_versions) {}

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_versions() const { return num_versions_; }
  /// True when snapshot readers can be served (num_versions >= 2).
  bool versioned() const { return num_versions_ > 1; }

  /// Validates against the schema (coercing as needed) and appends a
  /// new slot whose first version carries `stamp`. The default stamp is
  /// committed-at-base, the unversioned behavior.
  Result<RowId> Insert(const Tuple& tuple,
                       VersionStamp stamp = VersionStamp::Committed(kBaseTs));

  /// Head-version lookup (current read): the newest version, pending
  /// included — under 2PL only the writer itself can reach its own
  /// pending versions. NotFound for dead or out-of-range slots.
  Result<Tuple> Get(RowId rid) const;

  /// Newest version visible at `snapshot_ts`: committed, begin_ts <=
  /// snapshot_ts, not a tombstone. NotFound when no version qualifies.
  Result<Tuple> GetVisible(RowId rid, Ts snapshot_ts) const;

  /// True iff `rid`'s head version is live (non-tombstone).
  bool Contains(RowId rid) const;

  /// Tombstones the row; NotFound if already dead or out of range.
  /// Unversioned mode empties the slot; versioned mode pushes a
  /// tombstone version carrying `stamp`.
  Status Delete(RowId rid,
                VersionStamp stamp = VersionStamp::Committed(kBaseTs));

  /// Replaces the row (same RowId). Validates the new tuple.
  /// Unversioned mode overwrites in place; versioned mode pushes a new
  /// version carrying `stamp` (pruning happens at commit, not here) —
  /// except when the pending head already belongs to `stamp`'s writer,
  /// which collapses in place and reports `*collapsed` = true (the only
  /// way an Update can make a previously-held index key vanish).
  Status Update(RowId rid, const Tuple& tuple,
                VersionStamp stamp = VersionStamp::Committed(kBaseTs),
                bool* collapsed = nullptr);

  /// Resurrects a dead slot with `tuple` under its original RowId.
  /// Used exclusively by unversioned transaction rollback to undo a
  /// delete exactly; fails if the slot is out of range or still live.
  Status Restore(RowId rid, const Tuple& tuple);

  /// Stamps every pending version `txn` wrote in slot `rid` with
  /// `commit_ts`, then prunes the chain against `low_water` (see
  /// Prune). Appends pruned tuples to `*pruned` and, when the whole
  /// slot died, sets `*slot_cleared`; both outputs optional.
  Status CommitVersions(RowId rid, TxnId txn, Ts commit_ts, Ts low_water,
                        std::vector<Tuple>* pruned, bool* slot_cleared);

  /// Pops every pending version `txn` wrote in slot `rid` (they are
  /// contiguous at the head — the writer held the table X lock).
  /// Appends the removed tuples to `*removed` (optional); sets
  /// `*slot_cleared` when the abort emptied the chain (an aborted
  /// insert — the slot stays allocated so RowId assignment is stable).
  Status AbortVersions(RowId rid, TxnId txn, std::vector<Tuple>* removed,
                       bool* slot_cleared);

  /// Garbage collection for one slot. Reclaims the whole chain when its
  /// head is a committed tombstone at or below `low_water` (no live or
  /// future snapshot can see the row); otherwise trims the oldest
  /// versions down to num_versions, but only versions strictly older
  /// than the newest committed version at or below `low_water` — a
  /// version some live snapshot can still read is never reclaimed, so
  /// chains may exceed num_versions while an old snapshot is open.
  /// Outputs as in CommitVersions.
  Status Prune(RowId rid, Ts low_water, std::vector<Tuple>* pruned,
               bool* slot_cleared);

  /// Number of versions currently in `rid`'s chain (0 = dead slot).
  size_t VersionCount(RowId rid) const;

  /// All non-tombstone tuples in `rid`'s chain, newest first (index
  /// maintenance: a key present in any retained version must stay in
  /// the index).
  std::vector<Tuple> VersionTuples(RowId rid) const;

  /// True if any non-tombstone version in `rid`'s chain holds `key` at
  /// column `col`, ignoring the `skip_newest` newest versions. The
  /// allocation-free probe behind the update path's index maintenance
  /// (VersionTuples materializes the chain; this just walks it).
  bool ChainHasKey(RowId rid, size_t col, const Value& key,
                   size_t skip_newest = 0) const;

  /// Number of live rows (head version live; pending included).
  size_t size() const;

  /// Number of allocated slots, live or dead — the next Insert gets
  /// RowId slot_count(). Checkpoints persist it so recovery reproduces
  /// row-id assignment exactly (dead slots included).
  size_t slot_count() const;

  /// Bulk-restores checkpointed contents: sizes the slot vector to
  /// `slot_count` (everything dead) and places each tuple at its
  /// recorded RowId as one committed-at-base version. The table must be
  /// empty and untouched; rows must fit below `slot_count` and validate
  /// against the schema.
  Status LoadSnapshot(size_t slot_count,
                      const std::vector<std::pair<RowId, Tuple>>& rows);

  /// Materialized snapshot of all live (rid, head tuple) pairs in rid
  /// order. Scans copy: the engine is in-memory and tuples are small,
  /// and a snapshot keeps iterator semantics trivial under concurrent
  /// writers.
  std::vector<std::pair<RowId, Tuple>> Scan() const;

  /// Like Scan, but resolving each slot at `snapshot_ts` (see
  /// GetVisible).
  std::vector<std::pair<RowId, Tuple>> ScanVisible(Ts snapshot_ts) const;

  /// Removes all rows (admin/test helper). Row ids continue to advance.
  void Clear();

 private:
  using VersionChain = std::vector<TupleVersion>;

  /// Shared pruning logic; caller holds the latch. Returns true when
  /// the chain was emptied.
  bool PruneChain(VersionChain& chain, Ts low_water,
                  std::vector<Tuple>* pruned) REQUIRES(latch_);

  std::string name_;
  Schema schema_;
  const size_t num_versions_;
  /// Row-level latch, acquired under the engine's kStorageTables
  /// latch (or alone); takes nothing itself.
  mutable SharedMutex latch_{LockRank::kHeapTable, "heap_table"};
  /// Newest-first version chains; an empty chain is a dead slot (the
  /// slot stays allocated so RowIds are never reused).
  std::vector<VersionChain> slots_ GUARDED_BY(latch_);
  size_t live_count_ GUARDED_BY(latch_) = 0;
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_HEAP_TABLE_H_
