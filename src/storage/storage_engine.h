#ifndef YOUTOPIA_STORAGE_STORAGE_ENGINE_H_
#define YOUTOPIA_STORAGE_STORAGE_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/hash_index.h"
#include "storage/heap_table.h"

namespace youtopia {

/// Facade tying together catalog, heap tables and secondary indexes.
/// All writes go through here so indexes stay consistent with the heaps.
/// This is the "regular database tables" substrate the Youtopia
/// coordination component reads and writes (paper §2.2).
class StorageEngine {
 public:
  StorageEngine() = default;
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates the table in the catalog and its backing heap.
  Status CreateTable(const std::string& name, Schema schema);

  /// Drops catalog entry, heap and indexes.
  Status DropTable(const std::string& name);

  /// Builds a hash index over `column` of `table`, backfilling from
  /// existing rows.
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Validated insert, maintaining all indexes on the table.
  Result<RowId> Insert(const std::string& table, const Tuple& tuple);

  /// Deletes by rid, maintaining indexes.
  Status Delete(const std::string& table, RowId rid);

  /// In-place update, maintaining indexes.
  Status Update(const std::string& table, RowId rid, const Tuple& tuple);

  /// Resurrects a deleted row under its original RowId (transaction
  /// rollback only), maintaining indexes.
  Status Restore(const std::string& table, RowId rid, const Tuple& tuple);

  Result<Tuple> Get(const std::string& table, RowId rid) const;

  /// Snapshot scan of live rows.
  Result<std::vector<std::pair<RowId, Tuple>>> Scan(
      const std::string& table) const;

  /// Row ids whose `column` equals `key`, via the hash index.
  /// NotFound if no such index exists.
  Result<std::vector<RowId>> IndexLookup(const std::string& table,
                                         const std::string& column,
                                         const Value& key) const;

  /// True if `table`.`column` has a hash index.
  bool HasIndex(const std::string& table, const std::string& column) const;

  Result<size_t> TableSize(const std::string& table) const;

  /// Allocated heap slots of `table`, live or tombstoned (checkpoints
  /// persist this so recovery reproduces RowId assignment).
  Result<size_t> TableSlotCount(const std::string& table) const;

  /// Bulk-restores a checkpointed table into its (empty) heap, placing
  /// each tuple at its recorded RowId and maintaining any indexes that
  /// already exist. Recovery calls CreateTable → LoadTableSnapshot →
  /// CreateIndex, so index backfill normally happens afterwards.
  Status LoadTableSnapshot(const std::string& table, size_t slot_count,
                           const std::vector<std::pair<RowId, Tuple>>& rows);

 private:
  struct TableData {
    std::unique_ptr<HeapTable> heap;
    /// Keyed by column index.
    std::unordered_map<size_t, std::unique_ptr<HashIndex>> indexes;
  };

  /// Returns the TableData for a (lowercased) name under tables_mu_.
  Result<TableData*> FindTable(const std::string& name)
      REQUIRES_SHARED(tables_mu_);
  Result<const TableData*> FindTable(const std::string& name) const
      REQUIRES_SHARED(tables_mu_);

  Catalog catalog_;
  /// Reader/writer latch over the table map and per-table index maps:
  /// reads (Scan, Get, IndexLookup) take it shared so concurrent
  /// sessions — and executor-pool workers — read in parallel; anything
  /// that mutates a heap, an index or the map itself takes it
  /// exclusive. Row-level consistency within one heap is additionally
  /// guarded by HeapTable's own latch; this latch is what keeps the
  /// index maps consistent with the heaps.
  mutable SharedMutex tables_mu_{LockRank::kStorageTables,
                                 "storage_tables"};
  std::unordered_map<std::string, TableData> tables_ GUARDED_BY(tables_mu_);
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_STORAGE_ENGINE_H_
