#ifndef YOUTOPIA_STORAGE_STORAGE_ENGINE_H_
#define YOUTOPIA_STORAGE_STORAGE_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/hash_index.h"
#include "storage/heap_table.h"
#include "txn/mvcc.h"

namespace youtopia {

/// Facade tying together catalog, heap tables and secondary indexes.
/// All writes go through here so indexes stay consistent with the heaps.
/// This is the "regular database tables" substrate the Youtopia
/// coordination component reads and writes (paper §2.2).
///
/// With `num_versions >= 2` the engine runs in MVCC mode (design
/// decision #10): heaps keep version chains, writes carry the writing
/// transaction id (0 = auto-commit, stamped immediately), CommitTxn /
/// AbortTxn stamp or discard a transaction's pending versions, and the
/// snapshot read family (GetSnapshot / ScanSnapshot /
/// IndexLookupSnapshot) resolves visibility at a timestamp without any
/// 2PL lock. `num_versions == 1` (the default) is byte-for-byte the
/// pre-MVCC engine: single-version heaps, eager index maintenance, the
/// transaction id arguments ignored.
class StorageEngine {
 public:
  explicit StorageEngine(size_t num_versions = 1)
      : num_versions_(num_versions < 1 ? 1 : num_versions) {}
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Versions retained per row (1 = unversioned seed semantics).
  size_t num_versions() const { return num_versions_; }
  bool mvcc_enabled() const { return num_versions_ > 1; }
  MvccController& mvcc() { return mvcc_; }
  const MvccController& mvcc() const { return mvcc_; }

  /// Creates the table in the catalog and its backing heap.
  Status CreateTable(const std::string& name, Schema schema);

  /// Drops catalog entry, heap and indexes.
  Status DropTable(const std::string& name);

  /// Builds a hash index over `column` of `table`, backfilling from
  /// current rows (older versions' keys are not backfilled — a snapshot
  /// opened before the index existed can still be planned onto it and
  /// miss rows whose key changed since; the same DDL-vs-reader exposure
  /// the unversioned engine has always had).
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Validated insert, maintaining all indexes on the table. In MVCC
  /// mode `txn != 0` leaves the version pending until CommitTxn;
  /// `txn == 0` stamps it with a fresh commit timestamp immediately.
  Result<RowId> Insert(const std::string& table, const Tuple& tuple,
                       TxnId txn = 0);

  /// Deletes by rid. Unversioned mode erases index entries eagerly; in
  /// MVCC mode the old version (and its index keys) survive until the
  /// tombstone passes below the GC low-water mark.
  Status Delete(const std::string& table, RowId rid, TxnId txn = 0);

  /// Update. Unversioned mode rewrites in place; MVCC mode pushes a new
  /// version. Index keys of still-reachable old versions are kept (a
  /// snapshot reader probing the old key must still find the row);
  /// IndexLookup re-verifies, so current reads never see them.
  Status Update(const std::string& table, RowId rid, const Tuple& tuple,
                TxnId txn = 0);

  /// Resurrects a deleted row under its original RowId (unversioned
  /// transaction rollback only), maintaining indexes.
  Status Restore(const std::string& table, RowId rid, const Tuple& tuple);

  /// Stamps every pending version `txn` wrote with one fresh commit
  /// timestamp (atomic for snapshot readers via the watermark
  /// protocol), prunes the touched chains against the GC low-water mark
  /// and retires orphaned index keys. No-op outside MVCC mode or for
  /// transactions that wrote nothing.
  Status CommitTxn(TxnId txn);

  /// Discards every pending version `txn` wrote, restoring the chains
  /// (and indexes) to their pre-transaction state. The MVCC replacement
  /// for undo-log rollback. No-op outside MVCC mode.
  Status AbortTxn(TxnId txn);

  /// Head-version read (current read; pending versions included — 2PL
  /// keeps them writer-private).
  Result<Tuple> Get(const std::string& table, RowId rid) const;

  /// Version of `rid` visible at `snapshot_ts` (MVCC snapshot read).
  Result<Tuple> GetSnapshot(const std::string& table, RowId rid,
                            Ts snapshot_ts) const;

  /// Materialized scan of current rows.
  Result<std::vector<std::pair<RowId, Tuple>>> Scan(
      const std::string& table) const;

  /// Materialized scan resolving every slot at `snapshot_ts`.
  Result<std::vector<std::pair<RowId, Tuple>>> ScanSnapshot(
      const std::string& table, Ts snapshot_ts) const;

  /// Row ids whose `column` currently equals `key`, via the hash index.
  /// NotFound if no such index exists. In MVCC mode stale postings
  /// (older versions' keys not yet pruned) are filtered out here, so
  /// callers keep the exact unversioned contract.
  Result<std::vector<RowId>> IndexLookup(const std::string& table,
                                         const std::string& column,
                                         const Value& key) const;

  /// Index probe at a snapshot: tuples visible at `snapshot_ts` whose
  /// `column` equals `key`. The index may carry stale or newer keys for
  /// a row, so each candidate's visible version is re-verified against
  /// `key` before it is returned.
  Result<std::vector<std::pair<RowId, Tuple>>> IndexLookupSnapshot(
      const std::string& table, const std::string& column, const Value& key,
      Ts snapshot_ts) const;

  /// True if `table`.`column` has a hash index.
  bool HasIndex(const std::string& table, const std::string& column) const;

  Result<size_t> TableSize(const std::string& table) const;

  /// Allocated heap slots of `table`, live or dead (checkpoints persist
  /// this so recovery reproduces RowId assignment).
  Result<size_t> TableSlotCount(const std::string& table) const;

  /// Bulk-restores a checkpointed table into its (empty) heap, placing
  /// each tuple at its recorded RowId and maintaining any indexes that
  /// already exist. Recovery calls CreateTable → LoadTableSnapshot →
  /// CreateIndex, so index backfill normally happens afterwards.
  Status LoadTableSnapshot(const std::string& table, size_t slot_count,
                           const std::vector<std::pair<RowId, Tuple>>& rows);

  /// MVCC garbage collection sweep: prunes every chain against the
  /// current low-water mark and reclaims slots whose committed
  /// tombstone no snapshot can see (commit-time pruning only revisits
  /// rows the committing transaction touched, so fully dead slots and
  /// long-idle chains are reclaimed here). No-op outside MVCC mode.
  void Vacuum();

 private:
  struct TableData {
    std::unique_ptr<HeapTable> heap;
    /// Keyed by column index.
    std::unordered_map<size_t, std::unique_ptr<HashIndex>> indexes;
  };

  /// Returns the TableData for a (lowercased) name under tables_mu_.
  Result<TableData*> FindTable(const std::string& name)
      REQUIRES_SHARED(tables_mu_);
  Result<const TableData*> FindTable(const std::string& name) const
      REQUIRES_SHARED(tables_mu_);

  /// Erases index postings for `candidates` tuples of `rid` whose keys
  /// no longer appear in any retained version (`remaining`).
  static void EraseOrphanedKeys(TableData* data, RowId rid,
                                const std::vector<Tuple>& candidates,
                                const std::vector<Tuple>& remaining);

  /// Records (table, rid) into `txn`'s write set (MVCC mode).
  void RecordWrite(TxnId txn, const std::string& table, RowId rid)
      REQUIRES(tables_mu_);

  const size_t num_versions_;
  Catalog catalog_;
  /// Commit clock + snapshot registry (MVCC mode). Its internal mutex
  /// (kMvccClock) is only ever held alone; commit stamping calls it
  /// strictly before and strictly after the tables_mu_ critical
  /// section.
  MvccController mvcc_;
  /// Reader/writer latch over the table map and per-table index maps:
  /// reads (Scan, Get, IndexLookup and their snapshot variants) take it
  /// shared so concurrent sessions — and executor-pool workers — read
  /// in parallel; anything that mutates a heap, an index or the map
  /// itself takes it exclusive. Row-level consistency within one heap
  /// is additionally guarded by HeapTable's own latch; this latch is
  /// what keeps the index maps consistent with the heaps.
  mutable SharedMutex tables_mu_{LockRank::kStorageTables,
                                 "storage_tables"};
  std::unordered_map<std::string, TableData> tables_ GUARDED_BY(tables_mu_);
  /// Pending write sets by transaction (MVCC mode): the (table, rid)
  /// pairs CommitTxn must stamp or AbortTxn must discard. Guarded by
  /// tables_mu_ — every writer already holds it exclusive.
  std::unordered_map<TxnId, std::vector<std::pair<std::string, RowId>>>
      txn_writes_ GUARDED_BY(tables_mu_);
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_STORAGE_ENGINE_H_
