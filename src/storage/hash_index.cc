#include "storage/hash_index.h"

#include <algorithm>
#include <mutex>

namespace youtopia {

void HashIndex::Insert(const Value& key, RowId rid) {
  WriterMutexLock lock(latch_);
  postings_[key].push_back(rid);
}

void HashIndex::Erase(const Value& key, RowId rid) {
  WriterMutexLock lock(latch_);
  auto it = postings_.find(key);
  if (it == postings_.end()) return;
  auto& rids = it->second;
  rids.erase(std::remove(rids.begin(), rids.end(), rid), rids.end());
  if (rids.empty()) postings_.erase(it);
}

std::vector<RowId> HashIndex::Lookup(const Value& key) const {
  ReaderMutexLock lock(latch_);
  auto it = postings_.find(key);
  if (it == postings_.end()) return {};
  return it->second;
}

size_t HashIndex::size() const {
  ReaderMutexLock lock(latch_);
  size_t n = 0;
  for (const auto& [key, rids] : postings_) n += rids.size();
  return n;
}

}  // namespace youtopia
