#include "storage/storage_engine.h"

#include <algorithm>

#include "common/string_util.h"

namespace youtopia {

namespace {

/// Issues an auto-commit timestamp on construction and retires it
/// (advancing the watermark) on scope exit — error paths included, so a
/// failed write can never wedge the watermark below the clock.
class ScopedAutoCommit {
 public:
  explicit ScopedAutoCommit(MvccController* mvcc)
      : mvcc_(mvcc), ts_(mvcc == nullptr ? 0 : mvcc->BeginCommit()) {}
  ~ScopedAutoCommit() {
    if (mvcc_ != nullptr) mvcc_->EndCommit(ts_);
  }
  ScopedAutoCommit(const ScopedAutoCommit&) = delete;
  ScopedAutoCommit& operator=(const ScopedAutoCommit&) = delete;

  Ts ts() const { return ts_; }

 private:
  MvccController* mvcc_;
  Ts ts_;
};

bool ContainsKey(const std::vector<Tuple>& tuples, size_t col,
                 const Value& key) {
  for (const Tuple& t : tuples) {
    if (col < t.size() && t.at(col) == key) return true;
  }
  return false;
}

}  // namespace

Status StorageEngine::CreateTable(const std::string& name, Schema schema) {
  auto id = catalog_.CreateTable(name, schema);
  if (!id.ok()) return id.status();
  WriterMutexLock lock(tables_mu_);
  TableData data;
  data.heap =
      std::make_unique<HeapTable>(name, std::move(schema), num_versions_);
  tables_.emplace(ToLowerAscii(name), std::move(data));
  return Status::OK();
}

Status StorageEngine::DropTable(const std::string& name) {
  YOUTOPIA_RETURN_IF_ERROR(catalog_.DropTable(name));
  WriterMutexLock lock(tables_mu_);
  tables_.erase(ToLowerAscii(name));
  return Status::OK();
}

Result<StorageEngine::TableData*> StorageEngine::FindTable(
    const std::string& name) {
  auto it = tables_.find(ToLowerAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return &it->second;
}

Result<const StorageEngine::TableData*> StorageEngine::FindTable(
    const std::string& name) const {
  auto it = tables_.find(ToLowerAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return &it->second;
}

void StorageEngine::EraseOrphanedKeys(TableData* data, RowId rid,
                                      const std::vector<Tuple>& candidates,
                                      const std::vector<Tuple>& remaining) {
  if (candidates.empty()) return;
  for (auto& [col, index] : data->indexes) {
    for (const Tuple& t : candidates) {
      if (col >= t.size()) continue;
      const Value& key = t.at(col);
      if (!ContainsKey(remaining, col, key)) index->Erase(key, rid);
    }
  }
}

void StorageEngine::RecordWrite(TxnId txn, const std::string& table,
                                RowId rid) {
  txn_writes_[txn].emplace_back(ToLowerAscii(table), rid);
}

Status StorageEngine::CreateIndex(const std::string& table,
                                  const std::string& column) {
  auto info = catalog_.GetTable(table);
  if (!info.ok()) return info.status();
  auto col = info->schema.ColumnIndex(column);
  if (!col.ok()) return col.status();

  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  if (data->indexes.count(col.value()) > 0) {
    return Status::AlreadyExists("index already exists on " + table + "." +
                                 column);
  }
  auto index = std::make_unique<HashIndex>(col.value());
  for (const auto& [rid, tuple] : data->heap->Scan()) {
    index->Insert(tuple.at(col.value()), rid);
  }
  data->indexes.emplace(col.value(), std::move(index));
  YOUTOPIA_RETURN_IF_ERROR(catalog_.AddIndexedColumn(table, col.value()));
  return Status::OK();
}

Result<RowId> StorageEngine::Insert(const std::string& table,
                                    const Tuple& tuple, TxnId txn) {
  // Auto-commit writers take their timestamp before the tables latch
  // and retire it after (kMvccClock is never held together with
  // kStorageTables); transactional writers stay pending until
  // CommitTxn.
  ScopedAutoCommit auto_commit(mvcc_enabled() && txn == 0 ? &mvcc_ : nullptr);
  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  VersionStamp stamp = !mvcc_enabled() ? VersionStamp::Committed(kBaseTs)
                       : txn != 0      ? VersionStamp::Pending(txn)
                                       : VersionStamp::Committed(
                                             auto_commit.ts());
  auto rid = data->heap->Insert(tuple, stamp);
  if (!rid.ok()) return rid.status();
  // The heap validated/coerced the tuple; index the stored form.
  auto stored = data->heap->Get(rid.value());
  if (!stored.ok()) return stored.status();
  for (auto& [col, index] : data->indexes) {
    index->Insert(stored->at(col), rid.value());
  }
  if (mvcc_enabled() && txn != 0) RecordWrite(txn, table, rid.value());
  return rid.value();
}

Status StorageEngine::Delete(const std::string& table, RowId rid, TxnId txn) {
  ScopedAutoCommit auto_commit(mvcc_enabled() && txn == 0 ? &mvcc_ : nullptr);
  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  if (!mvcc_enabled()) {
    auto old = data->heap->Get(rid);
    if (!old.ok()) return old.status();
    YOUTOPIA_RETURN_IF_ERROR(data->heap->Delete(rid));
    for (auto& [col, index] : data->indexes) {
      index->Erase(old->at(col), rid);
    }
    return Status::OK();
  }
  VersionStamp stamp = txn != 0 ? VersionStamp::Pending(txn)
                                : VersionStamp::Committed(auto_commit.ts());
  YOUTOPIA_RETURN_IF_ERROR(data->heap->Delete(rid, stamp));
  // Index keys stay: the deleted version remains visible to older
  // snapshots until the tombstone passes below the low-water mark
  // (pruning erases them then; IndexLookup filters until it does).
  if (txn != 0) RecordWrite(txn, table, rid);
  return Status::OK();
}

Status StorageEngine::Update(const std::string& table, RowId rid,
                             const Tuple& tuple, TxnId txn) {
  ScopedAutoCommit auto_commit(mvcc_enabled() && txn == 0 ? &mvcc_ : nullptr);
  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  auto old = data->heap->Get(rid);
  if (!old.ok()) return old.status();
  if (!mvcc_enabled()) {
    YOUTOPIA_RETURN_IF_ERROR(data->heap->Update(rid, tuple));
    auto stored = data->heap->Get(rid);
    if (!stored.ok()) return stored.status();
    for (auto& [col, index] : data->indexes) {
      index->Erase(old->at(col), rid);
      index->Insert(stored->at(col), rid);
    }
    return Status::OK();
  }
  VersionStamp stamp = txn != 0 ? VersionStamp::Pending(txn)
                                : VersionStamp::Committed(auto_commit.ts());
  // Version-aware index maintenance: a key reachable through any
  // retained version must stay indexed; keys no version holds anymore
  // must go. An Update can only (a) push a new head — so only the new
  // image's keys can appear — or (b) collapse an intra-transaction
  // pending head — so only the collapsed image's keys can vanish. Both
  // are no-ops when the indexed column's value didn't change (the
  // dominant case), so the chain is probed in place instead of being
  // materialized twice per row; this runs under the tables latch, and
  // shortening it is what keeps snapshot readers flowing past writers.
  bool collapsed = false;
  YOUTOPIA_RETURN_IF_ERROR(data->heap->Update(rid, tuple, stamp, &collapsed));
  if (!data->indexes.empty()) {
    auto stored = data->heap->Get(rid);
    if (!stored.ok()) return stored.status();
    for (auto& [col, index] : data->indexes) {
      if (col >= stored->size() || col >= old->size()) continue;
      const Value& new_key = stored->at(col);
      const Value& old_key = old->at(col);
      if (new_key == old_key) continue;
      // Skip the new head itself: the question is whether some retained
      // older version already posted this key for the slot.
      if (!data->heap->ChainHasKey(rid, col, new_key, /*skip_newest=*/1)) {
        index->Insert(new_key, rid);
      }
      if (collapsed && !data->heap->ChainHasKey(rid, col, old_key)) {
        index->Erase(old_key, rid);
      }
    }
  }
  if (txn != 0) RecordWrite(txn, table, rid);
  return Status::OK();
}

Status StorageEngine::Restore(const std::string& table, RowId rid,
                              const Tuple& tuple) {
  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  YOUTOPIA_RETURN_IF_ERROR(data->heap->Restore(rid, tuple));
  auto stored = data->heap->Get(rid);
  if (!stored.ok()) return stored.status();
  for (auto& [col, index] : data->indexes) {
    index->Insert(stored->at(col), rid);
  }
  return Status::OK();
}

Status StorageEngine::CommitTxn(TxnId txn) {
  if (!mvcc_enabled() || txn == 0) return Status::OK();
  {
    ReaderMutexLock lock(tables_mu_);
    if (txn_writes_.count(txn) == 0) return Status::OK();
  }
  // Timestamp issuance brackets the stamping pass: the commit stays in
  // flight (holding the watermark down) until every row is stamped, so
  // no snapshot can open between two rows of this commit.
  const Ts commit_ts = mvcc_.BeginCommit();
  const Ts low_water = mvcc_.LowWater();
  {
    WriterMutexLock lock(tables_mu_);
    auto it = txn_writes_.find(txn);
    if (it != txn_writes_.end()) {
      auto writes = std::move(it->second);
      txn_writes_.erase(it);
      for (const auto& [table, rid] : writes) {
        auto td = FindTable(table);
        if (!td.ok()) continue;  // table dropped mid-transaction (DDL)
        std::vector<Tuple> pruned;
        Status s = td.value()->heap->CommitVersions(
            rid, txn, commit_ts, low_water, &pruned, nullptr);
        if (!s.ok()) {
          mvcc_.EndCommit(commit_ts);
          return s;
        }
        EraseOrphanedKeys(td.value(), rid, pruned,
                          td.value()->heap->VersionTuples(rid));
      }
    }
  }
  mvcc_.EndCommit(commit_ts);
  return Status::OK();
}

Status StorageEngine::AbortTxn(TxnId txn) {
  if (!mvcc_enabled() || txn == 0) return Status::OK();
  WriterMutexLock lock(tables_mu_);
  auto it = txn_writes_.find(txn);
  if (it == txn_writes_.end()) return Status::OK();
  auto writes = std::move(it->second);
  txn_writes_.erase(it);
  for (auto w = writes.rbegin(); w != writes.rend(); ++w) {
    auto td = FindTable(w->first);
    if (!td.ok()) continue;  // table dropped mid-transaction (DDL)
    std::vector<Tuple> removed;
    Status s =
        td.value()->heap->AbortVersions(w->second, txn, &removed, nullptr);
    if (!s.ok()) return s;
    EraseOrphanedKeys(td.value(), w->second, removed,
                      td.value()->heap->VersionTuples(w->second));
  }
  return Status::OK();
}

Result<Tuple> StorageEngine::Get(const std::string& table, RowId rid) const {
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  return td.value()->heap->Get(rid);
}

Result<Tuple> StorageEngine::GetSnapshot(const std::string& table, RowId rid,
                                         Ts snapshot_ts) const {
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  return td.value()->heap->GetVisible(rid, snapshot_ts);
}

Result<std::vector<std::pair<RowId, Tuple>>> StorageEngine::Scan(
    const std::string& table) const {
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  return td.value()->heap->Scan();
}

Result<std::vector<std::pair<RowId, Tuple>>> StorageEngine::ScanSnapshot(
    const std::string& table, Ts snapshot_ts) const {
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  return td.value()->heap->ScanVisible(snapshot_ts);
}

Result<std::vector<RowId>> StorageEngine::IndexLookup(
    const std::string& table, const std::string& column,
    const Value& key) const {
  auto info = catalog_.GetTable(table);
  if (!info.ok()) return info.status();
  auto col = info->schema.ColumnIndex(column);
  if (!col.ok()) return col.status();
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  auto it = td.value()->indexes.find(col.value());
  if (it == td.value()->indexes.end()) {
    return Status::NotFound("no index on " + table + "." + column);
  }
  auto rids = it->second->Lookup(key);
  if (!mvcc_enabled()) return rids;
  // Versioned indexes keep postings for every retained version's key;
  // re-verify against the current row so callers get exactly the
  // unversioned contract ("rows whose column equals key now").
  std::vector<RowId> current;
  current.reserve(rids.size());
  for (RowId rid : rids) {
    auto tuple = td.value()->heap->Get(rid);
    if (tuple.ok() && col.value() < tuple->size() &&
        tuple->at(col.value()) == key) {
      current.push_back(rid);
    }
  }
  return current;
}

Result<std::vector<std::pair<RowId, Tuple>>>
StorageEngine::IndexLookupSnapshot(const std::string& table,
                                   const std::string& column,
                                   const Value& key, Ts snapshot_ts) const {
  auto info = catalog_.GetTable(table);
  if (!info.ok()) return info.status();
  auto col = info->schema.ColumnIndex(column);
  if (!col.ok()) return col.status();
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  auto it = td.value()->indexes.find(col.value());
  if (it == td.value()->indexes.end()) {
    return Status::NotFound("no index on " + table + "." + column);
  }
  std::vector<std::pair<RowId, Tuple>> out;
  for (RowId rid : it->second->Lookup(key)) {
    auto tuple = td.value()->heap->GetVisible(rid, snapshot_ts);
    if (tuple.ok() && col.value() < tuple->size() &&
        tuple->at(col.value()) == key) {
      out.emplace_back(rid, tuple.TakeValue());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

bool StorageEngine::HasIndex(const std::string& table,
                             const std::string& column) const {
  auto info = catalog_.GetTable(table);
  if (!info.ok()) return false;
  auto col = info->schema.FindColumn(column);
  if (!col) return false;
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return false;
  return td.value()->indexes.count(*col) > 0;
}

Result<size_t> StorageEngine::TableSize(const std::string& table) const {
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  return td.value()->heap->size();
}

Result<size_t> StorageEngine::TableSlotCount(const std::string& table) const {
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  return td.value()->heap->slot_count();
}

Status StorageEngine::LoadTableSnapshot(
    const std::string& table, size_t slot_count,
    const std::vector<std::pair<RowId, Tuple>>& rows) {
  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  YOUTOPIA_RETURN_IF_ERROR(data->heap->LoadSnapshot(slot_count, rows));
  for (auto& [col, index] : data->indexes) {
    for (const auto& [rid, tuple] : data->heap->Scan()) {
      index->Insert(tuple.at(col), rid);
    }
  }
  return Status::OK();
}

void StorageEngine::Vacuum() {
  if (!mvcc_enabled()) return;
  const Ts low_water = mvcc_.LowWater();
  WriterMutexLock lock(tables_mu_);
  for (auto& [name, data] : tables_) {
    const size_t slots = data.heap->slot_count();
    for (RowId rid = 0; rid < slots; ++rid) {
      std::vector<Tuple> pruned;
      if (!data.heap->Prune(rid, low_water, &pruned, nullptr).ok()) continue;
      EraseOrphanedKeys(&data, rid, pruned, data.heap->VersionTuples(rid));
    }
  }
}

}  // namespace youtopia
