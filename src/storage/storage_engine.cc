#include "storage/storage_engine.h"

#include "common/string_util.h"

namespace youtopia {

Status StorageEngine::CreateTable(const std::string& name, Schema schema) {
  auto id = catalog_.CreateTable(name, schema);
  if (!id.ok()) return id.status();
  WriterMutexLock lock(tables_mu_);
  TableData data;
  data.heap = std::make_unique<HeapTable>(name, std::move(schema));
  tables_.emplace(ToLowerAscii(name), std::move(data));
  return Status::OK();
}

Status StorageEngine::DropTable(const std::string& name) {
  YOUTOPIA_RETURN_IF_ERROR(catalog_.DropTable(name));
  WriterMutexLock lock(tables_mu_);
  tables_.erase(ToLowerAscii(name));
  return Status::OK();
}

Result<StorageEngine::TableData*> StorageEngine::FindTable(
    const std::string& name) {
  auto it = tables_.find(ToLowerAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return &it->second;
}

Result<const StorageEngine::TableData*> StorageEngine::FindTable(
    const std::string& name) const {
  auto it = tables_.find(ToLowerAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return &it->second;
}

Status StorageEngine::CreateIndex(const std::string& table,
                                  const std::string& column) {
  auto info = catalog_.GetTable(table);
  if (!info.ok()) return info.status();
  auto col = info->schema.ColumnIndex(column);
  if (!col.ok()) return col.status();

  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  if (data->indexes.count(col.value()) > 0) {
    return Status::AlreadyExists("index already exists on " + table + "." +
                                 column);
  }
  auto index = std::make_unique<HashIndex>(col.value());
  for (const auto& [rid, tuple] : data->heap->Scan()) {
    index->Insert(tuple.at(col.value()), rid);
  }
  data->indexes.emplace(col.value(), std::move(index));
  YOUTOPIA_RETURN_IF_ERROR(catalog_.AddIndexedColumn(table, col.value()));
  return Status::OK();
}

Result<RowId> StorageEngine::Insert(const std::string& table,
                                    const Tuple& tuple) {
  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  auto rid = data->heap->Insert(tuple);
  if (!rid.ok()) return rid.status();
  // The heap validated/coerced the tuple; index the stored form.
  auto stored = data->heap->Get(rid.value());
  if (!stored.ok()) return stored.status();
  for (auto& [col, index] : data->indexes) {
    index->Insert(stored->at(col), rid.value());
  }
  return rid.value();
}

Status StorageEngine::Delete(const std::string& table, RowId rid) {
  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  auto old = data->heap->Get(rid);
  if (!old.ok()) return old.status();
  YOUTOPIA_RETURN_IF_ERROR(data->heap->Delete(rid));
  for (auto& [col, index] : data->indexes) {
    index->Erase(old->at(col), rid);
  }
  return Status::OK();
}

Status StorageEngine::Update(const std::string& table, RowId rid,
                             const Tuple& tuple) {
  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  auto old = data->heap->Get(rid);
  if (!old.ok()) return old.status();
  YOUTOPIA_RETURN_IF_ERROR(data->heap->Update(rid, tuple));
  auto stored = data->heap->Get(rid);
  if (!stored.ok()) return stored.status();
  for (auto& [col, index] : data->indexes) {
    index->Erase(old->at(col), rid);
    index->Insert(stored->at(col), rid);
  }
  return Status::OK();
}

Status StorageEngine::Restore(const std::string& table, RowId rid,
                              const Tuple& tuple) {
  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  YOUTOPIA_RETURN_IF_ERROR(data->heap->Restore(rid, tuple));
  auto stored = data->heap->Get(rid);
  if (!stored.ok()) return stored.status();
  for (auto& [col, index] : data->indexes) {
    index->Insert(stored->at(col), rid);
  }
  return Status::OK();
}

Result<Tuple> StorageEngine::Get(const std::string& table, RowId rid) const {
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  return td.value()->heap->Get(rid);
}

Result<std::vector<std::pair<RowId, Tuple>>> StorageEngine::Scan(
    const std::string& table) const {
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  return td.value()->heap->Scan();
}

Result<std::vector<RowId>> StorageEngine::IndexLookup(
    const std::string& table, const std::string& column,
    const Value& key) const {
  auto info = catalog_.GetTable(table);
  if (!info.ok()) return info.status();
  auto col = info->schema.ColumnIndex(column);
  if (!col.ok()) return col.status();
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  auto it = td.value()->indexes.find(col.value());
  if (it == td.value()->indexes.end()) {
    return Status::NotFound("no index on " + table + "." + column);
  }
  return it->second->Lookup(key);
}

bool StorageEngine::HasIndex(const std::string& table,
                             const std::string& column) const {
  auto info = catalog_.GetTable(table);
  if (!info.ok()) return false;
  auto col = info->schema.FindColumn(column);
  if (!col) return false;
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return false;
  return td.value()->indexes.count(*col) > 0;
}

Result<size_t> StorageEngine::TableSize(const std::string& table) const {
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  return td.value()->heap->size();
}

Result<size_t> StorageEngine::TableSlotCount(const std::string& table) const {
  ReaderMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  return td.value()->heap->slot_count();
}

Status StorageEngine::LoadTableSnapshot(
    const std::string& table, size_t slot_count,
    const std::vector<std::pair<RowId, Tuple>>& rows) {
  WriterMutexLock lock(tables_mu_);
  auto td = FindTable(table);
  if (!td.ok()) return td.status();
  TableData* data = td.value();
  YOUTOPIA_RETURN_IF_ERROR(data->heap->LoadSnapshot(slot_count, rows));
  for (auto& [col, index] : data->indexes) {
    for (const auto& [rid, tuple] : data->heap->Scan()) {
      index->Insert(tuple.at(col), rid);
    }
  }
  return Status::OK();
}

}  // namespace youtopia
