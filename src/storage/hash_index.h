#ifndef YOUTOPIA_STORAGE_HASH_INDEX_H_
#define YOUTOPIA_STORAGE_HASH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "storage/heap_table.h"
#include "types/value.h"

namespace youtopia {

/// Secondary hash index over one column of a heap table: value → row ids.
/// Non-unique (flights share destinations, reservations share flight
/// numbers). Maintained by the StorageEngine on every write.
class HashIndex {
 public:
  explicit HashIndex(size_t column_index) : column_index_(column_index) {}

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  size_t column_index() const { return column_index_; }

  void Insert(const Value& key, RowId rid);

  /// Removes one (key, rid) posting; no-op if absent.
  void Erase(const Value& key, RowId rid);

  /// All row ids for `key` (unordered).
  std::vector<RowId> Lookup(const Value& key) const;

  /// Number of postings (for tests/stats).
  size_t size() const;

 private:
  size_t column_index_;
  /// Maintained under the engine's kStorageTables latch (or alone);
  /// takes nothing itself.
  mutable SharedMutex latch_{LockRank::kHashIndex, "hash_index"};
  std::unordered_map<Value, std::vector<RowId>, ValueHash> postings_
      GUARDED_BY(latch_);
};

}  // namespace youtopia

#endif  // YOUTOPIA_STORAGE_HASH_INDEX_H_
