#include "storage/heap_table.h"


namespace youtopia {

Result<RowId> HeapTable::Insert(const Tuple& tuple) {
  auto validated = tuple.ValidateAgainst(schema_);
  if (!validated.ok()) return validated.status();
  WriterMutexLock lock(latch_);
  slots_.emplace_back(validated.TakeValue());
  ++live_count_;
  return static_cast<RowId>(slots_.size() - 1);
}

Result<Tuple> HeapTable::Get(RowId rid) const {
  ReaderMutexLock lock(latch_);
  if (rid >= slots_.size() || !slots_[rid].has_value()) {
    return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
  }
  return *slots_[rid];
}

bool HeapTable::Contains(RowId rid) const {
  ReaderMutexLock lock(latch_);
  return rid < slots_.size() && slots_[rid].has_value();
}

Status HeapTable::Delete(RowId rid) {
  WriterMutexLock lock(latch_);
  if (rid >= slots_.size() || !slots_[rid].has_value()) {
    return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
  }
  slots_[rid].reset();
  --live_count_;
  return Status::OK();
}

Status HeapTable::Update(RowId rid, const Tuple& tuple) {
  auto validated = tuple.ValidateAgainst(schema_);
  if (!validated.ok()) return validated.status();
  WriterMutexLock lock(latch_);
  if (rid >= slots_.size() || !slots_[rid].has_value()) {
    return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
  }
  slots_[rid] = validated.TakeValue();
  return Status::OK();
}

Status HeapTable::Restore(RowId rid, const Tuple& tuple) {
  auto validated = tuple.ValidateAgainst(schema_);
  if (!validated.ok()) return validated.status();
  WriterMutexLock lock(latch_);
  if (rid >= slots_.size()) {
    return Status::OutOfRange("slot " + std::to_string(rid) +
                              " was never allocated in " + name_);
  }
  if (slots_[rid].has_value()) {
    return Status::AlreadyExists("slot " + std::to_string(rid) + " in " +
                                 name_ + " is live");
  }
  slots_[rid] = validated.TakeValue();
  ++live_count_;
  return Status::OK();
}

size_t HeapTable::size() const {
  ReaderMutexLock lock(latch_);
  return live_count_;
}

size_t HeapTable::slot_count() const {
  ReaderMutexLock lock(latch_);
  return slots_.size();
}

Status HeapTable::LoadSnapshot(
    size_t slot_count, const std::vector<std::pair<RowId, Tuple>>& rows) {
  WriterMutexLock lock(latch_);
  if (!slots_.empty()) {
    return Status::Internal("LoadSnapshot into non-empty table " + name_);
  }
  slots_.resize(slot_count);
  for (const auto& [rid, tuple] : rows) {
    if (rid >= slot_count) {
      return Status::OutOfRange("snapshot row " + std::to_string(rid) +
                                " beyond slot count in " + name_);
    }
    auto validated = tuple.ValidateAgainst(schema_);
    if (!validated.ok()) return validated.status();
    if (slots_[rid].has_value()) {
      return Status::AlreadyExists("snapshot row " + std::to_string(rid) +
                                   " duplicated in " + name_);
    }
    slots_[rid] = validated.TakeValue();
    ++live_count_;
  }
  return Status::OK();
}

std::vector<std::pair<RowId, Tuple>> HeapTable::Scan() const {
  ReaderMutexLock lock(latch_);
  std::vector<std::pair<RowId, Tuple>> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].has_value()) out.emplace_back(i, *slots_[i]);
  }
  return out;
}

void HeapTable::Clear() {
  WriterMutexLock lock(latch_);
  for (auto& slot : slots_) slot.reset();
  live_count_ = 0;
}

}  // namespace youtopia
