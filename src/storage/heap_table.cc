#include "storage/heap_table.h"

namespace youtopia {

namespace {

/// A slot is live when its head (newest) version is not a delete
/// marker. Pending versions count: under 2PL only the writer observes
/// its own uncommitted writes, and it must see them as current.
bool HeadLive(const std::vector<TupleVersion>& chain) {
  return !chain.empty() && !chain.front().tombstone;
}

bool Committed(const TupleVersion& v) { return v.begin_ts != kPendingTs; }

}  // namespace

Result<RowId> HeapTable::Insert(const Tuple& tuple, VersionStamp stamp) {
  auto validated = tuple.ValidateAgainst(schema_);
  if (!validated.ok()) return validated.status();
  WriterMutexLock lock(latch_);
  VersionChain chain;
  chain.push_back(
      TupleVersion{validated.TakeValue(), stamp.begin_ts, stamp.writer, false});
  slots_.push_back(std::move(chain));
  ++live_count_;
  return static_cast<RowId>(slots_.size() - 1);
}

Result<Tuple> HeapTable::Get(RowId rid) const {
  ReaderMutexLock lock(latch_);
  if (rid >= slots_.size() || !HeadLive(slots_[rid])) {
    return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
  }
  return slots_[rid].front().tuple;
}

Result<Tuple> HeapTable::GetVisible(RowId rid, Ts snapshot_ts) const {
  ReaderMutexLock lock(latch_);
  if (rid < slots_.size()) {
    for (const TupleVersion& v : slots_[rid]) {
      if (!Committed(v) || v.begin_ts > snapshot_ts) continue;
      if (v.tombstone) break;
      return v.tuple;
    }
  }
  return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
}

bool HeapTable::Contains(RowId rid) const {
  ReaderMutexLock lock(latch_);
  return rid < slots_.size() && HeadLive(slots_[rid]);
}

Status HeapTable::Delete(RowId rid, VersionStamp stamp) {
  WriterMutexLock lock(latch_);
  if (rid >= slots_.size() || !HeadLive(slots_[rid])) {
    return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
  }
  if (!versioned()) {
    slots_[rid].clear();
  } else {
    slots_[rid].insert(
        slots_[rid].begin(),
        TupleVersion{Tuple(), stamp.begin_ts, stamp.writer, true});
  }
  --live_count_;
  return Status::OK();
}

Status HeapTable::Update(RowId rid, const Tuple& tuple, VersionStamp stamp,
                         bool* collapsed) {
  auto validated = tuple.ValidateAgainst(schema_);
  if (!validated.ok()) return validated.status();
  if (collapsed != nullptr) *collapsed = false;
  WriterMutexLock lock(latch_);
  if (rid >= slots_.size() || !HeadLive(slots_[rid])) {
    return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
  }
  VersionChain& chain = slots_[rid];
  if (!versioned()) {
    chain.front().tuple = validated.TakeValue();
    return Status::OK();
  }
  TupleVersion& head = chain.front();
  if (!Committed(head) && head.writer == stamp.writer &&
      stamp.begin_ts == kPendingTs) {
    // Intra-transaction overwrite: under 2PL the same writer updating
    // the same row twice needs only its last image — collapsing keeps
    // one pending version to stamp or abort.
    head.tuple = validated.TakeValue();
    if (collapsed != nullptr) *collapsed = true;
    return Status::OK();
  }
  chain.insert(chain.begin(),
               TupleVersion{validated.TakeValue(), stamp.begin_ts,
                            stamp.writer, false});
  return Status::OK();
}

Status HeapTable::Restore(RowId rid, const Tuple& tuple) {
  auto validated = tuple.ValidateAgainst(schema_);
  if (!validated.ok()) return validated.status();
  WriterMutexLock lock(latch_);
  if (rid >= slots_.size()) {
    return Status::OutOfRange("slot " + std::to_string(rid) +
                              " was never allocated in " + name_);
  }
  if (!slots_[rid].empty()) {
    return Status::AlreadyExists("slot " + std::to_string(rid) + " in " +
                                 name_ + " is live");
  }
  slots_[rid].push_back(
      TupleVersion{validated.TakeValue(), kBaseTs, 0, false});
  ++live_count_;
  return Status::OK();
}

Status HeapTable::CommitVersions(RowId rid, TxnId txn, Ts commit_ts,
                                 Ts low_water, std::vector<Tuple>* pruned,
                                 bool* slot_cleared) {
  WriterMutexLock lock(latch_);
  if (rid >= slots_.size()) {
    return Status::OutOfRange("slot " + std::to_string(rid) +
                              " was never allocated in " + name_);
  }
  VersionChain& chain = slots_[rid];
  for (TupleVersion& v : chain) {
    if (!Committed(v) && v.writer == txn) {
      v.begin_ts = commit_ts;
      v.writer = 0;
    }
  }
  const bool emptied = PruneChain(chain, low_water, pruned);
  if (slot_cleared != nullptr) *slot_cleared = emptied;
  return Status::OK();
}

Status HeapTable::AbortVersions(RowId rid, TxnId txn,
                                std::vector<Tuple>* removed,
                                bool* slot_cleared) {
  WriterMutexLock lock(latch_);
  if (rid >= slots_.size()) {
    return Status::OutOfRange("slot " + std::to_string(rid) +
                              " was never allocated in " + name_);
  }
  VersionChain& chain = slots_[rid];
  const bool live_before = HeadLive(chain);
  while (!chain.empty() && !Committed(chain.front()) &&
         chain.front().writer == txn) {
    if (!chain.front().tombstone && removed != nullptr) {
      removed->push_back(std::move(chain.front().tuple));
    }
    chain.erase(chain.begin());
  }
  const bool live_after = HeadLive(chain);
  if (live_before && !live_after) --live_count_;
  if (!live_before && live_after) ++live_count_;
  if (slot_cleared != nullptr) *slot_cleared = chain.empty();
  return Status::OK();
}

Status HeapTable::Prune(RowId rid, Ts low_water, std::vector<Tuple>* pruned,
                        bool* slot_cleared) {
  WriterMutexLock lock(latch_);
  if (rid >= slots_.size()) {
    return Status::OutOfRange("slot " + std::to_string(rid) +
                              " was never allocated in " + name_);
  }
  const bool emptied = PruneChain(slots_[rid], low_water, pruned);
  if (slot_cleared != nullptr) *slot_cleared = emptied;
  return Status::OK();
}

bool HeapTable::PruneChain(VersionChain& chain, Ts low_water,
                           std::vector<Tuple>* pruned) {
  if (chain.empty()) return false;
  const TupleVersion& head = chain.front();
  if (head.tombstone && Committed(head) && head.begin_ts <= low_water) {
    // Committed delete below the low-water mark: no live or future
    // snapshot can see any version of this row. Reclaim the chain; the
    // slot itself stays allocated so RowIds are never reused.
    for (TupleVersion& v : chain) {
      if (!v.tombstone && pruned != nullptr) {
        pruned->push_back(std::move(v.tuple));
      }
    }
    chain.clear();
    return true;
  }
  if (chain.size() <= num_versions_) return false;
  // Oldest version any snapshot can still need: the newest committed
  // version at or below the low-water mark. Everything strictly older
  // is reclaimable; trim from the tail down to the num_versions cap.
  size_t needed = chain.size();
  for (size_t i = 0; i < chain.size(); ++i) {
    if (Committed(chain[i]) && chain[i].begin_ts <= low_water) {
      needed = i;
      break;
    }
  }
  if (needed == chain.size()) return false;
  while (chain.size() > num_versions_ && chain.size() - 1 > needed) {
    if (!chain.back().tombstone && pruned != nullptr) {
      pruned->push_back(std::move(chain.back().tuple));
    }
    chain.pop_back();
  }
  return false;
}

size_t HeapTable::VersionCount(RowId rid) const {
  ReaderMutexLock lock(latch_);
  return rid < slots_.size() ? slots_[rid].size() : 0;
}

std::vector<Tuple> HeapTable::VersionTuples(RowId rid) const {
  ReaderMutexLock lock(latch_);
  std::vector<Tuple> out;
  if (rid < slots_.size()) {
    for (const TupleVersion& v : slots_[rid]) {
      if (!v.tombstone) out.push_back(v.tuple);
    }
  }
  return out;
}

bool HeapTable::ChainHasKey(RowId rid, size_t col, const Value& key,
                            size_t skip_newest) const {
  ReaderMutexLock lock(latch_);
  if (rid >= slots_.size()) return false;
  const VersionChain& chain = slots_[rid];
  for (size_t i = skip_newest; i < chain.size(); ++i) {
    const TupleVersion& v = chain[i];
    if (!v.tombstone && col < v.tuple.size() && v.tuple.at(col) == key) {
      return true;
    }
  }
  return false;
}

size_t HeapTable::size() const {
  ReaderMutexLock lock(latch_);
  return live_count_;
}

size_t HeapTable::slot_count() const {
  ReaderMutexLock lock(latch_);
  return slots_.size();
}

Status HeapTable::LoadSnapshot(
    size_t slot_count, const std::vector<std::pair<RowId, Tuple>>& rows) {
  WriterMutexLock lock(latch_);
  if (!slots_.empty()) {
    return Status::Internal("LoadSnapshot into non-empty table " + name_);
  }
  slots_.resize(slot_count);
  for (const auto& [rid, tuple] : rows) {
    if (rid >= slot_count) {
      return Status::OutOfRange("snapshot row " + std::to_string(rid) +
                                " beyond slot count in " + name_);
    }
    auto validated = tuple.ValidateAgainst(schema_);
    if (!validated.ok()) return validated.status();
    if (!slots_[rid].empty()) {
      return Status::AlreadyExists("snapshot row " + std::to_string(rid) +
                                   " duplicated in " + name_);
    }
    slots_[rid].push_back(
        TupleVersion{validated.TakeValue(), kBaseTs, 0, false});
    ++live_count_;
  }
  return Status::OK();
}

std::vector<std::pair<RowId, Tuple>> HeapTable::Scan() const {
  ReaderMutexLock lock(latch_);
  std::vector<std::pair<RowId, Tuple>> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (HeadLive(slots_[i])) out.emplace_back(i, slots_[i].front().tuple);
  }
  return out;
}

std::vector<std::pair<RowId, Tuple>> HeapTable::ScanVisible(
    Ts snapshot_ts) const {
  ReaderMutexLock lock(latch_);
  std::vector<std::pair<RowId, Tuple>> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    for (const TupleVersion& v : slots_[i]) {
      if (!Committed(v) || v.begin_ts > snapshot_ts) continue;
      if (!v.tombstone) out.emplace_back(i, v.tuple);
      break;
    }
  }
  return out;
}

void HeapTable::Clear() {
  WriterMutexLock lock(latch_);
  for (auto& chain : slots_) chain.clear();
  live_count_ = 0;
}

}  // namespace youtopia
