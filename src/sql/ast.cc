#include "sql/ast.h"

namespace youtopia {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNeq:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLte:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGte:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::unique_ptr<Expr> InSubqueryExpr::Clone() const {
  return std::make_unique<InSubqueryExpr>(needle->Clone(), subquery->Clone(),
                                          negated);
}

std::unique_ptr<SelectStatement> SelectStatement::Clone() const {
  auto copy = std::make_unique<SelectStatement>();
  copy->select_list.reserve(select_list.size());
  for (const auto& e : select_list) copy->select_list.push_back(e->Clone());
  copy->heads.reserve(heads.size());
  for (const auto& h : heads) {
    Head hc;
    hc.answer_relation = h.answer_relation;
    hc.exprs.reserve(h.exprs.size());
    for (const auto& e : h.exprs) hc.exprs.push_back(e->Clone());
    copy->heads.push_back(std::move(hc));
  }
  copy->from = from;
  if (where) copy->where = where->Clone();
  copy->choose = choose;
  return copy;
}

}  // namespace youtopia
