#ifndef YOUTOPIA_SQL_LEXER_H_
#define YOUTOPIA_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace youtopia {

/// Tokenizes one SQL statement (or a ';'-separated batch). Keywords are
/// case-insensitive; identifiers keep their original spelling. String
/// literals use single quotes with '' as the escape. `--` starts a
/// comment to end of line.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Tokenizes the whole input, ending with a kEndOfInput token.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> NextToken();
  void SkipWhitespaceAndComments();
  Result<Token> LexNumber();
  Result<Token> LexString();
  Token LexIdentifierOrKeyword();

  char Peek(size_t ahead = 0) const;
  bool AtEnd() const { return pos_ >= input_.size(); }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace youtopia

#endif  // YOUTOPIA_SQL_LEXER_H_
