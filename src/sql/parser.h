#ifndef YOUTOPIA_SQL_PARSER_H_
#define YOUTOPIA_SQL_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace youtopia {

/// Recursive-descent parser for the Youtopia SQL dialect:
///
///   CREATE TABLE t (col TYPE [NOT NULL], ...)
///   CREATE INDEX ON t (col)
///   DROP TABLE t
///   INSERT INTO t VALUES (lit, ...) [, (lit, ...)]...
///   DELETE FROM t [WHERE expr]
///   UPDATE t SET col = expr [, ...] [WHERE expr]
///   SELECT exprs [FROM t [alias] [, ...]] [WHERE expr]            -- regular
///   SELECT exprs INTO ANSWER r [, ANSWER r2]...                   -- entangled
///          [, exprs INTO ANSWER r3]... [WHERE cond] [CHOOSE k]
///
/// Entangled WHERE conditions may contain `x IN (SELECT ...)` domain
/// predicates and `(e, ...) IN ANSWER R` answer constraints (paper §2.1).
class Parser {
 public:
  /// Parses exactly one statement (a trailing ';' is allowed).
  static Result<StatementPtr> ParseStatement(std::string_view sql);

  /// Parses a ';'-separated batch.
  static Result<std::vector<StatementPtr>> ParseScript(std::string_view sql);

  /// One statement of a parsed script plus its own source slice. The
  /// text is what the plan cache keys a per-step prepare on — scripts
  /// replay the same statement shapes, and a whole-script key would
  /// collide every member onto one entry.
  struct ScriptPart {
    StatementPtr stmt;
    std::string text;
  };

  /// ParseScript, but each statement also carries its source text
  /// (sliced by token offsets, trimmed). Parsing is still all-or-
  /// nothing: a syntax error anywhere rejects the whole script — only
  /// the *prepare* stage is deferred per step by the callers.
  static Result<std::vector<ScriptPart>> ParseScriptParts(
      std::string_view sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Match(TokenType type);
  Result<Token> Expect(TokenType type, const char* what);
  Status ErrorHere(const std::string& message) const;

  Result<StatementPtr> ParseOneStatement();
  Result<StatementPtr> ParseCreate();
  Result<StatementPtr> ParseDrop();
  Result<StatementPtr> ParseInsert();
  Result<StatementPtr> ParseDelete();
  Result<StatementPtr> ParseUpdate();
  Result<std::unique_ptr<SelectStatement>> ParseSelect();

  // Expression grammar (lowest to highest precedence):
  //   or_expr := and_expr (OR and_expr)*
  //   and_expr := not_expr (AND not_expr)*
  //   not_expr := NOT not_expr | predicate
  //   predicate := additive [((=|!=|<|<=|>|>=) additive)
  //                | [NOT] IN (subquery | ANSWER rel)
  //                | [NOT] BETWEEN additive AND additive]
  //   additive := multiplicative ((+|-) multiplicative)*
  //   multiplicative := unary ((*|/) unary)*
  //   unary := - unary | primary
  //   primary := literal | ident[.ident] | ( expr ) | (e, e, ...) IN ...
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  /// Shared suffix handling for `IN (subquery)`, `IN ANSWER rel`,
  /// and `BETWEEN`. `tuple` holds 1+ expressions (the left side).
  Result<ExprPtr> ParseInSuffix(std::vector<ExprPtr> tuple, bool negated);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace youtopia

#endif  // YOUTOPIA_SQL_PARSER_H_
