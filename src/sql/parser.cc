#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace youtopia {

Result<StatementPtr> Parser::ParseStatement(std::string_view sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(tokens.TakeValue());
  auto stmt = parser.ParseOneStatement();
  if (!stmt.ok()) return stmt.status();
  parser.Match(TokenType::kSemicolon);
  if (!parser.Check(TokenType::kEndOfInput)) {
    return parser.ErrorHere("trailing input after statement");
  }
  return stmt;
}

Result<std::vector<StatementPtr>> Parser::ParseScript(std::string_view sql) {
  auto parts = ParseScriptParts(sql);
  if (!parts.ok()) return parts.status();
  std::vector<StatementPtr> out;
  out.reserve(parts->size());
  for (ScriptPart& part : *parts) out.push_back(std::move(part.stmt));
  return out;
}

Result<std::vector<Parser::ScriptPart>> Parser::ParseScriptParts(
    std::string_view sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(tokens.TakeValue());
  std::vector<ScriptPart> out;
  while (!parser.Check(TokenType::kEndOfInput)) {
    if (parser.Match(TokenType::kSemicolon)) continue;  // empty statement
    const size_t begin = parser.Peek().offset;
    auto stmt = parser.ParseOneStatement();
    if (!stmt.ok()) return stmt.status();
    // The statement's source runs from its first token to the start of
    // its terminator (the ';', or end of input — whose token offset is
    // one past the last byte).
    const size_t end = parser.Peek().offset;
    ScriptPart part;
    part.stmt = stmt.TakeValue();
    part.text = std::string(
        TrimWhitespace(sql.substr(begin, end > begin ? end - begin : 0)));
    out.push_back(std::move(part));
    if (!parser.Match(TokenType::kSemicolon) &&
        !parser.Check(TokenType::kEndOfInput)) {
      return parser.ErrorHere("expected ';' between statements");
    }
  }
  return out;
}

const Token& Parser::Peek(size_t ahead) const {
  const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& tok = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::Match(TokenType type) {
  if (Check(type)) {
    Advance();
    return true;
  }
  return false;
}

Result<Token> Parser::Expect(TokenType type, const char* what) {
  if (Check(type)) return Advance();
  return ErrorHere(std::string("expected ") + what + " but found '" +
                   Peek().ToString() + "'");
}

Status Parser::ErrorHere(const std::string& message) const {
  return Status::InvalidArgument(message + " (at offset " +
                                 std::to_string(Peek().offset) + ")");
}

Result<StatementPtr> Parser::ParseOneStatement() {
  switch (Peek().type) {
    case TokenType::kCreate:
      return ParseCreate();
    case TokenType::kDrop:
      return ParseDrop();
    case TokenType::kInsert:
      return ParseInsert();
    case TokenType::kDelete:
      return ParseDelete();
    case TokenType::kUpdate:
      return ParseUpdate();
    case TokenType::kSelect: {
      auto sel = ParseSelect();
      if (!sel.ok()) return sel.status();
      return StatementPtr(sel.TakeValue().release());
    }
    default:
      return ErrorHere("expected a statement keyword, found '" +
                       Peek().ToString() + "'");
  }
}

Result<StatementPtr> Parser::ParseCreate() {
  Advance();  // CREATE
  if (Match(TokenType::kTable)) {
    auto stmt = std::make_unique<CreateTableStatement>();
    auto name = Expect(TokenType::kIdentifier, "table name");
    if (!name.ok()) return name.status();
    stmt->table = name->text;
    YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('").status());
    do {
      ColumnDefAst col;
      auto cname = Expect(TokenType::kIdentifier, "column name");
      if (!cname.ok()) return cname.status();
      col.name = cname->text;
      auto ctype = Expect(TokenType::kIdentifier, "column type");
      if (!ctype.ok()) return ctype.status();
      col.type_name = ctype->text;
      if (Match(TokenType::kNot)) {
        YOUTOPIA_RETURN_IF_ERROR(
            Expect(TokenType::kNull, "NULL after NOT").status());
        col.not_null = true;
      }
      stmt->columns.push_back(std::move(col));
    } while (Match(TokenType::kComma));
    YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
    return StatementPtr(std::move(stmt));
  }
  if (Match(TokenType::kIndex)) {
    auto stmt = std::make_unique<CreateIndexStatement>();
    YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kOn, "ON").status());
    auto table = Expect(TokenType::kIdentifier, "table name");
    if (!table.ok()) return table.status();
    stmt->table = table->text;
    YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('").status());
    auto column = Expect(TokenType::kIdentifier, "column name");
    if (!column.ok()) return column.status();
    stmt->column = column->text;
    YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
    return StatementPtr(std::move(stmt));
  }
  return ErrorHere("expected TABLE or INDEX after CREATE");
}

Result<StatementPtr> Parser::ParseDrop() {
  Advance();  // DROP
  YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kTable, "TABLE").status());
  auto stmt = std::make_unique<DropTableStatement>();
  auto name = Expect(TokenType::kIdentifier, "table name");
  if (!name.ok()) return name.status();
  stmt->table = name->text;
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseInsert() {
  Advance();  // INSERT
  YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kInto, "INTO").status());
  auto stmt = std::make_unique<InsertStatement>();
  auto name = Expect(TokenType::kIdentifier, "table name");
  if (!name.ok()) return name.status();
  stmt->table = name->text;
  YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kValues, "VALUES").status());
  do {
    YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('").status());
    std::vector<ExprPtr> row;
    do {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      row.push_back(e.TakeValue());
    } while (Match(TokenType::kComma));
    YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
    stmt->rows.push_back(std::move(row));
  } while (Match(TokenType::kComma));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDelete() {
  Advance();  // DELETE
  YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kFrom, "FROM").status());
  auto stmt = std::make_unique<DeleteStatement>();
  auto name = Expect(TokenType::kIdentifier, "table name");
  if (!name.ok()) return name.status();
  stmt->table = name->text;
  if (Match(TokenType::kWhere)) {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    stmt->where = e.TakeValue();
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseUpdate() {
  Advance();  // UPDATE
  auto stmt = std::make_unique<UpdateStatement>();
  auto name = Expect(TokenType::kIdentifier, "table name");
  if (!name.ok()) return name.status();
  stmt->table = name->text;
  YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kSet, "SET").status());
  do {
    auto col = Expect(TokenType::kIdentifier, "column name");
    if (!col.ok()) return col.status();
    YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='").status());
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    stmt->assignments.emplace_back(col->text, e.TakeValue());
  } while (Match(TokenType::kComma));
  if (Match(TokenType::kWhere)) {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    stmt->where = e.TakeValue();
  }
  return StatementPtr(std::move(stmt));
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelect() {
  YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kSelect, "SELECT").status());
  auto stmt = std::make_unique<SelectStatement>();

  // Select items, possibly grouped into INTO ANSWER heads.
  std::vector<ExprPtr> current;
  for (;;) {
    if (Check(TokenType::kStar)) {
      Advance();
      current.push_back(std::make_unique<ColumnRefExpr>("", "*"));
    } else {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      current.push_back(e.TakeValue());
    }
    if (Match(TokenType::kInto)) {
      YOUTOPIA_RETURN_IF_ERROR(
          Expect(TokenType::kAnswer, "ANSWER after INTO").status());
      auto rel = Expect(TokenType::kIdentifier, "answer relation name");
      if (!rel.ok()) return rel.status();
      std::vector<std::string> relations = {rel->text};
      // Paper form: INTO ANSWER a, ANSWER b — same exprs into several
      // answer relations.
      while (Check(TokenType::kComma) &&
             Peek(1).type == TokenType::kAnswer) {
        Advance();  // ','
        Advance();  // ANSWER
        auto rel2 = Expect(TokenType::kIdentifier, "answer relation name");
        if (!rel2.ok()) return rel2.status();
        relations.push_back(rel2->text);
      }
      for (const std::string& r : relations) {
        SelectStatement::Head head;
        head.answer_relation = r;
        head.exprs.reserve(current.size());
        for (const auto& e : current) head.exprs.push_back(e->Clone());
        stmt->heads.push_back(std::move(head));
      }
      current.clear();
      if (Match(TokenType::kComma)) continue;  // next head group
      break;
    }
    if (Match(TokenType::kComma)) continue;
    break;
  }
  if (!stmt->heads.empty() && !current.empty()) {
    return ErrorHere(
        "entangled SELECT has trailing expressions without INTO ANSWER");
  }
  stmt->select_list = std::move(current);

  if (Match(TokenType::kFrom)) {
    do {
      auto table = Expect(TokenType::kIdentifier, "table name");
      if (!table.ok()) return table.status();
      SelectStatement::TableRef ref;
      ref.table = table->text;
      if (Match(TokenType::kAs)) {
        auto alias = Expect(TokenType::kIdentifier, "alias");
        if (!alias.ok()) return alias.status();
        ref.alias = alias->text;
      } else if (Check(TokenType::kIdentifier)) {
        ref.alias = Advance().text;
      }
      stmt->from.push_back(std::move(ref));
    } while (Match(TokenType::kComma));
  }

  if (Match(TokenType::kWhere)) {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    stmt->where = e.TakeValue();
  }

  if (Match(TokenType::kChoose)) {
    auto k = Expect(TokenType::kIntLiteral, "integer after CHOOSE");
    if (!k.ok()) return k.status();
    if (k->int_value < 1) {
      return Status::InvalidArgument("CHOOSE count must be >= 1");
    }
    stmt->choose = k->int_value;
  }
  return stmt;
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  auto left = ParseAnd();
  if (!left.ok()) return left.status();
  ExprPtr node = left.TakeValue();
  while (Match(TokenType::kOr)) {
    auto right = ParseAnd();
    if (!right.ok()) return right.status();
    node = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(node),
                                        right.TakeValue());
  }
  return node;
}

Result<ExprPtr> Parser::ParseAnd() {
  auto left = ParseNot();
  if (!left.ok()) return left.status();
  ExprPtr node = left.TakeValue();
  while (Match(TokenType::kAnd)) {
    auto right = ParseNot();
    if (!right.ok()) return right.status();
    node = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(node),
                                        right.TakeValue());
  }
  return node;
}

Result<ExprPtr> Parser::ParseNot() {
  if (Match(TokenType::kNot)) {
    auto operand = ParseNot();
    if (!operand.ok()) return operand.status();
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNot, operand.TakeValue()));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParseInSuffix(std::vector<ExprPtr> tuple,
                                      bool negated) {
  if (Match(TokenType::kAnswer)) {
    auto rel = Expect(TokenType::kIdentifier, "answer relation name");
    if (!rel.ok()) return rel.status();
    return ExprPtr(std::make_unique<InAnswerExpr>(std::move(tuple), rel->text,
                                                  negated));
  }
  YOUTOPIA_RETURN_IF_ERROR(
      Expect(TokenType::kLParen, "'(' or ANSWER after IN").status());
  if (Check(TokenType::kSelect)) {
    if (tuple.size() != 1) {
      return ErrorHere("tuple IN (subquery) is not supported");
    }
    auto sub = ParseSelect();
    if (!sub.ok()) return sub.status();
    YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
    return ExprPtr(std::make_unique<InSubqueryExpr>(
        std::move(tuple[0]), sub.TakeValue(), negated));
  }
  // Literal IN list: desugar to a chain of equality comparisons.
  if (tuple.size() != 1) {
    return ErrorHere("tuple IN (value list) is not supported");
  }
  ExprPtr disjunction;
  do {
    auto item = ParseExpr();
    if (!item.ok()) return item.status();
    auto eq = std::make_unique<BinaryExpr>(BinaryOp::kEq, tuple[0]->Clone(),
                                           item.TakeValue());
    if (disjunction) {
      disjunction = std::make_unique<BinaryExpr>(
          BinaryOp::kOr, std::move(disjunction), std::move(eq));
    } else {
      disjunction = std::move(eq);
    }
  } while (Match(TokenType::kComma));
  YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
  if (negated) {
    disjunction =
        std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(disjunction));
  }
  return disjunction;
}

Result<ExprPtr> Parser::ParsePredicate() {
  auto left = ParseAdditive();
  if (!left.ok()) return left.status();
  ExprPtr node = left.TakeValue();

  // [NOT] IN / [NOT] BETWEEN suffixes.
  bool negated = false;
  if (Check(TokenType::kNot) && (Peek(1).type == TokenType::kIn ||
                                 Peek(1).type == TokenType::kBetween)) {
    Advance();
    negated = true;
  }
  if (Match(TokenType::kIn)) {
    std::vector<ExprPtr> tuple;
    tuple.push_back(std::move(node));
    return ParseInSuffix(std::move(tuple), negated);
  }
  if (Match(TokenType::kBetween)) {
    auto lo = ParseAdditive();
    if (!lo.ok()) return lo.status();
    YOUTOPIA_RETURN_IF_ERROR(
        Expect(TokenType::kAnd, "AND in BETWEEN").status());
    auto hi = ParseAdditive();
    if (!hi.ok()) return hi.status();
    auto ge = std::make_unique<BinaryExpr>(BinaryOp::kGte, node->Clone(),
                                           lo.TakeValue());
    auto le = std::make_unique<BinaryExpr>(BinaryOp::kLte, std::move(node),
                                           hi.TakeValue());
    ExprPtr both = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(ge),
                                                std::move(le));
    if (negated) {
      both = std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(both));
    }
    return both;
  }
  if (negated) return ErrorHere("expected IN or BETWEEN after NOT");

  // Comparison operators (non-associative).
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenType::kNeq:
      op = BinaryOp::kNeq;
      break;
    case TokenType::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenType::kLte:
      op = BinaryOp::kLte;
      break;
    case TokenType::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenType::kGte:
      op = BinaryOp::kGte;
      break;
    default:
      return node;
  }
  Advance();
  auto right = ParseAdditive();
  if (!right.ok()) return right.status();
  return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(node),
                                              right.TakeValue()));
}

Result<ExprPtr> Parser::ParseAdditive() {
  auto left = ParseMultiplicative();
  if (!left.ok()) return left.status();
  ExprPtr node = left.TakeValue();
  for (;;) {
    BinaryOp op;
    if (Check(TokenType::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Check(TokenType::kMinus)) {
      op = BinaryOp::kSub;
    } else {
      return node;
    }
    Advance();
    auto right = ParseMultiplicative();
    if (!right.ok()) return right.status();
    node = std::make_unique<BinaryExpr>(op, std::move(node),
                                        right.TakeValue());
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  auto left = ParseUnary();
  if (!left.ok()) return left.status();
  ExprPtr node = left.TakeValue();
  for (;;) {
    BinaryOp op;
    if (Check(TokenType::kStar)) {
      op = BinaryOp::kMul;
    } else if (Check(TokenType::kSlash)) {
      op = BinaryOp::kDiv;
    } else {
      return node;
    }
    Advance();
    auto right = ParseUnary();
    if (!right.ok()) return right.status();
    node = std::make_unique<BinaryExpr>(op, std::move(node),
                                        right.TakeValue());
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    auto operand = ParseUnary();
    if (!operand.ok()) return operand.status();
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNeg, operand.TakeValue()));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kIntLiteral: {
      Advance();
      return ExprPtr(
          std::make_unique<LiteralExpr>(Value::Int64(tok.int_value)));
    }
    case TokenType::kDoubleLiteral: {
      Advance();
      return ExprPtr(
          std::make_unique<LiteralExpr>(Value::Double(tok.double_value)));
    }
    case TokenType::kStringLiteral: {
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::String(tok.text)));
    }
    case TokenType::kNull: {
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
    }
    case TokenType::kTrue: {
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(true)));
    }
    case TokenType::kFalse: {
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(false)));
    }
    case TokenType::kIdentifier: {
      Advance();
      if (Match(TokenType::kDot)) {
        auto col = Expect(TokenType::kIdentifier, "column after '.'");
        if (!col.ok()) return col.status();
        return ExprPtr(std::make_unique<ColumnRefExpr>(tok.text, col->text));
      }
      return ExprPtr(std::make_unique<ColumnRefExpr>("", tok.text));
    }
    case TokenType::kLParen: {
      Advance();
      std::vector<ExprPtr> exprs;
      do {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        exprs.push_back(e.TakeValue());
      } while (Match(TokenType::kComma));
      YOUTOPIA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
      if (exprs.size() == 1) return std::move(exprs[0]);
      // Row constructor: must be followed by [NOT] IN ANSWER / IN.
      bool negated = false;
      if (Check(TokenType::kNot) && Peek(1).type == TokenType::kIn) {
        Advance();
        negated = true;
      }
      if (!Match(TokenType::kIn)) {
        return ErrorHere("tuple constructor must be followed by IN");
      }
      return ParseInSuffix(std::move(exprs), negated);
    }
    default:
      return ErrorHere("expected an expression, found '" + tok.ToString() +
                       "'");
  }
}

}  // namespace youtopia
