#include "sql/unparser.h"

#include "common/logging.h"

namespace youtopia {

namespace {

/// Parenthesizes operands of lower-precedence subtrees conservatively:
/// any nested binary expression is wrapped. Output is re-parseable, which
/// is all the admin display and round-trip tests need.
std::string MaybeParen(const Expr& e) {
  if (e.kind == ExprKind::kBinary) return "(" + ExprToSql(e) + ")";
  return ExprToSql(e);
}

}  // namespace

std::string ExprToSql(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return As<LiteralExpr>(expr).value.ToString();
    case ExprKind::kColumnRef: {
      const auto& c = As<ColumnRefExpr>(expr);
      if (c.qualifier.empty()) return c.column;
      return c.qualifier + "." + c.column;
    }
    case ExprKind::kUnary: {
      const auto& u = As<UnaryExpr>(expr);
      if (u.op == UnaryOp::kNot) return "NOT " + MaybeParen(*u.operand);
      return "-" + MaybeParen(*u.operand);
    }
    case ExprKind::kBinary: {
      const auto& b = As<BinaryExpr>(expr);
      return MaybeParen(*b.left) + " " + BinaryOpToString(b.op) + " " +
             MaybeParen(*b.right);
    }
    case ExprKind::kInSubquery: {
      const auto& in = As<InSubqueryExpr>(expr);
      return MaybeParen(*in.needle) + (in.negated ? " NOT IN (" : " IN (") +
             SelectToSql(*in.subquery) + ")";
    }
    case ExprKind::kInAnswer: {
      const auto& in = As<InAnswerExpr>(expr);
      std::string out;
      if (in.tuple.size() == 1) {
        out = MaybeParen(*in.tuple[0]);
      } else {
        out = "(";
        for (size_t i = 0; i < in.tuple.size(); ++i) {
          if (i > 0) out += ", ";
          out += ExprToSql(*in.tuple[i]);
        }
        out += ")";
      }
      out += in.negated ? " NOT IN ANSWER " : " IN ANSWER ";
      out += in.relation;
      return out;
    }
  }
  return "?";
}

std::string ExprToName(const Expr* expr) {
  if (expr->kind == ExprKind::kColumnRef) {
    return As<ColumnRefExpr>(*expr).column;
  }
  return ExprToSql(*expr);
}

std::string SelectToSql(const SelectStatement& stmt) {
  std::string out = "SELECT ";
  if (stmt.IsEntangled()) {
    for (size_t h = 0; h < stmt.heads.size(); ++h) {
      if (h > 0) out += ", ";
      const auto& head = stmt.heads[h];
      for (size_t i = 0; i < head.exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToSql(*head.exprs[i]);
      }
      out += " INTO ANSWER " + head.answer_relation;
    }
  } else {
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExprToSql(*stmt.select_list[i]);
    }
  }
  if (!stmt.from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.from[i].table;
      if (!stmt.from[i].alias.empty()) out += " " + stmt.from[i].alias;
    }
  }
  if (stmt.where) out += " WHERE " + ExprToSql(*stmt.where);
  if (stmt.choose > 0) out += " CHOOSE " + std::to_string(stmt.choose);
  return out;
}

std::string StatementToSql(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kCreateTable: {
      const auto& s = static_cast<const CreateTableStatement&>(stmt);
      std::string out = "CREATE TABLE " + s.table + " (";
      for (size_t i = 0; i < s.columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.columns[i].name + " " + s.columns[i].type_name;
        if (s.columns[i].not_null) out += " NOT NULL";
      }
      return out + ")";
    }
    case StatementKind::kCreateIndex: {
      const auto& s = static_cast<const CreateIndexStatement&>(stmt);
      return "CREATE INDEX ON " + s.table + " (" + s.column + ")";
    }
    case StatementKind::kDropTable: {
      const auto& s = static_cast<const DropTableStatement&>(stmt);
      return "DROP TABLE " + s.table;
    }
    case StatementKind::kInsert: {
      const auto& s = static_cast<const InsertStatement&>(stmt);
      std::string out = "INSERT INTO " + s.table + " VALUES ";
      for (size_t r = 0; r < s.rows.size(); ++r) {
        if (r > 0) out += ", ";
        out += "(";
        for (size_t i = 0; i < s.rows[r].size(); ++i) {
          if (i > 0) out += ", ";
          out += ExprToSql(*s.rows[r][i]);
        }
        out += ")";
      }
      return out;
    }
    case StatementKind::kDelete: {
      const auto& s = static_cast<const DeleteStatement&>(stmt);
      std::string out = "DELETE FROM " + s.table;
      if (s.where) out += " WHERE " + ExprToSql(*s.where);
      return out;
    }
    case StatementKind::kUpdate: {
      const auto& s = static_cast<const UpdateStatement&>(stmt);
      std::string out = "UPDATE " + s.table + " SET ";
      for (size_t i = 0; i < s.assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.assignments[i].first + " = " +
               ExprToSql(*s.assignments[i].second);
      }
      if (s.where) out += " WHERE " + ExprToSql(*s.where);
      return out;
    }
    case StatementKind::kSelect:
      return SelectToSql(static_cast<const SelectStatement&>(stmt));
  }
  return "?";
}

}  // namespace youtopia
