#ifndef YOUTOPIA_SQL_TABLE_REFS_H_
#define YOUTOPIA_SQL_TABLE_REFS_H_

#include <set>
#include <string>

#include "sql/ast.h"

namespace youtopia {

/// Tables a statement reads and writes, collected from the AST: FROM
/// clauses (including subqueries), IN ANSWER relations, and DML targets.
/// Names are lower-cased. The server layer locks `writes` exclusively
/// and `reads` shared before executing, giving regular statements
/// atomicity against coordination installs (strict 2PL, auto-commit).
struct TableRefs {
  std::set<std::string> reads;
  std::set<std::string> writes;
};

/// Walks the statement. Unknown/missing tables are still listed — the
/// executor reports those errors, locking them is harmless.
TableRefs CollectTableRefs(const Statement& stmt);

}  // namespace youtopia

#endif  // YOUTOPIA_SQL_TABLE_REFS_H_
