#ifndef YOUTOPIA_SQL_UNPARSER_H_
#define YOUTOPIA_SQL_UNPARSER_H_

#include <string>

#include "sql/ast.h"

namespace youtopia {

/// Renders AST nodes back to SQL text. Used by the administrative
/// interface (paper §3.2) to display pending entangled queries, and by
/// tests to assert parse round-trips.
std::string ExprToSql(const Expr& expr);

/// Output column name for a projection expression: the bare column name
/// for references, otherwise the SQL text of the expression.
std::string ExprToName(const Expr* expr);
std::string SelectToSql(const SelectStatement& stmt);
std::string StatementToSql(const Statement& stmt);

}  // namespace youtopia

#endif  // YOUTOPIA_SQL_UNPARSER_H_
