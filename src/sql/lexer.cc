#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "common/string_util.h"

namespace youtopia {

namespace {

const std::unordered_map<std::string, TokenType>& KeywordMap() {
  static const auto* kMap = new std::unordered_map<std::string, TokenType>{
      {"select", TokenType::kSelect},   {"into", TokenType::kInto},
      {"answer", TokenType::kAnswer},   {"from", TokenType::kFrom},
      {"where", TokenType::kWhere},     {"and", TokenType::kAnd},
      {"or", TokenType::kOr},           {"not", TokenType::kNot},
      {"in", TokenType::kIn},           {"choose", TokenType::kChoose},
      {"create", TokenType::kCreate},   {"table", TokenType::kTable},
      {"index", TokenType::kIndex},     {"on", TokenType::kOn},
      {"drop", TokenType::kDrop},       {"insert", TokenType::kInsert},
      {"values", TokenType::kValues},   {"delete", TokenType::kDelete},
      {"update", TokenType::kUpdate},   {"set", TokenType::kSet},
      {"null", TokenType::kNull},       {"true", TokenType::kTrue},
      {"false", TokenType::kFalse},     {"between", TokenType::kBetween},
      {"as", TokenType::kAs},           {"by", TokenType::kBy},
  };
  return *kMap;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
}

void Lexer::SkipWhitespaceAndComments() {
  for (;;) {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    if (Peek() == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') ++pos_;
      continue;
    }
    break;
  }
}

Result<Token> Lexer::LexNumber() {
  const size_t start = pos_;
  while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
  bool is_double = false;
  if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
    is_double = true;
    ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
  }
  if (Peek() == 'e' || Peek() == 'E') {
    size_t save = pos_;
    ++pos_;
    if (Peek() == '+' || Peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      is_double = true;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    } else {
      pos_ = save;  // 'e' belongs to a following identifier
    }
  }
  const std::string text(input_.substr(start, pos_ - start));
  Token tok;
  tok.offset = start;
  if (is_double) {
    tok.type = TokenType::kDoubleLiteral;
    errno = 0;
    const double parsed = std::strtod(text.c_str(), nullptr);
    // Mirror the strtoll ERANGE check below. Subnormal results also set
    // ERANGE but are representable (and must stay lexable so dumped
    // subnormal columns restore); only saturation to +-HUGE_VAL
    // (overflow) or to zero (total underflow) is out of range.
    if (errno == ERANGE &&
        (parsed == HUGE_VAL || parsed == -HUGE_VAL || parsed == 0.0)) {
      return Status::InvalidArgument("double literal out of range: " + text);
    }
    if (!std::isfinite(parsed)) {
      return Status::InvalidArgument("double literal out of range: " + text);
    }
    tok.double_value = parsed;
  } else {
    tok.type = TokenType::kIntLiteral;
    errno = 0;
    tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      return Status::InvalidArgument("integer literal out of range: " + text);
    }
  }
  return tok;
}

Result<Token> Lexer::LexString() {
  const size_t start = pos_;
  ++pos_;  // opening quote
  std::string decoded;
  for (;;) {
    if (AtEnd()) {
      return Status::InvalidArgument(
          "unterminated string literal starting at offset " +
          std::to_string(start));
    }
    char c = input_[pos_++];
    if (c == '\'') {
      if (Peek() == '\'') {  // escaped quote
        decoded.push_back('\'');
        ++pos_;
        continue;
      }
      break;
    }
    decoded.push_back(c);
  }
  Token tok;
  tok.type = TokenType::kStringLiteral;
  tok.text = std::move(decoded);
  tok.offset = start;
  return tok;
}

Token Lexer::LexIdentifierOrKeyword() {
  const size_t start = pos_;
  while (IsIdentCont(Peek())) ++pos_;
  const std::string text(input_.substr(start, pos_ - start));
  Token tok;
  tok.offset = start;
  auto it = KeywordMap().find(ToLowerAscii(text));
  if (it != KeywordMap().end()) {
    tok.type = it->second;
    tok.text = text;
  } else {
    tok.type = TokenType::kIdentifier;
    tok.text = text;
  }
  return tok;
}

Result<Token> Lexer::NextToken() {
  SkipWhitespaceAndComments();
  Token tok;
  tok.offset = pos_;
  if (AtEnd()) {
    tok.type = TokenType::kEndOfInput;
    return tok;
  }
  const char c = Peek();
  if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber();
  if (c == '\'') return LexString();
  if (IsIdentStart(c)) return LexIdentifierOrKeyword();

  ++pos_;
  switch (c) {
    case '(':
      tok.type = TokenType::kLParen;
      return tok;
    case ')':
      tok.type = TokenType::kRParen;
      return tok;
    case ',':
      tok.type = TokenType::kComma;
      return tok;
    case '.':
      tok.type = TokenType::kDot;
      return tok;
    case ';':
      tok.type = TokenType::kSemicolon;
      return tok;
    case '=':
      tok.type = TokenType::kEq;
      return tok;
    case '!':
      if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kNeq;
        return tok;
      }
      return Status::InvalidArgument("unexpected '!' at offset " +
                                     std::to_string(tok.offset));
    case '<':
      if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kLte;
      } else if (Peek() == '>') {
        ++pos_;
        tok.type = TokenType::kNeq;
      } else {
        tok.type = TokenType::kLt;
      }
      return tok;
    case '>':
      if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kGte;
      } else {
        tok.type = TokenType::kGt;
      }
      return tok;
    case '+':
      tok.type = TokenType::kPlus;
      return tok;
    case '-':
      tok.type = TokenType::kMinus;
      return tok;
    case '*':
      tok.type = TokenType::kStar;
      return tok;
    case '/':
      tok.type = TokenType::kSlash;
      return tok;
    default:
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' at offset " +
                                     std::to_string(tok.offset));
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    auto tok = NextToken();
    if (!tok.ok()) return tok.status();
    const bool done = tok->type == TokenType::kEndOfInput;
    tokens.push_back(tok.TakeValue());
    if (done) break;
  }
  return tokens;
}

}  // namespace youtopia
