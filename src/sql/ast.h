#ifndef YOUTOPIA_SQL_AST_H_
#define YOUTOPIA_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace youtopia {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kInSubquery,
  kInAnswer,
};

enum class BinaryOp {
  kEq,
  kNeq,
  kLt,
  kLte,
  kGt,
  kGte,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kAnd,
  kOr,
};

enum class UnaryOp { kNot, kNeg };

/// Spelled operator ("=", "AND", ...).
const char* BinaryOpToString(BinaryOp op);

struct SelectStatement;

/// Base of the expression tree. Nodes are identified by `kind` and
/// down-cast with the As<T>() helpers; a full visitor would be overkill
/// for the handful of consumers (evaluator, normalizer, unparser).
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;

  /// Deep copy. Needed because the paper's `INTO ANSWER a, ANSWER b`
  /// form repeats one select list into several answer relations.
  virtual std::unique_ptr<Expr> Clone() const = 0;

  ExprKind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A constant literal.
struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<LiteralExpr>(value);
  }
  Value value;
};

/// A (possibly qualified) identifier. In a regular query this names a
/// column; in an entangled query an unqualified identifier that matches
/// no FROM column is a *coordination variable* (paper §2.1: `fno`).
struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string qualifier_in, std::string column_in)
      : Expr(ExprKind::kColumnRef),
        qualifier(std::move(qualifier_in)),
        column(std::move(column_in)) {}
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<ColumnRefExpr>(qualifier, column);
  }
  std::string qualifier;  ///< Table name or alias; empty if unqualified.
  std::string column;
};

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp op_in, ExprPtr operand_in)
      : Expr(ExprKind::kUnary), op(op_in), operand(std::move(operand_in)) {}
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<UnaryExpr>(op, operand->Clone());
  }
  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp op_in, ExprPtr left_in, ExprPtr right_in)
      : Expr(ExprKind::kBinary),
        op(op_in),
        left(std::move(left_in)),
        right(std::move(right_in)) {}
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<BinaryExpr>(op, left->Clone(), right->Clone());
  }
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

/// `needle IN (SELECT ...)` — in entangled queries this is the *domain
/// predicate* binding a coordination variable to database content.
struct InSubqueryExpr : Expr {
  InSubqueryExpr(ExprPtr needle_in, std::unique_ptr<SelectStatement> sub,
                 bool negated_in)
      : Expr(ExprKind::kInSubquery),
        needle(std::move(needle_in)),
        subquery(std::move(sub)),
        negated(negated_in) {}
  std::unique_ptr<Expr> Clone() const override;
  ExprPtr needle;
  std::unique_ptr<SelectStatement> subquery;
  bool negated;
};

/// `(e1, ..., en) IN ANSWER Rel` — the *answer constraint* of the paper:
/// the system-wide answer relation must contain the tuple for this query
/// to be answered.
struct InAnswerExpr : Expr {
  InAnswerExpr(std::vector<ExprPtr> tuple_in, std::string relation_in,
               bool negated_in)
      : Expr(ExprKind::kInAnswer),
        tuple(std::move(tuple_in)),
        relation(std::move(relation_in)),
        negated(negated_in) {}
  std::unique_ptr<Expr> Clone() const override {
    std::vector<ExprPtr> copy;
    copy.reserve(tuple.size());
    for (const auto& e : tuple) copy.push_back(e->Clone());
    return std::make_unique<InAnswerExpr>(std::move(copy), relation, negated);
  }
  std::vector<ExprPtr> tuple;
  std::string relation;
  bool negated;
};

template <typename T>
const T& As(const Expr& e) {
  return static_cast<const T&>(e);
}
template <typename T>
T& As(Expr& e) {
  return static_cast<T&>(e);
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kCreateTable,
  kCreateIndex,
  kDropTable,
  kInsert,
  kDelete,
  kUpdate,
  kSelect,
};

struct Statement {
  explicit Statement(StatementKind k) : kind(k) {}
  virtual ~Statement() = default;
  StatementKind kind;
};

using StatementPtr = std::unique_ptr<Statement>;

/// One `name TYPE [NOT NULL]` column definition.
struct ColumnDefAst {
  std::string name;
  std::string type_name;
  bool not_null = false;
};

struct CreateTableStatement : Statement {
  CreateTableStatement() : Statement(StatementKind::kCreateTable) {}
  std::string table;
  std::vector<ColumnDefAst> columns;
};

struct CreateIndexStatement : Statement {
  CreateIndexStatement() : Statement(StatementKind::kCreateIndex) {}
  std::string table;
  std::string column;
};

struct DropTableStatement : Statement {
  DropTableStatement() : Statement(StatementKind::kDropTable) {}
  std::string table;
};

struct InsertStatement : Statement {
  InsertStatement() : Statement(StatementKind::kInsert) {}
  std::string table;
  /// Each row is a list of constant expressions.
  std::vector<std::vector<ExprPtr>> rows;
};

struct DeleteStatement : Statement {
  DeleteStatement() : Statement(StatementKind::kDelete) {}
  std::string table;
  ExprPtr where;  ///< May be null (delete all).
};

struct UpdateStatement : Statement {
  UpdateStatement() : Statement(StatementKind::kUpdate) {}
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< May be null.
};

/// SELECT — both regular queries and entangled queries share this node.
/// The statement is *entangled* iff `heads` is non-empty (paper §2.1
/// grammar: SELECT select_expr INTO ANSWER tbl [, ANSWER tbl]...).
struct SelectStatement : Statement {
  SelectStatement() : Statement(StatementKind::kSelect) {}

  /// One `exprs INTO ANSWER relation` contribution.
  struct Head {
    std::vector<ExprPtr> exprs;
    std::string answer_relation;
  };

  struct TableRef {
    std::string table;
    std::string alias;  ///< Empty if none; resolution falls back to table.
  };

  /// Plain projection list (regular SELECT). `*` is a single ColumnRef
  /// with column == "*".
  std::vector<ExprPtr> select_list;
  /// Entangled contributions; non-empty makes this an entangled query.
  std::vector<Head> heads;
  std::vector<TableRef> from;
  ExprPtr where;     ///< May be null.
  int64_t choose = 0;  ///< 0 = unspecified (defaults to 1 for entangled).

  bool IsEntangled() const { return !heads.empty(); }

  std::unique_ptr<SelectStatement> Clone() const;
};

}  // namespace youtopia

#endif  // YOUTOPIA_SQL_AST_H_
