#ifndef YOUTOPIA_SQL_TOKEN_H_
#define YOUTOPIA_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace youtopia {

/// Lexical token kinds for the SQL dialect, including the entangled-query
/// extensions of the paper (§2.1): INTO ANSWER, IN ANSWER, CHOOSE.
enum class TokenType {
  // Literals and names.
  kIdentifier,
  kStringLiteral,
  kIntLiteral,
  kDoubleLiteral,

  // Keywords.
  kSelect,
  kInto,
  kAnswer,
  kFrom,
  kWhere,
  kAnd,
  kOr,
  kNot,
  kIn,
  kChoose,
  kCreate,
  kTable,
  kIndex,
  kOn,
  kDrop,
  kInsert,
  kValues,
  kDelete,
  kUpdate,
  kSet,
  kNull,
  kTrue,
  kFalse,
  kBetween,
  kAs,
  kBy,

  // Punctuation and operators.
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kEq,
  kNeq,
  kLt,
  kLte,
  kGt,
  kGte,
  kPlus,
  kMinus,
  kStar,
  kSlash,

  kEndOfInput,
};

/// Human-readable token-kind name for error messages.
const char* TokenTypeToString(TokenType type);

/// One lexical token with source position (1-based) for diagnostics.
struct Token {
  TokenType type = TokenType::kEndOfInput;
  /// Identifier spelling (original case), or decoded string literal.
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;  ///< Byte offset into the statement.

  std::string ToString() const;
};

}  // namespace youtopia

#endif  // YOUTOPIA_SQL_TOKEN_H_
