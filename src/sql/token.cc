#include "sql/token.h"

namespace youtopia {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kStringLiteral:
      return "string literal";
    case TokenType::kIntLiteral:
      return "integer literal";
    case TokenType::kDoubleLiteral:
      return "double literal";
    case TokenType::kSelect:
      return "SELECT";
    case TokenType::kInto:
      return "INTO";
    case TokenType::kAnswer:
      return "ANSWER";
    case TokenType::kFrom:
      return "FROM";
    case TokenType::kWhere:
      return "WHERE";
    case TokenType::kAnd:
      return "AND";
    case TokenType::kOr:
      return "OR";
    case TokenType::kNot:
      return "NOT";
    case TokenType::kIn:
      return "IN";
    case TokenType::kChoose:
      return "CHOOSE";
    case TokenType::kCreate:
      return "CREATE";
    case TokenType::kTable:
      return "TABLE";
    case TokenType::kIndex:
      return "INDEX";
    case TokenType::kOn:
      return "ON";
    case TokenType::kDrop:
      return "DROP";
    case TokenType::kInsert:
      return "INSERT";
    case TokenType::kValues:
      return "VALUES";
    case TokenType::kDelete:
      return "DELETE";
    case TokenType::kUpdate:
      return "UPDATE";
    case TokenType::kSet:
      return "SET";
    case TokenType::kNull:
      return "NULL";
    case TokenType::kTrue:
      return "TRUE";
    case TokenType::kFalse:
      return "FALSE";
    case TokenType::kBetween:
      return "BETWEEN";
    case TokenType::kAs:
      return "AS";
    case TokenType::kBy:
      return "BY";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kComma:
      return ",";
    case TokenType::kDot:
      return ".";
    case TokenType::kSemicolon:
      return ";";
    case TokenType::kEq:
      return "=";
    case TokenType::kNeq:
      return "!=";
    case TokenType::kLt:
      return "<";
    case TokenType::kLte:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGte:
      return ">=";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kStar:
      return "*";
    case TokenType::kSlash:
      return "/";
    case TokenType::kEndOfInput:
      return "end of input";
  }
  return "?";
}

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kIdentifier:
      return text;
    case TokenType::kStringLiteral:
      return "'" + text + "'";
    case TokenType::kIntLiteral:
      return std::to_string(int_value);
    case TokenType::kDoubleLiteral:
      return std::to_string(double_value);
    default:
      return TokenTypeToString(type);
  }
}

}  // namespace youtopia
