#include "sql/table_refs.h"

#include "common/string_util.h"

namespace youtopia {

namespace {

void CollectFromExpr(const Expr& expr, TableRefs* refs);

void CollectFromSelect(const SelectStatement& select, TableRefs* refs) {
  for (const auto& ref : select.from) {
    refs->reads.insert(ToLowerAscii(ref.table));
  }
  for (const auto& e : select.select_list) CollectFromExpr(*e, refs);
  for (const auto& head : select.heads) {
    for (const auto& e : head.exprs) CollectFromExpr(*e, refs);
    // Entangled heads write the answer relation, but entangled queries
    // never reach the regular execution path; record as read for
    // completeness.
    refs->reads.insert(ToLowerAscii(head.answer_relation));
  }
  if (select.where) CollectFromExpr(*select.where, refs);
}

void CollectFromExpr(const Expr& expr, TableRefs* refs) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return;
    case ExprKind::kUnary:
      CollectFromExpr(*As<UnaryExpr>(expr).operand, refs);
      return;
    case ExprKind::kBinary: {
      const auto& b = As<BinaryExpr>(expr);
      CollectFromExpr(*b.left, refs);
      CollectFromExpr(*b.right, refs);
      return;
    }
    case ExprKind::kInSubquery: {
      const auto& in = As<InSubqueryExpr>(expr);
      CollectFromExpr(*in.needle, refs);
      CollectFromSelect(*in.subquery, refs);
      return;
    }
    case ExprKind::kInAnswer: {
      const auto& in = As<InAnswerExpr>(expr);
      for (const auto& e : in.tuple) CollectFromExpr(*e, refs);
      refs->reads.insert(ToLowerAscii(in.relation));
      return;
    }
  }
}

}  // namespace

TableRefs CollectTableRefs(const Statement& stmt) {
  TableRefs refs;
  switch (stmt.kind) {
    case StatementKind::kCreateTable:
    case StatementKind::kCreateIndex:
    case StatementKind::kDropTable:
      // DDL is serialized by the storage engine's own latches; the
      // 2PL layer does not cover schema changes.
      return refs;
    case StatementKind::kInsert:
      refs.writes.insert(
          ToLowerAscii(static_cast<const InsertStatement&>(stmt).table));
      return refs;
    case StatementKind::kDelete: {
      const auto& del = static_cast<const DeleteStatement&>(stmt);
      refs.writes.insert(ToLowerAscii(del.table));
      if (del.where) CollectFromExpr(*del.where, &refs);
      return refs;
    }
    case StatementKind::kUpdate: {
      const auto& update = static_cast<const UpdateStatement&>(stmt);
      refs.writes.insert(ToLowerAscii(update.table));
      for (const auto& [col, e] : update.assignments) {
        CollectFromExpr(*e, &refs);
      }
      if (update.where) CollectFromExpr(*update.where, &refs);
      return refs;
    }
    case StatementKind::kSelect:
      CollectFromSelect(static_cast<const SelectStatement&>(stmt), &refs);
      return refs;
  }
  return refs;
}

}  // namespace youtopia
