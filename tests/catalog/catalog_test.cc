#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace youtopia {
namespace {

Schema TwoColumns() {
  return Schema({{"a", DataType::kInt64, false},
                 {"b", DataType::kString, true}});
}

TEST(CatalogTest, CreateAndGet) {
  Catalog catalog;
  auto id = catalog.CreateTable("Flights", TwoColumns());
  ASSERT_TRUE(id.ok());
  auto info = catalog.GetTable("Flights");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "Flights");
  EXPECT_EQ(info->id, id.value());
  EXPECT_EQ(info->schema.num_columns(), 2u);
}

TEST(CatalogTest, NamesAreCaseInsensitive) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("Flights", TwoColumns()).ok());
  EXPECT_TRUE(catalog.GetTable("FLIGHTS").ok());
  EXPECT_TRUE(catalog.HasTable("flights"));
  auto dup = catalog.CreateTable("fLIGHTs", TwoColumns());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, GetMissingIsNotFound) {
  Catalog catalog;
  EXPECT_EQ(catalog.GetTable("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(catalog.HasTable("nope"));
}

TEST(CatalogTest, EmptyNameRejected) {
  Catalog catalog;
  EXPECT_FALSE(catalog.CreateTable("", TwoColumns()).ok());
}

TEST(CatalogTest, DropTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("T", TwoColumns()).ok());
  EXPECT_TRUE(catalog.DropTable("t").ok());
  EXPECT_FALSE(catalog.HasTable("T"));
  EXPECT_EQ(catalog.DropTable("T").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, GetById) {
  Catalog catalog;
  auto id1 = catalog.CreateTable("A", TwoColumns());
  auto id2 = catalog.CreateTable("B", TwoColumns());
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(id1.value(), id2.value());
  EXPECT_EQ(catalog.GetTable(id2.value())->name, "B");
  EXPECT_FALSE(catalog.GetTable(TableId{999}).ok());
}

TEST(CatalogTest, IndexedColumns) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("T", TwoColumns()).ok());
  EXPECT_TRUE(catalog.AddIndexedColumn("T", 1).ok());
  EXPECT_EQ(catalog.GetTable("T")->indexed_columns,
            std::vector<size_t>{1});
  EXPECT_EQ(catalog.AddIndexedColumn("T", 1).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.AddIndexedColumn("T", 9).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(catalog.AddIndexedColumn("missing", 0).code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, ListTablesSortedByName) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("zeta", TwoColumns()).ok());
  ASSERT_TRUE(catalog.CreateTable("Alpha", TwoColumns()).ok());
  auto tables = catalog.ListTables();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0].name, "Alpha");
  EXPECT_EQ(tables[1].name, "zeta");
}

}  // namespace
}  // namespace youtopia
