#include "sql/table_refs.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace youtopia {
namespace {

TableRefs Collect(const std::string& sql) {
  auto stmt = Parser::ParseStatement(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  return CollectTableRefs(*stmt.value());
}

TEST(TableRefsTest, SimpleSelectReads) {
  auto refs = Collect("SELECT fno FROM Flights WHERE price < 100");
  EXPECT_EQ(refs.reads, (std::set<std::string>{"flights"}));
  EXPECT_TRUE(refs.writes.empty());
}

TEST(TableRefsTest, JoinReadsBothTables) {
  auto refs = Collect("SELECT f.fno FROM Flights f, Airlines a "
                      "WHERE f.fno = a.fno");
  EXPECT_EQ(refs.reads, (std::set<std::string>{"airlines", "flights"}));
}

TEST(TableRefsTest, SubqueryTablesIncluded) {
  auto refs = Collect("SELECT fno FROM Flights WHERE fno IN "
                      "(SELECT fno FROM Cheap WHERE price < 100)");
  EXPECT_EQ(refs.reads, (std::set<std::string>{"cheap", "flights"}));
}

TEST(TableRefsTest, InAnswerRelationIncluded) {
  auto refs = Collect("SELECT fno FROM Flights WHERE "
                      "('K', fno) IN ANSWER Reservation");
  EXPECT_EQ(refs.reads, (std::set<std::string>{"flights", "reservation"}));
}

TEST(TableRefsTest, DmlTargetsAreWrites) {
  auto insert = Collect("INSERT INTO Flights VALUES (1, 'Paris')");
  EXPECT_EQ(insert.writes, (std::set<std::string>{"flights"}));
  EXPECT_TRUE(insert.reads.empty());

  auto del = Collect("DELETE FROM Flights WHERE fno IN "
                     "(SELECT fno FROM Old)");
  EXPECT_EQ(del.writes, (std::set<std::string>{"flights"}));
  EXPECT_EQ(del.reads, (std::set<std::string>{"old"}));

  auto update = Collect("UPDATE Flights SET price = price + 1 "
                        "WHERE fno IN (SELECT fno FROM Old)");
  EXPECT_EQ(update.writes, (std::set<std::string>{"flights"}));
  EXPECT_EQ(update.reads, (std::set<std::string>{"old"}));
}

TEST(TableRefsTest, DdlTakesNoLocks) {
  EXPECT_TRUE(Collect("CREATE TABLE t (x INT)").reads.empty());
  EXPECT_TRUE(Collect("CREATE TABLE t (x INT)").writes.empty());
  EXPECT_TRUE(Collect("DROP TABLE t").writes.empty());
  EXPECT_TRUE(Collect("CREATE INDEX ON t (x)").writes.empty());
}

TEST(TableRefsTest, NamesLowerCased) {
  auto refs = Collect("SELECT x FROM FLIGHTS");
  EXPECT_EQ(refs.reads, (std::set<std::string>{"flights"}));
}

TEST(TableRefsTest, NestedExpressionsWalked) {
  auto refs = Collect(
      "SELECT x FROM A WHERE NOT (x IN (SELECT y FROM B) OR "
      "(x, 1) IN ANSWER C) AND -x < 5");
  EXPECT_EQ(refs.reads, (std::set<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace youtopia
