#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace youtopia {
namespace {

std::vector<Token> Lex(const std::string& sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return tokens.ok() ? tokens.TakeValue() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInput) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEndOfInput);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("select SELECT SeLeCt into answer choose");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].type, TokenType::kSelect);
  EXPECT_EQ(tokens[1].type, TokenType::kSelect);
  EXPECT_EQ(tokens[2].type, TokenType::kSelect);
  EXPECT_EQ(tokens[3].type, TokenType::kInto);
  EXPECT_EQ(tokens[4].type, TokenType::kAnswer);
  EXPECT_EQ(tokens[5].type, TokenType::kChoose);
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Lex("Reservation fno _private x9");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Reservation");
  EXPECT_EQ(tokens[1].text, "fno");
  EXPECT_EQ(tokens[2].text, "_private");
  EXPECT_EQ(tokens[3].text, "x9");
}

TEST(LexerTest, IntLiterals) {
  auto tokens = Lex("0 42 9999999999");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 9999999999LL);
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
}

TEST(LexerTest, DoubleLiterals) {
  auto tokens = Lex("1.5 0.25 2e3 1.5e-2");
  EXPECT_EQ(tokens[0].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 1.5);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.015);
}

TEST(LexerTest, DoubleLiteralOverflowRejected) {
  // Out-of-range double literals must fail like out-of-range ints do,
  // not silently lex as inf.
  Lexer overflow("1e999");
  auto tokens = overflow.Tokenize();
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);

  Lexer big_mantissa("123456789.5e400");
  EXPECT_FALSE(big_mantissa.Tokenize().ok());
}

TEST(LexerTest, DoubleLiteralUnderflowRejected) {
  // Total underflow (rounds to zero) is out of range too.
  Lexer underflow("1e-999");
  auto tokens = underflow.Tokenize();
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, ExtremeButRepresentableDoublesLex) {
  // Near the edges of the representable range, including a subnormal
  // (subnormals set ERANGE in some libcs but are representable — dumped
  // subnormal columns must stay lexable).
  auto tokens = Lex("1.7976931348623157e308 2.2250738585072014e-308 5e-324");
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 1.7976931348623157e308);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 2.2250738585072014e-308);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 5e-324);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Lex("'Paris' 'O''Hare' ''");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "Paris");
  EXPECT_EQ(tokens[1].text, "O'Hare");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  Lexer lexer("'oops");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Lex("( ) , . ; = != <> < <= > >= + - * /");
  std::vector<TokenType> expected = {
      TokenType::kLParen, TokenType::kRParen, TokenType::kComma,
      TokenType::kDot,    TokenType::kSemicolon, TokenType::kEq,
      TokenType::kNeq,    TokenType::kNeq,    TokenType::kLt,
      TokenType::kLte,    TokenType::kGt,     TokenType::kGte,
      TokenType::kPlus,   TokenType::kMinus,  TokenType::kStar,
      TokenType::kSlash,  TokenType::kEndOfInput};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "at " << i;
  }
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Lex("SELECT -- this is a comment\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kSelect);
  EXPECT_EQ(tokens[1].type, TokenType::kIntLiteral);
}

TEST(LexerTest, MinusVersusNegativeNumber) {
  // The lexer emits '-' and the number separately; the parser folds.
  auto tokens = Lex("5-3");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[1].type, TokenType::kMinus);
  EXPECT_EQ(tokens[2].type, TokenType::kIntLiteral);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  Lexer lexer("SELECT @");
  EXPECT_FALSE(lexer.Tokenize().ok());
  Lexer bang("a ! b");
  EXPECT_FALSE(bang.Tokenize().ok());
}

TEST(LexerTest, OffsetsTrackPositions) {
  auto tokens = Lex("SELECT fno");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 7u);
}

TEST(LexerTest, PaperExampleTokenizes) {
  auto tokens = Lex(
      "SELECT 'Kramer', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
      "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1");
  EXPECT_GT(tokens.size(), 20u);
  EXPECT_EQ(tokens.back().type, TokenType::kEndOfInput);
}

}  // namespace
}  // namespace youtopia
