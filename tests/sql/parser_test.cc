#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/unparser.h"

namespace youtopia {
namespace {

StatementPtr Parse(const std::string& sql) {
  auto stmt = Parser::ParseStatement(sql);
  EXPECT_TRUE(stmt.ok()) << sql << " -> " << stmt.status();
  return stmt.ok() ? stmt.TakeValue() : nullptr;
}

const SelectStatement& AsSelect(const StatementPtr& stmt) {
  return static_cast<const SelectStatement&>(*stmt);
}

TEST(ParserTest, CreateTable) {
  auto stmt = Parse("CREATE TABLE Flights (fno INT NOT NULL, dest TEXT)");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->kind, StatementKind::kCreateTable);
  const auto& create = static_cast<const CreateTableStatement&>(*stmt);
  EXPECT_EQ(create.table, "Flights");
  ASSERT_EQ(create.columns.size(), 2u);
  EXPECT_EQ(create.columns[0].name, "fno");
  EXPECT_TRUE(create.columns[0].not_null);
  EXPECT_FALSE(create.columns[1].not_null);
}

TEST(ParserTest, CreateIndex) {
  auto stmt = Parse("CREATE INDEX ON Flights (dest)");
  ASSERT_EQ(stmt->kind, StatementKind::kCreateIndex);
  const auto& create = static_cast<const CreateIndexStatement&>(*stmt);
  EXPECT_EQ(create.table, "Flights");
  EXPECT_EQ(create.column, "dest");
}

TEST(ParserTest, DropTable) {
  auto stmt = Parse("DROP TABLE Flights");
  ASSERT_EQ(stmt->kind, StatementKind::kDropTable);
  EXPECT_EQ(static_cast<const DropTableStatement&>(*stmt).table, "Flights");
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt = Parse("INSERT INTO Flights VALUES (122, 'Paris'), (136, 'Rome')");
  ASSERT_EQ(stmt->kind, StatementKind::kInsert);
  const auto& insert = static_cast<const InsertStatement&>(*stmt);
  EXPECT_EQ(insert.table, "Flights");
  ASSERT_EQ(insert.rows.size(), 2u);
  EXPECT_EQ(insert.rows[0].size(), 2u);
}

TEST(ParserTest, DeleteWithWhere) {
  auto stmt = Parse("DELETE FROM Flights WHERE fno = 122");
  ASSERT_EQ(stmt->kind, StatementKind::kDelete);
  EXPECT_NE(static_cast<const DeleteStatement&>(*stmt).where, nullptr);
  auto all = Parse("DELETE FROM Flights");
  EXPECT_EQ(static_cast<const DeleteStatement&>(*all).where, nullptr);
}

TEST(ParserTest, Update) {
  auto stmt = Parse("UPDATE Flights SET price = price + 10, dest = 'Rome' "
                    "WHERE fno = 1");
  ASSERT_EQ(stmt->kind, StatementKind::kUpdate);
  const auto& update = static_cast<const UpdateStatement&>(*stmt);
  ASSERT_EQ(update.assignments.size(), 2u);
  EXPECT_EQ(update.assignments[0].first, "price");
  EXPECT_NE(update.where, nullptr);
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT fno, dest FROM Flights WHERE price <= 500");
  const auto& select = AsSelect(stmt);
  EXPECT_FALSE(select.IsEntangled());
  EXPECT_EQ(select.select_list.size(), 2u);
  ASSERT_EQ(select.from.size(), 1u);
  EXPECT_EQ(select.from[0].table, "Flights");
}

TEST(ParserTest, SelectStar) {
  auto stmt = Parse("SELECT * FROM Flights");
  const auto& select = AsSelect(stmt);
  ASSERT_EQ(select.select_list.size(), 1u);
  EXPECT_EQ(As<ColumnRefExpr>(*select.select_list[0]).column, "*");
}

TEST(ParserTest, SelectWithAliasesAndJoin) {
  auto stmt = Parse(
      "SELECT f.fno, a.airline FROM Flights f, Airlines AS a "
      "WHERE f.fno = a.fno");
  const auto& select = AsSelect(stmt);
  ASSERT_EQ(select.from.size(), 2u);
  EXPECT_EQ(select.from[0].alias, "f");
  EXPECT_EQ(select.from[1].alias, "a");
  const auto& col = As<ColumnRefExpr>(*select.select_list[0]);
  EXPECT_EQ(col.qualifier, "f");
  EXPECT_EQ(col.column, "fno");
}

TEST(ParserTest, PaperEntangledQuery) {
  auto stmt = Parse(
      "SELECT 'Kramer', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
      "AND ('Jerry', fno) IN ANSWER Reservation "
      "CHOOSE 1");
  const auto& select = AsSelect(stmt);
  ASSERT_TRUE(select.IsEntangled());
  ASSERT_EQ(select.heads.size(), 1u);
  EXPECT_EQ(select.heads[0].answer_relation, "Reservation");
  EXPECT_EQ(select.heads[0].exprs.size(), 2u);
  EXPECT_EQ(select.choose, 1);
  ASSERT_NE(select.where, nullptr);
}

TEST(ParserTest, MultiHeadEntangledQuery) {
  auto stmt = Parse(
      "SELECT 'J', fno INTO ANSWER Reservation, "
      "'J', hid INTO ANSWER HotelReservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') "
      "AND hid IN (SELECT hid FROM Hotels WHERE city='Paris') CHOOSE 1");
  const auto& select = AsSelect(stmt);
  ASSERT_EQ(select.heads.size(), 2u);
  EXPECT_EQ(select.heads[0].answer_relation, "Reservation");
  EXPECT_EQ(select.heads[1].answer_relation, "HotelReservation");
}

TEST(ParserTest, PaperFormIntoAnswerList) {
  // Grammar of §2.1: INTO ANSWER tbl [, ANSWER tbl]... duplicates the
  // same select list into several answer relations.
  auto stmt = Parse("SELECT 'J', x INTO ANSWER A, ANSWER B WHERE x IN "
                    "(SELECT c FROM T)");
  const auto& select = AsSelect(stmt);
  ASSERT_EQ(select.heads.size(), 2u);
  EXPECT_EQ(select.heads[0].answer_relation, "A");
  EXPECT_EQ(select.heads[1].answer_relation, "B");
  EXPECT_EQ(select.heads[0].exprs.size(), 2u);
  EXPECT_EQ(select.heads[1].exprs.size(), 2u);
}

TEST(ParserTest, TupleInAnswer) {
  auto stmt = Parse("SELECT x INTO ANSWER R WHERE ('a', x, x + 1) IN ANSWER R");
  const auto& select = AsSelect(stmt);
  ASSERT_NE(select.where, nullptr);
  ASSERT_EQ(select.where->kind, ExprKind::kInAnswer);
  const auto& in = As<InAnswerExpr>(*select.where);
  EXPECT_EQ(in.tuple.size(), 3u);
  EXPECT_EQ(in.relation, "R");
  EXPECT_FALSE(in.negated);
}

TEST(ParserTest, NotInAnswer) {
  auto stmt = Parse("SELECT x INTO ANSWER R WHERE ('a', x) NOT IN ANSWER R");
  const auto& in = As<InAnswerExpr>(*AsSelect(stmt).where);
  EXPECT_TRUE(in.negated);
}

TEST(ParserTest, InLiteralListDesugarsToDisjunction) {
  auto stmt = Parse("SELECT * FROM T WHERE dest IN ('Paris', 'Rome')");
  const auto& where = *AsSelect(stmt).where;
  ASSERT_EQ(where.kind, ExprKind::kBinary);
  EXPECT_EQ(As<BinaryExpr>(where).op, BinaryOp::kOr);
}

TEST(ParserTest, BetweenDesugarsToConjunction) {
  auto stmt = Parse("SELECT * FROM T WHERE price BETWEEN 100 AND 200");
  const auto& where = *AsSelect(stmt).where;
  ASSERT_EQ(where.kind, ExprKind::kBinary);
  EXPECT_EQ(As<BinaryExpr>(where).op, BinaryOp::kAnd);
}

TEST(ParserTest, NotBetween) {
  auto stmt = Parse("SELECT * FROM T WHERE price NOT BETWEEN 100 AND 200");
  EXPECT_EQ(AsSelect(stmt).where->kind, ExprKind::kUnary);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = Parse("SELECT 1 + 2 * 3");
  const auto& e = As<BinaryExpr>(*AsSelect(stmt).select_list[0]);
  EXPECT_EQ(e.op, BinaryOp::kAdd);
  EXPECT_EQ(As<BinaryExpr>(*e.right).op, BinaryOp::kMul);
}

TEST(ParserTest, AndBindsTighterThanOr) {
  auto stmt = Parse("SELECT * FROM T WHERE a = 1 OR b = 2 AND c = 3");
  const auto& e = As<BinaryExpr>(*AsSelect(stmt).where);
  EXPECT_EQ(e.op, BinaryOp::kOr);
  EXPECT_EQ(As<BinaryExpr>(*e.right).op, BinaryOp::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = Parse("SELECT (1 + 2) * 3");
  const auto& e = As<BinaryExpr>(*AsSelect(stmt).select_list[0]);
  EXPECT_EQ(e.op, BinaryOp::kMul);
}

TEST(ParserTest, UnaryMinusAndNot) {
  auto stmt = Parse("SELECT -x FROM T WHERE NOT a = 1");
  EXPECT_EQ(AsSelect(stmt).select_list[0]->kind, ExprKind::kUnary);
  EXPECT_EQ(AsSelect(stmt).where->kind, ExprKind::kUnary);
}

TEST(ParserTest, ChooseMustBePositive) {
  EXPECT_FALSE(Parser::ParseStatement("SELECT x INTO ANSWER R CHOOSE 0").ok());
}

TEST(ParserTest, ErrorsOnGarbage) {
  EXPECT_FALSE(Parser::ParseStatement("FROBNICATE").ok());
  EXPECT_FALSE(Parser::ParseStatement("SELECT").ok());
  EXPECT_FALSE(Parser::ParseStatement("SELECT 1 extra garbage").ok());
  EXPECT_FALSE(Parser::ParseStatement("CREATE TABLE (x INT)").ok());
  EXPECT_FALSE(Parser::ParseStatement("INSERT INTO t VALUES 1").ok());
  EXPECT_FALSE(Parser::ParseStatement("SELECT (1, 2) FROM t").ok());
}

TEST(ParserTest, EntangledTrailingExprsRejected) {
  EXPECT_FALSE(
      Parser::ParseStatement("SELECT x INTO ANSWER R, y WHERE x = y").ok());
}

TEST(ParserTest, ParseScriptSplitsOnSemicolons) {
  auto stmts = Parser::ParseScript(
      "CREATE TABLE t (x INT); INSERT INTO t VALUES (1);; "
      "SELECT * FROM t;");
  ASSERT_TRUE(stmts.ok()) << stmts.status();
  EXPECT_EQ(stmts->size(), 3u);
}

TEST(ParserTest, ParseScriptRejectsMissingSemicolon) {
  EXPECT_FALSE(Parser::ParseScript("SELECT 1 SELECT 2").ok());
}

TEST(ParserTest, ParseScriptPartsCarryEachStatementsOwnText) {
  auto parts = Parser::ParseScriptParts(
      "  CREATE TABLE t (x INT) ;INSERT INTO t VALUES (1);\n\n"
      "SELECT * FROM t");
  ASSERT_TRUE(parts.ok()) << parts.status();
  ASSERT_EQ(parts->size(), 3u);
  EXPECT_EQ((*parts)[0].text, "CREATE TABLE t (x INT)");
  EXPECT_EQ((*parts)[1].text, "INSERT INTO t VALUES (1)");
  EXPECT_EQ((*parts)[2].text, "SELECT * FROM t");
  // The slices re-parse to the same statement kinds.
  for (const auto& part : *parts) {
    auto reparsed = Parser::ParseStatement(part.text);
    ASSERT_TRUE(reparsed.ok()) << part.text;
    EXPECT_EQ((*reparsed)->kind, part.stmt->kind);
  }
}

TEST(ParserTest, ParseScriptPartsKeepLiteralSemicolons) {
  auto parts =
      Parser::ParseScriptParts("INSERT INTO t VALUES ('a;b'); SELECT 1;");
  ASSERT_TRUE(parts.ok()) << parts.status();
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_EQ((*parts)[0].text, "INSERT INTO t VALUES ('a;b')");
  EXPECT_EQ((*parts)[1].text, "SELECT 1");
}

TEST(ParserTest, ParseScriptPartsIsAllOrNothing) {
  EXPECT_FALSE(
      Parser::ParseScriptParts("SELECT 1; THIS IS NOT SQL;").ok());
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(Parser::ParseStatement("SELECT 1;").ok());
}

TEST(ParserTest, NestedSubqueryInEntangledWhere) {
  auto stmt = Parse(
      "SELECT 'u', seat INTO ANSWER S "
      "WHERE seat IN (SELECT seat FROM Seats WHERE fno = fno) "
      "AND ('v', seat + 1) IN ANSWER S");
  const auto& select = AsSelect(stmt);
  EXPECT_TRUE(select.IsEntangled());
}

TEST(ParserTest, CloneRoundTripsThroughUnparser) {
  auto stmt = Parse(
      "SELECT 'Kramer', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
      "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1");
  const auto& select = AsSelect(stmt);
  auto clone = select.Clone();
  EXPECT_EQ(SelectToSql(select), SelectToSql(*clone));
}

}  // namespace
}  // namespace youtopia
