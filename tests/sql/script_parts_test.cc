// Adversarial coverage for Parser::ParseScriptParts offset slicing —
// the same inputs fuzz_parser seeds with (design decision #11). The
// invariant mirrors the fuzz target's P3/P4: every accepted script
// splits into parts whose sliced text reparses to the same statement,
// and rejection is all-or-nothing.

#include "sql/parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sql/unparser.h"

namespace youtopia {
namespace {

struct ScriptCase {
  const char* name;
  const char* script;
  /// Statement count when the script must parse; -1 when it must be
  /// rejected.
  int expect_parts;
};

const ScriptCase kCases[] = {
    // Comments containing ';' must not terminate a statement.
    {"semicolon_in_leading_comment",
     "-- setup; all of it\nSELECT 1; SELECT 2", 2},
    {"semicolon_in_interior_comment",
     "SELECT -- not a terminator ;\n 1; SELECT 2", 2},
    {"comment_only_script", "-- nothing; here\n", 0},
    {"comment_after_last_statement", "SELECT 1; -- tail; comment", 1},
    {"comment_between_statements",
     "SELECT 1;\n-- between; them\nSELECT 2", 2},
    // ';' inside string literals is data, not a terminator.
    {"semicolon_in_string", "INSERT INTO t VALUES ('a;b'); SELECT 1", 2},
    {"quoted_quote_then_semicolon",
     "INSERT INTO t VALUES ('it''s;fine'); SELECT 1", 2},
    // Empty statements: stray semicolons collapse, never yield parts.
    {"only_semicolons", ";;;", 0},
    {"empty_between_statements", "SELECT 1;;;SELECT 2;", 2},
    {"leading_semicolons", ";;SELECT 1", 1},
    {"trailing_semicolons", "SELECT 1;;", 1},
    {"whitespace_only", "  \n\t ", 0},
    {"empty_script", "", 0},
    // Unterminated strings reject the whole script (all-or-nothing),
    // wherever they appear.
    {"unterminated_string_first", "SELECT 'oops; SELECT 1", -1},
    {"unterminated_string_last", "SELECT 1; SELECT 'oops", -1},
    {"unterminated_after_escape", "SELECT 'a''", -1},
    // A syntax error in any statement rejects everything before it too.
    {"error_in_second_statement", "SELECT 1; SELECT FROM FROM", -1},
    {"missing_separator", "SELECT 1 SELECT 2", -1},
    // No trailing ';' on the last statement.
    {"no_trailing_semicolon", "SELECT 1; SELECT 2", 2},
    {"statement_ends_at_eof_after_comment", "SELECT 1 -- tail\n", 1},
};

TEST(ScriptPartsTest, AdversarialSlicing) {
  for (const ScriptCase& c : kCases) {
    SCOPED_TRACE(c.name);
    auto parts = Parser::ParseScriptParts(c.script);
    auto script = Parser::ParseScript(c.script);
    // ParseScript and ParseScriptParts must agree on accept/reject.
    EXPECT_EQ(parts.ok(), script.ok());
    if (c.expect_parts < 0) {
      EXPECT_FALSE(parts.ok());
      continue;
    }
    ASSERT_TRUE(parts.ok()) << parts.status();
    EXPECT_EQ(parts->size(), static_cast<size_t>(c.expect_parts));
    ASSERT_TRUE(script.ok());
    EXPECT_EQ(script->size(), parts->size());
    for (const Parser::ScriptPart& part : *parts) {
      // The sliced text is the plan-cache key for per-step prepare: it
      // must be nonempty, reparse standalone, and mean the same thing.
      EXPECT_FALSE(part.text.empty());
      auto reparsed = Parser::ParseStatement(part.text);
      ASSERT_TRUE(reparsed.ok())
          << "slice does not reparse: \"" << part.text << "\": "
          << reparsed.status();
      EXPECT_EQ(StatementToSql(**reparsed), StatementToSql(*part.stmt))
          << "slice drifts from its statement: \"" << part.text << "\"";
    }
  }
}

TEST(ScriptPartsTest, SlicedTextExcludesTerminatorAndNeighbors) {
  auto parts = Parser::ParseScriptParts(
      "  SELECT 1 ;\n\tINSERT INTO t VALUES ('x')  ;");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_EQ((*parts)[0].text, "SELECT 1");
  EXPECT_EQ((*parts)[1].text, "INSERT INTO t VALUES ('x')");
}

TEST(ScriptPartsTest, InteriorCommentStaysInsideItsOwnSlice) {
  auto parts = Parser::ParseScriptParts(
      "SELECT -- pick; the\n 1; SELECT 2");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 2u);
  // The first slice carries its interior comment (it reparses fine);
  // the second must not have absorbed any of the first.
  EXPECT_EQ((*parts)[1].text, "SELECT 2");
  auto reparsed = Parser::ParseStatement((*parts)[0].text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(StatementToSql(**reparsed), "SELECT 1");
}

}  // namespace
}  // namespace youtopia
