#include "sql/unparser.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace youtopia {
namespace {

/// Parses, unparses, re-parses, unparses again; both renderings must
/// agree (idempotent round trip).
void ExpectRoundTrip(const std::string& sql) {
  auto stmt = Parser::ParseStatement(sql);
  ASSERT_TRUE(stmt.ok()) << sql << " -> " << stmt.status();
  const std::string rendered = StatementToSql(*stmt.value());
  auto reparsed = Parser::ParseStatement(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered << " -> " << reparsed.status();
  EXPECT_EQ(StatementToSql(*reparsed.value()), rendered) << "input: " << sql;
}

TEST(UnparserTest, RoundTripsCreateTable) {
  ExpectRoundTrip("CREATE TABLE Flights (fno INT NOT NULL, dest TEXT)");
}

TEST(UnparserTest, RoundTripsCreateIndex) {
  ExpectRoundTrip("CREATE INDEX ON Flights (dest)");
}

TEST(UnparserTest, RoundTripsDrop) { ExpectRoundTrip("DROP TABLE t"); }

TEST(UnparserTest, RoundTripsInsert) {
  ExpectRoundTrip("INSERT INTO Flights VALUES (122, 'Paris'), (136, 'Rome')");
}

TEST(UnparserTest, RoundTripsDeleteAndUpdate) {
  ExpectRoundTrip("DELETE FROM t WHERE x = 1");
  ExpectRoundTrip("UPDATE t SET a = 1, b = 'x' WHERE c < 3");
}

TEST(UnparserTest, RoundTripsSimpleSelect) {
  ExpectRoundTrip("SELECT fno, dest FROM Flights WHERE price <= 500");
  ExpectRoundTrip("SELECT * FROM Flights");
  ExpectRoundTrip("SELECT f.fno FROM Flights f, Airlines a WHERE f.fno = a.fno");
}

TEST(UnparserTest, RoundTripsPaperQuery) {
  ExpectRoundTrip(
      "SELECT 'Kramer', fno INTO ANSWER Reservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
      "AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1");
}

TEST(UnparserTest, RoundTripsMultiHead) {
  ExpectRoundTrip(
      "SELECT 'J', fno INTO ANSWER R, 'J', hid INTO ANSWER H "
      "WHERE fno IN (SELECT fno FROM Flights) AND "
      "hid IN (SELECT hid FROM Hotels) CHOOSE 1");
}

TEST(UnparserTest, RoundTripsArithmeticAndLogic) {
  ExpectRoundTrip("SELECT 1 + 2 * 3 - 4 / 2");
  ExpectRoundTrip("SELECT * FROM t WHERE NOT (a = 1 OR b = 2) AND c != 3");
  ExpectRoundTrip("SELECT -x FROM t");
}

TEST(UnparserTest, RoundTripsAdjacentSeatQuery) {
  ExpectRoundTrip(
      "SELECT 'u', fno, seat INTO ANSWER SeatReservation "
      "WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') "
      "AND seat IN (SELECT seat FROM Seats WHERE fno = fno) "
      "AND ('v', fno, seat + 1) IN ANSWER SeatReservation CHOOSE 1");
}

TEST(UnparserTest, ExprToName) {
  auto stmt = Parser::ParseStatement("SELECT fno, price + 1 FROM t");
  ASSERT_TRUE(stmt.ok());
  const auto& select = static_cast<const SelectStatement&>(*stmt.value());
  EXPECT_EQ(ExprToName(select.select_list[0].get()), "fno");
  EXPECT_EQ(ExprToName(select.select_list[1].get()), "price + 1");
}

TEST(UnparserTest, StringLiteralsEscaped) {
  auto stmt = Parser::ParseStatement("SELECT 'O''Hare'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(StatementToSql(*stmt.value()), "SELECT 'O''Hare'");
}

TEST(UnparserTest, NullTrueFalseLiterals) {
  ExpectRoundTrip("SELECT NULL, TRUE, FALSE");
}

}  // namespace
}  // namespace youtopia
