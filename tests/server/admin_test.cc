#include "server/admin.h"

#include <gtest/gtest.h>

#include "travel/travel_schema.h"

namespace youtopia {
namespace {

TEST(AdminTest, SnapshotListsTablesWithRowCounts) {
  Youtopia db;
  ASSERT_TRUE(travel::SetupFigure1(&db).ok());
  auto snapshot = TakeAdminSnapshot(db);
  ASSERT_EQ(snapshot.tables.size(), 3u);  // Airlines, Flights, Reservation
  bool saw_flights = false;
  for (const auto& t : snapshot.tables) {
    if (t.name == "Flights") {
      saw_flights = true;
      EXPECT_EQ(t.rows, 4u);
      EXPECT_EQ(t.indexed_columns, std::vector<std::string>{"dest"});
    }
  }
  EXPECT_TRUE(saw_flights);
}

TEST(AdminTest, SnapshotShowsPendingQueriesAndGraph) {
  Youtopia db;
  ASSERT_TRUE(travel::SetupFigure1(&db).ok());
  ASSERT_TRUE(db.Submit(
                    "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno "
                    "IN (SELECT fno FROM Flights WHERE dest='Paris') AND "
                    "('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
                    "Kramer")
                  .ok());
  auto snapshot = TakeAdminSnapshot(db);
  ASSERT_EQ(snapshot.pending.size(), 1u);
  EXPECT_EQ(snapshot.pending[0].owner, "Kramer");
  EXPECT_EQ(snapshot.stats.submitted, 1u);
  EXPECT_NE(snapshot.match_graph.find("1 pending queries"),
            std::string::npos);

  const std::string rendered = snapshot.ToString();
  EXPECT_NE(rendered.find("Youtopia system state"), std::string::npos);
  EXPECT_NE(rendered.find("Pending entangled queries"), std::string::npos);
  EXPECT_NE(rendered.find("Kramer"), std::string::npos);
  EXPECT_NE(rendered.find("head:"), std::string::npos);
}

TEST(AdminTest, SnapshotReportsPerShardStats) {
  YoutopiaConfig config;
  config.coordinator.num_shards = 4;
  Youtopia db(config);
  ASSERT_TRUE(travel::SetupFigure1(&db).ok());
  ASSERT_TRUE(db.Submit(
                    "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno "
                    "IN (SELECT fno FROM Flights WHERE dest='Paris') AND "
                    "('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
                    "Kramer")
                  .ok());
  auto snapshot = TakeAdminSnapshot(db);
  ASSERT_EQ(snapshot.shards.size(), 4u);
  size_t submitted = 0;
  size_t pending = 0;
  for (const auto& shard : snapshot.shards) {
    submitted += shard.stats.submitted;
    pending += shard.pending;
  }
  EXPECT_EQ(submitted, snapshot.stats.submitted);
  EXPECT_EQ(pending, 1u);
  EXPECT_EQ(snapshot.stats.shard_rounds, 1u);

  const std::string rendered = snapshot.ToString();
  EXPECT_NE(rendered.find("Coordinator shards"), std::string::npos);
  EXPECT_NE(rendered.find("shard 0:"), std::string::npos);
  EXPECT_NE(rendered.find("shard 3:"), std::string::npos);
  EXPECT_NE(rendered.find("shard_rounds=1"), std::string::npos);
}

TEST(AdminTest, EmptySystemSnapshot) {
  Youtopia db;
  auto snapshot = TakeAdminSnapshot(db);
  EXPECT_TRUE(snapshot.tables.empty());
  EXPECT_TRUE(snapshot.pending.empty());
  EXPECT_NE(snapshot.ToString().find("(none)"), std::string::npos);
}

}  // namespace
}  // namespace youtopia
