#include "server/plan_cache.h"

#include <gtest/gtest.h>

#include "server/admin.h"
#include "server/youtopia.h"

namespace youtopia {
namespace {

TEST(PlanCacheKeyTest, CollapsesWhitespaceOutsideLiterals) {
  EXPECT_EQ(PlanCache::NormalizeKey("SELECT  x\n FROM\tt"),
            "SELECT x FROM t");
  EXPECT_EQ(PlanCache::NormalizeKey("  SELECT x FROM t  "),
            "SELECT x FROM t");
  // Literal contents are significant, including whitespace and the ''
  // escape.
  EXPECT_EQ(PlanCache::NormalizeKey("SELECT 'a  b' FROM t"),
            "SELECT 'a  b' FROM t");
  EXPECT_EQ(PlanCache::NormalizeKey("SELECT 'it''s  x'   FROM t"),
            "SELECT 'it''s  x' FROM t");
  // One trailing ';' is syntax-neutral for a single statement.
  EXPECT_EQ(PlanCache::NormalizeKey("SELECT x FROM t;"),
            "SELECT x FROM t");
  EXPECT_EQ(PlanCache::NormalizeKey("SELECT x FROM t ; "),
            "SELECT x FROM t");
  // Keyword case is NOT folded (the key must stay cheaper than a lex).
  EXPECT_NE(PlanCache::NormalizeKey("select x from t"),
            PlanCache::NormalizeKey("SELECT x FROM t"));
}

TEST(PlanCacheTest, HitReturnsTheSameSharedPlan) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  auto first = db.Prepare("SELECT x FROM t WHERE x > 1");
  ASSERT_TRUE(first.ok());
  auto second = db.Prepare("SELECT x FROM t WHERE x > 1");
  ASSERT_TRUE(second.ok());
  // Same immutable object, not an equivalent copy.
  EXPECT_EQ(first->get(), second->get());
  const PlanCache::Stats stats = db.plan_cache().stats();
  EXPECT_GE(stats.hits, 1u);
}

TEST(PlanCacheTest, WhitespaceVariantsShareOneEntry) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  auto a = db.Prepare("SELECT x FROM t");
  auto b = db.Prepare("  SELECT   x\nFROM t ;");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());
}

TEST(PlanCacheTest, CapacityZeroDisablesCaching) {
  YoutopiaConfig config;
  config.plan_cache.capacity = 0;
  Youtopia db(config);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  auto first = db.Prepare("SELECT x FROM t");
  auto second = db.Prepare("SELECT x FROM t");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->get(), second->get());
  const PlanCache::Stats stats = db.plan_cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.size, 0u);
  // Execution still works without the cache.
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  auto rows = db.Execute("SELECT x FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);
}

TEST(PlanCacheTest, LruEvictsTheColdestEntry) {
  YoutopiaConfig config;
  config.plan_cache.capacity = 2;
  Youtopia db(config);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  db.plan_cache().Clear();

  auto a = db.Prepare("SELECT x FROM t WHERE x = 1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(db.Prepare("SELECT x FROM t WHERE x = 2").ok());
  // Touch the first entry so the second is now the LRU victim.
  ASSERT_TRUE(db.Prepare("SELECT x FROM t WHERE x = 1").ok());
  ASSERT_TRUE(db.Prepare("SELECT x FROM t WHERE x = 3").ok());

  const PlanCache::Stats stats = db.plan_cache().stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_GE(stats.evictions, 1u);
  // The hot entry survived the eviction.
  auto again = db.Prepare("SELECT x FROM t WHERE x = 1");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(a->get(), again->get());
}

TEST(PlanCacheTest, CatalogVersionBumpsOnEveryDdl) {
  Youtopia db;
  const uint64_t v0 = db.storage().catalog().version();
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  const uint64_t v1 = db.storage().catalog().version();
  EXPECT_GT(v1, v0);
  ASSERT_TRUE(db.Execute("CREATE INDEX ON t (x)").ok());
  const uint64_t v2 = db.storage().catalog().version();
  EXPECT_GT(v2, v1);
  ASSERT_TRUE(db.Execute("DROP TABLE t").ok());
  EXPECT_GT(db.storage().catalog().version(), v2);
}

TEST(PlanCacheTest, DdlOnOneTableLeavesOtherTablesPlansWarm) {
  // Relation-granular invalidation: the freshness gate compares
  // per-table version stamps, so DDL on table A must not discard table
  // B's cached plan — B's next Prepare is a hit on the very same
  // shared object.
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE a (x INT)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE b (y INT)").ok());
  auto warm = db.Prepare("SELECT y FROM b");
  ASSERT_TRUE(warm.ok());
  const size_t invalidations_before = db.plan_cache().stats().invalidations;

  ASSERT_TRUE(db.Execute("CREATE INDEX ON a (x)").ok());
  ASSERT_TRUE(db.Execute("DROP TABLE a").ok());

  auto still_warm = db.Prepare("SELECT y FROM b");
  ASSERT_TRUE(still_warm.ok());
  EXPECT_EQ(warm->get(), still_warm->get());
  EXPECT_EQ(db.plan_cache().stats().invalidations, invalidations_before);

  // And a plan over the churned table itself does go stale.
  ASSERT_TRUE(db.Execute("CREATE TABLE a (x INT, z TEXT)").ok());
  auto a_plan = db.Prepare("SELECT x FROM a");
  ASSERT_TRUE(a_plan.ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX ON a (x)").ok());
  auto a_replanned = db.Prepare("SELECT x FROM a");
  ASSERT_TRUE(a_replanned.ok());
  EXPECT_NE(a_plan->get(), a_replanned->get());
  EXPECT_GT(db.plan_cache().stats().invalidations, invalidations_before);
}

TEST(PlanCacheTest, CreateIndexInvalidatesAndReplansToIndexScan) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT, y TEXT)").ok());
  auto before = db.Prepare("SELECT y FROM t WHERE x = 7");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*before)->plan.has_value());
  EXPECT_NE((*before)->plan->root->ToStringTree().find("SeqScan"),
            std::string::npos);

  ASSERT_TRUE(db.Execute("CREATE INDEX ON t (x)").ok());
  auto after = db.Prepare("SELECT y FROM t WHERE x = 7");
  ASSERT_TRUE(after.ok());
  // The stale SeqScan entry was discarded, and the fresh plan uses the
  // new index.
  EXPECT_NE(before->get(), after->get());
  ASSERT_TRUE((*after)->plan.has_value());
  EXPECT_NE((*after)->plan->root->ToStringTree().find("IndexScan"),
            std::string::npos);
  EXPECT_GE(db.plan_cache().stats().invalidations, 1u);
}

TEST(PlanCacheTest, DropAndRecreateNeverServesTheOldSchema) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  auto one_col = db.Execute("SELECT * FROM t");
  ASSERT_TRUE(one_col.ok());
  ASSERT_EQ(one_col->column_names.size(), 1u);

  ASSERT_TRUE(db.Execute("DROP TABLE t").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b TEXT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (2, 'two')").ok());
  auto two_cols = db.Execute("SELECT * FROM t");
  ASSERT_TRUE(two_cols.ok());
  EXPECT_EQ(two_cols->column_names.size(), 2u);
  ASSERT_EQ(two_cols->rows.size(), 1u);
  EXPECT_EQ(two_cols->rows[0].at(1).string_value(), "two");
}

TEST(PlanCacheTest, StalePreparedStatementFallsBackToReplanUnderLocks) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  auto stale = db.Prepare("SELECT * FROM t");
  ASSERT_TRUE(stale.ok());
  PreparedStatementPtr held = *stale;  // a requeued task, say

  ASSERT_TRUE(db.Execute("DROP TABLE t").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b TEXT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (3, 'three')").ok());

  // The held plan predates the DDL; ExecutePrepared must not run it —
  // the catalog-version gate re-plans under the statement's locks.
  auto result = db.ExecutePrepared(*held);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->column_names.size(), 2u);
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].at(1).string_value(), "three");
}

TEST(PlanCacheTest, InstallHookRegistrationInvalidates) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  auto before = db.Prepare("SELECT x FROM t");
  ASSERT_TRUE(before.ok());
  const uint64_t v = db.storage().catalog().version();

  db.coordinator().SetInstallHook(
      [](Transaction*, TxnManager*, const MatchResult&) {
        return Status::OK();
      });
  EXPECT_GT(db.storage().catalog().version(), v);

  auto after = db.Prepare("SELECT x FROM t");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->get(), after->get());
  EXPECT_GE(db.plan_cache().stats().invalidations, 1u);
}

TEST(PlanCacheTest, ScriptMayPlanAgainstTablesItCreates) {
  // Regression: planning is part of Prepare now, so preparing a whole
  // script up front would fail its later statements against a catalog
  // that does not yet contain the tables its earlier statements create.
  // Prepare is per-step and lazy instead.
  Youtopia db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE fresh (x INT);"
                               "INSERT INTO fresh VALUES (41);"
                               "UPDATE fresh SET x = x + 1;"
                               "SELECT x FROM fresh;")
                  .ok());
  auto rows = db.Execute("SELECT x FROM fresh");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0].at(0).int64_value(), 42);
}

TEST(PlanCacheTest, ScriptStepsPopulateTheSharedCache) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  const std::string script = "INSERT INTO t VALUES (1); SELECT x FROM t;";
  ASSERT_TRUE(db.ExecuteScript(script).ok());
  const PlanCache::Stats after_first = db.plan_cache().stats();
  // Replaying the script hits the per-statement entries the first run
  // inserted — one per statement, keyed on each statement's own text.
  ASSERT_TRUE(db.ExecuteScript(script).ok());
  const PlanCache::Stats after_second = db.plan_cache().stats();
  EXPECT_GE(after_second.hits, after_first.hits + 2);
}

TEST(PlanCacheTest, AdminSnapshotRendersCacheCounters) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(db.Execute("SELECT x FROM t").ok());
  ASSERT_TRUE(db.Execute("SELECT x FROM t").ok());
  const AdminSnapshot snapshot = TakeAdminSnapshot(db);
  EXPECT_GE(snapshot.plan_cache.hits, 1u);
  EXPECT_NE(snapshot.ToString().find("Plan cache"), std::string::npos);
}

}  // namespace
}  // namespace youtopia
