#include "server/session.h"

#include <gtest/gtest.h>

#include <thread>

#include "travel/travel_schema.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(travel::SetupFigure1(&db_).ok()); }

  static std::string PairSql(const std::string& self,
                             const std::string& other) {
    return "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" + other +
           "', fno) IN ANSWER Reservation CHOOSE 1";
  }

  Youtopia db_;
};

TEST_F(SessionTest, ExecuteAndHistory) {
  Session session(&db_, "Kramer");
  ASSERT_TRUE(session.Execute("SELECT * FROM Flights").ok());
  ASSERT_TRUE(session.Execute("SELECT * FROM Airlines").ok());
  auto history = session.History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0], "SELECT * FROM Flights");
}

TEST_F(SessionTest, SubmitTagsOwnerAndTracks) {
  Session kramer(&db_, "Kramer");
  auto handle = kramer.Submit(PairSql("Kramer", "Jerry"));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(kramer.Outstanding().size(), 1u);
  auto pending = db_.coordinator().Pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].owner, "Kramer");
}

TEST_F(SessionTest, OutstandingPrunesCompleted) {
  Session kramer(&db_, "Kramer");
  Session jerry(&db_, "Jerry");
  ASSERT_TRUE(kramer.Submit(PairSql("Kramer", "Jerry")).ok());
  EXPECT_EQ(kramer.Outstanding().size(), 1u);
  ASSERT_TRUE(jerry.Submit(PairSql("Jerry", "Kramer")).ok());
  EXPECT_TRUE(kramer.Outstanding().empty());
  EXPECT_TRUE(jerry.Outstanding().empty());
}

TEST_F(SessionTest, RunTracksOnlyPendingEntangled) {
  Session solo(&db_, "Solo");
  auto direct = solo.Run(
      "SELECT 'Solo', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1");
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->handle->Done());
  EXPECT_TRUE(solo.Outstanding().empty());

  auto waiting = solo.Run(PairSql("Solo", "Ghost"));
  ASSERT_TRUE(waiting.ok());
  EXPECT_EQ(solo.Outstanding().size(), 1u);
}

TEST_F(SessionTest, WaitForAllTimesOutOnStuckQuery) {
  Session kramer(&db_, "Kramer");
  ASSERT_TRUE(kramer.Submit(PairSql("Kramer", "Ghost")).ok());
  EXPECT_EQ(kramer.WaitForAll(milliseconds(30)).code(),
            StatusCode::kTimedOut);
}

TEST_F(SessionTest, WaitForAllSucceedsWhenCoordinated) {
  Session kramer(&db_, "Kramer");
  Session jerry(&db_, "Jerry");
  ASSERT_TRUE(kramer.Submit(PairSql("Kramer", "Jerry")).ok());
  ASSERT_TRUE(jerry.Submit(PairSql("Jerry", "Kramer")).ok());
  EXPECT_TRUE(kramer.WaitForAll(milliseconds(100)).ok());
  EXPECT_TRUE(jerry.WaitForAll(milliseconds(100)).ok());
}

TEST_F(SessionTest, CancelAllWithdrawsPending) {
  Session kramer(&db_, "Kramer");
  ASSERT_TRUE(kramer.Submit(PairSql("Kramer", "Ghost1")).ok());
  ASSERT_TRUE(kramer.Submit(PairSql("Kramer", "Ghost2")).ok());
  EXPECT_EQ(db_.coordinator().pending_count(), 2u);
  ASSERT_TRUE(kramer.CancelAll().ok());
  EXPECT_EQ(db_.coordinator().pending_count(), 0u);
  EXPECT_TRUE(kramer.Outstanding().empty());
}

TEST_F(SessionTest, TwoSessionsCoordinateAcrossThreads) {
  Session kramer(&db_, "Kramer");
  Session jerry(&db_, "Jerry");
  std::thread t1([&kramer] {
    auto h = kramer.Submit(SessionTest::PairSql("Kramer", "Jerry"));
    ASSERT_TRUE(h.ok());
    EXPECT_TRUE(h->Wait(milliseconds(5000)).ok());
  });
  std::thread t2([&jerry] {
    auto h = jerry.Submit(SessionTest::PairSql("Jerry", "Kramer"));
    ASSERT_TRUE(h.ok());
    EXPECT_TRUE(h->Wait(milliseconds(5000)).ok());
  });
  t1.join();
  t2.join();
  EXPECT_EQ(db_.Execute("SELECT * FROM Reservation")->rows.size(), 2u);
}

}  // namespace
}  // namespace youtopia
