#include "server/dump.h"

#include <gtest/gtest.h>

#include "travel/data_generator.h"
#include "travel/travel_schema.h"

namespace youtopia {
namespace {

TEST(DumpTest, EmptyDatabaseDumpsEmptyScript) {
  Youtopia db;
  auto script = DumpToScript(db);
  ASSERT_TRUE(script.ok());
  EXPECT_TRUE(script->empty());
}

TEST(DumpTest, RoundTripsFigure1) {
  Youtopia original;
  ASSERT_TRUE(travel::SetupFigure1(&original).ok());
  // Add a coordinated answer so the dump covers answer relations too.
  auto solo = original.Submit(
      "SELECT 'Solo', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1", "Solo");
  ASSERT_TRUE(solo.ok());
  ASSERT_TRUE(solo->Done());

  auto script = DumpToScript(original);
  ASSERT_TRUE(script.ok()) << script.status();

  Youtopia restored;
  ASSERT_TRUE(RestoreFromScript(&restored, script.value()).ok());

  for (const char* table : {"Flights", "Airlines", "Reservation"}) {
    auto before = original.Execute(std::string("SELECT * FROM ") + table);
    auto after = restored.Execute(std::string("SELECT * FROM ") + table);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(before->rows, after->rows) << table;
  }
  // Indexes recreated.
  EXPECT_TRUE(restored.storage().HasIndex("Flights", "dest"));
  EXPECT_TRUE(restored.storage().HasIndex("Reservation", "traveler"));
}

TEST(DumpTest, DifferentialRoundTripPreservesEveryTableExactly) {
  // A generated travel dataset plus a table of the values that used to
  // corrupt in the dump: doubles needing 17 significant digits (the old
  // "%g" kept 6), strings with embedded quotes, and NULLs.
  Youtopia original;
  ASSERT_TRUE(travel::CreateTravelSchema(&original).ok());
  travel::DataGeneratorConfig data;
  data.cities = {"NewYork", "Paris", "Rome"};
  data.flights_per_route_per_day = 3;
  data.days = 2;
  ASSERT_TRUE(travel::GenerateTravelData(&original, data).ok());
  ASSERT_TRUE(original
                  .ExecuteScript(
                      "CREATE TABLE Tricky (id INT, frac DOUBLE, "
                      "name TEXT, note TEXT);"
                      "INSERT INTO Tricky VALUES "
                      "(1, 0.1, 'plain', NULL), "
                      "(2, 3.141592653589793, 'O''Hare', 'quote''s'), "
                      "(3, 1.7976931348623157e308, '', NULL), "
                      "(4, 2.2250738585072014e-308, 'x''''y', 'double "
                      "quote'), "
                      "(5, 0.30000000000000004, 'sum of 0.1+0.2', NULL)")
                  .ok());

  auto script = DumpToScript(original);
  ASSERT_TRUE(script.ok()) << script.status();
  Youtopia restored;
  ASSERT_TRUE(RestoreFromScript(&restored, script.value()).ok());

  // Table-by-table equality across the entire catalog — byte-equal
  // values, double columns included.
  const auto tables = original.storage().catalog().ListTables();
  ASSERT_FALSE(tables.empty());
  for (const TableInfo& info : tables) {
    auto before = original.Execute("SELECT * FROM " + info.name);
    auto after = restored.Execute("SELECT * FROM " + info.name);
    ASSERT_TRUE(before.ok()) << info.name;
    ASSERT_TRUE(after.ok()) << info.name << ": " << after.status();
    EXPECT_EQ(before->rows, after->rows) << info.name;
  }
  // And the restored dump is byte-identical to the first (a fixpoint:
  // nothing drifts on repeated save/restore cycles).
  auto second = DumpToScript(restored);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*script, *second);
}

TEST(DumpTest, RestoredDatabaseCoordinates) {
  Youtopia original;
  ASSERT_TRUE(travel::SetupFigure1(&original).ok());
  auto script = DumpToScript(original);
  ASSERT_TRUE(script.ok());

  Youtopia restored;
  ASSERT_TRUE(RestoreFromScript(&restored, script.value()).ok());
  auto kramer = restored.Submit(
      "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Jerry', fno) IN ANSWER Reservation CHOOSE 1", "Kramer");
  auto jerry = restored.Submit(
      "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Kramer', fno) IN ANSWER Reservation CHOOSE 1", "Jerry");
  ASSERT_TRUE(kramer.ok());
  ASSERT_TRUE(jerry.ok());
  EXPECT_TRUE(jerry->Done());
}

TEST(DumpTest, PreservesTypesAndNullability) {
  Youtopia original;
  ASSERT_TRUE(original.ExecuteScript(
                  "CREATE TABLE T (i INT NOT NULL, d DOUBLE, s TEXT, "
                  "b BOOL);"
                  "INSERT INTO T VALUES (1, 2.5, 'x', TRUE), "
                  "(2, NULL, NULL, FALSE);")
                  .ok());
  auto script = DumpToScript(original);
  ASSERT_TRUE(script.ok());
  Youtopia restored;
  ASSERT_TRUE(RestoreFromScript(&restored, script.value()).ok());
  auto info = restored.storage().catalog().GetTable("T");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->schema.column(0).type, DataType::kInt64);
  EXPECT_FALSE(info->schema.column(0).nullable);
  EXPECT_EQ(info->schema.column(1).type, DataType::kDouble);
  EXPECT_EQ(info->schema.column(3).type, DataType::kBool);
  auto rows = restored.Execute("SELECT * FROM T");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 2u);
  EXPECT_TRUE(rows->rows[1].at(1).is_null());
}

TEST(DumpTest, EscapesAwkwardStrings) {
  Youtopia original;
  ASSERT_TRUE(original.ExecuteScript(
                  "CREATE TABLE T (s TEXT NOT NULL);"
                  "INSERT INTO T VALUES ('O''Hare; DROP TABLE T');")
                  .ok());
  auto script = DumpToScript(original);
  ASSERT_TRUE(script.ok());
  Youtopia restored;
  ASSERT_TRUE(RestoreFromScript(&restored, script.value()).ok());
  auto rows = restored.Execute("SELECT s FROM T");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0].at(0).string_value(), "O'Hare; DROP TABLE T");
}

TEST(DumpTest, RestoreIntoNonEmptyFails) {
  Youtopia target;
  ASSERT_TRUE(target.Execute("CREATE TABLE existing (x INT)").ok());
  EXPECT_EQ(RestoreFromScript(&target, "").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace youtopia
