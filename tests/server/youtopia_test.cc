#include "server/youtopia.h"

#include <gtest/gtest.h>

#include "travel/travel_schema.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

TEST(YoutopiaTest, ExecuteRegularStatements) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2)").ok());
  auto rows = db.Execute("SELECT x FROM t WHERE x > 1");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);
}

TEST(YoutopiaTest, ExecuteRejectsEntangled) {
  Youtopia db;
  auto result = db.Execute("SELECT 'u', x INTO ANSWER R WHERE x IN "
                           "(SELECT x FROM t)");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(YoutopiaTest, ExecuteRejectsBadSql) {
  Youtopia db;
  EXPECT_FALSE(db.Execute("GARBAGE").ok());
  EXPECT_FALSE(db.ExecuteScript("CREATE TABLE t (x INT); GARBAGE;").ok());
}

TEST(YoutopiaTest, ExecuteScriptRunsBatch) {
  Youtopia db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE a (x INT);"
                               "CREATE TABLE b (y INT);"
                               "INSERT INTO a VALUES (1);")
                  .ok());
  EXPECT_TRUE(db.storage().catalog().HasTable("a"));
  EXPECT_TRUE(db.storage().catalog().HasTable("b"));
}

TEST(YoutopiaTest, ExecuteScriptMidErrorKeepsPartialExecution) {
  Youtopia db;
  Status status = db.ExecuteScript(
      "CREATE TABLE a (x INT);"
      "INSERT INTO a VALUES (1);"
      "INSERT INTO nosuch VALUES (2);"
      "INSERT INTO a VALUES (3);");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  // Partial-execution semantics: statements before the failure stay
  // applied, statements after it never run.
  auto rows = db.Execute("SELECT x FROM a");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0].at(0).int64_value(), 1);
}

TEST(YoutopiaTest, ExecuteScriptParseErrorRunsNothing) {
  Youtopia db;
  // A parse error anywhere rejects the whole script before any
  // statement executes (ParseScript is all-or-nothing), unlike a
  // mid-script *execution* error.
  Status status = db.ExecuteScript(
      "CREATE TABLE a (x INT);"
      "THIS IS NOT SQL;");
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(db.storage().catalog().HasTable("a"));
}

TEST(YoutopiaTest, PrepareRoutesAndExecutesStaged) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  auto prepared = db.Prepare("INSERT INTO t VALUES (7)");
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE((*prepared)->entangled);
  EXPECT_EQ((*prepared)->refs.writes.count("t"), 1u);
  auto result = db.ExecutePrepared(**prepared);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->affected_rows, 1u);

  auto entangled = db.Prepare(
      "SELECT 'u', x INTO ANSWER R WHERE x IN (SELECT x FROM t)");
  ASSERT_TRUE(entangled.ok());
  EXPECT_TRUE((*entangled)->entangled);
  EXPECT_EQ(db.ExecutePrepared(**entangled).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(YoutopiaTest, ExecutePreparedTryFlagsLockConflictOnly) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  auto prepared = db.Prepare("INSERT INTO t VALUES (1)");
  ASSERT_TRUE(prepared.ok());

  auto blocker = db.txn_manager().Begin();
  ASSERT_TRUE(db.txn_manager()
                  .lock_manager()
                  .TryAcquire(blocker->id(), "t", LockMode::kExclusive)
                  .ok());
  bool conflict = false;
  auto result = db.ExecutePrepared(**prepared, LockWait::kTry, &conflict);
  EXPECT_EQ(result.status().code(), StatusCode::kTimedOut);
  EXPECT_TRUE(conflict);
  ASSERT_TRUE(db.txn_manager().Commit(blocker.get()).ok());

  // No conflict: the flag stays false and execution proceeds.
  conflict = false;
  result = db.ExecutePrepared(**prepared, LockWait::kTry, &conflict);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(conflict);
  // A non-lock failure (missing table) must not raise the flag.
  auto missing = db.Prepare("INSERT INTO nosuch VALUES (1)");
  ASSERT_TRUE(missing.ok());
  conflict = false;
  result = db.ExecutePrepared(**missing, LockWait::kTry, &conflict);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(conflict);
}

TEST(YoutopiaTest, SubmitRejectsNonSelect) {
  Youtopia db;
  EXPECT_FALSE(db.Submit("CREATE TABLE t (x INT)").ok());
}

TEST(YoutopiaTest, SubmitRejectsRegularSelect) {
  Youtopia db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  EXPECT_FALSE(db.Submit("SELECT x FROM t").ok());
}

TEST(YoutopiaTest, EndToEndFigure1ThroughSubmit) {
  Youtopia db;
  ASSERT_TRUE(travel::SetupFigure1(&db).ok());
  auto kramer = db.Submit(
      "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
      "Kramer");
  ASSERT_TRUE(kramer.ok()) << kramer.status();
  auto jerry = db.Submit(
      "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
      "Jerry");
  ASSERT_TRUE(jerry.ok());
  EXPECT_TRUE(kramer->Wait(milliseconds(100)).ok());
  EXPECT_TRUE(jerry->Wait(milliseconds(100)).ok());
  EXPECT_EQ(kramer->Answers()[0].at(1), jerry->Answers()[0].at(1));
}

TEST(YoutopiaTest, RunAutoDetectsKind) {
  Youtopia db;
  ASSERT_TRUE(travel::SetupFigure1(&db).ok());

  auto regular = db.Run("SELECT fno FROM Flights WHERE dest='Rome'");
  ASSERT_TRUE(regular.ok());
  EXPECT_FALSE(regular->entangled);
  EXPECT_EQ(regular->result.rows.size(), 1u);

  auto entangled = db.Run(
      "SELECT 'Solo', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Rome') CHOOSE 1",
      "Solo");
  ASSERT_TRUE(entangled.ok()) << entangled.status();
  EXPECT_TRUE(entangled->entangled);
  ASSERT_TRUE(entangled->handle.has_value());
  EXPECT_TRUE(entangled->handle->Done());
}

TEST(YoutopiaTest, DmlAutoRetriggersDependentQueries) {
  // A pair waits for a Berlin flight; a regular INSERT creating one
  // completes them without any manual retrigger call.
  Youtopia db;
  ASSERT_TRUE(travel::SetupFigure1(&db).ok());
  auto k = db.Submit(
      "SELECT 'K', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Berlin') AND "
      "('J', fno) IN ANSWER Reservation CHOOSE 1", "K");
  auto j = db.Submit(
      "SELECT 'J', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Berlin') AND "
      "('K', fno) IN ANSWER Reservation CHOOSE 1", "J");
  ASSERT_TRUE(k.ok());
  ASSERT_TRUE(j.ok());
  EXPECT_FALSE(j->Done());

  ASSERT_TRUE(db.Execute("INSERT INTO Flights VALUES (777, 'Berlin')").ok());
  EXPECT_TRUE(k->Done());
  EXPECT_TRUE(j->Done());
  EXPECT_EQ(k->Answers()[0].at(1).int64_value(), 777);
}

TEST(YoutopiaTest, DmlRetriggerCanBeDisabled) {
  YoutopiaConfig config;
  config.retrigger_on_dml = false;
  Youtopia db(config);
  ASSERT_TRUE(travel::SetupFigure1(&db).ok());
  auto solo = db.Submit(
      "SELECT 'S', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Berlin') CHOOSE 1", "S");
  ASSERT_TRUE(solo.ok());
  EXPECT_FALSE(solo->Done());
  ASSERT_TRUE(db.Execute("INSERT INTO Flights VALUES (777, 'Berlin')").ok());
  EXPECT_FALSE(solo->Done());  // stays pending until explicit retrigger
  auto satisfied = db.coordinator().RetriggerAll();
  ASSERT_TRUE(satisfied.ok());
  EXPECT_EQ(satisfied.value(), 1u);
  EXPECT_TRUE(solo->Done());
}

TEST(YoutopiaTest, BrowseThenBookPath) {
  // The demo's alternate path (Figure 4): browse friends' bookings with
  // a regular query, then book directly.
  Youtopia db;
  ASSERT_TRUE(travel::SetupFigure1(&db).ok());
  auto direct = db.Submit(
      "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE fno = 122) CHOOSE 1",
      "Kramer");
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->Done());

  // Jerry browses: who is on flight 122?
  auto who = db.Execute("SELECT traveler FROM Reservation WHERE fno = 122");
  ASSERT_TRUE(who.ok());
  ASSERT_EQ(who->rows.size(), 1u);
  EXPECT_EQ(who->rows[0].at(0).string_value(), "Kramer");

  // Jerry books with the partner constraint satisfied from storage.
  auto jerry = db.Submit(
      "SELECT 'Jerry', fno INTO ANSWER Reservation WHERE fno IN "
      "(SELECT fno FROM Flights WHERE dest='Paris') AND "
      "('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
      "Jerry");
  ASSERT_TRUE(jerry.ok());
  EXPECT_TRUE(jerry->Done());
  EXPECT_EQ(jerry->Answers()[0].at(1).int64_value(), 122);
  EXPECT_GE(db.coordinator().stats().constraints_from_stored, 1u);
}

}  // namespace
}  // namespace youtopia
