#include "server/client.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "server/session.h"
#include "travel/travel_schema.h"

namespace youtopia {
namespace {

using std::chrono::milliseconds;

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(travel::SetupFigure1(&db_).ok()); }

  static ClientOptions Owner(const std::string& owner) {
    return ClientOptions(owner);
  }

  static std::string PairSql(const std::string& self,
                             const std::string& other) {
    return "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" + other +
           "', fno) IN ANSWER Reservation CHOOSE 1";
  }

  static std::string GroupSql(const std::vector<std::string>& group,
                              size_t self_index) {
    std::string sql = "SELECT '" + group[self_index] +
                      "', fno INTO ANSWER Reservation WHERE fno IN "
                      "(SELECT fno FROM Flights WHERE dest='Paris')";
    for (size_t j = 0; j < group.size(); ++j) {
      if (j == self_index) continue;
      sql += " AND ('" + group[j] + "', fno) IN ANSWER Reservation";
    }
    return sql + " CHOOSE 1";
  }

  Youtopia db_;
};

TEST_F(ClientTest, ExecuteAndHistory) {
  Client client(&db_, Owner("Kramer"));
  ASSERT_TRUE(client.Execute("SELECT * FROM Flights").ok());
  ASSERT_TRUE(client.Execute("SELECT * FROM Airlines").ok());
  auto history = client.History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0], "SELECT * FROM Flights");
}

TEST_F(ClientTest, HistoryRecordingCanBeDisabled) {
  ClientOptions options;
  options.record_history = false;
  Client client(&db_, options);
  ASSERT_TRUE(client.Execute("SELECT * FROM Flights").ok());
  EXPECT_TRUE(client.History().empty());
}

TEST_F(ClientTest, ExecuteRejectsEntangledStatements) {
  Client client(&db_, Owner("Kramer"));
  EXPECT_EQ(client.Execute(PairSql("Kramer", "Jerry")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ClientTest, SubmitTagsDefaultOwnerInPending) {
  Client client(&db_, Owner("Kramer"));
  ASSERT_TRUE(client.Submit(PairSql("Kramer", "Jerry")).ok());
  auto pending = db_.coordinator().Pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].owner, "Kramer");
  EXPECT_EQ(client.Outstanding().size(), 1u);
}

TEST_F(ClientTest, SubmitAsOverridesOwner) {
  Client shared(&db_, Owner("middle-tier"));
  ASSERT_TRUE(shared.SubmitAs("Elaine", PairSql("Elaine", "George")).ok());
  auto pending = db_.coordinator().Pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].owner, "Elaine");
}

TEST_F(ClientTest, SubmitCallbackObservesCompletionWithoutWait) {
  Client kramer(&db_, Owner("Kramer"));
  Client jerry(&db_, Owner("Jerry"));

  size_t fired = 0;
  auto handle = kramer.Submit(
      PairSql("Kramer", "Jerry"), [&fired](const EntangledHandle& done) {
        ++fired;
        EXPECT_TRUE(done.Done());
        EXPECT_TRUE(done.Outcome().value_or(Status::Internal("none")).ok());
      });
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(fired, 0u);

  // Jerry's submission completes the pair and delivers Kramer's
  // callback; Kramer's thread never enters Wait.
  ASSERT_TRUE(jerry.Submit(PairSql("Jerry", "Kramer")).ok());
  EXPECT_EQ(fired, 1u);
}

TEST_F(ClientTest, SubmitBatchClosesGroupInOneRound) {
  Client shared(&db_, Owner("middle-tier"));
  const std::vector<std::string> group = {"Jerry", "Kramer", "Elaine"};
  std::vector<std::string> statements;
  for (size_t i = 0; i < group.size(); ++i) {
    statements.push_back(GroupSql(group, i));
  }
  const size_t match_calls_before = db_.coordinator().stats().match_calls;

  std::atomic<size_t> fired{0};
  auto handles = shared.SubmitBatchAs(
      group, statements,
      [&fired](const EntangledHandle&) { fired.fetch_add(1); });
  ASSERT_TRUE(handles.ok()) << handles.status();
  ASSERT_EQ(handles->size(), 3u);
  for (const auto& handle : *handles) EXPECT_TRUE(handle.Done());
  EXPECT_EQ(fired.load(), 3u);

  auto stats = db_.coordinator().stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_queries, 3u);
  // The whole group closed in the batch's single matching round.
  EXPECT_EQ(stats.match_calls - match_calls_before, 1u);

  // Owner tags flowed through per statement: everyone holds the same
  // flight in the stored answer relation.
  auto reservations = shared.Execute("SELECT * FROM Reservation");
  ASSERT_TRUE(reservations.ok());
  EXPECT_EQ(reservations->rows.size(), 3u);
}

TEST_F(ClientTest, SubmitBatchOwnersSizeMismatchRejected) {
  Client client(&db_, Owner("Kramer"));
  auto handles = client.SubmitBatchAs({"one"}, {"SELECT 1", "SELECT 2"});
  EXPECT_EQ(handles.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ClientTest, SubmitBatchRejectsNonSelectAtomically) {
  Client client(&db_, Owner("Kramer"));
  auto handles = client.SubmitBatch(
      {PairSql("Kramer", "Jerry"), "INSERT INTO Flights VALUES (1, 'X')"});
  EXPECT_EQ(handles.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db_.coordinator().pending_count(), 0u);
}

TEST_F(ClientTest, RunDetectsEntangledAndTracks) {
  Client client(&db_, Owner("Kramer"));
  auto regular = client.Run("SELECT * FROM Flights");
  ASSERT_TRUE(regular.ok());
  EXPECT_FALSE(regular->entangled);

  auto entangled = client.Run(PairSql("Kramer", "Jerry"));
  ASSERT_TRUE(entangled.ok());
  EXPECT_TRUE(entangled->entangled);
  EXPECT_EQ(client.Outstanding().size(), 1u);
}

TEST_F(ClientTest, WaitForAllAndCancelAll) {
  Client kramer(&db_, Owner("Kramer"));
  ASSERT_TRUE(kramer.Submit(PairSql("Kramer", "Ghost1")).ok());
  ASSERT_TRUE(kramer.Submit(PairSql("Kramer", "Ghost2")).ok());
  EXPECT_EQ(kramer.WaitForAll(milliseconds(20)).code(),
            StatusCode::kTimedOut);
  ASSERT_TRUE(kramer.CancelAll().ok());
  EXPECT_TRUE(kramer.Outstanding().empty());
  EXPECT_EQ(db_.coordinator().pending_count(), 0u);
}

TEST_F(ClientTest, StatementTimeoutRetriesLockConflicts) {
  // A writer transaction holds the X lock on Flights longer than one
  // lock wait (500ms), so a single-attempt Execute times out...
  auto txn = db_.txn_manager().Begin();
  ASSERT_TRUE(db_.txn_manager()
                  .lock_manager()
                  .Acquire(txn->id(), "Flights", LockMode::kExclusive)
                  .ok());

  std::atomic<bool> release{false};
  std::thread holder([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(milliseconds(5));
    }
    ASSERT_TRUE(db_.txn_manager().Commit(txn.get()).ok());
  });

  // ...but a client with a statement timeout keeps retrying until the
  // writer commits — through Execute and through Run alike.
  ClientOptions options("patient");
  options.statement_timeout = milliseconds(5000);
  options.retry_interval = milliseconds(5);
  Client patient(&db_, options);

  std::thread releaser([&] {
    std::this_thread::sleep_for(milliseconds(700));
    release.store(true);
  });
  std::thread runner([&] {
    auto outcome = patient.Run("SELECT * FROM Flights");
    EXPECT_TRUE(outcome.ok()) << outcome.status();
  });
  auto result = patient.Execute("SELECT * FROM Flights");
  EXPECT_TRUE(result.ok()) << result.status();

  runner.join();
  releaser.join();
  holder.join();
}

TEST_F(ClientTest, LockRetryBackoffDoublesAndNeverSpins) {
  ClientOptions options;
  options.retry_interval = milliseconds(2);
  options.retry_max_interval = milliseconds(16);
  EXPECT_EQ(LockRetryPause(options, 0), milliseconds(2));
  EXPECT_EQ(LockRetryPause(options, 1), milliseconds(4));
  EXPECT_EQ(LockRetryPause(options, 2), milliseconds(8));
  EXPECT_EQ(LockRetryPause(options, 3), milliseconds(16));
  // Capped at retry_max_interval from then on.
  EXPECT_EQ(LockRetryPause(options, 10), milliseconds(16));
  EXPECT_EQ(LockRetryPause(options, 1000), milliseconds(16));

  // A zero (or negative) retry_interval must not busy-spin the clock:
  // the schedule floors at 1ms.
  ClientOptions zero;
  zero.retry_interval = milliseconds(0);
  zero.retry_max_interval = milliseconds(0);
  EXPECT_EQ(LockRetryPause(zero, 0), milliseconds(1));
  EXPECT_EQ(LockRetryPause(zero, 50), milliseconds(1));

  // An initial interval above retry_max_interval is honored, never
  // clamped down: the configured pause is the minimum pacing.
  ClientOptions slow;
  slow.retry_interval = milliseconds(500);  // > default max of 64ms
  EXPECT_EQ(LockRetryPause(slow, 0), milliseconds(500));
  EXPECT_EQ(LockRetryPause(slow, 3), milliseconds(500));
}

TEST_F(ClientTest, ExecuteAsyncResolvesWithResult) {
  Client client(&db_, Owner("Kramer"));
  auto future = client.ExecuteAsync("SELECT * FROM Flights");
  auto result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->rows.empty());
  // Entangled statements are rejected through the async path too.
  auto bad = client.ExecuteAsync(PairSql("Kramer", "Jerry")).get();
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ClientTest, RunAsyncTracksEntangledHandles) {
  Client client(&db_, Owner("Kramer"));
  auto outcome = client.RunAsync(PairSql("Kramer", "Jerry")).get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->entangled);
  ASSERT_TRUE(outcome->handle.has_value());
  EXPECT_FALSE(outcome->handle->Done());
  // The handle is already tracked when .get() returns.
  EXPECT_EQ(client.Outstanding().size(), 1u);
  ASSERT_TRUE(client.CancelAll().ok());
}

TEST_F(ClientTest, ExecuteScriptAsyncPartialSemantics) {
  Client client(&db_, Owner("Kramer"));
  auto status = client
                    .ExecuteScriptAsync("CREATE TABLE sa (x INT);"
                                        "INSERT INTO sa VALUES (1);"
                                        "INSERT INTO nosuch VALUES (2);")
                    .get();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  auto rows = client.Execute("SELECT x FROM sa");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);
}

TEST_F(ClientTest, AsyncSurfaceOverWorkerPool) {
  // The same façade over a pooled engine: many futures in flight from
  // one caller thread, each client a FIFO domain.
  YoutopiaConfig config;
  config.executor.num_workers = 2;
  Youtopia pooled(config);
  ASSERT_TRUE(travel::SetupFigure1(&pooled).ok());
  Client client(&pooled, Owner("Kramer"));
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(client.ExecuteAsync("SELECT * FROM Flights"));
  }
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->rows.empty());
  }
  // A future resolves in the continuation, a hair before the worker
  // books the task's completion; drain so the counter covers all 16.
  ASSERT_TRUE(pooled.executor_service()
                  .Drain(std::chrono::milliseconds(5000))
                  .ok());
  EXPECT_GE(pooled.executor_service().stats().executed, 16u);
}

TEST_F(ClientTest, SessionDelegatesThroughClient) {
  Session session(&db_, "Kramer");
  ASSERT_TRUE(session.Submit(PairSql("Kramer", "Jerry")).ok());
  EXPECT_EQ(session.user(), "Kramer");
  EXPECT_EQ(session.client().owner(), "Kramer");
  auto pending = db_.coordinator().Pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].owner, "Kramer");
}

}  // namespace
}  // namespace youtopia
