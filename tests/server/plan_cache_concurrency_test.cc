// Plan-cache invalidation under concurrency: executor-service workers
// driving cached statements while another session runs DDL. Run under
// ThreadSanitizer in CI — the interesting bugs here are ordering bugs
// (a stale plan served across a version bump, a torn LRU list), not
// logic bugs.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "server/client.h"
#include "server/plan_cache.h"
#include "server/youtopia.h"

namespace youtopia {
namespace {

TEST(PlanCacheConcurrencyTest, RawCacheSurvivesConcurrentMixedTraffic) {
  // Hammer Lookup/Insert/stats from many threads with overlapping keys
  // and shifting table versions; the assertions are TSan's plus basic
  // sanity.
  PlanCache cache(8);
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("t", Schema({{"x", DataType::kInt64, false}})).ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "stmt-" + std::to_string((t + i) % 12);
        if (cache.Lookup(key, catalog) == nullptr) {
          // A fresh plan stamped with the current table version, as
          // PrepareParsed would produce.
          auto plan = std::make_shared<PreparedStatement>();
          plan->table_versions.emplace_back("t", catalog.TableVersion("t"));
          cache.Insert(key, std::move(plan));
        }
        if (i % 257 == 0) catalog.BumpAllTableVersions();
        if (i % 97 == 0) (void)cache.stats();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const PlanCache::Stats stats = cache.stats();
  EXPECT_LE(stats.size, 8u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(PlanCacheConcurrencyTest, WorkersExecuteWhileAnotherSessionRunsDdl) {
  YoutopiaConfig config;
  config.executor.num_workers = 4;
  Youtopia db(config);
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE stable (x INT, y TEXT);"
                               "INSERT INTO stable VALUES (1, 'a');"
                               "INSERT INTO stable VALUES (2, 'b');"
                               "CREATE TABLE churn (z INT);"
                               "INSERT INTO churn VALUES (7);")
                  .ok());

  std::atomic<bool> readers_done{false};
  std::atomic<size_t> wrong_shape{0};
  std::atomic<size_t> unexpected{0};

  // Reader sessions: cached SELECTs through the worker pool. `stable`
  // never changes shape, so every OK result must have its 2 columns;
  // `churn` is dropped and recreated with ALTERNATING schemas (1 vs 2
  // columns), so a stale cached plan executed across the swap would
  // project columns that no longer exist — every OK result must be
  // self-consistent (row width == column count, width 1 or 2), and
  // reads may also observe NotFound mid-swap. Fixed iteration counts
  // so the DDL churn below genuinely overlaps the whole read phase.
  constexpr int kReadsPerSession = 150;
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&db, &wrong_shape, &unexpected] {
      Client client(&db);
      for (int i = 0; i < kReadsPerSession; ++i) {
        auto rows = client.Execute("SELECT * FROM stable WHERE x = 1");
        if (rows.ok()) {
          if (rows->column_names.size() != 2) ++wrong_shape;
        } else if (rows.status().code() != StatusCode::kTimedOut) {
          ++unexpected;
        }
        auto churn = client.Execute("SELECT * FROM churn");
        if (churn.ok()) {
          const size_t cols = churn->column_names.size();
          if (cols != 1 && cols != 2) ++wrong_shape;
          for (const Tuple& row : churn->rows) {
            if (row.size() != cols) ++wrong_shape;
          }
        } else if (churn.status().code() != StatusCode::kNotFound &&
                   churn.status().code() != StatusCode::kTimedOut) {
          ++unexpected;
        }
      }
    });
  }

  // DDL session: version bumps from index churn on `stable` plus
  // drop/recreate cycles of `churn` that flip its schema, sustained
  // until every reader is done.
  std::thread ddl([&db, &readers_done] {
    Client client(&db);
    for (int i = 0; !readers_done.load() || i < 10; ++i) {
      (void)client.Execute("DROP TABLE churn");
      if (i % 2 == 0) {
        (void)client.Execute("CREATE TABLE churn (z INT, w TEXT)");
        (void)client.Execute("INSERT INTO churn VALUES (7, 'w')");
      } else {
        (void)client.Execute("CREATE TABLE churn (z INT)");
        (void)client.Execute("INSERT INTO churn VALUES (7)");
      }
      if (i % 2 == 0) {
        (void)client.Execute("CREATE INDEX ON stable (x)");
      }
    }
  });

  for (auto& reader : readers) reader.join();
  readers_done.store(true);
  ddl.join();

  EXPECT_EQ(wrong_shape.load(), 0u);
  EXPECT_EQ(unexpected.load(), 0u);
  // The churn produced real invalidations, so the test exercised the
  // stale path it claims to.
  EXPECT_GE(db.plan_cache().stats().invalidations, 1u);
  // And the cache still serves correctly afterwards.
  auto rows = db.Execute("SELECT * FROM stable WHERE x = 2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0].at(1).string_value(), "b");
}

TEST(PlanCacheConcurrencyTest, ScriptTasksPrepareLazilyOnWorkers) {
  // Regression (executor-service flavor): a script task whose SELECT
  // references a table created earlier in the same script must prepare
  // that statement only after the DDL ran — on a pool worker, through
  // the cache.
  YoutopiaConfig config;
  config.executor.num_workers = 2;
  Youtopia db(config);
  ExecutorService& exec = db.executor_service();

  std::vector<std::future<Result<RunOutcome>>> results;
  for (int i = 0; i < 4; ++i) {
    const std::string table = "script_t" + std::to_string(i);
    StatementTask task;
    task.sql = "CREATE TABLE " + table + " (x INT);"
               "INSERT INTO " + table + " VALUES (" + std::to_string(i) +
               ");"
               "SELECT x FROM " + table + ";";
    task.kind = StatementTask::Kind::kScript;
    task.session = ExecutorService::AllocateSessionId();
    results.push_back(exec.SubmitWithFuture(std::move(task)));
  }
  for (auto& future : results) {
    auto outcome = future.get();
    EXPECT_TRUE(outcome.ok()) << outcome.status();
  }
  for (int i = 0; i < 4; ++i) {
    auto rows =
        db.Execute("SELECT x FROM script_t" + std::to_string(i));
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->rows.size(), 1u);
    EXPECT_EQ(rows->rows[0].at(0).int64_value(), i);
  }
}

}  // namespace
}  // namespace youtopia
