#include "txn/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace youtopia {
namespace {

using std::chrono::milliseconds;

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "t", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, "t", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, "t", LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, "t", LockMode::kShared));
  EXPECT_FALSE(lm.Holds(1, "t", LockMode::kExclusive));
}

TEST(LockManagerTest, ExclusiveBlocksOthers) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "t", LockMode::kExclusive).ok());
  EXPECT_EQ(lm.Acquire(2, "t", LockMode::kShared, milliseconds(30)).code(),
            StatusCode::kTimedOut);
  EXPECT_EQ(lm.Acquire(2, "t", LockMode::kExclusive, milliseconds(30)).code(),
            StatusCode::kTimedOut);
}

TEST(LockManagerTest, ReentrantUnderExclusive) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "t", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, "t", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, "t", LockMode::kShared).ok());
}

TEST(LockManagerTest, SoleSharedHolderUpgrades) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "t", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, "t", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, "t", LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "t", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, "t", LockMode::kShared).ok());
  EXPECT_EQ(lm.Acquire(1, "t", LockMode::kExclusive, milliseconds(30)).code(),
            StatusCode::kTimedOut);
}

TEST(LockManagerTest, ReleaseAllWakesWaiters) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "t", LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status s = lm.Acquire(2, "t", LockMode::kExclusive, milliseconds(2000));
    acquired = s.ok();
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_FALSE(lm.Holds(1, "t", LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, "t", LockMode::kExclusive));
}

TEST(LockManagerTest, LocksArePerTable) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "a", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, "b", LockMode::kExclusive).ok());
}

TEST(LockManagerTest, DeadlockResolvedByTimeout) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, "b", LockMode::kExclusive).ok());
  std::atomic<int> timeouts{0};
  std::thread t1([&] {
    if (lm.Acquire(1, "b", LockMode::kExclusive, milliseconds(100)).code() ==
        StatusCode::kTimedOut) {
      ++timeouts;
      lm.ReleaseAll(1);
    }
  });
  std::thread t2([&] {
    if (lm.Acquire(2, "a", LockMode::kExclusive, milliseconds(100)).code() ==
        StatusCode::kTimedOut) {
      ++timeouts;
      lm.ReleaseAll(2);
    }
  });
  t1.join();
  t2.join();
  // At least one side must have timed out; both may.
  EXPECT_GE(timeouts.load(), 1);
}

TEST(LockManagerTest, TableNamesAreCaseInsensitive) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "Reservation", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, "reservation", LockMode::kExclusive));
  EXPECT_EQ(lm.Acquire(2, "RESERVATION", LockMode::kShared,
                       milliseconds(30))
                .code(),
            StatusCode::kTimedOut);
}

TEST(LockManagerTest, TryAcquireGrantsWhenCompatible) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, "t", LockMode::kShared).ok());
  // Shared is compatible with shared.
  EXPECT_TRUE(lm.TryAcquire(2, "t", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, "t", LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, "t", LockMode::kShared));
}

TEST(LockManagerTest, TryAcquireFailsImmediatelyOnConflict) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "t", LockMode::kExclusive).ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(lm.TryAcquire(2, "t", LockMode::kShared).code(),
            StatusCode::kTimedOut);
  EXPECT_EQ(lm.TryAcquire(2, "t", LockMode::kExclusive).code(),
            StatusCode::kTimedOut);
  // Non-blocking: no 500ms-style wait happened.
  EXPECT_LT(std::chrono::steady_clock::now() - start, milliseconds(100));
  EXPECT_FALSE(lm.Holds(2, "t", LockMode::kShared));
}

TEST(LockManagerTest, TryAcquireIsReentrantAndUpgrades) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, "t", LockMode::kShared).ok());
  // Sole S holder may upgrade to X without waiting.
  EXPECT_TRUE(lm.TryAcquire(1, "t", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, "t", LockMode::kExclusive));
  // Re-entrant under X.
  EXPECT_TRUE(lm.TryAcquire(1, "t", LockMode::kShared).ok());
  // Case-insensitive, like Acquire.
  EXPECT_EQ(lm.TryAcquire(2, "T", LockMode::kShared).code(),
            StatusCode::kTimedOut);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.TryAcquire(2, "t", LockMode::kExclusive).ok());
}

TEST(LockManagerTest, HoldsSemantics) {
  LockManager lm;
  EXPECT_FALSE(lm.Holds(1, "t", LockMode::kShared));
  ASSERT_TRUE(lm.Acquire(1, "t", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, "t", LockMode::kShared));  // X satisfies S
  EXPECT_FALSE(lm.Holds(2, "t", LockMode::kShared));
}

}  // namespace
}  // namespace youtopia
