#include "txn/txn_manager.h"

#include <gtest/gtest.h>

namespace youtopia {
namespace {

class TxnManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(storage_
                    .CreateTable("T", Schema({{"k", DataType::kInt64, false},
                                              {"v", DataType::kString, true}}))
                    .ok());
    txns_ = std::make_unique<TxnManager>(&storage_);
  }

  Tuple Row(int64_t k, const std::string& v) {
    return Tuple({Value::Int64(k), Value::String(v)});
  }

  StorageEngine storage_;
  std::unique_ptr<TxnManager> txns_;
};

TEST_F(TxnManagerTest, CommitMakesWritesVisible) {
  auto txn = txns_->Begin();
  ASSERT_TRUE(txns_->Insert(txn.get(), "T", Row(1, "a")).ok());
  ASSERT_TRUE(txns_->Commit(txn.get()).ok());
  EXPECT_EQ(storage_.TableSize("T").value(), 1u);
  EXPECT_EQ(txn->state(), TxnState::kCommitted);
}

TEST_F(TxnManagerTest, AbortUndoesInsert) {
  auto txn = txns_->Begin();
  ASSERT_TRUE(txns_->Insert(txn.get(), "T", Row(1, "a")).ok());
  ASSERT_TRUE(txns_->Abort(txn.get()).ok());
  EXPECT_EQ(storage_.TableSize("T").value(), 0u);
  EXPECT_EQ(txn->state(), TxnState::kAborted);
}

TEST_F(TxnManagerTest, AbortUndoesDeletePreservingRowId) {
  auto rid = storage_.Insert("T", Row(1, "a"));
  ASSERT_TRUE(rid.ok());
  auto txn = txns_->Begin();
  ASSERT_TRUE(txns_->Delete(txn.get(), "T", rid.value()).ok());
  EXPECT_EQ(storage_.TableSize("T").value(), 0u);
  ASSERT_TRUE(txns_->Abort(txn.get()).ok());
  EXPECT_EQ(storage_.TableSize("T").value(), 1u);
  // Content restored under the original row id.
  auto row = storage_.Get("T", rid.value());
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->at(1).string_value(), "a");
}

TEST_F(TxnManagerTest, AbortUndoesUpdate) {
  auto rid = storage_.Insert("T", Row(1, "original"));
  ASSERT_TRUE(rid.ok());
  auto txn = txns_->Begin();
  ASSERT_TRUE(txns_->Update(txn.get(), "T", rid.value(), Row(1, "new")).ok());
  ASSERT_TRUE(txns_->Abort(txn.get()).ok());
  EXPECT_EQ(storage_.Get("T", rid.value())->at(1).string_value(), "original");
}

TEST_F(TxnManagerTest, AbortUndoesInReverseOrder) {
  auto txn = txns_->Begin();
  auto rid = txns_->Insert(txn.get(), "T", Row(1, "a"));
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(txns_->Update(txn.get(), "T", rid.value(), Row(1, "b")).ok());
  ASSERT_TRUE(txns_->Delete(txn.get(), "T", rid.value()).ok());
  ASSERT_TRUE(txns_->Abort(txn.get()).ok());
  EXPECT_EQ(storage_.TableSize("T").value(), 0u);
}

TEST_F(TxnManagerTest, OperationsOnEndedTxnFail) {
  auto txn = txns_->Begin();
  ASSERT_TRUE(txns_->Commit(txn.get()).ok());
  EXPECT_EQ(txns_->Insert(txn.get(), "T", Row(1, "a")).status().code(),
            StatusCode::kAborted);
  EXPECT_EQ(txns_->Commit(txn.get()).code(), StatusCode::kAborted);
  EXPECT_EQ(txns_->Abort(txn.get()).code(), StatusCode::kAborted);
}

TEST_F(TxnManagerTest, ReadsSeeOwnWrites) {
  auto txn = txns_->Begin();
  auto rid = txns_->Insert(txn.get(), "T", Row(5, "mine"));
  ASSERT_TRUE(rid.ok());
  auto got = txns_->Get(txn.get(), "T", rid.value());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->at(1).string_value(), "mine");
  EXPECT_EQ(txns_->Scan(txn.get(), "T")->size(), 1u);
  ASSERT_TRUE(txns_->Commit(txn.get()).ok());
}

TEST_F(TxnManagerTest, WriterBlocksWriter) {
  auto t1 = txns_->Begin();
  auto t2 = txns_->Begin();
  ASSERT_TRUE(txns_->Insert(t1.get(), "T", Row(1, "a")).ok());
  // t2 cannot write T while t1 holds the X lock; lock wait times out.
  auto blocked = txns_->Insert(t2.get(), "T", Row(2, "b"));
  EXPECT_EQ(blocked.status().code(), StatusCode::kTimedOut);
  ASSERT_TRUE(txns_->Commit(t1.get()).ok());
  // After commit the lock is free.
  EXPECT_TRUE(txns_->Insert(t2.get(), "T", Row(2, "b")).ok());
  ASSERT_TRUE(txns_->Commit(t2.get()).ok());
}

TEST_F(TxnManagerTest, IndexLookupUnderTxn) {
  ASSERT_TRUE(storage_.CreateIndex("T", "k").ok());
  ASSERT_TRUE(storage_.Insert("T", Row(9, "x")).ok());
  auto txn = txns_->Begin();
  auto rids = txns_->IndexLookup(txn.get(), "T", "k", Value::Int64(9));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 1u);
  ASSERT_TRUE(txns_->Commit(txn.get()).ok());
}

TEST_F(TxnManagerTest, DistinctTxnIds) {
  auto a = txns_->Begin();
  auto b = txns_->Begin();
  EXPECT_NE(a->id(), b->id());
  ASSERT_TRUE(txns_->Abort(a.get()).ok());
  ASSERT_TRUE(txns_->Abort(b.get()).ok());
}

}  // namespace
}  // namespace youtopia
