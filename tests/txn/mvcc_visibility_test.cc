// Snapshot-visibility edge cases for the MVCC subsystem (design
// decision #10): the watermark protocol that keeps multi-row commits
// atomic to lock-free readers, version-chain truncation at the
// num_versions budget, and the GC low-water mark that pins every
// version a live snapshot can still see. The threaded cases run under
// ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/heap_table.h"
#include "storage/storage_engine.h"
#include "txn/mvcc.h"

namespace youtopia {
namespace {

Schema TestSchema() {
  return Schema({{"k", DataType::kInt64, false},
                 {"v", DataType::kInt64, false}});
}

Tuple Row(int64_t k, int64_t v) {
  return Tuple({Value::Int64(k), Value::Int64(v)});
}

// ---------------------------------------------------------------- clock

TEST(MvccControllerTest, WatermarkHoldsBelowOldestInflightCommit) {
  MvccController mvcc;
  const Ts t1 = mvcc.BeginCommit();
  const Ts t2 = mvcc.BeginCommit();
  ASSERT_GT(t2, t1);
  // T2 finishes first; T1 is still stamping rows, so no snapshot may
  // open at or above t1 — it could catch T1's commit half-applied.
  mvcc.EndCommit(t2);
  {
    SnapshotHandle snap(&mvcc);
    EXPECT_LT(snap.ts(), t1);
  }
  mvcc.EndCommit(t1);
  SnapshotHandle snap(&mvcc);
  EXPECT_GE(snap.ts(), t2);
}

TEST(MvccControllerTest, LowWaterTracksOldestActiveSnapshot) {
  MvccController mvcc;
  SnapshotHandle old_snap(&mvcc);
  const Ts pinned = old_snap.ts();
  // Commits advance the watermark, but the low-water mark stays pinned
  // at the open snapshot.
  for (int i = 0; i < 3; ++i) mvcc.EndCommit(mvcc.BeginCommit());
  EXPECT_GT(mvcc.watermark(), pinned);
  EXPECT_EQ(mvcc.LowWater(), pinned);
  old_snap.Release();
  EXPECT_EQ(mvcc.LowWater(), mvcc.watermark());
}

// ----------------------------------------------------------- visibility

class MvccVisibilityTest : public ::testing::Test {
 protected:
  // num_versions = 4: MVCC on, with a small retention budget.
  MvccVisibilityTest() : storage_(4) {}

  void SetUp() override {
    ASSERT_TRUE(storage_.CreateTable("T", TestSchema()).ok());
  }

  StorageEngine storage_;
};

TEST_F(MvccVisibilityTest, SnapshotIgnoresPendingAndLaterCommits) {
  auto rid = storage_.Insert("T", Row(1, 10));
  ASSERT_TRUE(rid.ok());

  SnapshotHandle snap(&storage_.mvcc());
  // A concurrent writer's pending version is invisible regardless of
  // timestamps.
  constexpr TxnId kWriter = 77;
  ASSERT_TRUE(storage_.Update("T", rid.value(), Row(1, 20), kWriter).ok());
  auto seen = storage_.GetSnapshot("T", rid.value(), snap.ts());
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->at(1).int64_value(), 10);
  // ...and stays invisible to this snapshot even after the writer
  // commits (the commit timestamp is newer than the snapshot).
  ASSERT_TRUE(storage_.CommitTxn(kWriter).ok());
  seen = storage_.GetSnapshot("T", rid.value(), snap.ts());
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->at(1).int64_value(), 10);
  // A snapshot opened after the commit sees the new value.
  SnapshotHandle fresh(&storage_.mvcc());
  seen = storage_.GetSnapshot("T", rid.value(), fresh.ts());
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->at(1).int64_value(), 20);
}

TEST_F(MvccVisibilityTest, SnapshotSeesDeleteOnlyAfterCommit) {
  auto rid = storage_.Insert("T", Row(1, 10));
  ASSERT_TRUE(rid.ok());
  SnapshotHandle snap(&storage_.mvcc());
  constexpr TxnId kWriter = 5;
  ASSERT_TRUE(storage_.Delete("T", rid.value(), kWriter).ok());
  ASSERT_TRUE(storage_.CommitTxn(kWriter).ok());
  // The old snapshot still browses the deleted row; a fresh one does
  // not.
  EXPECT_TRUE(storage_.GetSnapshot("T", rid.value(), snap.ts()).ok());
  EXPECT_EQ(storage_.ScanSnapshot("T", snap.ts()).value().size(), 1u);
  SnapshotHandle fresh(&storage_.mvcc());
  EXPECT_FALSE(storage_.GetSnapshot("T", rid.value(), fresh.ts()).ok());
  EXPECT_EQ(storage_.ScanSnapshot("T", fresh.ts()).value().size(), 0u);
}

TEST_F(MvccVisibilityTest, GcNeverReclaimsWhatALiveSnapshotSees) {
  auto rid = storage_.Insert("T", Row(1, 0));
  ASSERT_TRUE(rid.ok());
  SnapshotHandle old_snap(&storage_.mvcc());

  // Push the chain well past the num_versions = 4 budget while the old
  // snapshot is open: the budget must yield to visibility.
  for (int64_t i = 1; i <= 8; ++i) {
    const TxnId txn = 100 + static_cast<TxnId>(i);
    ASSERT_TRUE(storage_.Update("T", rid.value(), Row(1, i), txn).ok());
    ASSERT_TRUE(storage_.CommitTxn(txn).ok());
  }
  auto seen = storage_.GetSnapshot("T", rid.value(), old_snap.ts());
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->at(1).int64_value(), 0);

  // After the snapshot closes, vacuum trims the chain back to the
  // budget — the original version is reclaimable now.
  const Ts released_ts = old_snap.ts();
  old_snap.Release();
  storage_.Vacuum();
  EXPECT_FALSE(storage_.GetSnapshot("T", rid.value(), released_ts).ok());
  SnapshotHandle fresh(&storage_.mvcc());
  seen = storage_.GetSnapshot("T", rid.value(), fresh.ts());
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->at(1).int64_value(), 8);
}

TEST_F(MvccVisibilityTest, AbortDiscardsPendingVersions) {
  auto rid = storage_.Insert("T", Row(1, 10));
  ASSERT_TRUE(rid.ok());
  constexpr TxnId kWriter = 9;
  ASSERT_TRUE(storage_.Update("T", rid.value(), Row(1, 20), kWriter).ok());
  ASSERT_TRUE(storage_.AbortTxn(kWriter).ok());
  SnapshotHandle snap(&storage_.mvcc());
  auto seen = storage_.GetSnapshot("T", rid.value(), snap.ts());
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->at(1).int64_value(), 10);
  // Current reads agree.
  EXPECT_EQ(storage_.Get("T", rid.value())->at(1).int64_value(), 10);
}

TEST_F(MvccVisibilityTest, IndexLookupSnapshotResolvesAtTheSnapshot) {
  ASSERT_TRUE(storage_.CreateIndex("T", "v").ok());
  auto rid = storage_.Insert("T", Row(1, 10));
  ASSERT_TRUE(rid.ok());
  SnapshotHandle snap(&storage_.mvcc());
  constexpr TxnId kWriter = 3;
  ASSERT_TRUE(storage_.Update("T", rid.value(), Row(1, 20), kWriter).ok());
  ASSERT_TRUE(storage_.CommitTxn(kWriter).ok());

  // The old snapshot finds the row under its old key, not the new one.
  auto old_key = storage_.IndexLookupSnapshot("T", "v", Value::Int64(10),
                                              snap.ts());
  ASSERT_TRUE(old_key.ok());
  ASSERT_EQ(old_key->size(), 1u);
  EXPECT_EQ(old_key->at(0).second.at(1).int64_value(), 10);
  auto new_key = storage_.IndexLookupSnapshot("T", "v", Value::Int64(20),
                                              snap.ts());
  ASSERT_TRUE(new_key.ok());
  EXPECT_TRUE(new_key->empty());

  // A fresh snapshot sees the flip, and the *current* lookup contract
  // (head version only) holds for existing consumers.
  SnapshotHandle fresh(&storage_.mvcc());
  new_key = storage_.IndexLookupSnapshot("T", "v", Value::Int64(20),
                                         fresh.ts());
  ASSERT_TRUE(new_key.ok());
  EXPECT_EQ(new_key->size(), 1u);
  EXPECT_EQ(storage_.IndexLookup("T", "v", Value::Int64(10))->size(), 0u);
  EXPECT_EQ(storage_.IndexLookup("T", "v", Value::Int64(20))->size(), 1u);
}

// ----------------------------------------------------------- truncation

TEST(MvccTruncationTest, ChainTrimsToNumVersionsWithNoSnapshotsOpen) {
  HeapTable table("t", TestSchema(), /*num_versions=*/3);
  auto rid = table.Insert(Row(1, 0));
  ASSERT_TRUE(rid.ok());
  // Commit pattern mirrors the engine: each commit i computes its
  // low-water mark as the previous watermark (no snapshots open).
  for (int64_t i = 1; i <= 7; ++i) {
    const TxnId txn = 40 + static_cast<TxnId>(i);
    const Ts commit_ts = kBaseTs + static_cast<Ts>(i);
    ASSERT_TRUE(
        table.Update(rid.value(), Row(1, i), VersionStamp::Pending(txn)).ok());
    ASSERT_TRUE(table
                    .CommitVersions(rid.value(), txn, commit_ts,
                                    /*low_water=*/commit_ts - 1,
                                    /*pruned=*/nullptr,
                                    /*slot_cleared=*/nullptr)
                    .ok());
    EXPECT_LE(table.VersionCount(rid.value()), 3u);
  }
  // The newest versions survive, oldest first to go.
  EXPECT_EQ(table.Get(rid.value())->at(1).int64_value(), 7);
  EXPECT_TRUE(table.GetVisible(rid.value(), kBaseTs + 6).ok());
  EXPECT_FALSE(table.GetVisible(rid.value(), kBaseTs + 3).ok());
}

TEST(MvccTruncationTest, IntraTxnRewritesCollapseToOnePendingVersion) {
  HeapTable table("t", TestSchema(), /*num_versions=*/4);
  auto rid = table.Insert(Row(1, 0));
  ASSERT_TRUE(rid.ok());
  constexpr TxnId kWriter = 6;
  for (int64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(table
                    .Update(rid.value(), Row(1, i),
                            VersionStamp::Pending(kWriter))
                    .ok());
  }
  // One pending version (the last rewrite) atop the committed base.
  EXPECT_EQ(table.VersionCount(rid.value()), 2u);
  ASSERT_TRUE(table
                  .CommitVersions(rid.value(), kWriter, kBaseTs + 1, kBaseTs,
                                  nullptr, nullptr)
                  .ok());
  EXPECT_EQ(table.Get(rid.value())->at(1).int64_value(), 5);
}

// ----------------------------------------------------------- concurrency

TEST(MvccConcurrencyTest, ReadersNeverObserveATornMultiRowCommit) {
  // A writer updates two rows inside each transaction; concurrent
  // lock-free readers must see both rows move together — the watermark
  // protocol in action, mid-commit snapshots included. Run under TSan.
  StorageEngine storage(8);
  ASSERT_TRUE(storage.CreateTable("T", TestSchema()).ok());
  auto rid_a = storage.Insert("T", Row(1, 0));
  auto rid_b = storage.Insert("T", Row(2, 0));
  ASSERT_TRUE(rid_a.ok() && rid_b.ok());

  std::atomic<bool> done{false};
  std::atomic<size_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        SnapshotHandle snap(&storage.mvcc());
        auto a = storage.GetSnapshot("T", rid_a.value(), snap.ts());
        auto b = storage.GetSnapshot("T", rid_b.value(), snap.ts());
        if (!a.ok() || !b.ok()) {
          ++torn;
          continue;
        }
        if (a->at(1).int64_value() != b->at(1).int64_value()) ++torn;
      }
    });
  }
  for (int64_t i = 1; i <= 300; ++i) {
    const TxnId txn = static_cast<TxnId>(i);
    ASSERT_TRUE(storage.Update("T", rid_a.value(), Row(1, i), txn).ok());
    ASSERT_TRUE(storage.Update("T", rid_b.value(), Row(2, i), txn).ok());
    ASSERT_TRUE(storage.CommitTxn(txn).ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST(MvccConcurrencyTest, VacuumRacesReadersWithoutReclaimingLiveVersions) {
  StorageEngine storage(2);
  ASSERT_TRUE(storage.CreateTable("T", TestSchema()).ok());
  auto rid = storage.Insert("T", Row(1, 0));
  ASSERT_TRUE(rid.ok());

  std::atomic<bool> done{false};
  std::atomic<size_t> missing{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      SnapshotHandle snap(&storage.mvcc());
      // Whatever the snapshot pinned must stay readable for the
      // snapshot's whole lifetime, vacuum or not.
      for (int spin = 0; spin < 8; ++spin) {
        if (!storage.GetSnapshot("T", rid.value(), snap.ts()).ok()) ++missing;
      }
    }
  });
  for (int64_t i = 1; i <= 300; ++i) {
    const TxnId txn = static_cast<TxnId>(i);
    ASSERT_TRUE(storage.Update("T", rid.value(), Row(1, i), txn).ok());
    ASSERT_TRUE(storage.CommitTxn(txn).ok());
    if (i % 7 == 0) storage.Vacuum();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(missing.load(), 0u);
}

}  // namespace
}  // namespace youtopia
