#include <gtest/gtest.h>

#include "travel/data_generator.h"
#include "travel/friend_graph.h"
#include "travel/notification_bus.h"
#include "travel/travel_schema.h"

namespace youtopia::travel {
namespace {

TEST(TravelSchemaTest, CreatesAllTables) {
  Youtopia db;
  ASSERT_TRUE(CreateTravelSchema(&db).ok());
  for (const char* table :
       {kFlightsTable, kAirlinesTable, kHotelsTable, kSeatsTable,
        kReservationTable, kHotelReservationTable, kSeatReservationTable}) {
    EXPECT_TRUE(db.storage().catalog().HasTable(table)) << table;
  }
  EXPECT_TRUE(db.storage().HasIndex("Flights", "dest"));
  EXPECT_TRUE(db.storage().HasIndex("Reservation", "traveler"));
}

TEST(TravelSchemaTest, Figure1DataExact) {
  Youtopia db;
  ASSERT_TRUE(SetupFigure1(&db).ok());
  auto flights = db.Execute("SELECT fno FROM Flights WHERE dest = 'Paris'");
  ASSERT_TRUE(flights.ok());
  EXPECT_EQ(flights->rows.size(), 3u);
  auto airlines = db.Execute(
      "SELECT airline FROM Airlines WHERE fno = 134");
  ASSERT_TRUE(airlines.ok());
  ASSERT_EQ(airlines->rows.size(), 1u);
  EXPECT_EQ(airlines->rows[0].at(0).string_value(), "Lufthansa");
}

TEST(DataGeneratorTest, GeneratesConfiguredShape) {
  Youtopia db;
  ASSERT_TRUE(CreateTravelSchema(&db).ok());
  DataGeneratorConfig config;
  config.cities = {"A", "B", "C"};
  config.flights_per_route_per_day = 2;
  config.days = 2;
  config.hotels_per_city = 2;
  config.seats_per_flight = 3;
  auto generated = GenerateTravelData(&db, config);
  ASSERT_TRUE(generated.ok()) << generated.status();
  // 3 cities -> 6 ordered pairs, 2 flights/day, 2 days = 24 flights.
  EXPECT_EQ(generated->flights, 24u);
  EXPECT_EQ(generated->seats, 24u * 3u);
  EXPECT_EQ(generated->hotels, 6u);
  EXPECT_EQ(db.storage().TableSize("Flights").value(), 24u);
  EXPECT_EQ(db.storage().TableSize("Airlines").value(), 24u);
  EXPECT_EQ(db.storage().TableSize("Hotels").value(), 6u * 2u);  // per day
  EXPECT_EQ(db.storage().TableSize("Seats").value(), 72u);
}

TEST(DataGeneratorTest, DeterministicUnderSeed) {
  auto run = [](uint64_t seed) {
    Youtopia db;
    EXPECT_TRUE(CreateTravelSchema(&db).ok());
    DataGeneratorConfig config;
    config.seed = seed;
    config.cities = {"A", "B"};
    config.days = 1;
    EXPECT_TRUE(GenerateTravelData(&db, config).ok());
    auto rows = db.Execute("SELECT price FROM Flights");
    std::vector<int64_t> prices;
    for (const auto& row : rows->rows) {
      prices.push_back(row.at(0).int64_value());
    }
    return prices;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(DataGeneratorTest, PricesWithinBounds) {
  Youtopia db;
  ASSERT_TRUE(CreateTravelSchema(&db).ok());
  DataGeneratorConfig config;
  config.cities = {"A", "B"};
  config.days = 2;
  ASSERT_TRUE(GenerateTravelData(&db, config).ok());
  auto rows = db.Execute("SELECT price FROM Flights");
  for (const auto& row : rows->rows) {
    EXPECT_GE(row.at(0).int64_value(), config.min_price);
    EXPECT_LE(row.at(0).int64_value(), config.max_price);
  }
}

TEST(FriendGraphTest, BasicOperations) {
  FriendGraph graph;
  graph.AddFriendship("Jerry", "Kramer");
  graph.AddFriendship("Kramer", "Elaine");
  EXPECT_TRUE(graph.AreFriends("Jerry", "Kramer"));
  EXPECT_TRUE(graph.AreFriends("Kramer", "Jerry"));  // undirected
  EXPECT_FALSE(graph.AreFriends("Jerry", "Elaine"));
  EXPECT_EQ(graph.FriendsOf("Kramer"),
            (std::vector<std::string>{"Elaine", "Jerry"}));
  EXPECT_TRUE(graph.FriendsOf("Newman").empty());
  EXPECT_EQ(graph.num_users(), 3u);
  EXPECT_EQ(graph.num_friendships(), 2u);
}

TEST(FriendGraphTest, SelfAndDuplicateEdgesIgnored) {
  FriendGraph graph;
  graph.AddFriendship("A", "A");
  EXPECT_EQ(graph.num_friendships(), 0u);
  graph.AddFriendship("A", "B");
  graph.AddFriendship("B", "A");
  EXPECT_EQ(graph.num_friendships(), 1u);
}

TEST(FriendGraphTest, CliqueConnectsEveryPair) {
  auto graph = FriendGraph::Clique({"A", "B", "C", "D"});
  EXPECT_EQ(graph.num_friendships(), 6u);
  EXPECT_TRUE(graph.AreFriends("A", "D"));
  EXPECT_TRUE(graph.AreFriends("B", "C"));
}

TEST(FriendGraphTest, RandomGraphDeterministic) {
  auto a = FriendGraph::Random(20, 0.3, 42);
  auto b = FriendGraph::Random(20, 0.3, 42);
  EXPECT_EQ(a.num_friendships(), b.num_friendships());
  EXPECT_EQ(a.num_users(), 20u);
  auto dense = FriendGraph::Random(20, 1.0, 1);
  EXPECT_EQ(dense.num_friendships(), 190u);
  auto sparse = FriendGraph::Random(20, 0.0, 1);
  EXPECT_EQ(sparse.num_friendships(), 0u);
}

TEST(NotificationBusTest, PublishAndRead) {
  NotificationBus bus;
  bus.Publish("Jerry", "booking confirmed");
  bus.Publish("Jerry", "second message");
  bus.Publish("Kramer", "hello");
  EXPECT_EQ(bus.MessagesFor("Jerry").size(), 2u);
  EXPECT_EQ(bus.MessagesFor("Jerry")[0], "booking confirmed");
  EXPECT_EQ(bus.MessagesFor("Kramer").size(), 1u);
  EXPECT_TRUE(bus.MessagesFor("Newman").empty());
  EXPECT_EQ(bus.total_messages(), 3u);
}

TEST(NotificationBusTest, SubscribersReceiveCallbacks) {
  NotificationBus bus;
  std::vector<std::string> seen;
  bus.Subscribe([&seen](const std::string& user, const std::string& msg) {
    seen.push_back(user + ":" + msg);
  });
  bus.Publish("Jerry", "hi");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "Jerry:hi");
}

}  // namespace
}  // namespace youtopia::travel
