#include "travel/workload.h"

#include <gtest/gtest.h>

#include "travel/data_generator.h"
#include "travel/travel_schema.h"

namespace youtopia::travel {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(CreateTravelSchema(&db_).ok());
    DataGeneratorConfig data;
    data.cities = {"NewYork", "Paris"};
    data.flights_per_route_per_day = 4;
    data.days = 2;
    ASSERT_TRUE(GenerateTravelData(&db_, data).ok());
  }

  Youtopia db_;
};

TEST_F(WorkloadTest, AllPairsComplete) {
  WorkloadConfig config;
  config.sessions = 4;
  config.requests_per_session = 10;
  config.group_fraction = 0.0;
  config.hotel_fraction = 0.0;
  auto report = RunLoadedWorkload(&db_, "Paris", config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->submitted, 40u);
  EXPECT_EQ(report->timed_out, 0u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->satisfied, report->submitted);
  EXPECT_EQ(report->latency.count(), report->satisfied);
  EXPECT_GT(report->SatisfiedPerSecond(), 0.0);
  EXPECT_EQ(db_.coordinator().pending_count(), 0u);
}

TEST_F(WorkloadTest, MixedGroupsAndHotelsComplete) {
  WorkloadConfig config;
  config.sessions = 4;
  config.requests_per_session = 8;
  config.group_fraction = 0.4;
  config.group_size = 3;
  config.hotel_fraction = 0.5;
  auto report = RunLoadedWorkload(&db_, "Paris", config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->timed_out, 0u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->satisfied, report->submitted);

  // Every workload pair/group really shares flights: spot-check via the
  // invariant that reservations equal satisfied requests.
  auto reservations = db_.Execute("SELECT * FROM Reservation");
  ASSERT_TRUE(reservations.ok());
  EXPECT_EQ(reservations->rows.size(), report->satisfied);
}

TEST_F(WorkloadTest, DeterministicUnderSeed) {
  WorkloadConfig config;
  config.sessions = 2;
  config.requests_per_session = 6;
  config.seed = 123;
  auto first = RunLoadedWorkload(&db_, "Paris", config);
  ASSERT_TRUE(first.ok());

  Youtopia db2;
  ASSERT_TRUE(CreateTravelSchema(&db2).ok());
  DataGeneratorConfig data;
  data.cities = {"NewYork", "Paris"};
  data.flights_per_route_per_day = 4;
  data.days = 2;
  ASSERT_TRUE(GenerateTravelData(&db2, data).ok());
  auto second = RunLoadedWorkload(&db2, "Paris", config);
  ASSERT_TRUE(second.ok());
  // Same plan shape (thread scheduling varies, outcomes should not).
  EXPECT_EQ(first->submitted, second->submitted);
  EXPECT_EQ(first->satisfied, second->satisfied);
}

TEST_F(WorkloadTest, PoolDrivenModeCompletesAllPairs) {
  // Same workload, driven through the executor service: one driver
  // thread, a 4-worker pool, per-session FIFO domains. Outcomes must
  // match the thread-per-session mode: everything completes.
  YoutopiaConfig db_config;
  db_config.executor.num_workers = 4;
  Youtopia pooled(db_config);
  ASSERT_TRUE(CreateTravelSchema(&pooled).ok());
  DataGeneratorConfig data;
  data.cities = {"NewYork", "Paris"};
  data.flights_per_route_per_day = 4;
  data.days = 2;
  ASSERT_TRUE(GenerateTravelData(&pooled, data).ok());

  WorkloadConfig config;
  config.sessions = 4;
  config.requests_per_session = 10;
  config.group_fraction = 0.0;
  config.hotel_fraction = 0.0;
  auto report = RunLoadedWorkload(&pooled, "Paris", config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->submitted, 40u);
  EXPECT_EQ(report->timed_out, 0u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->satisfied, report->submitted);
  EXPECT_EQ(pooled.coordinator().pending_count(), 0u);
  // Executor stats flowed into the report.
  EXPECT_EQ(report->workers, 4u);
  EXPECT_GE(report->tasks_executed, report->submitted);
  EXPECT_NE(report->ToString().find("executor{"), std::string::npos);
  // So did plan-cache activity (every statement prepares through it).
  EXPECT_GT(report->plan_cache_hits + report->plan_cache_misses, 0u);
  EXPECT_NE(report->ToString().find("plan_cache{"), std::string::npos);
}

TEST_F(WorkloadTest, RejectsDegenerateConfig) {
  WorkloadConfig config;
  config.sessions = 0;
  EXPECT_FALSE(RunLoadedWorkload(&db_, "Paris", config).ok());
}

TEST_F(WorkloadTest, ReportToStringMentionsThroughput) {
  WorkloadConfig config;
  config.sessions = 1;
  config.requests_per_session = 2;
  config.group_fraction = 0.0;
  auto report = RunLoadedWorkload(&db_, "Paris", config);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->ToString().find("satisfied/s"), std::string::npos);
}

}  // namespace
}  // namespace youtopia::travel
