#include "travel/middle_tier.h"

#include <gtest/gtest.h>

#include "travel/travel_schema.h"

namespace youtopia::travel {
namespace {

using std::chrono::milliseconds;

class MiddleTierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(SetupFigure1(&db_).ok());
    // Figure-1 schema lacks hotels; add them plus the hotel answer
    // relation for the flight+hotel scenario.
    ASSERT_TRUE(db_.ExecuteScript(
                       "CREATE TABLE Hotels (hid INT NOT NULL, city TEXT NOT "
                       "NULL, day INT NOT NULL, price INT NOT NULL, rooms INT "
                       "NOT NULL);"
                       "INSERT INTO Hotels VALUES (501, 'Paris', 1, 120, 4), "
                       "(502, 'Paris', 1, 300, 4);"
                       "CREATE TABLE HotelReservation (traveler TEXT NOT "
                       "NULL, hid INT NOT NULL);"
                       "CREATE TABLE SeatReservation (traveler TEXT NOT "
                       "NULL, fno INT NOT NULL, seat INT NOT NULL);")
                    .ok());
    service_ = std::make_unique<TravelService>(
        &db_, FriendGraph::Clique({"Jerry", "Kramer", "Elaine", "George"}),
        &bus_);
  }

  Youtopia db_;
  NotificationBus bus_;
  std::unique_ptr<TravelService> service_;
};

TEST_F(MiddleTierTest, BuildsPaperShapedSql) {
  TravelRequest request;
  request.user = "Kramer";
  request.flight_companions = {"Jerry"};
  request.dest = "Paris";
  auto sql = TravelService::BuildEntangledSql(request);
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_EQ(*sql,
            "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN "
            "(SELECT fno FROM Flights WHERE dest = 'Paris') AND "
            "('Jerry', fno) IN ANSWER Reservation CHOOSE 1");
}

TEST_F(MiddleTierTest, BuildValidation) {
  TravelRequest bad;
  bad.dest = "Paris";
  EXPECT_FALSE(TravelService::BuildEntangledSql(bad).ok());  // no user
  bad.user = "Jerry";
  bad.dest = "";
  EXPECT_FALSE(TravelService::BuildEntangledSql(bad).ok());  // no dest
  TravelRequest adjacent;
  adjacent.user = "Jerry";
  adjacent.dest = "Paris";
  adjacent.adjacent_seat = true;  // needs exactly one companion
  EXPECT_FALSE(TravelService::BuildEntangledSql(adjacent).ok());
}

TEST_F(MiddleTierTest, FiltersAppearInSql) {
  TravelRequest request;
  request.user = "Jerry";
  request.dest = "Paris";
  request.origin = "NewYork";
  request.day = 3;
  request.max_price = 700;
  auto sql = TravelService::BuildEntangledSql(request);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("origin = 'NewYork'"), std::string::npos);
  EXPECT_NE(sql->find("day = 3"), std::string::npos);
  EXPECT_NE(sql->find("price <= 700"), std::string::npos);
}

TEST_F(MiddleTierTest, NonFriendsRejected) {
  auto handle = service_->BookFlightWithFriend("Jerry", "Newman", "Paris");
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MiddleTierTest, PairBookingCoordinates) {
  auto kramer = service_->BookFlightWithFriend("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(kramer.ok()) << kramer.status();
  EXPECT_FALSE(kramer->Done());
  auto jerry = service_->BookFlightWithFriend("Jerry", "Kramer", "Paris");
  ASSERT_TRUE(jerry.ok());
  EXPECT_TRUE(kramer->Done());
  EXPECT_TRUE(jerry->Done());
  EXPECT_EQ(kramer->Answers()[0].at(1), jerry->Answers()[0].at(1));
}

TEST_F(MiddleTierTest, GroupRequestSubmitsAsOneBatch) {
  const std::vector<std::string> group = {"Jerry", "Kramer", "Elaine"};
  std::vector<TravelRequest> requests;
  for (const auto& self : group) {
    TravelRequest request;
    request.user = self;
    for (const auto& other : group) {
      if (other != self) request.flight_companions.push_back(other);
    }
    request.dest = "Paris";
    requests.push_back(std::move(request));
  }
  auto handles = service_->SubmitGroupRequest(requests);
  ASSERT_TRUE(handles.ok()) << handles.status();
  ASSERT_EQ(handles->size(), 3u);
  for (const auto& handle : *handles) EXPECT_TRUE(handle.Done());
  EXPECT_EQ((*handles)[0].Answers()[0].at(1),
            (*handles)[2].Answers()[0].at(1));
  auto stats = db_.coordinator().stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_queries, 3u);
}

TEST_F(MiddleTierTest, GroupRequestValidatesEveryMember) {
  TravelRequest good;
  good.user = "Jerry";
  good.flight_companions = {"Kramer"};
  good.dest = "Paris";
  TravelRequest bad;
  bad.user = "Kramer";
  bad.flight_companions = {"Newman"};  // not in the clique
  bad.dest = "Paris";
  auto handles = service_->SubmitGroupRequest({good, bad});
  EXPECT_EQ(handles.status().code(), StatusCode::kInvalidArgument);
  // All-or-nothing: the valid member was not registered either.
  EXPECT_EQ(db_.coordinator().pending_count(), 0u);
}

TEST_F(MiddleTierTest, NotifyOnCompletionPublishesWithoutBlocking) {
  auto kramer = service_->BookFlightWithFriend("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(kramer.ok());
  service_->NotifyOnCompletion(*kramer, "Kramer");
  EXPECT_EQ(bus_.MessagesFor("Kramer").size(), 0u);

  // Jerry's submission closes the pair; Kramer's notification is
  // published from that call path — nobody waited on the handle.
  auto jerry = service_->BookFlightWithFriend("Jerry", "Kramer", "Paris");
  ASSERT_TRUE(jerry.ok());
  ASSERT_EQ(bus_.MessagesFor("Kramer").size(), 1u);
  EXPECT_NE(bus_.MessagesFor("Kramer")[0].find("confirmed"),
            std::string::npos);

  // Registration on an already-completed handle publishes immediately.
  service_->NotifyOnCompletion(*jerry, "Jerry");
  ASSERT_EQ(bus_.MessagesFor("Jerry").size(), 1u);
}

TEST_F(MiddleTierTest, NotifyOnCompletionReportsCancellation) {
  auto kramer = service_->BookFlightWithFriend("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(kramer.ok());
  service_->NotifyOnCompletion(*kramer, "Kramer");
  ASSERT_TRUE(db_.coordinator().Cancel(kramer->id()).ok());
  ASSERT_EQ(bus_.MessagesFor("Kramer").size(), 1u);
  // A cancelled booking must not read as "still pending".
  EXPECT_NE(bus_.MessagesFor("Kramer")[0].find("cancelled"),
            std::string::npos);

  // Expiry reads as expiry.
  auto elaine = service_->BookFlightWithFriend("Elaine", "George", "Paris");
  ASSERT_TRUE(elaine.ok());
  service_->NotifyOnCompletion(*elaine, "Elaine");
  ASSERT_TRUE(db_.coordinator().ExpireOlderThan(milliseconds(0)).ok());
  ASSERT_EQ(bus_.MessagesFor("Elaine").size(), 1u);
  EXPECT_NE(bus_.MessagesFor("Elaine")[0].find("expired"),
            std::string::npos);
}

TEST_F(MiddleTierTest, WaitAndNotifyPublishes) {
  auto kramer = service_->BookFlightWithFriend("Kramer", "Jerry", "Paris");
  auto jerry = service_->BookFlightWithFriend("Jerry", "Kramer", "Paris");
  ASSERT_TRUE(kramer.ok());
  ASSERT_TRUE(jerry.ok());
  EXPECT_TRUE(service_->WaitAndNotify(*kramer, "Kramer").ok());
  EXPECT_TRUE(service_->WaitAndNotify(*jerry, "Jerry").ok());
  ASSERT_EQ(bus_.MessagesFor("Kramer").size(), 1u);
  EXPECT_NE(bus_.MessagesFor("Kramer")[0].find("confirmed"),
            std::string::npos);
}

TEST_F(MiddleTierTest, WaitAndNotifyReportsPending) {
  auto kramer = service_->BookFlightWithFriend("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(kramer.ok());
  EXPECT_EQ(service_->WaitAndNotify(*kramer, "Kramer", milliseconds(20))
                .code(),
            StatusCode::kTimedOut);
  ASSERT_EQ(bus_.MessagesFor("Kramer").size(), 1u);
  EXPECT_NE(bus_.MessagesFor("Kramer")[0].find("pending"),
            std::string::npos);
}

TEST_F(MiddleTierTest, FlightAndHotelCoordination) {
  auto jerry =
      service_->BookFlightAndHotelWithFriend("Jerry", "Kramer", "Paris");
  ASSERT_TRUE(jerry.ok()) << jerry.status();
  EXPECT_FALSE(jerry->Done());
  auto kramer =
      service_->BookFlightAndHotelWithFriend("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(kramer.ok());
  EXPECT_TRUE(jerry->Done());
  EXPECT_TRUE(kramer->Done());
  // Two heads: flight answer and hotel answer.
  ASSERT_EQ(jerry->Answers().size(), 2u);
  ASSERT_EQ(kramer->Answers().size(), 2u);
  EXPECT_EQ(jerry->Answers()[0].at(1), kramer->Answers()[0].at(1));  // fno
  EXPECT_EQ(jerry->Answers()[1].at(1), kramer->Answers()[1].at(1));  // hid
}

TEST_F(MiddleTierTest, BrowseFlights) {
  auto flights = service_->BrowseFlights("Paris");
  // Figure-1 Flights table lacks the richer columns; BrowseFlights
  // selects them, so this errors — verify with full schema instead.
  EXPECT_FALSE(flights.ok());

  Youtopia db2;
  ASSERT_TRUE(CreateTravelSchema(&db2).ok());
  ASSERT_TRUE(db2.Execute("INSERT INTO Flights VALUES "
                          "(1, 'NewYork', 'Paris', 1, 500, 5), "
                          "(2, 'NewYork', 'Paris', 2, 900, 5)")
                  .ok());
  TravelService service2(&db2, FriendGraph::Clique({"A", "B"}), nullptr);
  auto browse = service2.BrowseFlights("Paris", /*day=*/0,
                                       /*max_price=*/600);
  ASSERT_TRUE(browse.ok()) << browse.status();
  EXPECT_EQ(browse->rows.size(), 1u);
}

TEST_F(MiddleTierTest, FriendsOnFlightFiltersByFriendship) {
  ASSERT_TRUE(db_.Execute("INSERT INTO Reservation VALUES "
                          "('Kramer', 122), ('Newman', 122)")
                  .ok());
  auto friends = service_->FriendsOnFlight("Jerry", 122);
  ASSERT_TRUE(friends.ok());
  EXPECT_EQ(*friends, std::vector<std::string>{"Kramer"});
}

TEST_F(MiddleTierTest, DirectBookingCompletesImmediately) {
  auto handle = service_->BookFlightDirect("Jerry", 122);
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_TRUE(handle->Done());
  EXPECT_EQ(handle->Answers()[0].at(1).int64_value(), 122);
  auto account = service_->AccountView("Jerry");
  ASSERT_TRUE(account.ok());
  EXPECT_EQ(account->flights.rows.size(), 1u);
  EXPECT_TRUE(account->hotels.rows.empty());
}

TEST_F(MiddleTierTest, AdHocMixedCoordination) {
  // Jerry <-> Kramer on flight only; Kramer <-> Elaine on flight+hotel
  // (the demo's ad-hoc example, §3.1).
  auto jerry = service_->BookFlightWithFriend("Jerry", "Kramer", "Paris");
  ASSERT_TRUE(jerry.ok());

  TravelRequest kramer_request;
  kramer_request.user = "Kramer";
  kramer_request.flight_companions = {"Jerry", "Elaine"};
  kramer_request.hotel_companions = {"Elaine"};
  kramer_request.dest = "Paris";
  kramer_request.want_hotel = true;
  auto kramer = service_->SubmitRequest(kramer_request);
  ASSERT_TRUE(kramer.ok()) << kramer.status();

  TravelRequest elaine_request;
  elaine_request.user = "Elaine";
  elaine_request.flight_companions = {"Kramer"};
  elaine_request.hotel_companions = {"Kramer"};
  elaine_request.dest = "Paris";
  elaine_request.want_hotel = true;
  auto elaine = service_->SubmitRequest(elaine_request);
  ASSERT_TRUE(elaine.ok()) << elaine.status();

  EXPECT_TRUE(jerry->Done());
  EXPECT_TRUE(kramer->Done());
  EXPECT_TRUE(elaine->Done());
  // All three on the same flight.
  EXPECT_EQ(jerry->Answers()[0].at(1), kramer->Answers()[0].at(1));
  EXPECT_EQ(kramer->Answers()[0].at(1), elaine->Answers()[0].at(1));
  // Kramer and Elaine share a hotel.
  EXPECT_EQ(kramer->Answers()[1].at(1), elaine->Answers()[1].at(1));
}

TEST_F(MiddleTierTest, InventoryEnforcementConsumesSeats) {
  Youtopia db2;
  ASSERT_TRUE(CreateTravelSchema(&db2).ok());
  // One flight with exactly 2 seats.
  ASSERT_TRUE(db2.Execute("INSERT INTO Flights VALUES "
                          "(1, 'NewYork', 'Paris', 1, 500, 2)")
                  .ok());
  TravelService service2(&db2, FriendGraph::Clique({"A", "B", "C", "D"}),
                         nullptr);
  ASSERT_TRUE(service2.EnableInventoryEnforcement().ok());

  auto a = service2.BookFlightWithFriend("A", "B", "Paris");
  auto b = service2.BookFlightWithFriend("B", "A", "Paris");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Done());
  EXPECT_TRUE(b->Done());
  auto seats = db2.Execute("SELECT seats FROM Flights WHERE fno = 1");
  EXPECT_EQ(seats->rows[0].at(0).int64_value(), 0);

  // Flight is now full: the next pair cannot complete.
  auto c = service2.BookFlightWithFriend("C", "D", "Paris");
  auto d = service2.BookFlightWithFriend("D", "C", "Paris");
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(c->Done());
  EXPECT_FALSE(d->Done());
  EXPECT_GE(db2.coordinator().stats().failed_installs, 1u);
}

TEST_F(MiddleTierTest, AdjacentSeatRequestsAgreeOnOffsets) {
  TravelRequest a;
  a.user = "Jerry";
  a.flight_companions = {"Kramer"};
  a.dest = "Paris";
  a.adjacent_seat = true;
  auto sql_a = TravelService::BuildEntangledSql(a);
  ASSERT_TRUE(sql_a.ok());
  // Jerry < Kramer lexicographically: Jerry takes seat + 1.
  EXPECT_NE(sql_a->find("seat + 1"), std::string::npos);

  TravelRequest b = a;
  b.user = "Kramer";
  b.flight_companions = {"Jerry"};
  auto sql_b = TravelService::BuildEntangledSql(b);
  ASSERT_TRUE(sql_b.ok());
  EXPECT_NE(sql_b->find("seat - 1"), std::string::npos);
}

TEST_F(MiddleTierTest, AdjacentSeatEndToEnd) {
  Youtopia db2;
  ASSERT_TRUE(CreateTravelSchema(&db2).ok());
  ASSERT_TRUE(db2.Execute("INSERT INTO Flights VALUES "
                          "(1, 'NewYork', 'Paris', 1, 500, 4)")
                  .ok());
  ASSERT_TRUE(db2.Execute("INSERT INTO Seats VALUES "
                          "(1, 1), (1, 2), (1, 3), (1, 4)")
                  .ok());
  TravelService service2(&db2, FriendGraph::Clique({"Jerry", "Kramer"}),
                         nullptr);

  TravelRequest jerry;
  jerry.user = "Jerry";
  jerry.flight_companions = {"Kramer"};
  jerry.dest = "Paris";
  jerry.adjacent_seat = true;
  auto h1 = service2.SubmitRequest(jerry);
  ASSERT_TRUE(h1.ok()) << h1.status();

  TravelRequest kramer = jerry;
  kramer.user = "Kramer";
  kramer.flight_companions = {"Jerry"};
  auto h2 = service2.SubmitRequest(kramer);
  ASSERT_TRUE(h2.ok()) << h2.status();

  ASSERT_TRUE(h1->Done());
  ASSERT_TRUE(h2->Done());
  const Tuple ja = h1->Answers()[0];
  const Tuple ka = h2->Answers()[0];
  EXPECT_EQ(ja.at(1), ka.at(1));  // same flight
  EXPECT_EQ(ka.at(2).int64_value(), ja.at(2).int64_value() + 1);
}

// The whole application tier — pair booking, flight+hotel coordination
// (a multi-relation query that may cross shards), and callback-driven
// expiry notification — runs unchanged over a sharded coordinator.
TEST(ShardedMiddleTierTest, TravelFlowsUnchangedOnShardedCoordinator) {
  YoutopiaConfig config;
  config.coordinator.num_shards = 8;
  Youtopia db(config);
  ASSERT_TRUE(SetupFigure1(&db).ok());
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE Hotels (hid INT NOT NULL, city TEXT NOT "
                    "NULL, day INT NOT NULL, price INT NOT NULL, rooms INT "
                    "NOT NULL);"
                    "INSERT INTO Hotels VALUES (501, 'Paris', 1, 120, 4);"
                    "CREATE TABLE HotelReservation (traveler TEXT NOT NULL, "
                    "hid INT NOT NULL);")
                  .ok());
  NotificationBus bus;
  TravelService service(
      &db,
      FriendGraph::Clique({"Jerry", "Kramer", "Elaine", "George", "Newman"}),
      &bus);

  auto kramer = service.BookFlightWithFriend("Kramer", "Jerry", "Paris");
  ASSERT_TRUE(kramer.ok()) << kramer.status();
  service.NotifyOnCompletion(*kramer, "Kramer");
  auto jerry = service.BookFlightWithFriend("Jerry", "Kramer", "Paris");
  ASSERT_TRUE(jerry.ok());
  EXPECT_TRUE(kramer->Done());
  EXPECT_TRUE(jerry->Done());
  ASSERT_EQ(bus.MessagesFor("Kramer").size(), 1u);
  EXPECT_NE(bus.MessagesFor("Kramer")[0].find("confirmed"),
            std::string::npos);

  auto elaine =
      service.BookFlightAndHotelWithFriend("Elaine", "George", "Paris");
  ASSERT_TRUE(elaine.ok()) << elaine.status();
  auto george =
      service.BookFlightAndHotelWithFriend("George", "Elaine", "Paris");
  ASSERT_TRUE(george.ok()) << george.status();
  EXPECT_TRUE(elaine->Done());
  EXPECT_TRUE(george->Done());
  EXPECT_EQ(elaine->Answers()[1].at(1), george->Answers()[1].at(1));

  // Expiry still reaches the notification bus through OnComplete.
  // Newman never books, so Jerry's request cannot be satisfied — not
  // even from stored answers.
  auto lonely = service.BookFlightWithFriend("Jerry", "Newman", "Paris");
  ASSERT_TRUE(lonely.ok());
  EXPECT_FALSE(lonely->Done());
  service.NotifyOnCompletion(*lonely, "Jerry");
  auto expired =
      db.coordinator().ExpireOlderThan(std::chrono::milliseconds(0));
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired.value(), 1u);
  ASSERT_EQ(bus.MessagesFor("Jerry").size(), 1u);
  EXPECT_NE(bus.MessagesFor("Jerry")[0].find("expired"), std::string::npos);
}

}  // namespace
}  // namespace youtopia::travel
