#include "types/schema.h"

#include <gtest/gtest.h>

namespace youtopia {
namespace {

Schema FlightSchema() {
  return Schema({{"fno", DataType::kInt64, false},
                 {"dest", DataType::kString, false},
                 {"price", DataType::kInt64, true}});
}

TEST(SchemaTest, CreateValidatesDuplicates) {
  auto ok = Schema::Create({{"a", DataType::kInt64, true},
                            {"b", DataType::kString, true}});
  EXPECT_TRUE(ok.ok());
  auto dup = Schema::Create({{"a", DataType::kInt64, true},
                             {"A", DataType::kString, true}});
  EXPECT_FALSE(dup.ok());  // case-insensitive duplicate
  auto empty = Schema::Create({{"", DataType::kInt64, true}});
  EXPECT_FALSE(empty.ok());
}

TEST(SchemaTest, FindColumnIsCaseInsensitive) {
  Schema s = FlightSchema();
  EXPECT_EQ(s.FindColumn("fno").value(), 0u);
  EXPECT_EQ(s.FindColumn("DEST").value(), 1u);
  EXPECT_EQ(s.FindColumn("Price").value(), 2u);
  EXPECT_FALSE(s.FindColumn("missing").has_value());
}

TEST(SchemaTest, ColumnIndexReportsError) {
  Schema s = FlightSchema();
  EXPECT_TRUE(s.ColumnIndex("fno").ok());
  auto missing = s.ColumnIndex("nope");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ConcatAppendsColumns) {
  Schema left = FlightSchema();
  Schema right({{"airline", DataType::kString, false}});
  Schema joined = left.Concat(right);
  EXPECT_EQ(joined.num_columns(), 4u);
  EXPECT_EQ(joined.column(3).name, "airline");
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s({{"fno", DataType::kInt64, false}});
  EXPECT_EQ(s.ToString(), "(fno int64 NOT NULL)");
  Schema nullable({{"x", DataType::kString, true}});
  EXPECT_EQ(nullable.ToString(), "(x string)");
}

TEST(SchemaTest, EqualityComparesColumns) {
  EXPECT_EQ(FlightSchema(), FlightSchema());
  Schema other({{"fno", DataType::kInt64, false}});
  EXPECT_FALSE(FlightSchema() == other);
}

}  // namespace
}  // namespace youtopia
