#include "types/value.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <unordered_set>

namespace youtopia {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int64(7).type(), DataType::kInt64);
  EXPECT_EQ(Value::Double(1.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::String("x").type(), DataType::kString);
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int64(7).int64_value(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).double_value(), 1.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
}

TEST(ValueTest, EqualityIsTypeAndPayload) {
  EXPECT_EQ(Value::Int64(1), Value::Int64(1));
  EXPECT_NE(Value::Int64(1), Value::Int64(2));
  // Identity equality distinguishes int 1 from double 1.0.
  EXPECT_NE(Value::Int64(1), Value::Double(1.0));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int64(0));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
}

TEST(ValueTest, AsDoubleWidensIntegers) {
  EXPECT_DOUBLE_EQ(Value::Int64(4).AsDouble().value(), 4.0);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble().value(), 2.5);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, CoerceToWidensAndPreservesNull) {
  auto widened = Value::Int64(3).CoerceTo(DataType::kDouble);
  ASSERT_TRUE(widened.ok());
  EXPECT_EQ(widened->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(widened->double_value(), 3.0);

  auto null_coerced = Value::Null().CoerceTo(DataType::kInt64);
  ASSERT_TRUE(null_coerced.ok());
  EXPECT_TRUE(null_coerced->is_null());

  EXPECT_FALSE(Value::String("x").CoerceTo(DataType::kInt64).ok());
  EXPECT_FALSE(Value::Double(1.0).CoerceTo(DataType::kInt64).ok());
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // NULL < bool < numeric < string.
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int64(-100));
  EXPECT_LT(Value::Int64(5), Value::String(""));
  EXPECT_LT(Value::Bool(false), Value::Bool(true));
}

TEST(ValueTest, NumericOrderingInterleavesIntAndDouble) {
  EXPECT_LT(Value::Int64(1), Value::Double(1.5));
  EXPECT_LT(Value::Double(0.5), Value::Int64(1));
  EXPECT_FALSE(Value::Int64(2) < Value::Double(2.0));
  EXPECT_FALSE(Value::Double(2.0) < Value::Int64(2));
}

TEST(ValueTest, StringOrderingIsLexicographic) {
  EXPECT_LT(Value::String("Paris"), Value::String("Rome"));
  EXPECT_FALSE(Value::String("a") < Value::String("a"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Int64(5).Hash());
  EXPECT_EQ(Value::String("Paris").Hash(), Value::String("Paris").Hash());
  // Different types salt differently (no guarantee, but check the
  // common collision case int/bool).
  EXPECT_NE(Value::Int64(1).Hash(), Value::Bool(true).Hash());
}

TEST(ValueTest, WorksInUnorderedContainers) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::Int64(122));
  set.insert(Value::Int64(122));
  set.insert(Value::String("Paris"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Value::Int64(122)) > 0);
}

TEST(ValueTest, ToStringRendersSqlLiterals) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("O'Hare").ToString(), "'O''Hare'");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(ValueTest, DoubleToStringRoundTripsExactly) {
  // Values whose shortest round-trip form needs 16-17 significant
  // digits — the old "%g" (6 digits) corrupted all of these.
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          3.141592653589793,
                          2.2250738585072014e-308,
                          1.7976931348623157e308,
                          5e-324,
                          -123456.789012345678,
                          1e-9};
  for (double v : cases) {
    const std::string s = Value::Double(v).ToString();
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(ValueTest, DoubleToStringKeepsShortHumanReadableForms) {
  EXPECT_EQ(Value::Double(3.5).ToString(), "3.5");
  EXPECT_EQ(Value::Double(100.0).ToString(), "100");
  EXPECT_EQ(Value::Double(0.25).ToString(), "0.25");
}

TEST(DataTypeTest, NamesRoundTrip) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "int64");
  EXPECT_EQ(DataTypeFromString("INT").value(), DataType::kInt64);
  EXPECT_EQ(DataTypeFromString("Integer").value(), DataType::kInt64);
  EXPECT_EQ(DataTypeFromString("bigint").value(), DataType::kInt64);
  EXPECT_EQ(DataTypeFromString("TEXT").value(), DataType::kString);
  EXPECT_EQ(DataTypeFromString("varchar").value(), DataType::kString);
  EXPECT_EQ(DataTypeFromString("DOUBLE").value(), DataType::kDouble);
  EXPECT_EQ(DataTypeFromString("bool").value(), DataType::kBool);
  EXPECT_FALSE(DataTypeFromString("blob").ok());
}

TEST(DataTypeTest, Coercibility) {
  EXPECT_TRUE(IsCoercible(DataType::kInt64, DataType::kInt64));
  EXPECT_TRUE(IsCoercible(DataType::kInt64, DataType::kDouble));
  EXPECT_TRUE(IsCoercible(DataType::kNull, DataType::kString));
  EXPECT_FALSE(IsCoercible(DataType::kDouble, DataType::kInt64));
  EXPECT_FALSE(IsCoercible(DataType::kString, DataType::kInt64));
}

}  // namespace
}  // namespace youtopia
