#include "types/tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace youtopia {
namespace {

TEST(TupleTest, ConstructionAndAccess) {
  Tuple t({Value::String("Kramer"), Value::Int64(122)});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(0).string_value(), "Kramer");
  EXPECT_EQ(t.at(1).int64_value(), 122);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(Tuple().empty());
}

TEST(TupleTest, AppendGrows) {
  Tuple t;
  t.Append(Value::Int64(1));
  t.Append(Value::String("x"));
  EXPECT_EQ(t.size(), 2u);
}

TEST(TupleTest, ConcatAndProject) {
  Tuple a({Value::Int64(1), Value::Int64(2)});
  Tuple b({Value::Int64(3)});
  Tuple joined = a.Concat(b);
  ASSERT_EQ(joined.size(), 3u);
  EXPECT_EQ(joined.at(2).int64_value(), 3);

  Tuple projected = joined.Project({2, 0});
  ASSERT_EQ(projected.size(), 2u);
  EXPECT_EQ(projected.at(0).int64_value(), 3);
  EXPECT_EQ(projected.at(1).int64_value(), 1);
}

TEST(TupleTest, ValidateAgainstChecksArity) {
  Schema schema({{"a", DataType::kInt64, true}});
  Tuple wrong({Value::Int64(1), Value::Int64(2)});
  EXPECT_FALSE(wrong.ValidateAgainst(schema).ok());
}

TEST(TupleTest, ValidateAgainstCoerces) {
  Schema schema({{"a", DataType::kDouble, true}});
  Tuple t({Value::Int64(3)});
  auto validated = t.ValidateAgainst(schema);
  ASSERT_TRUE(validated.ok());
  EXPECT_EQ(validated->at(0).type(), DataType::kDouble);
}

TEST(TupleTest, ValidateAgainstEnforcesNotNull) {
  Schema schema({{"a", DataType::kInt64, false}});
  Tuple t({Value::Null()});
  auto validated = t.ValidateAgainst(schema);
  EXPECT_FALSE(validated.ok());

  Schema nullable({{"a", DataType::kInt64, true}});
  EXPECT_TRUE(t.ValidateAgainst(nullable).ok());
}

TEST(TupleTest, ValidateAgainstRejectsWrongType) {
  Schema schema({{"a", DataType::kInt64, true}});
  Tuple t({Value::String("not a number")});
  EXPECT_FALSE(t.ValidateAgainst(schema).ok());
}

TEST(TupleTest, LexicographicOrder) {
  Tuple a({Value::Int64(1), Value::Int64(2)});
  Tuple b({Value::Int64(1), Value::Int64(3)});
  Tuple prefix({Value::Int64(1)});
  EXPECT_LT(a, b);
  EXPECT_FALSE(b < a);
  EXPECT_LT(prefix, a);  // shorter is smaller when prefix-equal
}

TEST(TupleTest, HashAndEquality) {
  Tuple a({Value::String("Jerry"), Value::Int64(122)});
  Tuple b({Value::String("Jerry"), Value::Int64(122)});
  Tuple c({Value::String("Jerry"), Value::Int64(123)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());

  std::unordered_set<Tuple, TupleHash> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(TupleTest, ToString) {
  Tuple t({Value::String("Jerry"), Value::Int64(122)});
  EXPECT_EQ(t.ToString(), "('Jerry', 122)");
  EXPECT_EQ(Tuple().ToString(), "()");
}

}  // namespace
}  // namespace youtopia
