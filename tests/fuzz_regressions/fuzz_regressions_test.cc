// Minimized regressions from the fuzz targets (design decision #11).
// Each test is the smallest input that demonstrated a defect, kept here
// so the bug stays fixed even when the fuzzers are not running.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/codec.h"
#include "server/youtopia.h"
#include "wal/wal_manager.h"
#include "wal/wal_record.h"

namespace youtopia {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- varints
//
// fuzz_wire: WireReader::GetVarint accepted overlong LEB128 forms
// ("\x80\x00" for 0), so two different byte strings decoded to the same
// value and the wire format was not injective. Canonical forms only.

std::string VarintBytes(std::initializer_list<uint8_t> bytes) {
  std::string out;
  for (uint8_t b : bytes) out.push_back(static_cast<char>(b));
  return out;
}

TEST(VarintRegressionTest, OverlongZeroIsRejected) {
  const std::string overlong = VarintBytes({0x80, 0x00});
  WireReader reader(overlong);
  uint64_t v = 0;
  EXPECT_FALSE(reader.GetVarint(&v));
}

TEST(VarintRegressionTest, OverlongSmallValueIsRejected) {
  // 1 encoded in two bytes instead of one.
  const std::string overlong = VarintBytes({0x81, 0x00});
  WireReader reader(overlong);
  uint64_t v = 0;
  EXPECT_FALSE(reader.GetVarint(&v));
}

TEST(VarintRegressionTest, CanonicalFormsRoundTrip) {
  const uint64_t cases[] = {0,          1,          0x7f,       0x80,
                            0x3fff,     0x4000,     0xffffffff, 1u << 20,
                            UINT64_MAX, UINT64_MAX - 1};
  for (uint64_t value : cases) {
    WireWriter writer;
    writer.PutVarint(value);
    WireReader reader(writer.bytes());
    uint64_t decoded = 0;
    ASSERT_TRUE(reader.GetVarint(&decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(reader.AtEnd());
  }
}

// ------------------------------------------------- reserve amplification
//
// fuzz_wire: element counts are validated against the bytes remaining
// (>= 1 wire byte per element), but reserve(count) allocates the full
// in-memory element size up front — ~40x amplification, so a 64 MB
// frame could demand a multi-GB reservation before decoding failed.
// The fix caps eager reservation at kMaxEagerReserve; these tests pin
// the correctness side: honest payloads above the cap still decode.

TEST(ReserveRegressionTest, TupleLargerThanEagerCapDecodes) {
  const uint32_t n = kMaxEagerReserve * 2 + 7;
  WireWriter writer;
  Tuple wide;
  {
    std::vector<Value> values;
    for (uint32_t i = 0; i < n; ++i) {
      values.push_back(Value::Int64(static_cast<int64_t>(i)));
    }
    wide = Tuple(std::move(values));
  }
  writer.PutTuple(wide);
  WireReader reader(writer.bytes());
  Tuple decoded;
  ASSERT_TRUE(reader.GetTuple(&decoded));
  ASSERT_EQ(decoded.size(), n);
  EXPECT_EQ(decoded.at(n - 1).int64_value(), static_cast<int64_t>(n - 1));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ReserveRegressionTest, HostileCountStillFailsCleanly) {
  // Count claims one element per remaining byte but the bytes are not
  // valid values: decode must fail without touching the claimed size.
  WireWriter writer;
  writer.PutU32(64);
  for (int i = 0; i < 64; ++i) writer.PutU8(0xee);  // no such value tag
  WireReader reader(writer.bytes());
  Tuple decoded;
  EXPECT_FALSE(reader.GetTuple(&decoded));
}

// --------------------------------------------------- wal segment names
//
// fuzz_wal_replay: segment discovery parsed names with
// sscanf("wal-%llu.log"), which also matches unpadded ("wal-1.log") and
// suffixed ("wal-1.logx") spellings — but replay reopened the segment
// through SegmentPath(seq), which reconstructs the zero-padded name.
// A foreign-but-plausible file name in the WAL dir therefore failed
// recovery outright ("cannot read wal-0000000001.log"), and a dir
// holding both spellings of one sequence number replayed it twice.
// Discovery now accepts only names that round-trip through SegmentPath.

class WalSegmentNameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("fuzz_reg_wal_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void WriteSegment(const std::string& name, const std::string& sql) {
    WireWriter payload;
    wal::WalRecord::Statement(sql).EncodeTo(&payload);
    WireWriter frame;
    frame.PutU32(static_cast<uint32_t>(payload.bytes().size()));
    frame.PutU32(Crc32(payload.bytes()));
    std::ofstream out(dir_ + "/" + name, std::ios::binary);
    out << frame.bytes() << payload.bytes();
  }

  size_t ReplayCount() {
    wal::WalConfig config;
    config.enabled = true;
    config.dir = dir_;
    config.fsync = false;
    wal::WalManager wal(config);
    EXPECT_TRUE(wal.Open().ok());
    size_t records = 0;
    EXPECT_TRUE(wal.Replay([&](const wal::WalRecord&) {
                     ++records;
                     return Status::OK();
                   })
                    .ok());
    return records;
  }

  std::string dir_;
};

TEST_F(WalSegmentNameTest, UnpaddedNameIsIgnoredNotFatal) {
  WriteSegment("wal-1.log", "CREATE TABLE t (x INT)");
  // Before the fix this failed Open/Replay with "cannot read
  // wal-0000000001.log"; now the foreign spelling is simply not a
  // segment.
  EXPECT_EQ(ReplayCount(), 0u);
}

TEST_F(WalSegmentNameTest, SuffixedNameIsIgnored) {
  WriteSegment("wal-0000000001.logx", "CREATE TABLE t (x INT)");
  EXPECT_EQ(ReplayCount(), 0u);
}

TEST_F(WalSegmentNameTest, PaddedNameReplays) {
  WriteSegment("wal-0000000001.log", "CREATE TABLE t (x INT)");
  EXPECT_EQ(ReplayCount(), 1u);
}

TEST_F(WalSegmentNameTest, BothSpellingsReplayOnceNotTwice) {
  WriteSegment("wal-0000000001.log", "CREATE TABLE t (x INT)");
  WriteSegment("wal-1.log", "CREATE TABLE t (x INT)");
  // Before the fix both names parsed to seq 1, so the padded file was
  // replayed twice (duplicate CREATE TABLE on recovery).
  EXPECT_EQ(ReplayCount(), 1u);
}

TEST_F(WalSegmentNameTest, EngineRecoversPastForeignNames) {
  // End to end: a full engine over a dir holding a real log plus a
  // foreign spelling must recover the real one cleanly.
  {
    YoutopiaConfig config;
    config.wal.enabled = true;
    config.wal.dir = dir_;
    config.wal.fsync = false;
    config.wal.checkpoint_on_shutdown = false;
    Youtopia db(config);
    ASSERT_TRUE(db.recovery_status().ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (42)").ok());
  }
  WriteSegment("wal-7.log", "CREATE TABLE alien (y INT)");
  YoutopiaConfig config;
  config.wal.enabled = true;
  config.wal.dir = dir_;
  config.wal.fsync = false;
  Youtopia db(config);
  ASSERT_TRUE(db.recovery_status().ok()) << db.recovery_status();
  auto rows = db.Execute("SELECT x FROM t");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0].at(0).int64_value(), 42);
  EXPECT_FALSE(db.Execute("SELECT * FROM alien").ok());
}

}  // namespace
}  // namespace youtopia
