#include "entangle/match_graph.h"

#include <gtest/gtest.h>

#include "entangle/normalizer.h"
#include "sql/parser.h"

namespace youtopia {
namespace {

void AddQuery(PendingPool* pool, QueryId id, const std::string& sql) {
  auto stmt = Parser::ParseStatement(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  auto q = Normalizer::Normalize(
      static_cast<const SelectStatement&>(*stmt.value()), id, "", sql);
  ASSERT_TRUE(q.ok()) << q.status();
  pool->Add(std::make_shared<const EntangledQuery>(q.TakeValue()));
}

std::string PairQuery(const std::string& self, const std::string& other) {
  return "SELECT '" + self + "', fno INTO ANSWER Reservation WHERE fno IN "
         "(SELECT fno FROM Flights WHERE dest='Paris') AND ('" + other +
         "', fno) IN ANSWER Reservation CHOOSE 1";
}

TEST(MatchGraphTest, EmptyPool) {
  PendingPool pool;
  MatchGraph graph = BuildMatchGraph(pool);
  EXPECT_TRUE(graph.nodes.empty());
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_TRUE(graph.Components().empty());
}

TEST(MatchGraphTest, SymmetricPairProducesBothEdges) {
  PendingPool pool;
  AddQuery(&pool, 1, PairQuery("Kramer", "Jerry"));
  AddQuery(&pool, 2, PairQuery("Jerry", "Kramer"));
  MatchGraph graph = BuildMatchGraph(pool);
  EXPECT_EQ(graph.nodes.size(), 2u);
  ASSERT_EQ(graph.edges.size(), 2u);
  // 1's constraint (about Jerry) is provided by 2's head and vice versa.
  EXPECT_EQ(graph.edges[0].from, 1u);
  EXPECT_EQ(graph.edges[0].to, 2u);
  EXPECT_EQ(graph.edges[1].from, 2u);
  EXPECT_EQ(graph.edges[1].to, 1u);
}

TEST(MatchGraphTest, IncompatibleConstantsProduceNoEdge) {
  PendingPool pool;
  AddQuery(&pool, 1, PairQuery("Kramer", "Jerry"));
  AddQuery(&pool, 2, PairQuery("Elaine", "Newman"));
  MatchGraph graph = BuildMatchGraph(pool);
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_EQ(graph.Components().size(), 2u);
}

TEST(MatchGraphTest, ComponentsGroupNeighbourhoods) {
  PendingPool pool;
  AddQuery(&pool, 1, PairQuery("A", "B"));
  AddQuery(&pool, 2, PairQuery("B", "A"));
  AddQuery(&pool, 3, PairQuery("C", "D"));
  AddQuery(&pool, 4, PairQuery("D", "C"));
  MatchGraph graph = BuildMatchGraph(pool);
  auto components = graph.Components();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].size(), 2u);
  EXPECT_EQ(components[1].size(), 2u);
}

TEST(MatchGraphTest, SelfEdgeWhenOwnHeadMatchesOwnConstraint) {
  PendingPool pool;
  AddQuery(&pool, 1,
           "SELECT 'Solo', fno INTO ANSWER Reservation WHERE fno IN "
           "(SELECT fno FROM Flights) AND ('Solo', fno) IN ANSWER "
           "Reservation CHOOSE 1");
  MatchGraph graph = BuildMatchGraph(pool);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].from, 1u);
  EXPECT_EQ(graph.edges[0].to, 1u);
}

TEST(MatchGraphTest, ToStringListsNodesEdgesComponents) {
  PendingPool pool;
  AddQuery(&pool, 1, PairQuery("Kramer", "Jerry"));
  AddQuery(&pool, 2, PairQuery("Jerry", "Kramer"));
  MatchGraph graph = BuildMatchGraph(pool);
  const std::string rendered = graph.ToString(pool);
  EXPECT_NE(rendered.find("2 pending queries"), std::string::npos);
  EXPECT_NE(rendered.find("2 candidate edges"), std::string::npos);
  EXPECT_NE(rendered.find("components:"), std::string::npos);
  EXPECT_NE(rendered.find("Reservation('Jerry', fno)"), std::string::npos);
}

TEST(MatchGraphTest, ArityMismatchNoEdge) {
  PendingPool pool;
  AddQuery(&pool, 1,
           "SELECT 'A', fno, seat INTO ANSWER R WHERE fno IN "
           "(SELECT fno FROM F) AND seat IN (SELECT s FROM S) AND "
           "('B', fno) IN ANSWER R CHOOSE 1");
  AddQuery(&pool, 2,
           "SELECT 'B', fno, seat INTO ANSWER R WHERE fno IN "
           "(SELECT fno FROM F) AND seat IN (SELECT s FROM S) CHOOSE 1");
  MatchGraph graph = BuildMatchGraph(pool);
  // 1's binary constraint cannot unify with 2's ternary head.
  EXPECT_TRUE(graph.edges.empty());
}

}  // namespace
}  // namespace youtopia
